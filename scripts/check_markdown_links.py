#!/usr/bin/env python
"""Check that intra-repo markdown links resolve.  Stdlib only.

Scans every tracked ``*.md`` file for inline links and images
(``[text](target)`` / ``![alt](target)``) and verifies that each
relative target exists on disk, resolved against the file containing
the link.  External links (``http(s)://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped; an anchor suffix on a file
target is stripped before the existence check.

Run from the repo root (CI does)::

    python scripts/check_markdown_links.py

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: [text](target) — target ends at the
#: first unescaped closing paren (no nested parens in our targets).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "results"}

#: Verbatim retrieval artifacts (scraped paper excerpts) — not
#: maintained documentation; their quoted bodies reference figures
#: that were never part of this repo.
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md"}


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        if path.name in SKIP_FILES:
            continue
        yield path


def check_file(path: Path, root: Path):
    """Yield (line_number, target) for every broken link in ``path``."""
    text = path.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            if target.startswith("#"):
                continue  # in-page anchor
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if file_part.startswith("/"):
                resolved = root / file_part.lstrip("/")
            else:
                resolved = path.parent / file_part
            if not resolved.exists():
                yield line_number, target


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for path in iter_markdown_files(root):
        checked += 1
        for line_number, target in check_file(path, root):
            broken.append(
                f"{path.relative_to(root)}:{line_number}: "
                f"broken link -> {target}"
            )
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken link(s) in {checked} files")
        return 1
    print(f"all intra-repo markdown links resolve ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
