#!/usr/bin/env python
"""Batched-serving throughput study (the paper's Figures 11 and 13).

Sweeps batch size and sequence length across the serving systems
(GPU baselines, Tender, LPU, Oaken-HBM/LPDDR) on the analytic hardware
model, printing the throughput grids and the headline speedups.

Run:
  python examples/serving_throughput.py
  python examples/serving_throughput.py --model llama2-70b
  python examples/serving_throughput.py --seq-sweep
"""

import argparse

from repro.experiments.fig11 import (
    FIG11_MODELS,
    format_fig11,
    run_fig11,
    speedup_at_batch,
)
from repro.experiments.fig13 import format_fig13, run_fig13


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default=None,
        help="single model to sweep (default: all six paper models)",
    )
    parser.add_argument(
        "--seq-sweep", action="store_true",
        help="also run the Figure 13 sequence-length sweep",
    )
    parser.add_argument(
        "--input-tokens", type=int, default=1024,
        help="prompt length per request",
    )
    parser.add_argument(
        "--output-tokens", type=int, default=1024,
        help="generated length per request",
    )
    args = parser.parse_args()

    models = (args.model,) if args.model else FIG11_MODELS
    cells = run_fig11(
        models=models,
        input_tokens=args.input_tokens,
        output_tokens=args.output_tokens,
    )
    print("=== Figure 11: throughput grid (tokens/sec) ===\n")
    print(format_fig11(cells))

    vllm = speedup_at_batch(cells, "oaken-lpddr", "vllm", 256)
    qserve = speedup_at_batch(cells, "oaken-lpddr", "qserve-gpu", 256)
    print("\nOaken-LPDDR speedups at batch 256:")
    for model in sorted(vllm):
        qserve_text = (
            f"{qserve[model]:.2f}x" if model in qserve else "n/a"
        )
        print(f"  {model:>14}: {vllm[model]:.2f}x over vLLM, "
              f"{qserve_text} over QServe")

    if args.seq_sweep:
        print("\n=== Figure 13: sequence-length sweep "
              "(llama2-13b, batch 16) ===\n")
        print(format_fig13(run_fig13()))


if __name__ == "__main__":
    main()
