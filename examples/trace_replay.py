#!/usr/bin/env python
"""Replay Azure-style inference traces through the serving simulator.

Two modes, matching the paper's Figure 14 methodology and a richer
open-loop variant:

* synthesized closed batches (the paper's measurement protocol),
* open-loop continuous batching with arrival times, reporting latency
  percentiles alongside throughput.

Run:
  python examples/trace_replay.py
  python examples/trace_replay.py --trace burstgpt --model mixtral-8x7b
  python examples/trace_replay.py --open-loop --batch 64
"""

import argparse

from repro.data.traces import generate_trace, trace_summary
from repro.experiments.common import TextTable
from repro.experiments.fig14 import systems_for_model
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.serving.simulator import (
    simulate_synthesized_batches,
    simulate_trace,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default="conversation",
                        choices=("conversation", "burstgpt"))
    parser.add_argument("--model", default="llama2-13b")
    parser.add_argument("--requests", type=int, default=192)
    parser.add_argument("--batch", type=int, default=None,
                        help="single batch size (default: 16..128 sweep)")
    parser.add_argument("--open-loop", action="store_true",
                        help="open-loop replay with arrival times")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    trace = generate_trace(
        args.trace, num_requests=args.requests, seed=args.seed,
        max_tokens=4096,
    )
    summary = trace_summary(trace)
    print(f"trace {args.trace}: {summary['requests']} requests, "
          f"mean input {summary['mean_input']:.0f} tokens, "
          f"mean output {summary['mean_output']:.0f} tokens, "
          f"arrival CV^2 {summary['arrival_cv2']:.2f}")

    arch = get_model(args.model).arch
    systems = systems_for_model(args.model)
    batches = (args.batch,) if args.batch else (16, 32, 64, 128)

    if args.open_loop:
        table = TextTable(
            ["system", "batch", "tok/s", "mean_lat_s", "p95_lat_s"]
        )
        for batch in batches:
            for name in systems:
                report = simulate_trace(
                    get_system(name), arch, trace, batch
                )
                if report.oom:
                    table.add_row([name, batch, "OOM", "-", "-"])
                else:
                    table.add_row([
                        name, batch,
                        f"{report.generation_throughput:.0f}",
                        report.mean_latency_s,
                        report.p95_latency_s,
                    ])
        print("\nopen-loop replay (continuous batching):")
    else:
        table = TextTable(["system", "batch", "tok/s"])
        for batch in batches:
            for name in systems:
                report = simulate_synthesized_batches(
                    get_system(name), arch, trace, batch
                )
                cell = (
                    "OOM" if report.oom
                    else f"{report.generation_throughput:.0f}"
                )
                table.add_row([name, batch, cell])
        print("\nsynthesized closed batches (Figure 14 protocol):")
    print(table.render())


if __name__ == "__main__":
    main()
