#!/usr/bin/env python
"""Serving-SLO exploration: TTFT / TPOT / tail latency vs load.

Replays a synthetic Azure-style Conversation trace through the
continuous-batching scheduler on Oaken-LPDDR and the vLLM GPU
baseline, sweeping the residency cap, and reports the latency metrics
a serving operator actually watches: time-to-first-token, time per
output token, and p95 end-to-end latency.  Also contrasts monolithic
admission prefill with Sarathi-style chunked prefill.

Run:  python examples/slo_explorer.py
"""

from repro.data.traces import generate_trace
from repro.experiments.common import TextTable
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.serving.simulator import simulate_trace

ARCH = get_model("llama2-13b").arch


def main() -> None:
    trace = generate_trace(
        "conversation", num_requests=96, seed=11, max_tokens=1024
    )
    prompts = [r.input_tokens for r in trace]
    outputs = [r.output_tokens for r in trace]
    print(f"trace: {len(trace)} requests, mean prompt "
          f"{sum(prompts) / len(prompts):.0f} tokens, mean output "
          f"{sum(outputs) / len(outputs):.0f} tokens")

    table = TextTable(
        ["system", "cap", "resident", "tok/s", "TTFT_mean_s",
         "TTFT_p95_s", "TPOT_ms", "lat_p95_s"]
    )
    for system_name in ("oaken-lpddr", "vllm"):
        system = get_system(system_name)
        for cap in (8, 16, 32, 64, 128):
            report = simulate_trace(system, ARCH, trace, cap)
            if report.oom:
                table.add_row(
                    [system_name, cap, 0, "OOM", "-", "-", "-", "-"]
                )
                continue
            table.add_row(
                [
                    system_name,
                    cap,
                    report.effective_batch,
                    f"{report.generation_throughput:.0f}",
                    f"{report.mean_ttft_s:.2f}",
                    f"{report.p95_ttft_s:.2f}",
                    f"{report.mean_tpot_s * 1e3:.1f}",
                    f"{report.p95_latency_s:.2f}",
                ]
            )
    print()
    print(table.render())
    print("\nlarger caps cut queueing (TTFT) at a growing TPOT cost. "
          "The GPU wins per-iteration latency while its batch fits, "
          "but its FP16 KV clips residency (cap 128 -> ~37 resident); "
          "Oaken's 4.8-bit KV keeps admitting, which is where its "
          "throughput lead at scale comes from (Figure 11's shape).")

    # Chunked prefill: the admission-stall trade-off.
    system = get_system("oaken-lpddr")
    table = TextTable(
        ["admission policy", "TTFT_p95_s", "TPOT_ms", "lat_p95_s"]
    )
    for label, chunk in (("monolithic prefill", None),
                         ("chunked (256 tok/iter)", 256)):
        report = simulate_trace(
            system, ARCH, trace, 32, prefill_chunk=chunk
        )
        table.add_row(
            [
                label,
                f"{report.p95_ttft_s:.2f}",
                f"{report.mean_tpot_s * 1e3:.1f}",
                f"{report.p95_latency_s:.2f}",
            ]
        )
    print()
    print(table.render())
    print("\nchunked prefill spreads admission work across iterations: "
          "smoother generation for residents, a bounded TTFT premium "
          "for arrivals — pick per SLO.")


if __name__ == "__main__":
    main()
