#!/usr/bin/env python
"""Hardware design-space exploration: engine width vs area vs exposure.

Why did the paper size the quantization engine at 32 lanes and the
dequantization engine at 128?  This example sweeps the engine datapath
widths, prices each point with the Table 4 area model (engine area
scales with lane count), and measures the resulting (de)quantization
exposure with the Section 5.3 overlap scheduler — reproducing the
design reasoning: the chosen widths are the knee where exposure
vanishes for a fraction of a percent of core area.

Run:  python examples/hw_design_space.py
"""

from repro.core.config import OakenConfig
from repro.experiments.common import TextTable
from repro.hardware.area import (
    DEQUANT_ENGINE_AREA_MM2,
    QUANT_ENGINE_AREA_MM2,
    AreaModel,
)
from repro.hardware.overlap import OverlapConfig, simulate_overlap

MB = 1024.0 * 1024.0
KB = 1024.0

#: Llama2-7B-ish per-request iteration at 1K context.
KV_READ = 158 * MB
NEW_KV = 512 * KB
ATTN_S = 30e-6

#: The paper's engine widths (Figure 9 datapaths).
PAPER_QUANT_LANES = 32
PAPER_DEQUANT_LANES = 128

#: Stored bits per element at the 4/90/6 split; sets the compressed-
#: side byte rate of a dequant lane.
STORED_BITS = 4.82


def engine_rates(quant_lanes: int, dequant_lanes: int) -> OverlapConfig:
    """Per-core engine stream rates at 1 GHz for given lane counts."""
    return OverlapConfig(
        dequant_gbps=dequant_lanes * STORED_BITS / 8.0,
        quant_gbps=quant_lanes * 2.0,
    )


def engine_area_mm2(quant_lanes: int, dequant_lanes: int) -> float:
    """Engine area scaled linearly from the Table 4 reference widths."""
    base = AreaModel(OakenConfig()).core_report()
    quant = base.areas_mm2["quant_engine"] * (
        quant_lanes / PAPER_QUANT_LANES
    )
    dequant = base.areas_mm2["dequant_engine"] * (
        dequant_lanes / PAPER_DEQUANT_LANES
    )
    return quant + dequant


def main() -> None:
    base_core = AreaModel(OakenConfig()).core_report().core_area_mm2
    fixed = base_core - engine_area_mm2(
        PAPER_QUANT_LANES, PAPER_DEQUANT_LANES
    )
    print("engine design space (Llama2-7B iteration, 1K context):")
    print(f"  Table 4 reference: quant {PAPER_QUANT_LANES} lanes "
          f"({QUANT_ENGINE_AREA_MM2} mm2), dequant "
          f"{PAPER_DEQUANT_LANES} lanes ({DEQUANT_ENGINE_AREA_MM2} mm2)")

    table = TextTable(
        ["q_lanes", "dq_lanes", "engine_mm2", "area_ovh_%",
         "exposed%@b16", "exposed%@b64"]
    )
    sweep = (
        (8, 16), (16, 32), (32, 64), (32, 128), (64, 128), (64, 256),
    )
    knee = None
    for quant_lanes, dequant_lanes in sweep:
        config = engine_rates(quant_lanes, dequant_lanes)
        area = engine_area_mm2(quant_lanes, dequant_lanes)
        core = fixed + area
        exposures = []
        for batch in (16, 64):
            report = simulate_overlap(
                batch, KV_READ, NEW_KV, ATTN_S, config=config
            )
            exposures.append(
                100.0 * report.exposed_s / report.makespan_s
            )
        marker = ""
        if (quant_lanes, dequant_lanes) == (
            PAPER_QUANT_LANES, PAPER_DEQUANT_LANES
        ):
            marker = "  <- paper"
            knee = exposures
        table.add_row(
            [
                quant_lanes,
                dequant_lanes,
                f"{area:.3f}",
                f"{100 * area / core:.2f}{marker}",
                f"{exposures[0]:.2f}",
                f"{exposures[1]:.2f}",
            ]
        )
    print()
    print(table.render())
    assert knee is not None and max(knee) < 1.0
    print("\nreading: narrower engines leave dequantization on the "
          "critical path at moderate batch; wider ones buy nothing "
          "(the DMA window already hides everything) while growing "
          "the 8.21% engine area. The paper's 32/128 sits at the "
          "knee.")


if __name__ == "__main__":
    main()
