#!/usr/bin/env python
"""Regenerate the paper's Table 2 accuracy grid (full or subset).

Evaluates every KV quantization method (FP16 reference, KVQuant, KIVI,
Tender, Atom, QServe, Oaken) on the sim-model zoo: Wikitext2-analogue
perplexity, three zero-shot tasks, and effective bitwidth at the paper
models' KV widths.

Run:
  python examples/accuracy_table.py                  # 2-model subset
  python examples/accuracy_table.py --full           # all 8 models
  python examples/accuracy_table.py --models llama2-7b opt-6.7b
"""

import argparse
import time

from repro.experiments.table2 import (
    TABLE2_MODELS,
    format_table2,
    run_table2,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--models", nargs="+", default=None,
        help="zoo model names (default: llama2-7b, opt-6.7b)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="evaluate all eight paper models (several minutes)",
    )
    parser.add_argument(
        "--qa-items", type=int, default=48,
        help="items per zero-shot task",
    )
    parser.add_argument(
        "--eval-batch", type=int, default=6,
        help="perplexity corpus sequences",
    )
    args = parser.parse_args()

    if args.full:
        models = TABLE2_MODELS
    elif args.models:
        models = tuple(args.models)
    else:
        models = ("llama2-7b", "opt-6.7b")

    print(f"evaluating models: {', '.join(models)}")
    start = time.time()
    results = run_table2(
        models=models,
        eval_batch=args.eval_batch,
        qa_items=args.qa_items,
    )
    print(format_table2(results))
    print(f"\ndone in {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
