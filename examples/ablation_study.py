#!/usr/bin/env python
"""Run the full ablation study of Oaken's design choices.

Covers the Table 3 group sweep plus the ablations DESIGN.md calls out:
group-shift on/off, fused vs naive encoding, offline thresholds vs
online topK, per-layer vs pooled thresholds, and the long-context
degradation extension.

Run:
  python examples/ablation_study.py
  python examples/ablation_study.py --model opt-6.7b
"""

import argparse
import time

import numpy as np

from repro.baselines.oaken_adapter import OakenKVQuantizer
from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.data.corpus import build_corpus, calibration_corpus
from repro.eval.longcontext import run_long_context
from repro.experiments.common import TextTable
from repro.experiments.table3 import format_table3, run_table3
from repro.models.config import get_model
from repro.models.transformer import DecoderModel, KVTransformBundle


def bundle_for(config, layer_kv):
    key_fns, value_fns = [], []
    for keys, values in layer_kv:
        key_fns.append(
            OakenKVQuantizer("key", config).fit([keys]).roundtrip
        )
        value_fns.append(
            OakenKVQuantizer("value", config).fit([values]).roundtrip
        )
    return KVTransformBundle(key_fns=key_fns, value_fns=value_fns)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama2-7b")
    parser.add_argument("--eval-batch", type=int, default=4)
    args = parser.parse_args()

    start = time.time()
    spec = get_model(args.model)
    model = DecoderModel(spec)
    eval_tokens = build_corpus(
        model, "wikitext2", batch=args.eval_batch, length=96
    )
    calibration = calibration_corpus(model, batch=4, length=96)
    layer_kv = model.collect_layer_kv(calibration)

    print(f"=== Table 3: group-count sweep ({args.model}) ===")
    print(format_table3(run_table3(args.model,
                                   eval_batch=args.eval_batch)))

    print("\n=== design-choice ablations ===")
    table = TextTable(["variant", "perplexity"])
    variants = {
        "paper default (shift + fused)": OakenConfig(),
        "group-shift off": OakenConfig(group_shift=False),
        "naive 23-bit sparse records": OakenConfig(
            fused_encoding=False
        ),
    }
    for label, config in variants.items():
        bundle = bundle_for(config, layer_kv)
        table.add_row(
            [label, model.perplexity(eval_tokens, kv_transforms=bundle)]
        )
    # Pooled (anti-Observation-1) thresholds.
    pooled = np.concatenate(
        [np.concatenate([k.ravel(), v.ravel()]) for k, v in layer_kv]
    )
    shared = OakenQuantizer(
        OakenConfig(), profile_thresholds([pooled], OakenConfig())
    )
    pooled_bundle = KVTransformBundle(
        key_fns=[shared.roundtrip] * len(layer_kv),
        value_fns=[shared.roundtrip] * len(layer_kv),
    )
    table.add_row(
        [
            "single pooled thresholds",
            model.perplexity(eval_tokens, kv_transforms=pooled_bundle),
        ]
    )
    print(table.render())

    print("\n=== long-context degradation (extension) ===")
    long_table = TextTable(
        ["context", "fp_tail_ppl", "oaken_tail_ppl", "increase_%"]
    )
    for row in run_long_context(model, lengths=(64, 128, 192),
                                tail=24, batch=2):
        long_table.add_row(
            [
                row.context_length,
                row.fp_tail_perplexity,
                row.quantized_tail_perplexity,
                100.0 * row.relative_increase,
            ]
        )
    print(long_table.render())
    print(f"\ndone in {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
