#!/usr/bin/env python
"""Trace one token through the Figure 9 engine datapaths.

Streams a single KV vector through the structural quantization engine
stage by stage — decomposer, min/max finder, σ-calculator, quantizers,
zero-remove shifter — prints what each module sees, then reads the
token back through the dequantization engine's zero-insert path and
verifies the reconstruction matches the vectorized golden model bit
for bit.

Run:  python examples/datapath_trace.py
"""

import numpy as np

from repro.core import OakenConfig, OakenQuantizer, OfflineProfiler
from repro.core.grouping import MIDDLE_GROUP
from repro.hardware.datapath import (
    Decomposer,
    MinMaxFinder,
    ScaleCalculator,
    StreamingDequantEngine,
    StreamingQuantEngine,
)


def make_kv(tokens: int, seed: int) -> np.ndarray:
    """Synthesize KV rows with channel-concentrated outliers."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((tokens, 64))
    x[:, [3, 29, 51]] *= 10.0  # outlier channels (Observation 3)
    return x


def main() -> None:
    config = OakenConfig()
    profiler = OfflineProfiler(config)
    for run in range(50):
        profiler.observe(make_kv(tokens=64, seed=run))
    thresholds = profiler.finalize()
    t_lo_o, t_lo_i, t_hi_i, t_hi_o = thresholds.as_eq1_tuple()
    print("control registers (offline thresholds):")
    print(f"  T_lo_outer={t_lo_o:+.3f}  T_lo_inner={t_lo_i:+.3f}  "
          f"T_hi_inner={t_hi_i:+.3f}  T_hi_outer={t_hi_o:+.3f}")

    token = make_kv(tokens=1, seed=999)[0]

    # --- pass 1: decomposer + min/max finder -------------------------
    decomposer = Decomposer(config, thresholds)
    finder = MinMaxFinder(config.num_sparse_bands)
    routed = [decomposer.route(i, v) for i, v in enumerate(token)]
    for element in routed:
        finder.update(element)
    names = {MIDDLE_GROUP: "middle", 0: "outer", 1: "inner"}
    print("\npass 1 — decomposer routing (first 8 elements):")
    for element in routed[:8]:
        print(f"  pos {element.position:2d}  value {element.raw:+7.3f}"
              f"  -> {names[element.group]:6s}  shifted "
              f"{element.shifted:+7.3f}  side={element.side}")
    counts = {name: 0 for name in names.values()}
    for element in routed:
        counts[names[element.group]] += 1
    print(f"  group census: {counts} (of {len(routed)} elements)")

    # --- σ-calculator turnaround --------------------------------------
    calc = ScaleCalculator(config)
    print("\nσ-calculator — per-group FP16 scales:")
    for group in (MIDDLE_GROUP, 0, 1):
        lo, hi = finder.range_of(group)
        scale = calc.scale(group, lo, hi)
        print(f"  {names[group]:6s}: lo={scale.lo:+7.3f} "
              f"hi={scale.hi:+7.3f} sigma={scale.sigma:7.3f} "
              f"({scale.bits}-bit codes)")

    # --- pass 2: engine end to end ------------------------------------
    engine = StreamingQuantEngine(config, thresholds)
    result = engine.quantize_token(token)
    print("\npass 2 — fused dense row (first 16 nibbles): "
          f"{result.dense_codes[:16].tolist()}")
    print(f"zero-remove shifter emitted {result.num_outliers} COO "
          "records:")
    for record in result.records[:6]:
        print(f"  pos {record.position:2d} -> chunk {record.chunk}, "
              f"idx {record.index:2d}, band {record.band}, "
              f"side={int(record.side)}, mag={record.mag_code:2d}, "
              f"nibble={record.fused_nibble}")

    # --- full matrix + cycle report -----------------------------------
    slab = make_kv(tokens=32, seed=7)
    encoded, cycles = engine.quantize_matrix(slab)
    print(f"\n32-token slab: {cycles.total_cycles} cycles "
          f"({cycles.time_s(1.0) * 1e9:.0f} ns @ 1 GHz), "
          f"stage occupancy:")
    for name, fraction in sorted(cycles.occupancy().items()):
        print(f"  {name:20s} {fraction:6.2%}")

    # --- read back through the zero-insert path ----------------------
    dequant = StreamingDequantEngine(config, thresholds)
    restored, _ = dequant.dequantize_matrix(encoded)
    golden = OakenQuantizer(config, thresholds)
    np.testing.assert_array_equal(restored, golden.roundtrip(slab))
    error = np.abs(restored - slab)
    print(f"\nzero-insert readback verified bit-exact vs golden model; "
          f"mean |error| = {error.mean():.4f}, max = {error.max():.4f}")


if __name__ == "__main__":
    main()
