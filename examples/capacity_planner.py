#!/usr/bin/env python
"""Capacity planning: which serving system fits your workload?

The deployment question the paper's Figure 1 poses: given a model and
a target context length, how many concurrent requests can each
platform hold, and what throughput does that buy?  This example sweeps
the catalog across context lengths and prints a deployment plan — the
same arithmetic that produces the paper's OOM walls (Figures 4/11/13)
and Oaken-LPDDR's capacity headroom.

Run:  python examples/capacity_planner.py [model]
"""

import sys

from repro.experiments.common import TextTable
from repro.hardware.overheads import SERVING_SYSTEMS, get_system
from repro.hardware.perf import (
    max_supported_batch,
    simulate_generation_run,
)
from repro.models.config import get_model

#: Systems a deployment would shortlist (one per hardware family).
SHORTLIST = ("vllm", "qserve-gpu", "lpu", "oaken-hbm", "oaken-lpddr")


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "llama2-13b"
    arch = get_model(model).arch
    print(f"capacity plan for {model} "
          f"({arch.params / 1e9:.1f}B params, "
          f"{arch.kv_bytes_per_token() / 1024:.0f} KB KV/token at FP16)")

    table = TextTable(
        ["system", "kv_bits"]
        + [f"batch@{ctx}" for ctx in (1024, 4096, 16384)]
    )
    for name in SHORTLIST:
        system = SERVING_SYSTEMS[name]
        row = [name, f"{system.kv_bits(arch):.2f}"]
        for context in (1024, 4096, 16384):
            fit = max_supported_batch(system, arch, context)
            row.append(fit if fit > 0 else "OOM")
        table.add_row(row)
    print()
    print(table.render())

    # Translate capacity into delivered throughput at a 1K:1K workload.
    print("\nthroughput at the largest batch each system sustains "
          "(1K:1K):")
    table = TextTable(
        ["system", "batch", "tokens/s", "tokens/s/W"]
    )
    for name in SHORTLIST:
        system = get_system(name)
        fit = max_supported_batch(system, arch, 2048)
        if fit < 1:
            table.add_row([name, "OOM", "-", "-"])
            continue
        batch = min(fit, 256)
        run = simulate_generation_run(
            system, arch, batch, input_tokens=1024, output_tokens=1024
        )
        device = system.device_for(arch)
        table.add_row(
            [
                name,
                batch,
                f"{run.tokens_per_s:,.0f}",
                f"{run.tokens_per_s / device.tdp_watts:.1f}",
            ]
        )
    print(table.render())
    print("\nreading: Oaken-LPDDR sustains the largest batches (KV at "
          "~4.8 bits on 256 GB), which is where batched serving "
          "throughput comes from; HBM systems win only while the "
          "batch still fits.")


if __name__ == "__main__":
    main()
