#!/usr/bin/env python
"""Quickstart: Oaken's offline-online hybrid KV quantization in 60 lines.

Walks the paper's core loop end to end:

1. profile outlier thresholds offline on calibration tensors,
2. quantize a fresh KV matrix online (threshold compares only),
3. inspect the fused dense-and-sparse storage footprint,
4. dequantize and measure reconstruction error,
5. stream tokens through the paged quantized KV cache.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    LayerKVCache,
    OakenConfig,
    OakenQuantizer,
    OfflineProfiler,
)
from repro.quant.metrics import signal_to_quantization_noise


def make_kv(tokens: int, seed: int) -> np.ndarray:
    """Synthesize a KV matrix with channel-concentrated outliers."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((tokens, 128))
    x[:, [5, 40, 77, 101]] *= 12.0  # outlier channels (Observation 3)
    return x


def main() -> None:
    config = OakenConfig()  # the paper's 4% / 90% / 6% split
    print(f"config: outer={config.outer_ratios} middle="
          f"{config.middle_ratio} inner={config.inner_ratios}, "
          f"{config.inlier_bits}-bit inliers / "
          f"{config.outlier_bits}-bit outliers")

    # --- offline phase: ~100 profiling runs, averaged ----------------
    profiler = OfflineProfiler(config)
    for run in range(100):
        profiler.observe(make_kv(tokens=64, seed=run))
    thresholds = profiler.finalize()
    t_lo_o, t_lo_i, t_hi_i, t_hi_o = thresholds.as_eq1_tuple()
    print(f"thresholds (Eq. 1): T_lo_outer={t_lo_o:.2f} "
          f"T_lo_inner={t_lo_i:.2f} T_hi_inner={t_hi_i:.2f} "
          f"T_hi_outer={t_hi_o:.2f}")
    print(f"run-to-run spread: {profiler.run_to_run_spread():.3f} "
          "(small => offline profiling is safe, Observation 2)")

    # --- online phase: quantize unseen data --------------------------
    quantizer = OakenQuantizer(config, thresholds)
    kv = make_kv(tokens=256, seed=9999)
    encoded = quantizer.quantize(kv)
    footprint = encoded.footprint()
    print(f"\nencoded {encoded.num_tokens} tokens x {encoded.dim} dims:")
    print(f"  outliers routed to sparse path: "
          f"{encoded.num_outliers / kv.size:.1%}")
    print(f"  dense bits: {footprint.dense_bits:,.0f}   sparse bits: "
          f"{footprint.sparse_bits:,.0f}   scales: "
          f"{footprint.metadata_bits:,.0f}")
    print(f"  effective bitwidth: {footprint.effective_bitwidth:.2f} "
          f"bits/element ({footprint.compression_ratio():.2f}x vs FP16)")

    restored = quantizer.dequantize(encoded)
    sqnr = signal_to_quantization_noise(kv, restored)
    print(f"  reconstruction SQNR: {sqnr:.1f} dB")

    # --- streaming through the paged KV cache ------------------------
    cache = LayerKVCache(
        key_quantizer=quantizer, value_quantizer=quantizer
    )
    for step in range(8):
        cache.append(make_kv(1, seed=step), make_kv(1, seed=step + 50))
    keys, values = cache.read()
    print(f"\npaged cache: {cache.length} tokens, "
          f"{cache.nbytes():,.0f} bytes, "
          f"{cache.effective_bitwidth():.2f} bits/element")
    print(f"read back shapes: keys {keys.shape}, values {values.shape}")


if __name__ == "__main__":
    main()
