#!/usr/bin/env python
"""Quickstart: the unified cache engine, from one backend to a batched pool.

Walks the repo's serving-oriented core loop end to end:

1. build a calibrated cache backend through the one factory
   (`create_backend` — the paper method or any Table 2 baseline),
2. stream KV rows through it and read the lossy history back,
3. inspect the measured storage footprint (bytes, effective bitwidth),
4. serve many sequences from a `KVCachePool` with shared quantizers,
5. drive the batched hot paths: one fused encode per iteration via
   `append_batch`, one fused decode via `read_batch` — bit-identical
   to per-sequence loops.

Run:  PYTHONPATH=src python examples/quickstart.py

Deeper dives: docs/engine_api.md (protocol contract and invariants),
docs/architecture.md (layer map), docs/benchmarks.md (perf harness).
"""

import numpy as np

from repro.engine import KVCachePool, create_backend, shared_backend_factory

LAYERS = 2
DIM = 128


def make_kv(tokens: int, seed: int) -> np.ndarray:
    """Synthesize KV rows with channel-concentrated outliers."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((tokens, DIM))
    x[:, [5, 40, 77, 101]] *= 12.0  # outlier channels (Observation 3)
    return x


def main() -> None:
    # --- offline phase: per-layer calibration, once -------------------
    calibration = [
        (make_kv(256, seed=10 + layer), make_kv(256, seed=20 + layer))
        for layer in range(LAYERS)
    ]

    # --- one backend, one sequence ------------------------------------
    # create_backend("kivi", ...) or any registry method works the same.
    backend = create_backend("oaken", calibration=calibration)
    print(f"backend: method={backend.method} kind={backend.kind}, "
          f"{backend.num_layers} layers")

    for step in range(8):  # autoregressive appends, one token each
        for layer in range(LAYERS):
            backend.append(layer, make_kv(1, seed=100 + step),
                           make_kv(1, seed=200 + step))
    keys, values = backend.read(0)
    print(f"streamed {backend.length} tokens; read back keys "
          f"{keys.shape}, values {values.shape}")
    print(f"encoded footprint: {backend.nbytes():,.0f} bytes, "
          f"{backend.effective_bitwidth():.2f} bits/element "
          f"(vs 16.0 for FP16)")

    # --- a serving pool: many sequences, shared quantizers ------------
    # The factory runs calibration once; every allocated sequence
    # shares the fitted per-layer quantizers, which is what makes the
    # pool's batched kernel paths fusible.
    factory = shared_backend_factory("oaken", calibration=calibration)
    pool = KVCachePool(factory)
    requests = ["req-0", "req-1", "req-2", "req-3"]
    for request in requests:
        pool.allocate(request)

    seed = 1000
    for iteration in range(6):  # six decode iterations
        for layer in range(LAYERS):
            # Write side: gather every resident's new row, encode the
            # whole batch in one fused pass, scatter chunks back.
            updates = {}
            for request in requests:
                seed += 1
                updates[request] = (make_kv(1, seed=seed),
                                    make_kv(1, seed=seed + 5000))
            pool.append_batch(layer, updates)
            # Read side: decode all pending chunks in one fused pass.
            pool.read_batch(layer, requests)

    summary = pool.summary()
    print(f"\npool: {summary['sequences']:.0f} sequences, "
          f"{summary['tokens']:.0f} cached tokens, "
          f"{summary['bytes']:,.0f} bytes "
          f"({summary['effective_bitwidth']:.2f} bits/element)")
    looped_calls = len(requests) * LAYERS * 6 * 2 * 2
    print(f"batched kernel calls: {summary['batched_encodes']:.0f} "
          f"fused encodes, {summary['batched_decodes']:.0f} fused "
          f"decodes (a per-sequence loop would make {looped_calls})")

    # --- batched == looped, bit for bit -------------------------------
    looped = KVCachePool(factory)
    for request in requests:
        looped.allocate(request)
    seed = 1000
    for iteration in range(6):
        for layer in range(LAYERS):
            for request in requests:
                seed += 1
                looped.append(request, layer, make_kv(1, seed=seed),
                              make_kv(1, seed=seed + 5000))
    for layer in range(LAYERS):
        batch_reads = pool.read_batch(layer, requests)
        for request, (batch_keys, batch_values) in zip(
            requests, batch_reads
        ):
            loop_keys, loop_values = looped.read(request, layer)
            assert np.array_equal(batch_keys, loop_keys)
            assert np.array_equal(batch_values, loop_values)
    print("batched appends + reads match per-sequence loops exactly")

    # --- admission control off measured footprint ---------------------
    pool.capacity_bytes = summary["bytes"] * 2
    fits = pool.would_fit(int(summary["tokens"]))
    print(f"with a {pool.capacity_bytes:,.0f}-byte budget, another "
          f"{summary['tokens']:.0f}-token request "
          f"{'fits' if fits else 'does not fit'}")
    pool.free("req-1")
    print(f"retired req-1; {len(pool)} sequences resident, peak "
          f"footprint {pool.peak_bytes:,.0f} bytes")


if __name__ == "__main__":
    main()
