#!/usr/bin/env python
"""Reproduce the paper's KV distribution observations (Figure 6).

Measures, on the sim-model zoo:

1. per-layer key/value min-max ranges (Observation 1),
2. range consistency across datasets (Observation 2),
3. channel concentration of the top-magnitude values plus the
   isolated exceptions (Observation 3),

and prints a text scatter of the top-4% key positions — the analogue of
the paper's Figure 6(c) dot plot.

Run:
  python examples/kv_distributions.py
  python examples/kv_distributions.py --model opt-6.7b --fraction 0.02
"""

import argparse

import numpy as np

from repro.data.corpus import build_corpus
from repro.eval.distribution import top_value_positions
from repro.experiments.fig06 import format_fig06, run_fig06
from repro.models.config import get_model
from repro.models.transformer import DecoderModel


def ascii_scatter(
    matrix: np.ndarray, fraction: float, width: int = 64, height: int = 16
) -> str:
    """Render the (token, channel) top-value scatter as ASCII art."""
    tokens, channels = top_value_positions(matrix, fraction)
    rows, cols = matrix.shape
    grid = [[" "] * width for _ in range(height)]
    for t, c in zip(tokens, channels):
        y = min(height - 1, t * height // rows)
        x = min(width - 1, c * width // cols)
        grid[y][x] = "*"
    header = f"top {fraction:.0%} |key| positions (x=channel, y=token)"
    return header + "\n" + "\n".join("".join(row) for row in grid)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama2-7b")
    parser.add_argument("--fraction", type=float, default=0.04)
    args = parser.parse_args()

    results = run_fig06(models=(args.model, ))
    print(format_fig06(results))

    model = DecoderModel(get_model(args.model))
    corpus = build_corpus(model, "wikitext2", batch=2, length=128)
    kv = model.collect_layer_kv(corpus)
    keys, _ = kv[len(kv) // 2]
    print()
    print(ascii_scatter(keys, args.fraction))
    print("\nvertical stripes = outlier channels; isolated dots = the "
          "exceptions that defeat pure per-channel quantization "
          "(Observation 3).")


if __name__ == "__main__":
    main()
