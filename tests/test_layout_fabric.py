"""Cross-model synthesis: MMU burst schedules priced by the fabric.

The MMU's page layout (Section 5.2) and the interconnect's arbitration
(Section 5.1) are modelled separately; this suite feeds the layout's
actual burst schedules through the transaction-level fabric and checks
the two models tell one consistent story: burst-ordered per-head page
chains sustain near-peak effective bandwidth, the naive interleaved
strawman does not, and the two models' efficiency estimates agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.hardware.cache_layout import (
    OakenCacheLayout,
    naive_interleaved_schedule,
    read_bandwidth_efficiency,
)
from repro.hardware.interconnect import MemoryFabric
from repro.hardware.memory import LPDDR_256GB
from repro.hardware.mmu import MemoryManagementUnit


@pytest.fixture()
def placed_layout():
    """Encode a KV history and place it through the MMU."""
    rng = np.random.default_rng(3)
    config = OakenConfig()
    samples = [rng.standard_normal((32, 128)) * 3.0]
    quantizer = OakenQuantizer(
        config, profile_thresholds(samples, config)
    )
    encoded = quantizer.quantize(rng.standard_normal((64, 128)) * 3.0)
    mmu = MemoryManagementUnit(
        capacity_bytes=16 * 1024 * 1024, page_bytes=4096
    )
    layout = OakenCacheLayout(mmu, num_heads=4)
    layout.place(sequence=0, layer=0, encoded=encoded)
    return layout, encoded


def fabric_efficiency(schedule, batch: int = 8) -> float:
    """Drain one core's schedule per batch member through the fabric.

    Each burst of a placed schedule lives whole on one controller (a
    page is not split mid-burst), so the reads go in unstriped; with
    one core per controller every channel stays busy and the drained
    utilization isolates pure per-burst transaction overhead.
    """
    fabric = MemoryFabric(LPDDR_256GB, num_controllers=8)
    for core in range(batch):
        for _, size in schedule:
            fabric.add_kv_read(
                core, float(size), striped=False, burst_bytes=size
            )
    return fabric.drain().bandwidth_utilization


class TestScheduleThroughFabric:
    def test_paged_schedule_beats_naive_on_the_fabric(
        self, placed_layout
    ):
        layout, encoded = placed_layout
        paged = layout.read_schedule(sequence=0, layer=0, head=0)
        per_token = max(
            1, int(encoded.nbytes() // (encoded.num_tokens * 4))
        )
        naive = naive_interleaved_schedule(
            encoded.num_tokens, per_token, num_heads=4
        )
        assert fabric_efficiency(paged) > 1.5 * fabric_efficiency(naive)

    def test_models_agree_on_paged_efficiency(self, placed_layout):
        """The layout's analytic efficiency and the fabric's drained
        utilization agree for the same burst schedule."""
        layout, _ = placed_layout
        schedule = layout.read_schedule(sequence=0, layer=0, head=0)
        analytic = read_bandwidth_efficiency(schedule, LPDDR_256GB)
        drained = fabric_efficiency(schedule)
        assert drained == pytest.approx(analytic, rel=0.05)

    def test_models_agree_on_naive_efficiency(self, placed_layout):
        _, encoded = placed_layout
        naive = naive_interleaved_schedule(
            encoded.num_tokens, 64, num_heads=4
        )
        analytic = read_bandwidth_efficiency(naive, LPDDR_256GB)
        drained = fabric_efficiency(naive)
        assert drained == pytest.approx(analytic, rel=0.05)

    def test_paged_schedule_is_near_peak(self, placed_layout):
        layout, _ = placed_layout
        schedule = layout.read_schedule(sequence=0, layer=0, head=0)
        assert fabric_efficiency(schedule) > 0.85
