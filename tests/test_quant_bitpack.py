"""Unit tests for sub-byte bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.bitpack import pack_bits, packed_nbytes, unpack_bits


class TestPackedNbytes:
    def test_exact_byte_multiples(self):
        assert packed_nbytes(2, 4) == 1
        assert packed_nbytes(8, 4) == 4
        assert packed_nbytes(8, 8) == 8

    def test_rounds_up(self):
        assert packed_nbytes(3, 4) == 2
        assert packed_nbytes(1, 5) == 1
        assert packed_nbytes(2, 5) == 2

    def test_zero_count(self):
        assert packed_nbytes(0, 4) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            packed_nbytes(4, 0)
        with pytest.raises(ValueError):
            packed_nbytes(4, 17)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            packed_nbytes(-1, 4)


class TestPackUnpack:
    def test_roundtrip_4bit(self):
        codes = np.arange(16, dtype=np.uint16)
        packed = pack_bits(codes, 4)
        assert packed.size == 8
        np.testing.assert_array_equal(unpack_bits(packed, 4, 16), codes)

    def test_roundtrip_5bit(self):
        codes = np.arange(32, dtype=np.uint16)
        packed = pack_bits(codes, 5)
        assert packed.size == packed_nbytes(32, 5)
        np.testing.assert_array_equal(unpack_bits(packed, 5, 32), codes)

    def test_empty(self):
        packed = pack_bits(np.array([], dtype=np.uint16), 4)
        assert packed.size == 0
        assert unpack_bits(packed, 4, 0).size == 0

    def test_overflow_code_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([16]), 4)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(1, dtype=np.uint8), 4, 10)

    def test_known_layout_lsb_first(self):
        # codes [0x1, 0x2] at width 4 -> byte 0x21 (little-endian
        # nibbles within the byte).
        packed = pack_bits(np.array([0x1, 0x2]), 4)
        assert packed[0] == 0x21

    @given(
        width=st.integers(1, 12),
        n=st.integers(0, 200),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, width, n, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2**width, size=n).astype(np.uint16)
        packed = pack_bits(codes, width)
        assert packed.size == packed_nbytes(n, width)
        np.testing.assert_array_equal(
            unpack_bits(packed, width, n), codes
        )
