"""Registry conformance for the unified cache-engine API.

Every method the registry knows must build a :class:`CacheBackend`
whose streaming append+read path is bit-identical to the method's
one-shot batch transform — that equivalence is what lets the serving
pool and the generation loop treat all Table 2 methods uniformly.
"""

import numpy as np
import pytest

from repro.baselines.registry import BASELINE_NAMES
from repro.engine import (
    BaselineCacheBackend,
    CacheBackend,
    FusedCacheBackend,
    available_methods,
    backend_for_model,
    create_backend,
    create_quantizer,
)

from conftest import make_kv_matrix

LAYERS = 2


@pytest.fixture(scope="module")
def calibration():
    """Per-layer (keys, values) calibration samples."""
    return [
        (make_kv_matrix(seed=10 + layer), make_kv_matrix(seed=20 + layer))
        for layer in range(LAYERS)
    ]


def stream_matrix(seed):
    """The [T, D] matrix each conformance check streams and compares."""
    return make_kv_matrix(tokens=24, seed=seed)


class TestRegistryConformance:
    @pytest.mark.parametrize("method", BASELINE_NAMES)
    def test_backend_builds_for_every_method(self, method, calibration):
        backend = create_backend(method, calibration=calibration)
        assert isinstance(backend, CacheBackend)
        assert backend.num_layers == LAYERS
        assert backend.length == 0
        assert backend.method == method

    @pytest.mark.parametrize("method", BASELINE_NAMES)
    @pytest.mark.parametrize("tensor_kind", ["key", "value"])
    def test_quantizer_builds_for_both_kinds(self, method, tensor_kind):
        quantizer = create_quantizer(method, tensor_kind)
        assert quantizer.tensor_kind == tensor_kind
        assert quantizer.name == method

    @pytest.mark.parametrize("method", BASELINE_NAMES)
    @pytest.mark.parametrize("tensor_kind", ["key", "value"])
    def test_streaming_matches_oneshot_roundtrip(
        self, method, tensor_kind, calibration
    ):
        """Chunked append+read == the method's batch ``roundtrip``."""
        backend = create_backend(method, "adapter",
                                 calibration=calibration)
        keys = stream_matrix(seed=31)
        values = stream_matrix(seed=32)
        start = 0
        for rows in (5, 1, 1, 9, 1, 7):  # interleaved chunk sizes
            stop = start + rows
            backend.append(0, keys[start:stop], values[start:stop])
            start = stop
        assert start == keys.shape[0]
        streamed_k, streamed_v = backend.read(0)

        calib_keys, calib_values = calibration[0]
        # The reference transform must run under the backend's
        # ComputeMode (the engine layer defaults to deploy_f32).
        reference_key = create_quantizer(
            method, "key", mode=backend.mode
        ).fit([calib_keys])
        reference_value = create_quantizer(
            method, "value", mode=backend.mode
        ).fit([calib_values])
        streamed = streamed_k if tensor_kind == "key" else streamed_v
        reference = (
            reference_key if tensor_kind == "key" else reference_value
        )
        matrix = keys if tensor_kind == "key" else values
        np.testing.assert_array_equal(
            streamed, reference.roundtrip(matrix).astype(np.float32)
        )

    @pytest.mark.parametrize("method", BASELINE_NAMES)
    def test_storage_accounting_positive(self, method, calibration):
        backend = create_backend(method, calibration=calibration)
        backend.append(0, stream_matrix(41), stream_matrix(42))
        backend.append(1, stream_matrix(43), stream_matrix(44))
        assert backend.nbytes() > 0
        assert 0.0 < backend.effective_bitwidth() <= 16.0
        summary = backend.summary()
        assert summary["tokens"] == backend.length
        assert summary["bytes"] == backend.nbytes()


class TestFusedBackend:
    def test_auto_kind_selects_fused_for_oaken(self, calibration):
        backend = create_backend("oaken", calibration=calibration)
        assert isinstance(backend, FusedCacheBackend)
        adapter = create_backend("oaken", "adapter",
                                 calibration=calibration)
        assert isinstance(adapter, BaselineCacheBackend)

    def test_fused_streaming_matches_adapter_oneshot(self, calibration):
        """Oaken quantizes per token, so the fused streaming cache and
        the batch adapter agree bit-for-bit on the same stream."""
        fused = create_backend("oaken", "fused", calibration=calibration)
        keys = stream_matrix(seed=51)
        values = stream_matrix(seed=52)
        for start in range(0, keys.shape[0], 3):
            fused.append(
                0, keys[start : start + 3], values[start : start + 3]
            )
        fk, fv = fused.read(0)
        calib_keys, calib_values = calibration[0]
        ref_k = create_quantizer(
            "oaken", "key", mode=fused.mode
        ).fit([calib_keys])
        ref_v = create_quantizer(
            "oaken", "value", mode=fused.mode
        ).fit([calib_values])
        np.testing.assert_array_equal(fk, ref_k.roundtrip(keys))
        np.testing.assert_array_equal(fv, ref_v.roundtrip(values))

    def test_fused_requires_oaken(self, calibration):
        with pytest.raises(ValueError):
            create_backend("kivi", "fused", calibration=calibration)

    def test_fused_requires_calibration(self):
        with pytest.raises(ValueError):
            create_backend("oaken", "fused")


class TestFactoryValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            create_backend("nonsense", num_layers=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            create_backend("fp16", "magic", num_layers=1)

    def test_layer_count_mismatch_rejected(self, calibration):
        with pytest.raises(ValueError):
            create_backend("fp16", num_layers=5, calibration=calibration)

    def test_missing_layer_count_rejected(self):
        with pytest.raises(ValueError):
            create_backend("fp16")

    def test_calibration_free_methods_need_no_samples(self):
        backend = create_backend("kivi", num_layers=1)
        backend.append(0, stream_matrix(61), stream_matrix(62))
        assert backend.length == 24

    def test_calibrated_methods_demand_samples(self):
        with pytest.raises(ValueError):
            create_backend("oaken", "adapter", num_layers=1)

    def test_config_override_only_for_oaken(self):
        from repro.core.config import OakenConfig

        with pytest.raises(ValueError):
            create_quantizer("kivi", config=OakenConfig())

    def test_registry_passthrough(self):
        assert set(BASELINE_NAMES) <= set(available_methods())


class TestModelIntegration:
    def test_generation_through_adapter_backend(self, small_model):
        """A baseline method is generatable through the same loop."""
        from repro.data.corpus import calibration_corpus
        from repro.models.quantized_generation import (
            generate_with_quantized_cache,
        )

        calibration_tokens = calibration_corpus(
            small_model, batch=2, length=32
        )
        backend = backend_for_model(
            small_model, method="kivi",
            calibration_tokens=calibration_tokens,
        )
        result = generate_with_quantized_cache(
            small_model, backend, length=10, seed=0
        )
        assert result.tokens.shape == (1, 10)
        assert result.cache.length == 9
        assert result.cache.nbytes() > 0


class TestZeroRowAppend:
    def test_empty_append_establishes_empty_history(self):
        """A zero-row append reads back as an empty [0, D] history
        (the seed chunk-list behaviour), not an error."""
        backend = create_backend("fp16", num_layers=1)
        backend.append(0, np.empty((0, 16)), np.empty((0, 16)))
        assert backend.length == 0
        keys, values = backend.read(0)
        assert keys.shape == (0, 16)
        assert values.shape == (0, 16)
