"""Unit and property tests for the Oaken quantizer round-trip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TABLE3_CONFIGURATIONS, OakenConfig
from repro.core.quantizer import OakenQuantizer, expected_effective_bitwidth

from conftest import make_kv_matrix


@pytest.fixture(scope="module")
def quantizer(kv_samples):
    return OakenQuantizer.from_samples(kv_samples, OakenConfig())


class TestQuantizeBasics:
    def test_shape_preserved(self, quantizer, kv_matrix):
        restored = quantizer.roundtrip(kv_matrix)
        assert restored.shape == kv_matrix.shape
        assert restored.dtype == np.float32

    def test_single_row_promoted(self, quantizer):
        row = make_kv_matrix(tokens=1)[0]
        restored = quantizer.roundtrip(row)
        assert restored.shape == (1, row.shape[0])

    def test_three_dim_input_rejected(self, quantizer):
        with pytest.raises(ValueError):
            quantizer.quantize(np.zeros((2, 3, 4)))

    def test_outlier_fraction_near_config(self, quantizer, kv_matrix):
        encoded = quantizer.quantize(kv_matrix)
        fraction = encoded.num_outliers / kv_matrix.size
        assert fraction == pytest.approx(0.10, abs=0.04)

    def test_mismatched_thresholds_rejected(self, quantizer):
        config = OakenConfig.from_ratio_string("2/2/90/6")
        with pytest.raises(ValueError):
            OakenQuantizer(config, quantizer.thresholds)

    def test_deterministic(self, quantizer, kv_matrix):
        a = quantizer.roundtrip(kv_matrix)
        b = quantizer.roundtrip(kv_matrix)
        np.testing.assert_array_equal(a, b)


class TestReconstructionQuality:
    def test_relative_error_small(self, quantizer, kv_matrix):
        restored = quantizer.roundtrip(kv_matrix)
        rel_rmse = np.sqrt(np.mean((restored - kv_matrix) ** 2))
        rel_rmse /= kv_matrix.std()
        assert rel_rmse < 0.08

    def test_better_than_naive_per_token_4bit(self, quantizer, kv_matrix):
        lo = kv_matrix.min(axis=1, keepdims=True)
        hi = kv_matrix.max(axis=1, keepdims=True)
        sigma = 15.0 / np.maximum(hi - lo, 1e-9)
        naive = np.round((kv_matrix - lo) * sigma) / sigma + lo
        naive_mse = np.mean((naive - kv_matrix) ** 2)
        oaken_mse = np.mean(
            (quantizer.roundtrip(kv_matrix) - kv_matrix) ** 2
        )
        assert oaken_mse < naive_mse / 4

    def test_outliers_preserved_with_bounded_error(
        self, quantizer, kv_matrix
    ):
        encoded = quantizer.quantize(kv_matrix)
        restored = quantizer.dequantize(encoded)
        token = encoded.sparse_token
        pos = encoded.sparse_pos
        originals = kv_matrix[token, pos]
        errors = np.abs(restored[token, pos] - originals)
        # Outliers are large; relative error should stay small.
        assert np.median(errors / np.abs(originals)) < 0.1

    def test_constant_matrix_roundtrip(self, quantizer):
        x = np.full((8, 64), 1.5)
        restored = quantizer.roundtrip(x)
        assert np.max(np.abs(restored - x)) < 0.6

    def test_zero_matrix_exact(self, quantizer):
        x = np.zeros((4, 64))
        restored = quantizer.roundtrip(x)
        assert np.max(np.abs(restored)) < 1e-3


class TestFeatureToggles:
    def test_naive_encoding_stores_exact_outliers(self, kv_samples,
                                                  kv_matrix):
        config = OakenConfig(fused_encoding=False)
        quantizer = OakenQuantizer.from_samples(kv_samples, config)
        encoded = quantizer.quantize(kv_matrix)
        assert encoded.sparse_fp16 is not None
        restored = quantizer.dequantize(encoded)
        token, pos = encoded.sparse_token, encoded.sparse_pos
        np.testing.assert_allclose(
            restored[token, pos],
            kv_matrix[token, pos].astype(np.float16).astype(np.float32),
            rtol=1e-6,
        )

    def test_naive_encoding_costs_more_bits(self, kv_samples, kv_matrix):
        fused = OakenQuantizer.from_samples(kv_samples, OakenConfig())
        naive = OakenQuantizer.from_samples(
            kv_samples, OakenConfig(fused_encoding=False)
        )
        assert (
            naive.quantize(kv_matrix).effective_bitwidth()
            > fused.quantize(kv_matrix).effective_bitwidth() + 1.0
        )

    def test_group_shift_toggle_runs(self, kv_samples, kv_matrix):
        config = OakenConfig(group_shift=False)
        quantizer = OakenQuantizer.from_samples(kv_samples, config)
        restored = quantizer.roundtrip(kv_matrix)
        rel = np.sqrt(np.mean((restored - kv_matrix) ** 2))
        assert rel / kv_matrix.std() < 0.12

    def test_four_bit_outliers(self, kv_samples, kv_matrix):
        config = OakenConfig(outlier_bits=4)
        quantizer = OakenQuantizer.from_samples(kv_samples, config)
        restored = quantizer.roundtrip(kv_matrix)
        rel = np.sqrt(np.mean((restored - kv_matrix) ** 2))
        assert rel / kv_matrix.std() < 0.12

    @pytest.mark.parametrize("spec,bits", TABLE3_CONFIGURATIONS)
    def test_all_table3_configs_roundtrip(self, spec, bits, kv_matrix):
        config = OakenConfig.from_ratio_string(spec, outlier_bits=bits)
        quantizer = OakenQuantizer.from_samples([kv_matrix], config)
        restored = quantizer.roundtrip(kv_matrix)
        rel = np.sqrt(np.mean((restored - kv_matrix) ** 2))
        assert rel / kv_matrix.std() < 0.30


class TestEffectiveBitwidth:
    def test_paper_dim_value(self):
        # The paper's 4/90/6 configuration at Llama2-7B's kv_dim=4096:
        # 4 + 0.10 * 8 + 96/4096 = 4.823.
        bits = expected_effective_bitwidth(OakenConfig(), 4096)
        assert bits == pytest.approx(4.82, abs=0.01)

    def test_gqa_dim_value(self):
        # Llama2-70B (kv_dim=1024): the paper reports 4.89.
        bits = expected_effective_bitwidth(OakenConfig(), 1024)
        assert bits == pytest.approx(4.89, abs=0.01)

    def test_measured_close_to_expected(self, quantizer, kv_matrix):
        encoded = quantizer.quantize(kv_matrix)
        expected = quantizer.expected_effective_bitwidth(
            kv_matrix.shape[1]
        )
        assert encoded.effective_bitwidth() == pytest.approx(
            expected, rel=0.05
        )


class TestPropertyBased:
    @given(seed=st.integers(0, 1000), scale=st.floats(0.1, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_bounded_relative_error(self, seed, scale):
        x = make_kv_matrix(tokens=48, dim=64, seed=seed) * scale
        quantizer = OakenQuantizer.from_samples([x], OakenConfig())
        restored = quantizer.roundtrip(x)
        rel = np.sqrt(np.mean((restored - x) ** 2)) / max(x.std(), 1e-9)
        assert rel < 0.15

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_sparse_stream_is_sorted(self, seed):
        x = make_kv_matrix(tokens=32, dim=64, seed=seed)
        quantizer = OakenQuantizer.from_samples([x], OakenConfig())
        encoded = quantizer.quantize(x)
        order = np.lexsort((encoded.sparse_pos, encoded.sparse_token))
        np.testing.assert_array_equal(order, np.arange(order.size))

    @given(
        tokens=st.integers(1, 40),
        dim=st.integers(8, 96),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_shapes(self, tokens, dim, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((tokens, dim)) * 3
        quantizer = OakenQuantizer.from_samples([x], OakenConfig())
        restored = quantizer.roundtrip(x)
        assert restored.shape == (tokens, dim)
        assert np.isfinite(restored).all()
