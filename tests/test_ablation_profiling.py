"""Tests for the profiling-budget ablation experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.experiments.ablation_profiling import (
    ProfilingPoint,
    format_profiling_ablation,
    run_profiling_ablation,
    synthesize_kv_run,
)


@pytest.fixture(scope="module")
def points():
    return run_profiling_ablation(
        budgets=(1, 5, 25, 100), trials=3, seed=7
    )


class TestSynthesizer:
    def test_shape_and_outlier_channels(self):
        rng = np.random.default_rng(0)
        x = synthesize_kv_run(rng, tokens=32, dim=64,
                              outlier_channels=(3, 9))
        assert x.shape == (32, 64)
        bulk = np.delete(x, [3, 9], axis=1)
        assert np.abs(x[:, 3]).mean() > 5 * np.abs(bulk).mean()

    def test_runs_differ(self):
        rng = np.random.default_rng(0)
        a = synthesize_kv_run(rng)
        b = synthesize_kv_run(rng)
        assert not np.allclose(a, b)


class TestProfilingSweep:
    def test_one_point_per_budget(self, points):
        assert [p.num_runs for p in points] == [1, 5, 25, 100]

    def test_deviation_shrinks_with_budget(self, points):
        """Averaging more runs converges toward the reference."""
        by_budget = {p.num_runs: p for p in points}
        assert by_budget[100].threshold_deviation < (
            by_budget[1].threshold_deviation
        )
        assert by_budget[100].deviation_std < by_budget[1].deviation_std

    def test_sqnr_plateaus_by_paper_budget(self, points):
        """The ~100-run choice: quality saturates, more runs buy ~0."""
        by_budget = {p.num_runs: p for p in points}
        assert by_budget[100].sqnr_db >= by_budget[1].sqnr_db - 0.25
        assert by_budget[100].sqnr_db == pytest.approx(
            by_budget[25].sqnr_db, abs=0.5
        )

    def test_sqnr_is_usable_at_every_budget(self, points):
        """Even 1-run thresholds quantize sanely (the distribution is
        input-insensitive, Observation 2) — the budget buys stability,
        not correctness."""
        assert all(p.sqnr_db > 15.0 for p in points)

    def test_cost_scales_linearly(self, points):
        per_run = points[0].profiled_values
        assert all(
            p.profiled_values == p.num_runs * per_run for p in points
        )

    def test_custom_config_flows_through(self):
        cfg = OakenConfig.from_ratio_string("2/2/90/6")
        sweep = run_profiling_ablation(
            budgets=(2,), trials=2, config=cfg, seed=3
        )
        assert len(sweep) == 1
        assert sweep[0].num_runs == 2

    def test_deterministic_for_fixed_seed(self):
        a = run_profiling_ablation(budgets=(5,), trials=2, seed=11)
        b = run_profiling_ablation(budgets=(5,), trials=2, seed=11)
        assert a[0].threshold_deviation == b[0].threshold_deviation
        assert a[0].sqnr_db == b[0].sqnr_db


class TestFormatting:
    def test_table_mentions_every_budget(self, points):
        text = format_profiling_ablation(points)
        for point in points:
            assert str(point.num_runs) in text
        assert "SQNR" in text
