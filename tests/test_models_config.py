"""Unit tests for the model zoo and architecture math."""

import pytest

from repro.models.config import (
    MODEL_ZOO,
    ArchShape,
    get_model,
    list_models,
)


class TestZoo:
    def test_eight_paper_models(self):
        assert len(MODEL_ZOO) == 8
        for name in (
            "llama2-7b", "llama2-13b", "llama2-70b", "opt-6.7b",
            "opt-13b", "opt-30b", "mistral-7b", "mixtral-8x7b",
        ):
            assert name in MODEL_ZOO

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            get_model("gpt-5")

    def test_list_models_order(self):
        assert list_models()[0] == "llama2-7b"

    def test_family_properties(self):
        assert get_model("llama2-7b").uses_rope
        assert not get_model("opt-13b").uses_rope
        assert get_model("opt-13b").norm == "layernorm"
        assert get_model("mistral-7b").norm == "rmsnorm"

    def test_gqa_models(self):
        assert get_model("llama2-70b").arch.n_kv_heads == 8
        assert get_model("mistral-7b").arch.n_kv_heads == 8
        assert get_model("llama2-7b").arch.n_kv_heads == 32

    def test_sliding_window_models(self):
        assert get_model("mistral-7b").arch.sliding_window == 4096
        assert get_model("llama2-7b").arch.sliding_window is None

    def test_moe_model(self):
        arch = get_model("mixtral-8x7b").arch
        assert arch.n_experts == 8
        assert arch.experts_per_token == 2

    def test_sim_shapes_runnable(self):
        for spec in MODEL_ZOO.values():
            sim = spec.sim
            assert sim.n_heads * sim.head_dim > 0
            assert sim.n_heads % sim.n_kv_heads == 0


class TestArchMath:
    def test_llama2_7b_param_count(self):
        params = get_model("llama2-7b").arch.params
        assert 6.0e9 < params < 7.5e9

    def test_llama2_70b_param_count(self):
        params = get_model("llama2-70b").arch.params
        assert 60e9 < params < 75e9

    def test_mixtral_total_vs_active(self):
        arch = get_model("mixtral-8x7b").arch
        assert 40e9 < arch.params < 50e9
        assert 10e9 < arch.active_params < 16e9
        assert arch.active_params < arch.params

    def test_kv_bytes_per_token_7b(self):
        arch = get_model("llama2-7b").arch
        # 2 x 32 layers x 4096 x 2 bytes = 512 KiB.
        assert arch.kv_bytes_per_token(16.0) == pytest.approx(
            2 * 32 * 4096 * 2
        )

    def test_kv_bytes_scale_with_bits(self):
        arch = get_model("llama2-7b").arch
        assert arch.kv_bytes_per_token(4.0) == pytest.approx(
            arch.kv_bytes_per_token(16.0) / 4.0
        )

    def test_gqa_shrinks_kv(self):
        dense = get_model("llama2-7b").arch
        gqa = get_model("mistral-7b").arch
        assert gqa.kv_bytes_per_token() < dense.kv_bytes_per_token() / 3

    def test_weight_bytes(self):
        arch = get_model("llama2-7b").arch
        assert arch.weight_bytes(16.0) == pytest.approx(arch.params * 2)
        assert arch.weight_bytes(4.0) == pytest.approx(arch.params / 2)

    def test_attended_length_with_window(self):
        arch = get_model("mistral-7b").arch
        assert arch.attended_length(1000) == 1000
        assert arch.attended_length(10000) == 4096

    def test_attention_flops_grow_with_context(self):
        arch = get_model("llama2-7b").arch
        assert arch.flops_per_token_attn(2048) > (
            arch.flops_per_token_attn(1024)
        )

    def test_window_caps_attention_flops(self):
        arch = get_model("mistral-7b").arch
        assert arch.flops_per_token_attn(8192) == (
            arch.flops_per_token_attn(4096)
        )
