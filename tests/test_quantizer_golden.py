"""Golden-equivalence tests: fused kernel vs. the frozen seed encoder.

The fused single-pass kernel in :mod:`repro.core.quantizer` must emit
exactly the arrays the seed implementation
(:mod:`repro.core.reference`) emitted, field for field, in its default
float64 compute mode — across every feature toggle and band
configuration.  The float32 deployment mode is held to its documented
tolerance instead: codes may move by at most one level and only for a
vanishing fraction of elements.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TABLE3_CONFIGURATIONS, OakenConfig
from repro.core.grouping import MIDDLE_GROUP, assign_groups
from repro.core.quantizer import (
    OakenQuantizer,
    QuantizeScratch,
    _outlier_coo,
)
from repro.core.reference import ReferenceOakenQuantizer
from repro.core.thresholds import profile_thresholds

from conftest import make_kv_matrix

_COO_FIELDS = (
    "dense_codes",
    "middle_lo",
    "middle_hi",
    "band_lo",
    "band_hi",
    "sparse_token",
    "sparse_pos",
    "sparse_band",
    "sparse_side",
    "sparse_mag_code",
)


def _pair(config, samples):
    thresholds = profile_thresholds(samples, config)
    return (
        ReferenceOakenQuantizer(config, thresholds),
        OakenQuantizer(config, thresholds),
    )


def assert_encoded_identical(expected, actual):
    for name in _COO_FIELDS:
        np.testing.assert_array_equal(
            getattr(expected, name), getattr(actual, name), err_msg=name
        )
        assert getattr(expected, name).dtype == getattr(actual, name).dtype
    if expected.sparse_fp16 is None:
        assert actual.sparse_fp16 is None
    else:
        np.testing.assert_array_equal(
            expected.sparse_fp16, actual.sparse_fp16
        )
    assert expected.shape == actual.shape


CONFIG_GRID = [
    OakenConfig(),
    OakenConfig(group_shift=False),
    OakenConfig(fused_encoding=False),
    OakenConfig(group_shift=False, fused_encoding=False),
    OakenConfig(outlier_bits=4),
] + [
    OakenConfig.from_ratio_string(spec, outlier_bits=bits)
    for spec, bits in TABLE3_CONFIGURATIONS
]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("config", CONFIG_GRID)
    def test_encode_bit_identical(self, config, kv_matrix):
        reference, fused = _pair(config, [kv_matrix])
        assert_encoded_identical(
            reference.quantize(kv_matrix), fused.quantize(kv_matrix)
        )

    @pytest.mark.parametrize("config", CONFIG_GRID)
    def test_decode_bit_identical(self, config, kv_matrix):
        reference, fused = _pair(config, [kv_matrix])
        encoded = reference.quantize(kv_matrix)
        np.testing.assert_array_equal(
            reference.dequantize(encoded), fused.dequantize(encoded)
        )

    @given(seed=st.integers(0, 2000), scale=st.floats(0.05, 40.0))
    @settings(max_examples=25, deadline=None)
    def test_randomized_roundtrip_identical(self, seed, scale):
        x = make_kv_matrix(tokens=40, dim=48, seed=seed) * scale
        reference, fused = _pair(OakenConfig(), [x])
        assert_encoded_identical(reference.quantize(x), fused.quantize(x))
        np.testing.assert_array_equal(
            reference.roundtrip(x), fused.roundtrip(x)
        )

    def test_zero_outlier_rows(self, kv_samples):
        """Rows whose every element is a middle inlier."""
        reference, fused = _pair(OakenConfig(), kv_samples)
        thr = reference.thresholds
        # Values strictly between the inner magnitude edge and the
        # outer thresholds fall in the dense middle group.
        level = (thr.inner_mag[0] + thr.outer_hi[0]) / 2.0
        x = np.full((6, 32), level)
        x[::2] *= -1.0
        encoded_ref = reference.quantize(x)
        assert encoded_ref.num_outliers == 0
        assert_encoded_identical(encoded_ref, fused.quantize(x))
        np.testing.assert_array_equal(
            reference.roundtrip(x), fused.roundtrip(x)
        )

    def test_all_outlier_rows(self, kv_samples):
        """Rows fully routed to the sparse path (empty middle group)."""
        reference, fused = _pair(OakenConfig(), kv_samples)
        thr = reference.thresholds
        x = np.full((4, 32), thr.outer_hi[0] * 3.0)
        x[1] = thr.outer_lo[0] * 3.0
        x[2] = 0.0  # innermost shell touches zero
        encoded_ref = reference.quantize(x)
        assert encoded_ref.num_outliers == x.size
        assert_encoded_identical(encoded_ref, fused.quantize(x))
        np.testing.assert_array_equal(
            reference.roundtrip(x), fused.roundtrip(x)
        )

    def test_single_token(self, kv_samples):
        reference, fused = _pair(OakenConfig(), kv_samples)
        x = make_kv_matrix(tokens=1, seed=7)
        assert_encoded_identical(reference.quantize(x), fused.quantize(x))

    def test_quantize_into_matches_quantize(self, kv_samples):
        """The streaming entry point is the same encode, scratch reused."""
        _, fused = _pair(OakenConfig(), kv_samples)
        scratch = QuantizeScratch()
        for step in range(5):
            rows = make_kv_matrix(tokens=1 + step % 3, seed=step)
            assert_encoded_identical(
                fused.quantize(rows), fused.quantize_into(rows, scratch)
            )


class TestLabelEquivalence:
    """The gathered COO extraction replicates assign_groups exactly."""

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_coo_matches_label_matrix(self, seed):
        x = make_kv_matrix(tokens=24, dim=48, seed=seed)
        config = OakenConfig.from_ratio_string("2/2/90/3/3")
        thr = profile_thresholds([x], config)
        labels = assign_groups(x, thr).labels
        token, pos, band = _outlier_coo(x, thr)
        expected_token, expected_pos = np.nonzero(labels != MIDDLE_GROUP)
        np.testing.assert_array_equal(token, expected_token)
        np.testing.assert_array_equal(pos, expected_pos)
        np.testing.assert_array_equal(
            band, labels[expected_token, expected_pos]
        )

    def test_values_on_thresholds(self, kv_samples):
        """Exact threshold values route identically (boundary claims)."""
        config = OakenConfig()
        thr = profile_thresholds(kv_samples, config)
        edges = [
            thr.outer_lo[0], thr.outer_hi[0],
            thr.inner_mag[0], -thr.inner_mag[0], 0.0,
        ]
        x = np.array([edges * 4])  # one token, every edge repeated
        labels = assign_groups(x, thr).labels
        token, pos, band = _outlier_coo(x, thr)
        expected_token, expected_pos = np.nonzero(labels != MIDDLE_GROUP)
        np.testing.assert_array_equal(token, expected_token)
        np.testing.assert_array_equal(pos, expected_pos)
        np.testing.assert_array_equal(
            band, labels[expected_token, expected_pos]
        )


class TestFloat32Mode:
    def test_decode_within_tolerance(self, kv_samples, kv_matrix):
        """float32 mode: reconstruction within one quantization step."""
        config = OakenConfig()
        thresholds = profile_thresholds(kv_samples, config)
        exact = OakenQuantizer(config, thresholds)
        fast = OakenQuantizer(config, thresholds, mode="deploy_f32")
        a = exact.roundtrip(kv_matrix)
        b = fast.roundtrip(kv_matrix)
        # Scales are FP16-rounded in both modes; a one-level code move
        # is bounded by one middle-group step plus fp16 slack.
        encoded = exact.quantize(kv_matrix)
        span = (
            encoded.middle_hi.astype(np.float64)
            - encoded.middle_lo.astype(np.float64)
        )
        step = float(span.max()) / (2**config.inlier_bits - 1)
        assert float(np.abs(a - b).max()) <= step * 1.5 + 1e-3

    def test_codes_rarely_differ(self, kv_samples, kv_matrix):
        config = OakenConfig()
        thresholds = profile_thresholds(kv_samples, config)
        exact = OakenQuantizer(config, thresholds)
        # The legacy dtype-like spelling resolves to the same policy.
        fast = OakenQuantizer(config, thresholds, mode=np.float32)
        assert fast.mode.name == "deploy_f32"
        a = exact.quantize(kv_matrix)
        b = fast.quantize(kv_matrix)
        if a.num_outliers == b.num_outliers and np.array_equal(
            a.sparse_pos, b.sparse_pos
        ):
            mismatch = np.mean(a.dense_codes != b.dense_codes)
            assert mismatch < 1e-3

    def test_rejects_unsupported_dtype(self, kv_samples):
        config = OakenConfig()
        thresholds = profile_thresholds(kv_samples, config)
        with pytest.raises(ValueError):
            OakenQuantizer(config, thresholds, mode=np.int32)
        with pytest.raises(ValueError):
            OakenQuantizer(config, thresholds, mode="float16")
