"""Tests of the Section 5.3 overlap scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.overlap import (
    OverlapConfig,
    simulate_overlap,
)

MB = 1024.0 * 1024.0
KB = 1024.0

#: A Llama2-7B-ish request at 1K context: ~158 MB of quantized KV
#: history (1024 tokens x 512 KB FP16/token x 4.82/16), 512 KB of
#: fresh FP16 KV for the new token, tens of µs of attention compute.
KV_READ = 158 * MB
NEW_KV = 512 * KB
ATTN_S = 30e-6


class TestValidation:
    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="batch"):
            simulate_overlap(0, KV_READ, NEW_KV, ATTN_S)

    def test_rejects_negative_workload(self):
        with pytest.raises(ValueError, match="non-negative"):
            simulate_overlap(4, -1.0, NEW_KV, ATTN_S)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError, match="positive"):
            OverlapConfig(dequant_gbps=0.0)


class TestOverlapClaim:
    """Section 5.3: engine latency hides behind DMA + attention."""

    def test_dequant_streams_with_dma(self):
        """At batch 32 each core's DMA share (~31 GB/s) is far below
        the engine's 77 GB/s lane rate, so dequantization finishes
        with the last DMA byte — zero added latency."""
        report = simulate_overlap(32, KV_READ, NEW_KV, ATTN_S)
        for event in report.events_of("dequant"):
            dma = next(
                e for e in report.events_of("dma_read")
                if e.core == event.core
            )
            assert event.end_s == pytest.approx(dma.end_s)

    def test_exposure_is_sub_percent_at_batch(self):
        """Figure 12(b): (de)quantization is a few percent of the
        iteration at realistic batch sizes — here it is well below
        that envelope because only the quantization tail is exposed."""
        report = simulate_overlap(64, KV_READ, NEW_KV, ATTN_S)
        assert report.exposed_s / report.makespan_s < 0.05

    def test_hidden_fraction_near_one_at_batch(self):
        report = simulate_overlap(64, KV_READ, NEW_KV, ATTN_S)
        assert report.hidden_fraction > 0.95

    def test_small_batch_exposes_dequant(self):
        """The documented failure regime: at batch 1 the lone core's
        DMA share is the full 990 GB/s, which outruns the 77 GB/s
        engine — dequantization stalls attention."""
        report = simulate_overlap(1, KV_READ, NEW_KV, ATTN_S)
        assert report.exposed_s > 0.5 * report.ideal_makespan_s

    def test_slow_engine_gets_exposed(self):
        """A dequant engine slower than the per-core DMA share stalls
        attention — the failure mode Oaken's wide engine avoids."""
        slow = OverlapConfig(dequant_gbps=0.5)
        fast = OverlapConfig()
        report_slow = simulate_overlap(
            16, KV_READ, NEW_KV, ATTN_S, config=slow
        )
        report_fast = simulate_overlap(
            16, KV_READ, NEW_KV, ATTN_S, config=fast
        )
        assert report_slow.exposed_s > 5 * max(
            report_fast.exposed_s, 1e-9
        )
        assert report_slow.hidden_fraction < (
            report_fast.hidden_fraction
        )

    def test_slow_engines_stay_exposed_across_batch(self):
        """GPU-like software (de)quantization cannot ride the DMA
        window at any batch size."""
        slow = OverlapConfig(dequant_gbps=0.4, quant_gbps=0.05)
        for batch in (4, 32):
            report = simulate_overlap(
                batch, KV_READ, NEW_KV, ATTN_S, config=slow
            )
            assert report.hidden_fraction < 0.5


class TestScheduleShape:
    def test_dma_reads_share_one_window(self):
        """Fair-share arbitration: every core's read spans the same
        batch-wide DMA window."""
        report = simulate_overlap(8, KV_READ, NEW_KV, ATTN_S)
        reads = report.events_of("dma_read")
        window = 8 * KV_READ / (990.0 * 1e9)
        for event in reads:
            assert event.start_s == 0.0
            assert event.end_s == pytest.approx(window)

    def test_engine_work_fits_inside_dma_window(self):
        """The hiding mechanism: at batch 32 the summed dequant work
        (at engine rate) finishes inside the shared DMA window."""
        report = simulate_overlap(32, KV_READ, NEW_KV, ATTN_S)
        window = 32 * KV_READ / (990.0 * 1e9)
        for event in report.events_of("dequant"):
            assert event.end_s <= window * (1 + 1e-9)

    def test_makespan_bounded_by_dma_plus_tail(self):
        """The iteration cannot beat the aggregate DMA total, and ends
        at most one request's tail (attention + quant + write) later
        when engines keep pace."""
        batch = 32
        report = simulate_overlap(batch, KV_READ, NEW_KV, ATTN_S)
        dma_total = batch * KV_READ / (990.0 * 1e9)
        assert report.makespan_s >= dma_total
        tail = ATTN_S + NEW_KV / (64.0 * 1e9) + NEW_KV / (50.0 * 1e9)
        assert report.makespan_s == pytest.approx(
            dma_total + tail, rel=1e-6
        )

    def test_dequant_only_workload_fully_hidden_at_batch(self):
        """With no new-token KV and a batch-wide DMA window longer
        than the engine stream, nothing is exposed at all."""
        report = simulate_overlap(32, KV_READ, 0.0, ATTN_S)
        assert report.exposed_s == pytest.approx(0.0, abs=1e-12)
        assert report.hidden_fraction > 0.99

    def test_timeline_events_ordered_per_core(self):
        report = simulate_overlap(4, KV_READ, NEW_KV, ATTN_S)
        for core in range(4):
            events = sorted(
                (e for e in report.timeline if e.core == core),
                key=lambda e: (e.start_s, e.end_s),
            )
            for earlier, later in zip(events, events[1:]):
                assert later.start_s >= earlier.start_s - 1e-12


class TestOverlapProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        batch=st.integers(1, 64),
        kv_mb=st.floats(1.0, 512.0),
        attn_us=st.floats(0.0, 500.0),
    )
    def test_makespan_at_least_ideal(self, batch, kv_mb, attn_us):
        report = simulate_overlap(
            batch, kv_mb * MB, NEW_KV, attn_us * 1e-6
        )
        assert report.makespan_s >= report.ideal_makespan_s - 1e-12
        assert 0.0 <= report.hidden_fraction <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(batch=st.integers(1, 32))
    def test_makespan_monotone_in_batch(self, batch):
        """Never faster with more requests; strictly slower once the
        batch-wide DMA window (not the engine stream) paces the
        iteration (990/77 ~= 13 requests)."""
        smaller = simulate_overlap(batch, KV_READ, NEW_KV, ATTN_S)
        larger = simulate_overlap(batch + 1, KV_READ, NEW_KV, ATTN_S)
        assert larger.makespan_s >= smaller.makespan_s
        if batch >= 13:
            assert larger.makespan_s > smaller.makespan_s

    @settings(max_examples=20, deadline=None)
    @given(batch=st.integers(2, 64))
    def test_hiding_improves_with_batch(self, batch):
        """A longer shared DMA window hides more engine work."""
        small = simulate_overlap(batch, KV_READ, NEW_KV, ATTN_S)
        large = simulate_overlap(batch * 2, KV_READ, NEW_KV, ATTN_S)
        assert large.hidden_fraction >= small.hidden_fraction - 1e-9
