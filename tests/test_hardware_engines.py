"""Direct tests of the analytic engine throughput models."""

from __future__ import annotations

import pytest

from repro.hardware.engines import DequantEngine, QuantEngine


class TestQuantEngine:
    def test_zero_elements_is_free(self):
        assert QuantEngine().time_s(0) == 0.0

    def test_rate_is_lanes_per_cycle_per_core(self):
        engine = QuantEngine(lanes=32, freq_ghz=1.0, num_cores=256)
        assert engine.elements_per_second == pytest.approx(
            32 * 1e9 * 256
        )

    def test_time_includes_fill(self):
        engine = QuantEngine(
            lanes=32, freq_ghz=1.0, num_cores=1, pipeline_cycles=24
        )
        one_cycle = engine.time_s(32)
        assert one_cycle == pytest.approx((24 + 1) / 1e9)

    def test_input_stream_rate(self):
        engine = QuantEngine(lanes=32, freq_ghz=1.0, num_cores=1)
        # FP16 input: 32 elements/cycle x 2 B = 64 GB/s per core.
        assert engine.throughput_gbps(16.0) == pytest.approx(64.0)

    def test_clock_scales_rate(self):
        slow = QuantEngine(freq_ghz=0.5)
        fast = QuantEngine(freq_ghz=1.0)
        assert fast.time_s(10**6) < slow.time_s(10**6)


class TestDequantEngine:
    def test_wider_than_quant_engine(self):
        """The dequant engine must keep pace with attention reads, so
        its default datapath is wider (Figure 9b sizing)."""
        assert DequantEngine().lanes > QuantEngine().lanes

    def test_compressed_stream_rate(self):
        engine = DequantEngine(lanes=128, freq_ghz=1.0, num_cores=1)
        # 4.82 stored bits/element at 128 elements/cycle.
        assert engine.throughput_gbps(4.82) == pytest.approx(
            128 * 4.82 / 8, rel=1e-9
        )

    def test_outruns_per_core_memory_share(self):
        """At serving batch sizes the per-core DMA share (~bandwidth /
        batch) sits far below one engine's compressed rate — the
        sizing that makes Section 5.3's overlap work."""
        engine = DequantEngine(num_cores=1)
        per_core_share_gbps = 1100.0 / 16  # LPDDR at batch 16
        assert engine.throughput_gbps(4.82) > per_core_share_gbps

    def test_zero_elements_is_free(self):
        assert DequantEngine().time_s(0) == 0.0
