"""Unit tests for the uniform quantization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.uniform import (
    UniformCodec,
    dequantize_uniform,
    quantize_uniform,
    scaling_factor,
)


class TestScalingFactor:
    def test_eq2_formula(self):
        # sigma = (2^m - 1) / (max - min)
        assert scaling_factor(0.0, 1.0, 4) == pytest.approx(15.0)
        assert scaling_factor(-2.0, 2.0, 5) == pytest.approx(31.0 / 4.0)

    def test_degenerate_range_returns_one(self):
        assert scaling_factor(3.0, 3.0, 4) == 1.0

    def test_negative_span_treated_as_degenerate(self):
        assert scaling_factor(1.0, 0.0, 4) == 1.0

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            scaling_factor(0.0, 1.0, 0)

    def test_more_bits_larger_scale(self):
        assert scaling_factor(0.0, 1.0, 8) > scaling_factor(0.0, 1.0, 4)


class TestQuantizeDequantize:
    def test_codes_within_range(self):
        values = np.linspace(-1, 1, 100)
        codes = quantize_uniform(values, -1.0, 1.0, 4)
        assert codes.min() >= 0
        assert codes.max() <= 15

    def test_endpoints_map_to_extremes(self):
        codes = quantize_uniform(np.array([-1.0, 1.0]), -1.0, 1.0, 4)
        assert codes[0] == 0
        assert codes[1] == 15

    def test_out_of_range_values_clip(self):
        codes = quantize_uniform(np.array([-5.0, 5.0]), -1.0, 1.0, 4)
        assert codes[0] == 0
        assert codes[1] == 15

    def test_roundtrip_error_bounded_by_half_step(self):
        values = np.linspace(-3, 7, 257)
        restored = dequantize_uniform(
            quantize_uniform(values, -3.0, 7.0, 6), -3.0, 7.0, 6
        )
        step = 10.0 / 63.0
        assert np.max(np.abs(values - restored)) <= step / 2 + 1e-9

    def test_degenerate_range_roundtrip(self):
        values = np.full(10, 2.5)
        restored = dequantize_uniform(
            quantize_uniform(values, 2.5, 2.5, 4), 2.5, 2.5, 4
        )
        np.testing.assert_allclose(restored, values)

    def test_preserves_shape(self):
        values = np.zeros((3, 4, 5))
        assert quantize_uniform(values, -1, 1, 4).shape == (3, 4, 5)


class TestUniformCodec:
    def test_from_values_captures_minmax(self):
        codec = UniformCodec.from_values(np.array([-2.0, 0.5, 3.0]), 4)
        assert codec.lo == -2.0
        assert codec.hi == 3.0

    def test_from_empty_values_degenerate(self):
        codec = UniformCodec.from_values(np.array([]), 4)
        assert codec.lo == 0.0 and codec.hi == 0.0

    def test_num_levels(self):
        assert UniformCodec(0, 1, 4).num_levels == 16
        assert UniformCodec(0, 1, 5).num_levels == 32

    def test_roundtrip_within_bound(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-4, 4, size=500)
        codec = UniformCodec.from_values(values, 5)
        error = np.abs(codec.roundtrip(values) - values)
        assert error.max() <= codec.max_roundtrip_error() + 1e-9

    def test_degenerate_codec_zero_error_bound(self):
        assert UniformCodec(1.0, 1.0, 4).max_roundtrip_error() == 0.0

    @given(
        lo=st.floats(-100, 99),
        span=st.floats(0.01, 200),
        bits=st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_bound(self, lo, span, bits):
        rng = np.random.default_rng(42)
        values = rng.uniform(lo, lo + span, size=64)
        codec = UniformCodec(lo, lo + span, bits)
        error = np.abs(codec.roundtrip(values) - values)
        # Reconstructions are float32, so allow a couple of ULPs at the
        # range's magnitude on top of the half-step bound.
        ulp = 2 * float(np.spacing(np.float32(abs(lo) + span)))
        assert error.max() <= codec.max_roundtrip_error() + ulp

    @given(bits=st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_property_monotonic_codes(self, bits):
        values = np.linspace(-1, 1, 50)
        codec = UniformCodec(-1.0, 1.0, bits)
        codes = codec.encode(values).astype(int)
        assert (np.diff(codes) >= 0).all()
