"""Tests for the MMU cache layout and the engine pipeline models."""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.hardware.cache_layout import (
    OakenCacheLayout,
    naive_interleaved_schedule,
    read_bandwidth_efficiency,
)
from repro.hardware.memory import LPDDR_256GB, MemorySpec
from repro.hardware.mmu import MemoryManagementUnit
from repro.hardware.pipeline import (
    PipelineTiming,
    StageSpec,
    StreamingEnginePipeline,
    default_dequant_pipeline,
    default_quant_pipeline,
)

from conftest import make_kv_matrix


@pytest.fixture()
def layout():
    mmu = MemoryManagementUnit(capacity_bytes=1 << 22, page_bytes=4096)
    return OakenCacheLayout(mmu, num_heads=4)


@pytest.fixture(scope="module")
def encoded():
    x = make_kv_matrix(tokens=64, dim=64, seed=3)
    quantizer = OakenQuantizer.from_samples([x], OakenConfig())
    return quantizer.quantize(x)


class TestCacheLayout:
    def test_placement_accounting(self, layout, encoded):
        report = layout.place(0, 0, encoded)
        assert report.tokens == 64
        assert report.heads == 4
        # 16 elements per head at 4 bits = 8 bytes per dense entry.
        assert report.dense_bytes == 64 * 4 * 8
        assert report.sparse_bytes == encoded.num_outliers * 1
        assert report.pages_used == layout.mmu.pages_in_use

    def test_indivisible_heads_rejected(self, layout):
        x = make_kv_matrix(
            tokens=4, dim=30, seed=0, outlier_channels=(3, 17, 25)
        )
        quantizer = OakenQuantizer.from_samples([x], OakenConfig())
        with pytest.raises(ValueError):
            layout.place(0, 0, quantizer.quantize(x))

    def test_invalid_heads_rejected(self):
        mmu = MemoryManagementUnit(1 << 20)
        with pytest.raises(ValueError):
            OakenCacheLayout(mmu, num_heads=0)

    def test_read_schedule_is_bursty(self, layout, encoded):
        layout.place(0, 0, encoded)
        schedule = layout.read_schedule(0, 0, 0)
        # 64 dense entries of 8 bytes coalesce into about one burst per
        # 4 KiB page plus a handful of sparse bursts.
        assert 0 < len(schedule) <= 6
        total = sum(size for _, size in schedule)
        assert total >= 64 * 8

    def test_sequential_layout_beats_naive(self, layout, encoded):
        layout.place(0, 0, encoded)
        schedule = layout.read_schedule(0, 0, 0)
        efficiency = read_bandwidth_efficiency(schedule, LPDDR_256GB)
        naive = naive_interleaved_schedule(
            tokens=64, entry_bytes=8, num_heads=4
        )
        naive_efficiency = read_bandwidth_efficiency(
            naive, LPDDR_256GB
        )
        # The MMU's page-sequential layout approaches peak bandwidth;
        # interleaved per-token reads waste most of it (Section 5.2).
        assert efficiency > 0.4
        assert naive_efficiency < 0.2
        assert efficiency > 3 * naive_efficiency

    def test_efficiency_empty_schedule(self):
        assert read_bandwidth_efficiency([], LPDDR_256GB) == 0.0

    def test_heads_isolated(self, layout, encoded):
        layout.place(0, 0, encoded)
        spans = []
        for head in range(4):
            for addr, size in layout.read_schedule(0, 0, head):
                spans.append((addr, addr + size))
        spans.sort()
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0


class TestPipeline:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            StreamingEnginePipeline([])

    def test_zero_tokens(self):
        timing = default_quant_pipeline().process(0, 128)
        assert timing.total_cycles == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            default_quant_pipeline().process(-1, 4)

    def test_makespan_formula(self):
        pipeline = StreamingEnginePipeline(
            [
                StageSpec("a", 8, setup_cycles=0),
                StageSpec("b", 4, setup_cycles=0),
            ]
        )
        # Per token: a = 2 cycles, b = 4 cycles for 16 elements.
        timing = pipeline.process(tokens=3, elements_per_token=16)
        assert timing.total_cycles == (2 + 4) + 2 * 4

    def test_bottleneck_is_narrowest_stage(self):
        timing = default_quant_pipeline().process(16, 256)
        assert timing.bottleneck() != "scale_calculator"

    def test_occupancy_bounds(self):
        timing = default_quant_pipeline().process(64, 128)
        for stage in timing.stage_busy_cycles:
            assert 0.0 < timing.occupancy(stage) <= 1.0

    def test_dequant_pipeline_wider(self):
        quant = default_quant_pipeline().process(32, 512)
        dequant = default_dequant_pipeline().process(32, 512)
        assert dequant.total_cycles < quant.total_cycles

    def test_hidden_fraction(self):
        pipeline = default_quant_pipeline()
        # A generous overlap window hides everything.
        assert pipeline.hidden_fraction(8, 128, 10**9) == 1.0
        # A zero window hides nothing.
        assert pipeline.hidden_fraction(8, 128, 0) == 0.0

    def test_engine_latency_hidden_under_attention(self):
        """The paper's overlap claim at iteration scale.

        At batch 64 on Llama2-7B-like dimensions, one iteration
        quantizes 64 new KV vectors per layer while attention reads the
        whole history; the engine's cycles fit many times over.
        """
        pipeline = default_quant_pipeline()
        tokens = 64
        kv_dim = 8192  # keys + values of one layer
        timing = pipeline.process(tokens, kv_dim)
        # Attention window at 1 GHz for ~10 ms of reads.
        window_cycles = int(10e-3 * 1e9)
        assert timing.total_cycles < window_cycles / 100
