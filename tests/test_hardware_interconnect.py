"""Tests of the interconnect/memory-controller fabric (Section 5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.interconnect import (
    FabricReport,
    MemoryFabric,
    TrafficClass,
    Transaction,
    generation_fabric_report,
)
from repro.hardware.memory import HBM_80GB, LPDDR_256GB, MemorySpec

#: A memory spec with zero transaction overhead, isolating arbitration
#: effects from burst-efficiency effects in the tests below.
IDEAL = MemorySpec(
    name="ideal", capacity_gb=64.0, bandwidth_gbps=1000.0,
    burst_bytes=1024, transaction_overhead_bytes=0,
)

MB = 1024.0 * 1024.0


class TestTransaction:
    def test_rejects_empty_payload(self):
        with pytest.raises(ValueError, match="positive"):
            Transaction(core=0, kind=TrafficClass.KV_READ, nbytes=0.0)


class TestFabricBasics:
    def test_requires_a_controller(self):
        with pytest.raises(ValueError, match="controller"):
            MemoryFabric(IDEAL, num_controllers=0)

    def test_empty_drain_is_instant(self):
        report = MemoryFabric(IDEAL).drain()
        assert report.makespan_s == 0.0
        assert report.payload_bytes == 0.0

    def test_payload_bytes_conserved(self):
        fabric = MemoryFabric(IDEAL, num_controllers=4)
        fabric.add_weight_read(64 * MB)
        fabric.add_kv_read(0, 16 * MB)
        fabric.add_kv_write(0, 1 * MB)
        report = fabric.drain()
        assert report.payload_bytes == pytest.approx(81 * MB)
        assert report.per_class_bytes[
            TrafficClass.WEIGHT_BROADCAST
        ] == pytest.approx(64 * MB)
        assert report.per_class_bytes[TrafficClass.KV_READ] == (
            pytest.approx(16 * MB)
        )
        assert report.per_class_bytes[TrafficClass.KV_WRITE] == (
            pytest.approx(1 * MB)
        )

    def test_zero_byte_injections_ignored(self):
        fabric = MemoryFabric(IDEAL)
        fabric.add_weight_read(0.0)
        fabric.add_kv_read(0, 0.0)
        fabric.add_kv_write(0, 0.0)
        assert fabric.drain().payload_bytes == 0.0


class TestBroadcastWeights:
    def test_broadcast_time_independent_of_core_count(self):
        """The defining property of the read-broadcast fabric: one
        weight stream serves any number of cores at the same cost."""
        fabric = MemoryFabric(IDEAL, num_controllers=8)
        fabric.add_weight_read(512 * MB)
        alone = fabric.drain().makespan_s
        # Same weights, but now 64 cores also present (no KV traffic);
        # nothing about the broadcast cost changes.
        again = MemoryFabric(IDEAL, num_controllers=8)
        again.add_weight_read(512 * MB)
        assert again.drain().makespan_s == pytest.approx(alone)

    def test_broadcast_uses_aggregate_bandwidth(self):
        fabric = MemoryFabric(IDEAL, num_controllers=8)
        fabric.add_weight_read(1000 * MB)
        report = fabric.drain()
        ideal_s = 1000 * MB / IDEAL.bandwidth_bytes_per_s
        assert report.makespan_s == pytest.approx(ideal_s, rel=1e-6)
        assert report.bandwidth_utilization == pytest.approx(1.0, rel=1e-6)


class TestKVPlacement:
    def test_striped_single_core_gets_full_bandwidth(self):
        """MMU page striping: even one core's stream spans every
        controller, so batch=1 reads run at aggregate bandwidth."""
        report = generation_fabric_report(
            IDEAL, batch=1, kv_bytes_per_request=256 * MB,
            weight_bytes=0.0, striped=True,
        )
        assert report.bandwidth_utilization == pytest.approx(1.0, rel=1e-6)

    def test_skewed_single_core_bounded_by_one_controller(self):
        report = generation_fabric_report(
            IDEAL, batch=1, kv_bytes_per_request=256 * MB,
            weight_bytes=0.0, striped=False, num_controllers=8,
        )
        assert report.bandwidth_utilization == pytest.approx(
            1.0 / 8.0, rel=1e-6
        )

    def test_skewed_recovers_only_at_large_batch(self):
        """Without striping, aggregate bandwidth needs one core per
        controller; with striping it is there from batch 1."""
        skewed_small = generation_fabric_report(
            IDEAL, batch=2, kv_bytes_per_request=64 * MB,
            weight_bytes=0.0, striped=False, num_controllers=8,
        )
        skewed_full = generation_fabric_report(
            IDEAL, batch=8, kv_bytes_per_request=64 * MB,
            weight_bytes=0.0, striped=False, num_controllers=8,
        )
        assert skewed_small.bandwidth_utilization == pytest.approx(
            0.25, rel=1e-6
        )
        assert skewed_full.bandwidth_utilization == pytest.approx(
            1.0, rel=1e-6
        )

    def test_striped_batch_sweep_holds_peak(self):
        for batch in (1, 4, 16, 64):
            report = generation_fabric_report(
                IDEAL, batch=batch, kv_bytes_per_request=16 * MB,
                weight_bytes=0.0, striped=True,
            )
            assert report.bandwidth_utilization == pytest.approx(
                1.0, rel=1e-6
            )


class TestBurstEfficiency:
    def test_small_bursts_waste_bandwidth(self):
        """Scattered reads pay per-transaction overhead (HBM spec has
        64B overhead per transaction)."""
        full = generation_fabric_report(
            HBM_80GB, batch=8, kv_bytes_per_request=64 * MB,
            weight_bytes=0.0, burst_bytes=None,
        )
        scattered = generation_fabric_report(
            HBM_80GB, batch=8, kv_bytes_per_request=64 * MB,
            weight_bytes=0.0, burst_bytes=64.0,
        )
        assert scattered.makespan_s > 1.5 * full.makespan_s
        # 64B payload + 64B overhead = 50% efficiency.
        assert scattered.bandwidth_utilization == pytest.approx(
            0.5, rel=0.01
        )

    def test_full_burst_efficiency_matches_memory_model(self):
        report = generation_fabric_report(
            HBM_80GB, batch=8, kv_bytes_per_request=64 * MB,
            weight_bytes=0.0,
        )
        expected = HBM_80GB.burst_efficiency(HBM_80GB.burst_bytes)
        assert report.bandwidth_utilization == pytest.approx(
            expected, rel=0.01
        )


class TestArbitrationFairness:
    def test_equal_streams_finish_together(self):
        fabric = MemoryFabric(IDEAL, num_controllers=4)
        for core in range(8):
            fabric.add_kv_read(core, 32 * MB)
        report = fabric.drain()
        assert report.fairness_spread() < 1.05

    def test_round_robin_interleaves_unequal_streams(self):
        """A short stream behind a long one must not wait for the long
        stream to finish (round-robin, not FIFO-per-controller)."""
        fabric = MemoryFabric(IDEAL, num_controllers=1)
        fabric.add_kv_read(0, 256 * MB)
        fabric.add_kv_read(1, 1 * MB)
        report = fabric.drain()
        # Core 1 finishes roughly when 2x its bytes have been served
        # (alternating grants), far before core 0's stream completes.
        assert report.core_finish_s[1] < 0.05 * report.core_finish_s[0]

    def test_single_stream_fairness_is_trivially_one(self):
        fabric = MemoryFabric(IDEAL)
        fabric.add_kv_read(0, 1 * MB)
        assert fabric.drain().fairness_spread() == 1.0


class TestRealDeviceContrast:
    def test_hbm_drains_faster_than_lpddr(self):
        kwargs = dict(
            batch=16, kv_bytes_per_request=64 * MB,
            weight_bytes=512 * MB,
        )
        hbm = generation_fabric_report(HBM_80GB, **kwargs)
        lpddr = generation_fabric_report(LPDDR_256GB, **kwargs)
        ratio = lpddr.makespan_s / hbm.makespan_s
        assert ratio == pytest.approx(2000.0 / 1100.0, rel=0.01)


class TestFabricProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        batch=st.integers(1, 32),
        kv_mb=st.floats(0.5, 64.0),
        controllers=st.integers(1, 16),
        striped=st.booleans(),
    )
    def test_makespan_never_beats_aggregate_peak(
        self, batch, kv_mb, controllers, striped
    ):
        report = generation_fabric_report(
            IDEAL, batch=batch, kv_bytes_per_request=kv_mb * MB,
            weight_bytes=128 * MB, num_controllers=controllers,
            striped=striped,
        )
        floor = report.payload_bytes / IDEAL.bandwidth_bytes_per_s
        assert report.makespan_s >= floor * (1 - 1e-9)
        assert report.bandwidth_utilization <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        batch=st.integers(1, 32),
        kv_mb=st.floats(0.5, 64.0),
    )
    def test_striping_never_slower_than_skewed(self, batch, kv_mb):
        striped = generation_fabric_report(
            IDEAL, batch=batch, kv_bytes_per_request=kv_mb * MB,
            weight_bytes=0.0, striped=True,
        )
        skewed = generation_fabric_report(
            IDEAL, batch=batch, kv_bytes_per_request=kv_mb * MB,
            weight_bytes=0.0, striped=False,
        )
        assert striped.makespan_s <= skewed.makespan_s * (1 + 1e-9)
