"""Bit-exact equivalence of the streaming quantization datapath.

The streaming engine of :mod:`repro.hardware.datapath` is a structural
re-implementation of the algorithm — scalar element streams through
stage models instead of vectorized numpy.  These tests assert the two
produce *identical* bits (codes, scales, COO streams) across
configurations, which is the functional-verification step between an
RTL datapath and its golden model.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OakenConfig
from repro.core.grouping import MIDDLE_GROUP, GroupThresholds
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.hardware.datapath import (
    DatapathTiming,
    Decomposer,
    MinMaxFinder,
    StreamingQuantEngine,
)


def make_pair(config: OakenConfig, rng: np.random.Generator, dim: int = 96):
    """Profile thresholds on sample data and build both implementations."""
    samples = [rng.standard_normal((24, dim)) * 3.0 for _ in range(4)]
    thresholds = profile_thresholds(samples, config)
    reference = OakenQuantizer(config, thresholds)
    streaming = StreamingQuantEngine(config, thresholds)
    return reference, streaming


def assert_encoded_equal(expected, actual) -> None:
    """Field-by-field bit equality of two EncodedKV layouts."""
    np.testing.assert_array_equal(actual.dense_codes, expected.dense_codes)
    np.testing.assert_array_equal(actual.middle_lo, expected.middle_lo)
    np.testing.assert_array_equal(actual.middle_hi, expected.middle_hi)
    np.testing.assert_array_equal(actual.band_lo, expected.band_lo)
    np.testing.assert_array_equal(actual.band_hi, expected.band_hi)
    np.testing.assert_array_equal(actual.sparse_token, expected.sparse_token)
    np.testing.assert_array_equal(actual.sparse_pos, expected.sparse_pos)
    np.testing.assert_array_equal(actual.sparse_band, expected.sparse_band)
    np.testing.assert_array_equal(actual.sparse_side, expected.sparse_side)
    np.testing.assert_array_equal(
        actual.sparse_mag_code, expected.sparse_mag_code
    )
    if expected.sparse_fp16 is None:
        assert actual.sparse_fp16 is None
    else:
        np.testing.assert_array_equal(
            actual.sparse_fp16, expected.sparse_fp16
        )


class TestDecomposer:
    def test_middle_value_routes_dense(self):
        thr = GroupThresholds(
            outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.1,)
        )
        decomposer = Decomposer(OakenConfig(), thr)
        assert decomposer.classify(1.0) == MIDDLE_GROUP

    def test_extreme_value_routes_outer(self):
        thr = GroupThresholds(
            outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.1,)
        )
        decomposer = Decomposer(OakenConfig(), thr)
        assert decomposer.classify(9.5) == 0
        assert decomposer.classify(-8.5) == 0

    def test_near_zero_routes_inner(self):
        thr = GroupThresholds(
            outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.1,)
        )
        decomposer = Decomposer(OakenConfig(), thr)
        assert decomposer.classify(0.05) == 1
        assert decomposer.classify(-0.02) == 1

    def test_group_shift_moves_outer_toward_zero(self):
        thr = GroupThresholds(
            outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.1,)
        )
        decomposer = Decomposer(OakenConfig(), thr)
        routed = decomposer.route(0, 9.5)
        assert routed.side is True
        assert routed.shifted == pytest.approx(1.5)
        routed = decomposer.route(0, -8.5)
        assert routed.side is False
        assert routed.shifted == pytest.approx(0.5)

    def test_two_outer_bands_outermost_claims_first(self):
        thr = GroupThresholds(
            outer_lo=(-10.0, -8.0), outer_hi=(10.0, 8.0), inner_mag=(0.1,)
        )
        cfg = OakenConfig(
            outer_ratios=(0.02, 0.02), middle_ratio=0.90,
            inner_ratios=(0.06,),
        )
        decomposer = Decomposer(cfg, thr)
        assert decomposer.classify(11.0) == 0
        assert decomposer.classify(9.0) == 1
        assert decomposer.classify(7.0) == MIDDLE_GROUP

    def test_nested_inner_shells_innermost_claims_first(self):
        thr = GroupThresholds(
            outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.2, 0.05)
        )
        cfg = OakenConfig(
            outer_ratios=(0.04,), middle_ratio=0.90,
            inner_ratios=(0.03, 0.03),
        )
        decomposer = Decomposer(cfg, thr)
        assert decomposer.classify(0.01) == 2
        assert decomposer.classify(0.1) == 1
        assert decomposer.classify(0.5) == MIDDLE_GROUP


class TestMinMaxFinder:
    def test_tracks_range_per_group(self):
        thr = GroupThresholds(
            outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.1,)
        )
        decomposer = Decomposer(OakenConfig(), thr)
        finder = MinMaxFinder(2)
        for value in (1.0, 2.0, -3.0):
            finder.update(decomposer.route(0, value))
        lo, hi = finder.range_of(MIDDLE_GROUP)
        assert lo < hi

    def test_empty_group_reports_zero_range(self):
        finder = MinMaxFinder(2)
        assert finder.range_of(0) == (0.0, 0.0)

    def test_reset_clears_registers(self):
        thr = GroupThresholds(
            outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.1,)
        )
        decomposer = Decomposer(OakenConfig(), thr)
        finder = MinMaxFinder(2)
        finder.update(decomposer.route(0, 1.0))
        finder.reset()
        assert finder.range_of(MIDDLE_GROUP) == (0.0, 0.0)


class TestStreamingEquivalence:
    """Streamed bits must equal the vectorized golden model exactly."""

    def test_paper_default_config(self):
        rng = np.random.default_rng(7)
        reference, streaming = make_pair(OakenConfig(), rng)
        x = rng.standard_normal((16, 96)) * 3.0
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    def test_no_group_shift_ablation(self):
        cfg = OakenConfig(group_shift=False)
        rng = np.random.default_rng(11)
        reference, streaming = make_pair(cfg, rng)
        x = rng.standard_normal((8, 96)) * 2.0
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    def test_naive_encoding_ablation(self):
        cfg = OakenConfig(fused_encoding=False)
        rng = np.random.default_rng(13)
        reference, streaming = make_pair(cfg, rng)
        x = rng.standard_normal((8, 96)) * 2.0
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    def test_five_group_config(self):
        cfg = OakenConfig.from_ratio_string("2/2/90/3/3")
        rng = np.random.default_rng(17)
        reference, streaming = make_pair(cfg, rng)
        x = rng.standard_normal((8, 96)) * 2.5
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    def test_four_bit_outliers(self):
        cfg = OakenConfig(outlier_bits=4)
        rng = np.random.default_rng(19)
        reference, streaming = make_pair(cfg, rng)
        x = rng.standard_normal((8, 96)) * 2.5
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    def test_single_token(self):
        rng = np.random.default_rng(23)
        reference, streaming = make_pair(OakenConfig(), rng)
        x = rng.standard_normal((1, 96))
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    def test_heavy_tailed_input(self):
        rng = np.random.default_rng(29)
        reference, streaming = make_pair(OakenConfig(), rng)
        x = rng.standard_t(df=2, size=(12, 96)) * 4.0
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    def test_constant_rows(self):
        """Degenerate span: every group collapses to sigma=1 codes."""
        rng = np.random.default_rng(31)
        reference, streaming = make_pair(OakenConfig(), rng)
        x = np.full((4, 96), 0.5)
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        tokens=st.integers(1, 8),
        scale=st.floats(0.1, 20.0),
    )
    def test_property_equivalence(self, seed, tokens, scale):
        rng = np.random.default_rng(seed)
        reference, streaming = make_pair(OakenConfig(), rng, dim=64)
        x = rng.standard_normal((tokens, 64)) * scale
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        ratio=st.sampled_from(["4/90/6", "90/10", "10/90", "2/2/90/6"]),
    )
    def test_property_equivalence_across_group_layouts(self, seed, ratio):
        cfg = OakenConfig.from_ratio_string(ratio)
        rng = np.random.default_rng(seed)
        reference, streaming = make_pair(cfg, rng, dim=64)
        x = rng.standard_normal((4, 64)) * 3.0
        expected = reference.quantize(x)
        actual, _ = streaming.quantize_matrix(x)
        assert_encoded_equal(expected, actual)


class TestQuantEngineValidation:
    def test_threshold_band_count_mismatch_rejected(self):
        cfg = OakenConfig()
        thr = GroupThresholds(
            outer_lo=(-8.0, -6.0), outer_hi=(8.0, 6.0), inner_mag=(0.1,)
        )
        with pytest.raises(ValueError, match="outer band"):
            StreamingQuantEngine(cfg, thr)

    def test_rejects_3d_input(self):
        rng = np.random.default_rng(3)
        _, streaming = make_pair(OakenConfig(), rng)
        with pytest.raises(ValueError, match="matrix"):
            streaming.quantize_matrix(np.zeros((2, 3, 4)))

    def test_timing_is_configurable(self):
        rng = np.random.default_rng(5)
        cfg = OakenConfig()
        samples = [rng.standard_normal((16, 64))]
        thr = profile_thresholds(samples, cfg)
        engine = StreamingQuantEngine(
            cfg, thr, timing=DatapathTiming(lanes=8)
        )
        assert engine.timing.pass_cycles(64) == 8
