"""Unit tests for batched incremental generation."""

import numpy as np
import pytest

from repro.models.config import get_model
from repro.models.ops import log_softmax
from repro.models.generation import generate_tokens
from repro.models.transformer import DecoderModel


class TestGeneration:
    def test_shape(self, small_model):
        tokens = generate_tokens(small_model, batch=3, length=20, seed=0)
        assert tokens.shape == (3, 20)
        assert tokens.dtype == np.int64

    def test_tokens_in_vocab(self, small_model):
        tokens = generate_tokens(small_model, batch=2, length=16, seed=1)
        assert tokens.min() >= 0
        assert tokens.max() < small_model.shape.vocab

    def test_deterministic_per_seed(self, small_model):
        a = generate_tokens(small_model, batch=2, length=16, seed=7)
        b = generate_tokens(small_model, batch=2, length=16, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, small_model):
        a = generate_tokens(small_model, batch=2, length=16, seed=7)
        b = generate_tokens(small_model, batch=2, length=16, seed=8)
        assert not np.array_equal(a, b)

    def test_prompt_preserved(self, small_model):
        prompt = np.arange(6).reshape(1, 6)
        tokens = generate_tokens(
            small_model, batch=1, length=12, seed=0, prompt=prompt
        )
        np.testing.assert_array_equal(tokens[:, :6], prompt)

    def test_prompt_longer_than_length_truncated(self, small_model):
        prompt = np.arange(10).reshape(1, 10)
        tokens = generate_tokens(
            small_model, batch=1, length=5, seed=0, prompt=prompt
        )
        np.testing.assert_array_equal(tokens, prompt[:, :5])

    def test_prompt_batch_mismatch_rejected(self, small_model):
        with pytest.raises(ValueError):
            generate_tokens(
                small_model, batch=2, length=8, seed=0,
                prompt=np.zeros((3, 2), dtype=int),
            )

    def test_invalid_temperature_rejected(self, small_model):
        with pytest.raises(ValueError):
            generate_tokens(small_model, batch=1, length=4,
                            temperature=0.0)

    def test_incremental_matches_teacher_forced(self, small_model):
        """The cached decode path must agree with the full forward."""
        tokens = generate_tokens(small_model, batch=2, length=18, seed=3)
        # Re-scoring the generated text with the (non-cached) forward
        # pass must produce finite likelihoods consistent with actual
        # sampling: every sampled token must have nonzero probability.
        logits = small_model.forward(tokens)
        logprobs = log_softmax(logits[:, :-1, :], axis=-1)
        picked = np.take_along_axis(
            logprobs, tokens[:, 1:, None], axis=-1
        )
        assert np.isfinite(picked).all()
        assert picked.min() > -15.0

    def test_sliding_window_model_generates(self):
        model = DecoderModel(get_model("mistral-7b"))
        length = model.shape.sliding_window + 16
        tokens = generate_tokens(model, batch=1, length=length, seed=0)
        assert tokens.shape == (1, length)

    def test_moe_model_generates(self):
        model = DecoderModel(get_model("mixtral-8x7b"))
        tokens = generate_tokens(model, batch=2, length=12, seed=0)
        assert tokens.shape == (2, 12)

    def test_opt_model_generates(self):
        model = DecoderModel(get_model("opt-6.7b"))
        tokens = generate_tokens(model, batch=2, length=12, seed=0)
        assert tokens.shape == (2, 12)

    def test_low_temperature_more_repetitive(self, small_model):
        cold = generate_tokens(
            small_model, batch=4, length=48, seed=5, temperature=0.2
        )
        hot = generate_tokens(
            small_model, batch=4, length=48, seed=5, temperature=2.0
        )
        assert len(np.unique(cold)) <= len(np.unique(hot))
