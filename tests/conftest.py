"""Shared fixtures for the test suite.

Model construction and corpus generation are the expensive parts, so
they are session-scoped and shared; everything else is cheap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import get_model
from repro.models.transformer import DecoderModel


def make_kv_matrix(
    tokens: int = 128,
    dim: int = 64,
    seed: int = 0,
    outlier_channels=(3, 17, 40),
    outlier_gain: float = 10.0,
) -> np.ndarray:
    """A KV-like matrix with channel-concentrated outliers.

    Mirrors the paper's Observation 3 structure: heavy channels plus a
    sprinkle of isolated exceptions.
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((tokens, dim))
    gains = np.ones(dim)
    gains[list(outlier_channels)] = outlier_gain
    x = x * gains[None, :]
    spikes = rng.random((tokens, dim)) < 0.002
    return np.where(spikes, x * outlier_gain, x)


@pytest.fixture(scope="session")
def kv_matrix() -> np.ndarray:
    """Standard structured KV matrix."""
    return make_kv_matrix()


@pytest.fixture(scope="session")
def kv_samples():
    """Calibration-run samples with the same channel structure."""
    return [make_kv_matrix(seed=s) for s in range(1, 5)]


@pytest.fixture(scope="session")
def small_model() -> DecoderModel:
    """The Llama2-7B sim model (shared across tests)."""
    return DecoderModel(get_model("llama2-7b"))


@pytest.fixture(scope="session")
def small_tokens(small_model) -> np.ndarray:
    """A small evaluation corpus for the shared model."""
    from repro.data.corpus import build_corpus

    return build_corpus(small_model, "wikitext2", batch=3, length=64)
