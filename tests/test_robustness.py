"""Robustness / failure-injection tests for the offline thresholds.

The offline-online hybrid's central risk is distribution shift: serve
traffic that looks nothing like the calibration runs.  These tests
inject shifts and check the documented behaviour: graceful degradation
(outlier fractions drift, reconstruction error grows smoothly) rather
than catastrophic failure, plus the core-occupancy model backing
Figure 3(a)/(b).
"""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.grouping import assign_groups
from repro.core.quantizer import OakenQuantizer
from repro.hardware.coremap import (
    batching_occupancy_gain,
    generation_occupancy,
    occupancy_timeline,
    prefill_occupancy,
)
from repro.models.config import get_model

from conftest import make_kv_matrix

ARCH = get_model("llama2-7b").arch


@pytest.fixture(scope="module")
def quantizer(kv_samples):
    return OakenQuantizer.from_samples(kv_samples, OakenConfig())


class TestDistributionShift:
    def test_mild_scale_shift_degrades_gracefully(self, quantizer,
                                                  kv_matrix):
        base_rmse = np.sqrt(
            np.mean((quantizer.roundtrip(kv_matrix) - kv_matrix) ** 2)
        )
        shifted = kv_matrix * 1.3
        shift_rmse = np.sqrt(
            np.mean((quantizer.roundtrip(shifted) - shifted) ** 2)
        )
        # 30% wider data: error grows, but stays the same order.
        assert shift_rmse < 4 * base_rmse

    def test_severe_shift_still_finite(self, quantizer):
        wild = make_kv_matrix(tokens=64, seed=77) * 50.0
        restored = quantizer.roundtrip(wild)
        assert np.isfinite(restored).all()

    def test_outlier_fraction_tracks_shift(self, quantizer, kv_matrix):
        """Wider inputs push more values past the fixed thresholds."""
        base = assign_groups(
            kv_matrix, quantizer.thresholds
        ).outlier_fraction()
        wide = assign_groups(
            kv_matrix * 2.0, quantizer.thresholds
        ).outlier_fraction()
        assert wide > base

    def test_shrunk_inputs_route_to_inner(self, quantizer, kv_matrix):
        """Narrow inputs fall inside the inner thresholds, not outside."""
        partition = assign_groups(
            kv_matrix * 0.01, quantizer.thresholds
        )
        counts = partition.band_counts()
        # Band 1 is the inner (near-zero) band in the 3-group config.
        assert counts[1] > counts[0]

    def test_zero_variance_input(self, quantizer):
        constant = np.full((16, 64), 3.0)
        restored = quantizer.roundtrip(constant)
        assert np.isfinite(restored).all()
        assert np.abs(restored - constant).max() < 1.0

    def test_adversarial_single_spike(self, quantizer):
        x = np.zeros((8, 64))
        x[3, 17] = 1e4
        restored = quantizer.roundtrip(x)
        # The spike saturates its band scale but must not corrupt the
        # rest of the tensor.
        others = np.delete(restored.ravel(), 3 * 64 + 17)
        assert np.abs(others).max() < 1.0

    def test_nan_free_on_extreme_dynamic_range(self, quantizer):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 64)) * np.logspace(
            -6, 3, 64
        )[None, :]
        assert np.isfinite(quantizer.roundtrip(x)).all()


class TestCoreOccupancy:
    def test_prefill_fills_cores(self):
        occ = prefill_occupancy(ARCH, batch=1, prompt_tokens=1024)
        assert occ.occupancy == 1.0

    def test_single_request_generation_underutilizes(self):
        occ = generation_occupancy(ARCH, batch=1)
        assert occ.occupancy == pytest.approx(1 / 256)

    def test_batching_fills_generation(self):
        occ = generation_occupancy(ARCH, batch=256)
        assert occ.occupancy == 1.0

    def test_gain_linear_until_cores_exhausted(self):
        assert batching_occupancy_gain(ARCH, 64) == pytest.approx(64.0)
        assert batching_occupancy_gain(ARCH, 512) == pytest.approx(256.0)

    def test_timeline_shape(self):
        timeline = occupancy_timeline(
            ARCH, batch=4, prompt_tokens=128, output_tokens=64
        )
        assert [t.phase for t in timeline] == ["prefill", "generation"]
        assert timeline[0].occupancy > timeline[1].occupancy

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            prefill_occupancy(ARCH, batch=0, prompt_tokens=8)
        with pytest.raises(ValueError):
            generation_occupancy(ARCH, batch=0)
