"""Unit tests for OakenConfig validation and derived properties."""

import pytest

from repro.core.config import TABLE3_CONFIGURATIONS, OakenConfig


class TestValidation:
    def test_default_is_paper_config(self):
        config = OakenConfig.paper_default()
        assert config.outer_ratios == (0.04,)
        assert config.middle_ratio == 0.90
        assert config.inner_ratios == (0.06,)
        assert config.inlier_bits == 4
        assert config.outlier_bits == 5

    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ValueError):
            OakenConfig(outer_ratios=(0.04,), middle_ratio=0.90,
                        inner_ratios=(0.10,))

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(ValueError):
            OakenConfig(outer_ratios=(0.0,), middle_ratio=0.94,
                        inner_ratios=(0.06,))

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            OakenConfig(inlier_bits=1)
        with pytest.raises(ValueError):
            OakenConfig(outlier_bits=9)

    def test_bad_index_bits_rejected(self):
        with pytest.raises(ValueError):
            OakenConfig(index_bits=0)


class TestDerivedProperties:
    def test_band_counts(self):
        config = OakenConfig()
        assert config.num_outer_bands == 1
        assert config.num_inner_bands == 1
        assert config.num_sparse_bands == 2
        assert config.num_groups == 3

    def test_outlier_ratio(self):
        assert OakenConfig().outlier_ratio == pytest.approx(0.10)

    def test_group_id_bits(self):
        assert OakenConfig().group_id_bits == 1
        config = OakenConfig(
            outer_ratios=(0.02, 0.02), middle_ratio=0.90,
            inner_ratios=(0.03, 0.03),
        )
        assert config.group_id_bits == 2

    def test_chunk_size(self):
        assert OakenConfig().chunk_size == 64


class TestRatioParsing:
    def test_paper_default_string(self):
        config = OakenConfig.from_ratio_string("4/90/6")
        assert config.outer_ratios == (0.04,)
        assert config.middle_ratio == pytest.approx(0.90)
        assert config.inner_ratios == (0.06,)

    def test_inner_only(self):
        config = OakenConfig.from_ratio_string("90/10")
        assert config.outer_ratios == ()
        assert config.inner_ratios == (pytest.approx(0.10),)

    def test_outer_only(self):
        config = OakenConfig.from_ratio_string("10/90")
        assert config.outer_ratios == (pytest.approx(0.10),)
        assert config.inner_ratios == ()

    def test_five_groups(self):
        config = OakenConfig.from_ratio_string("2/2/90/3/3")
        assert config.outer_ratios == (0.02, 0.02)
        assert config.inner_ratios == (0.03, 0.03)
        assert config.num_groups == 5

    def test_overrides_forwarded(self):
        config = OakenConfig.from_ratio_string("4/90/6", outlier_bits=4)
        assert config.outlier_bits == 4

    def test_single_group_rejected(self):
        with pytest.raises(ValueError):
            OakenConfig.from_ratio_string("100")

    def test_table3_grid_parses(self):
        for spec, bits in TABLE3_CONFIGURATIONS:
            config = OakenConfig.from_ratio_string(spec, outlier_bits=bits)
            assert config.outlier_ratio == pytest.approx(0.10)
