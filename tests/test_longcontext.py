"""Tests for the long-context accuracy extension."""

import numpy as np
import pytest

from repro.eval.longcontext import run_long_context, tail_perplexity
from repro.models.generation import generate_tokens


class TestTailPerplexity:
    def test_matches_full_perplexity_when_tail_covers_all(
        self, small_model, small_tokens
    ):
        tail = small_tokens.shape[1] - 1
        assert tail_perplexity(
            small_model, small_tokens, tail
        ) == pytest.approx(small_model.perplexity(small_tokens), rel=1e-6)

    def test_tail_subset_differs(self, small_model, small_tokens):
        full = tail_perplexity(
            small_model, small_tokens, small_tokens.shape[1] - 1
        )
        short = tail_perplexity(small_model, small_tokens, 8)
        assert short != pytest.approx(full, rel=1e-9)


class TestLongContextDegradation:
    @pytest.fixture(scope="class")
    def rows(self, small_model):
        return run_long_context(
            small_model, lengths=(64, 160), tail=24, batch=2
        )

    def test_quantized_worse_than_fp(self, rows):
        for row in rows:
            assert row.quantized_tail_perplexity >= (
                row.fp_tail_perplexity * 0.99
            )

    def test_degradation_does_not_explode_with_length(self, rows):
        """Error must not compound with context length."""
        short, long = rows
        assert long.relative_increase < short.relative_increase + 0.20

    def test_degradation_small_absolute(self, rows):
        for row in rows:
            assert row.relative_increase < 0.30
