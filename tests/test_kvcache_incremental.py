"""Incremental cache reads: memoized prefixes vs. full re-decode."""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.kvcache import LayerKVCache, QuantizedKVCache
from repro.core.quantizer import OakenQuantizer
from repro.core.reference import ReferenceOakenQuantizer

from conftest import make_kv_matrix


def make_layer(samples, incremental=True):
    return LayerKVCache(
        key_quantizer=OakenQuantizer.from_samples(samples, OakenConfig()),
        value_quantizer=OakenQuantizer.from_samples(samples, OakenConfig()),
        incremental=incremental,
    )


class TestIncrementalRead:
    def test_matches_full_redecode_after_interleaved_appends(
        self, kv_samples
    ):
        fast = make_layer(kv_samples, incremental=True)
        slow = make_layer(kv_samples, incremental=False)
        # Same quantizers on both sides so chunks are identical.
        slow.key_quantizer = fast.key_quantizer
        slow.value_quantizer = fast.value_quantizer
        for step, rows in enumerate([3, 1, 1, 4, 1, 2, 1]):
            k = make_kv_matrix(tokens=rows, seed=step)
            v = make_kv_matrix(tokens=rows, seed=100 + step)
            fast.append(k, v)
            slow.append(k, v)
            fk, fv = fast.read()
            sk, sv = slow.read()
            np.testing.assert_array_equal(fk, sk)
            np.testing.assert_array_equal(fv, sv)
            assert fk.shape[0] == fast.length

    def test_reads_are_readonly_views(self, kv_samples):
        cache = make_layer(kv_samples)
        cache.append(
            make_kv_matrix(tokens=4), make_kv_matrix(tokens=4, seed=1)
        )
        keys, values = cache.read()
        with pytest.raises(ValueError):
            keys[0, 0] = 1.0
        with pytest.raises(ValueError):
            values[0, 0] = 1.0

    def test_earlier_views_survive_buffer_growth(self, kv_samples):
        cache = make_layer(kv_samples)
        cache.append(
            make_kv_matrix(tokens=2), make_kv_matrix(tokens=2, seed=1)
        )
        first_keys, _ = cache.read()
        snapshot = first_keys.copy()
        # Force many growth cycles past the initial capacity.
        for step in range(40):
            cache.append(
                make_kv_matrix(tokens=3, seed=step),
                make_kv_matrix(tokens=3, seed=50 + step),
            )
            cache.read()
        np.testing.assert_array_equal(first_keys, snapshot)

    def test_each_chunk_decoded_once(self, kv_samples):
        cache = make_layer(kv_samples)
        for step in range(6):
            cache.append(
                make_kv_matrix(tokens=1, seed=step),
                make_kv_matrix(tokens=1, seed=10 + step),
            )
            cache.read()
        assert cache._key_decoded.chunks_decoded == 6
        assert cache._value_decoded.chunks_decoded == 6

        # With the history memoized, further reads must not decode:
        # poison the dequantizers and read again.
        def explode(encoded):
            raise AssertionError("memoized chunk was re-decoded")

        cache.key_quantizer.dequantize = explode
        cache.value_quantizer.dequantize = explode
        keys, values = cache.read()
        assert keys.shape[0] == 6 and values.shape[0] == 6

    def test_reference_quantizer_cache_identical(self, kv_samples):
        """Seed-mode cache (reference kernels, full re-decode) reads the
        same bytes as the fused incremental cache."""
        fused = make_layer(kv_samples, incremental=True)
        seed_cache = LayerKVCache(
            key_quantizer=ReferenceOakenQuantizer(
                fused.key_quantizer.config,
                fused.key_quantizer.thresholds,
            ),
            value_quantizer=ReferenceOakenQuantizer(
                fused.value_quantizer.config,
                fused.value_quantizer.thresholds,
            ),
            incremental=False,
        )
        for step in range(4):
            k = make_kv_matrix(tokens=2, seed=step)
            v = make_kv_matrix(tokens=2, seed=20 + step)
            fused.append(k, v)
            seed_cache.append(k, v)
        fk, fv = fused.read()
        sk, sv = seed_cache.read()
        np.testing.assert_array_equal(fk, sk)
        np.testing.assert_array_equal(fv, sv)

    def test_whole_model_passthrough(self, kv_samples):
        keys = [
            OakenQuantizer.from_samples(kv_samples, OakenConfig())
            for _ in range(2)
        ]
        values = [
            OakenQuantizer.from_samples(kv_samples, OakenConfig())
            for _ in range(2)
        ]
        fast = QuantizedKVCache(keys, values, incremental=True)
        slow = QuantizedKVCache(keys, values, incremental=False)
        for layer in range(2):
            for step in range(3):
                k = make_kv_matrix(tokens=2, seed=layer * 10 + step)
                v = make_kv_matrix(tokens=2, seed=500 + layer * 10 + step)
                fast.append(layer, k, v)
                slow.append(layer, k, v)
        for layer in range(2):
            fk, fv = fast.read(layer)
            sk, sv = slow.read(layer)
            np.testing.assert_array_equal(fk, sk)
            np.testing.assert_array_equal(fv, sv)
