"""Unit tests for the decoder model substrate."""

import numpy as np
import pytest

from repro.models.config import get_model
from repro.models.transformer import DecoderModel, KVTransformBundle


@pytest.fixture(scope="module")
def tokens(small_model):
    rng = np.random.default_rng(0)
    return rng.integers(0, small_model.shape.vocab, size=(2, 24))


class TestForward:
    def test_logit_shape(self, small_model, tokens):
        logits = small_model.forward(tokens)
        assert logits.shape == (2, 24, small_model.shape.vocab)

    def test_deterministic(self, small_model, tokens):
        a = small_model.forward(tokens)
        b = small_model.forward(tokens)
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_weights(self, tokens):
        spec = get_model("llama2-7b")
        a = DecoderModel(spec).forward(tokens)
        b = DecoderModel(spec).forward(tokens)
        np.testing.assert_array_equal(a, b)

    def test_different_models_different_weights(self, tokens):
        a = DecoderModel(get_model("llama2-7b")).forward(tokens)
        b = DecoderModel(get_model("opt-6.7b")).forward(tokens)
        assert not np.allclose(a, b)

    def test_causality(self, small_model):
        """Changing a future token must not affect earlier logits."""
        rng = np.random.default_rng(1)
        base = rng.integers(0, small_model.shape.vocab, size=(1, 16))
        changed = base.copy()
        changed[0, -1] = (changed[0, -1] + 1) % small_model.shape.vocab
        a = small_model.forward(base)
        b = small_model.forward(changed)
        np.testing.assert_allclose(a[0, :-1], b[0, :-1], atol=1e-9)

    def test_1d_input_promoted(self, small_model):
        logits = small_model.forward(np.arange(8))
        assert logits.shape == (1, 8, small_model.shape.vocab)

    def test_finite_logits(self, small_model, tokens):
        assert np.isfinite(small_model.forward(tokens)).all()


class TestArchitectureVariants:
    def test_gqa_model_runs(self):
        model = DecoderModel(get_model("llama2-70b"))
        logits = model.forward(np.arange(12))
        assert np.isfinite(logits).all()

    def test_sliding_window_limits_attention(self):
        """Beyond the window, early tokens cannot influence logits."""
        model = DecoderModel(get_model("mistral-7b"))
        window = model.shape.sliding_window
        length = window + 24
        rng = np.random.default_rng(2)
        base = rng.integers(0, model.shape.vocab, size=(1, length))
        changed = base.copy()
        changed[0, 0] = (changed[0, 0] + 1) % model.shape.vocab
        a = model.forward(base)
        b = model.forward(changed)
        # The change at position 0 propagates through layers, but the
        # final token (distance > layers * window) is out of reach.
        if model.shape.n_layers * window < length:
            np.testing.assert_allclose(
                a[0, -1], b[0, -1], atol=1e-9
            )

    def test_moe_model_runs(self):
        model = DecoderModel(get_model("mixtral-8x7b"))
        logits = model.forward(np.arange(12))
        assert np.isfinite(logits).all()

    def test_opt_uses_positions(self):
        """OPT's learned positions: shifting a sequence changes logits."""
        model = DecoderModel(get_model("opt-6.7b"))
        tokens = np.arange(8)
        a = model.forward(tokens)[0, -1]
        padded = np.concatenate([np.zeros(4, dtype=int), tokens])
        b = model.forward(padded)[0, -1]
        assert not np.allclose(a, b)


class TestKVTransforms:
    def test_identity_bundle_matches_plain(self, small_model, tokens):
        bundle = KVTransformBundle.identity(small_model.shape.n_layers)
        a = small_model.forward(tokens)
        b = small_model.forward(tokens, kv_transforms=bundle)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_noise_transform_changes_logits(self, small_model, tokens):
        def noisy(x):
            return x + 0.5

        n = small_model.shape.n_layers
        bundle = KVTransformBundle(
            key_fns=[noisy] * n, value_fns=[noisy] * n
        )
        a = small_model.forward(tokens)
        b = small_model.forward(tokens, kv_transforms=bundle)
        assert not np.allclose(a, b)

    def test_collect_kv_shapes(self, small_model, tokens):
        collected = small_model.collect_layer_kv(tokens)
        assert len(collected) == small_model.shape.n_layers
        for keys, values in collected:
            assert keys.shape == (
                tokens.size, small_model.shape.kv_dim
            )
            assert values.shape == keys.shape


class TestPerplexity:
    def test_better_than_uniform(self, small_model, small_tokens):
        ppl = small_model.perplexity(small_tokens)
        assert ppl < small_model.shape.vocab / 4

    def test_corruption_increases_perplexity(self, small_model,
                                             small_tokens):
        def destroy(x):
            return np.zeros_like(x)

        n = small_model.shape.n_layers
        bundle = KVTransformBundle(
            key_fns=[destroy] * n, value_fns=[destroy] * n
        )
        clean = small_model.perplexity(small_tokens)
        broken = small_model.perplexity(
            small_tokens, kv_transforms=bundle
        )
        assert broken > clean

    def test_sequence_log_likelihood_negative(self, small_model,
                                              small_tokens):
        ll = small_model.sequence_log_likelihood(small_tokens)
        assert (ll < 0).all()

    def test_ll_consistent_with_perplexity(self, small_model,
                                           small_tokens):
        ll = small_model.sequence_log_likelihood(small_tokens).sum()
        predicted = small_tokens.shape[0] * (small_tokens.shape[1] - 1)
        expected = float(np.exp(-ll / predicted))
        assert small_model.perplexity(small_tokens) == pytest.approx(
            expected
        )
