"""Unit tests for zero-shot scoring, distribution analysis, harness."""

import numpy as np
import pytest

from repro.data.corpus import build_corpus, calibration_corpus
from repro.data.qa_tasks import build_qa_batch
from repro.eval.distribution import (
    channel_concentration,
    dataset_range_consistency,
    layer_kv_ranges,
    range_spread_across_datasets,
    top_value_positions,
)
from repro.eval.harness import build_method_bundle, evaluate_method
from repro.eval.zeroshot import conditional_log_likelihood, score_qa_batch
from repro.models.config import get_model
from repro.models.ops import log_softmax

from conftest import make_kv_matrix


class TestZeroShot:
    def test_conditional_ll_matches_manual(self, small_model):
        rng = np.random.default_rng(0)
        context = rng.integers(0, small_model.shape.vocab, size=(2, 10))
        continuation = rng.integers(0, small_model.shape.vocab,
                                    size=(2, 4))
        ll = conditional_log_likelihood(small_model, context,
                                        continuation)
        full = np.concatenate([context, continuation], axis=1)
        logits = small_model.forward(full)
        logprobs = log_softmax(logits, axis=-1)
        manual = np.zeros(2)
        for b in range(2):
            for j in range(4):
                position = 10 + j - 1
                token = continuation[b, j]
                manual[b] += logprobs[b, position, token]
        np.testing.assert_allclose(ll, manual, rtol=1e-9)

    def test_batch_mismatch_rejected(self, small_model):
        with pytest.raises(ValueError):
            conditional_log_likelihood(
                small_model, np.zeros((2, 4), dtype=int),
                np.zeros((3, 4), dtype=int),
            )

    def test_fp_accuracy_in_realistic_band(self, small_model):
        batch = build_qa_batch(small_model, "piqa", num_items=32)
        accuracy = score_qa_batch(small_model, batch)
        assert 60.0 <= accuracy <= 98.0

    def test_accuracy_bounds(self, small_model):
        batch = build_qa_batch(small_model, "winogrande", num_items=16)
        accuracy = score_qa_batch(small_model, batch)
        assert 0.0 <= accuracy <= 100.0


class TestDistribution:
    def test_layer_ranges_shape(self, small_model, small_tokens):
        ranges = layer_kv_ranges(small_model, small_tokens)
        assert len(ranges) == small_model.shape.n_layers
        for r in ranges:
            assert r.key_min < r.key_max
            assert r.value_min < r.value_max

    def test_keys_wider_than_values(self, small_model, small_tokens):
        """Observation 1's key/value asymmetry (paper Fig 6a)."""
        ranges = layer_kv_ranges(small_model, small_tokens)
        key_span = np.mean([r.key_max - r.key_min for r in ranges])
        value_span = np.mean(
            [r.value_max - r.value_min for r in ranges]
        )
        assert key_span > 1.5 * value_span

    def test_ranges_vary_across_layers(self, small_model, small_tokens):
        ranges = layer_kv_ranges(small_model, small_tokens)
        spans = [r.key_max - r.key_min for r in ranges]
        assert max(spans) > 1.2 * min(spans)

    def test_dataset_consistency(self, small_model):
        corpora = {
            name: build_corpus(small_model, name, batch=3, length=48)
            for name in ("wikitext2", "piqa")
        }
        per_dataset = dataset_range_consistency(small_model, corpora)
        spread = range_spread_across_datasets(per_dataset)
        # Observation 2: ranges are input-insensitive.
        assert spread < 0.8

    def test_spread_single_dataset_zero(self, small_model,
                                        small_tokens):
        per_dataset = {"only": layer_kv_ranges(small_model,
                                               small_tokens)}
        assert range_spread_across_datasets(per_dataset) == 0.0

    def test_top_positions_fraction(self):
        x = make_kv_matrix(tokens=100, dim=64)
        tokens, channels = top_value_positions(x, fraction=0.04)
        assert tokens.size == pytest.approx(0.04 * x.size, rel=0.3)

    def test_concentration_high_for_structured(self):
        x = make_kv_matrix(tokens=200, dim=64)
        assert channel_concentration(x) > 0.6

    def test_concentration_low_for_iid(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((200, 64))
        assert channel_concentration(x) < 0.5

    def test_concentration_empty(self):
        assert channel_concentration(np.zeros((0, 4))) >= 0.0


class TestHarness:
    def test_bundle_layers_match_model(self, small_model):
        calibration = calibration_corpus(small_model, batch=2,
                                         length=32)
        fitted = build_method_bundle(small_model, "qserve", calibration)
        assert len(fitted.key_quantizers) == small_model.shape.n_layers
        bundle = fitted.bundle()
        assert len(bundle) == small_model.shape.n_layers

    def test_evaluate_method_row(self, small_model, small_tokens):
        spec = get_model("llama2-7b")
        calibration = calibration_corpus(small_model, batch=2,
                                         length=32)
        qa = {"piqa": build_qa_batch(small_model, "piqa", num_items=8)}
        row = evaluate_method(
            small_model, spec, "oaken", small_tokens, qa, calibration
        )
        assert row.model == "llama2-7b"
        assert row.method == "oaken"
        assert row.perplexity > 1.0
        assert 0 <= row.accuracy["piqa"] <= 100
        assert 4.0 < row.effective_bits_paper_dim < 5.5

    def test_fp16_close_to_clean(self, small_model, small_tokens):
        spec = get_model("llama2-7b")
        calibration = calibration_corpus(small_model, batch=2,
                                         length=32)
        row = evaluate_method(
            small_model, spec, "fp16", small_tokens, {}, calibration
        )
        clean = small_model.perplexity(small_tokens)
        assert row.perplexity == pytest.approx(clean, rel=0.02)

    def test_quantized_ppl_above_fp16(self, small_model, small_tokens):
        spec = get_model("llama2-7b")
        calibration = calibration_corpus(small_model, batch=2,
                                         length=32)
        fp16 = evaluate_method(
            small_model, spec, "fp16", small_tokens, {}, calibration
        )
        tender = evaluate_method(
            small_model, spec, "tender", small_tokens, {}, calibration
        )
        assert tender.perplexity > fp16.perplexity
