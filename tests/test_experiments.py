"""Shape tests for the per-figure experiment modules.

Each test asserts the *paper's qualitative result* holds in the
reproduction — these are the claims EXPERIMENTS.md records.
"""

import pytest

from repro.experiments.fig01 import format_fig01, run_fig01
from repro.experiments.fig03 import (
    format_fig03,
    run_fig03,
    run_fig03_phases,
)
from repro.experiments.fig04 import format_fig04, run_fig04
from repro.experiments.fig05 import (
    format_fig05,
    run_fig05_memory,
    run_fig05_quant,
)
from repro.experiments.fig11 import (
    format_fig11,
    run_fig11,
    speedup_at_batch,
)
from repro.experiments.fig12 import run_fig12b
from repro.experiments.fig13 import format_fig13, run_fig13
from repro.experiments.fig14 import run_fig14, systems_for_model
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.common import TextTable


class TestTextTable:
    def test_render(self):
        table = TextTable(["a", "b"])
        table.add_row([1, 2.5])
        out = table.render()
        assert "a" in out and "2.500" in out

    def test_row_width_mismatch(self):
        table = TextTable(["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_title_renders_first(self):
        table = TextTable(["a"], title="My Table")
        table.add_row([1])
        assert table.render().splitlines()[0] == "My Table"

    def test_notes_render_last(self):
        table = TextTable(["a"])
        table.add_row([1])
        table.add_note("caveat one")
        table.add_note("caveat two")
        lines = table.render().splitlines()
        assert lines[-2] == "note: caveat one"
        assert lines[-1] == "note: caveat two"

    def test_untitled_table_unchanged(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert table.render().splitlines()[0].strip() == "a"


class TestFig01:
    def test_oaken_lpddr_highest_effective_capacity(self):
        points = {p.system: p for p in run_fig01()}
        best_capacity = max(
            p.effective_capacity_gb for p in points.values()
        )
        assert points["oaken-lpddr"].effective_capacity_gb == (
            best_capacity
        )

    def test_quantization_boosts_effective_bandwidth(self):
        points = {p.system: p for p in run_fig01()}
        assert points["oaken-lpddr"].effective_bandwidth_gbps > (
            points["lpu"].effective_bandwidth_gbps * 3
        )

    def test_format(self):
        assert "oaken-lpddr" in format_fig01(run_fig01())


class TestFig03:
    def test_mha_is_the_underutilized_op(self):
        rows = {r.op: r for r in run_fig03()}
        mha = rows["mha"]
        for name, row in rows.items():
            if name != "mha":
                assert mha.utilization_percent < row.utilization_percent

    def test_mha_dominates_latency(self):
        rows = {r.op: r for r in run_fig03()}
        assert rows["mha"].latency_fraction_percent > 50.0

    def test_prefill_beats_generation_utilization(self):
        phases = run_fig03_phases()
        prefill = {p.batch: p for p in phases if p.phase == "prefill"}
        generation = {
            p.batch: p for p in phases if p.phase == "generation"
        }
        for batch in (1, 64):
            assert prefill[batch].utilization_percent > (
                5 * generation[batch].utilization_percent
            )

    def test_batching_improves_generation_utilization(self):
        phases = run_fig03_phases()
        generation = {
            p.batch: p for p in phases if p.phase == "generation"
        }
        assert generation[64].utilization_percent > (
            generation[1].utilization_percent
        )

    def test_format(self):
        assert "mha" in format_fig03(run_fig03())


class TestFig04:
    def test_opt30b_hbm_ooms_lpddr_does_not(self):
        rows = run_fig04()
        opt = [r for r in rows if r.model == "opt-30b"]
        assert any(r.hbm_oom for r in opt)
        assert not any(r.lpddr_oom for r in opt)

    def test_hbm_faster_when_it_fits(self):
        rows = run_fig04()
        llama = [r for r in rows if r.model == "llama2-13b"]
        for row in llama:
            if not row.hbm_oom:
                assert row.hbm_tokens_per_s > row.lpddr_tokens_per_s

    def test_format_marks_oom(self):
        assert "OOM" in format_fig04(run_fig04())


class TestFig05:
    def test_kv_share_grows_to_dominate(self):
        rows = run_fig05_memory()
        assert rows[0].kv_share_percent < 20.0
        assert rows[-1].kv_share_percent > 85.0
        shares = [r.kv_share_percent for r in rows]
        assert shares == sorted(shares)

    def test_weights_constant(self):
        rows = run_fig05_memory()
        assert rows[0].weights_gb == rows[-1].weights_gb

    def test_kv_quant_wins_at_large_batch(self):
        rows = {r.batch: r for r in run_fig05_quant()}
        big = rows[128]
        assert big.kv_quant_tokens_per_s > (
            1.5 * big.weight_quant_tokens_per_s
        )

    def test_kv_quant_extends_max_batch(self):
        rows = {r.batch: r for r in run_fig05_quant()}
        assert rows[256].no_quant_oom
        assert not rows[256].kv_quant_oom

    def test_format(self):
        out = format_fig05(run_fig05_memory(), run_fig05_quant())
        assert "memory breakdown" in out


class TestFig11:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_fig11(
            models=("llama2-7b", "llama2-70b"),
            batches=(16, 64, 256),
        )

    def test_oaken_lpddr_wins_at_256(self, cells):
        for model in ("llama2-7b", "llama2-70b"):
            at_256 = {
                c.system: c for c in cells
                if c.model == model and c.batch == 256 and not c.oom
            }
            best = max(at_256.values(), key=lambda c: c.tokens_per_s)
            assert best.system == "oaken-lpddr"

    def test_oaken_hbm_wins_small_model_small_batch(self, cells):
        at_16 = {
            c.system: c for c in cells
            if c.model == "llama2-7b" and c.batch == 16 and not c.oom
        }
        best = max(at_16.values(), key=lambda c: c.tokens_per_s)
        assert best.system == "oaken-hbm"

    def test_hbm_platforms_oom_at_256(self, cells):
        at_256 = {
            c.system: c for c in cells
            if c.model == "llama2-7b" and c.batch == 256
        }
        assert at_256["oaken-hbm"].oom
        assert at_256["tender"].oom
        assert at_256["lpu"].oom

    def test_gpu_saturates_not_ooms(self, cells):
        at_256 = {
            c.system: c for c in cells
            if c.model == "llama2-7b" and c.batch == 256
        }
        assert not at_256["vllm"].oom
        assert at_256["vllm"].tokens_per_s > 0

    def test_speedup_over_vllm(self, cells):
        speedups = speedup_at_batch(cells, "oaken-lpddr", "vllm", 256)
        assert all(s > 1.4 for s in speedups.values())

    def test_speedup_over_qserve(self, cells):
        speedups = speedup_at_batch(
            cells, "oaken-lpddr", "qserve-gpu", 256
        )
        assert all(s > 1.0 for s in speedups.values())

    def test_format(self, cells):
        out = format_fig11(cells)
        assert "llama2-7b" in out and "OOM" in out


class TestFig12b:
    def test_oaken_overhead_single_digit_percent(self):
        rows = [
            r for r in run_fig12b() if r.system == "oaken-lpddr"
        ]
        for row in rows:
            assert row.quant_share_percent < 3.0
            assert row.dequant_share_percent < 8.0

    def test_oaken_gpu_overhead_large(self):
        rows = {
            (r.system, r.batch): r for r in run_fig12b()
        }
        gpu = rows[("oaken-gpu", 64)]
        npu = rows[("oaken-lpddr", 64)]
        assert gpu.dequant_share_percent > (
            3 * npu.dequant_share_percent
        )

    def test_oaken_attention_faster_than_lpu(self):
        rows = {(r.system, r.batch): r for r in run_fig12b()}
        # Paper: attention ~55% shorter than LPU on average.
        assert rows[("oaken-lpddr", 64)].attn_s < (
            0.5 * rows[("lpu", 64)].attn_s
        )


class TestFig13:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_fig13()

    def test_only_oaken_lpddr_completes_32k(self, cells):
        at_32k = {
            c.system: c for c in cells if c.total_length == 32768
        }
        assert not at_32k["oaken-lpddr"].oom
        for name, cell in at_32k.items():
            if name != "oaken-lpddr":
                assert cell.oom

    def test_gpu_leads_at_short_sequences(self, cells):
        at_1k = {
            c.system: c for c in cells
            if c.total_length == 1024 and not c.oom
        }
        assert at_1k["qserve-gpu"].tokens_per_s > (
            at_1k["oaken-lpddr"].tokens_per_s
        )

    def test_hbm_systems_drop_out_beyond_16k(self, cells):
        at_16k = {
            c.system: c for c in cells if c.total_length == 16384
        }
        assert at_16k["qserve-gpu"].oom or at_16k["oaken-hbm"].oom

    def test_format(self, cells):
        assert "OOM" in format_fig13(cells)


class TestFig14:
    def test_mixtral_exclusions(self):
        systems = systems_for_model("mixtral-8x7b")
        assert "oaken-hbm" not in systems
        assert "qserve-gpu" not in systems
        assert "oaken-hbm" in systems_for_model("llama2-13b")

    def test_burstgpt_amplifies_oaken_gain(self):
        cells = run_fig14(
            models=("llama2-13b",), batches=(64,), num_requests=128
        )
        by_key = {(c.trace, c.system): c for c in cells}

        def gain(trace):
            return (
                by_key[(trace, "oaken-lpddr")].tokens_per_s
                / by_key[(trace, "lpu")].tokens_per_s
            )

        assert gain("burstgpt") > gain("conversation") * 0.95
        assert gain("burstgpt") > 1.2

    def test_tender_suffers_on_ragged_traces(self):
        cells = run_fig14(
            models=("llama2-13b",), traces=("conversation",),
            batches=(64,), num_requests=128,
        )
        by_system = {c.system: c for c in cells}
        assert by_system["tender"].tokens_per_s < (
            by_system["qserve-gpu"].tokens_per_s
        )


class TestTable4:
    def test_paper_headlines(self):
        result = run_table4()[0]
        assert result.oaken_overhead_percent == pytest.approx(
            8.21, abs=0.05
        )
        assert result.accelerator_power_w == pytest.approx(222.7, abs=0.1)
        assert result.power_saving_vs_a100_percent == pytest.approx(
            44.3, abs=0.1
        )

    def test_format(self):
        out = format_table4(run_table4())
        assert "quant_engine" in out and "222.7" in out

    def test_label_mismatch_rejected(self):
        from repro.core.config import OakenConfig

        with pytest.raises(ValueError):
            run_table4(configs=(OakenConfig(),), labels=("a", "b"))
