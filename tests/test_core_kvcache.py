"""Unit tests for the paged quantized KV cache."""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.kvcache import LayerKVCache, QuantizedKVCache
from repro.core.quantizer import OakenQuantizer

from conftest import make_kv_matrix


def make_cache(samples, layers=2):
    keys = [
        OakenQuantizer.from_samples(samples, OakenConfig())
        for _ in range(layers)
    ]
    values = [
        OakenQuantizer.from_samples(samples, OakenConfig())
        for _ in range(layers)
    ]
    return QuantizedKVCache(keys, values)


class TestLayerKVCache:
    def test_append_and_read(self, kv_samples):
        cache = make_cache(kv_samples).layers[0]
        k = make_kv_matrix(tokens=10, seed=5)
        v = make_kv_matrix(tokens=10, seed=6)
        cache.append(k, v)
        rk, rv = cache.read()
        assert rk.shape == k.shape and rv.shape == v.shape
        assert np.sqrt(np.mean((rk - k) ** 2)) / k.std() < 0.1

    def test_incremental_appends_concatenate(self, kv_samples):
        cache = make_cache(kv_samples).layers[0]
        for step in range(4):
            cache.append(
                make_kv_matrix(tokens=2, seed=step),
                make_kv_matrix(tokens=2, seed=step + 100),
            )
        assert cache.length == 8
        rk, rv = cache.read()
        assert rk.shape[0] == 8

    def test_single_token_append(self, kv_samples):
        cache = make_cache(kv_samples).layers[0]
        cache.append(
            make_kv_matrix(tokens=1, seed=1),
            make_kv_matrix(tokens=1, seed=2),
        )
        assert cache.length == 1

    def test_shape_mismatch_rejected(self, kv_samples):
        cache = make_cache(kv_samples).layers[0]
        with pytest.raises(ValueError):
            cache.append(
                make_kv_matrix(tokens=2), make_kv_matrix(tokens=3)
            )

    def test_read_empty_rejected(self, kv_samples):
        cache = make_cache(kv_samples).layers[0]
        with pytest.raises(RuntimeError):
            cache.read()

    def test_bytes_grow_with_appends(self, kv_samples):
        cache = make_cache(kv_samples).layers[0]
        cache.append(make_kv_matrix(tokens=4), make_kv_matrix(tokens=4))
        first = cache.nbytes()
        cache.append(make_kv_matrix(tokens=4), make_kv_matrix(tokens=4))
        assert cache.nbytes() > first

    def test_effective_bitwidth_in_range(self, kv_samples):
        cache = make_cache(kv_samples).layers[0]
        cache.append(
            make_kv_matrix(tokens=32), make_kv_matrix(tokens=32)
        )
        assert 4.0 < cache.effective_bitwidth() < 7.0


class TestQuantizedKVCache:
    def test_layer_count_mismatch_rejected(self, kv_samples):
        q = OakenQuantizer.from_samples(kv_samples, OakenConfig())
        with pytest.raises(ValueError):
            QuantizedKVCache([q, q], [q])

    def test_whole_model_flow(self, kv_samples):
        cache = make_cache(kv_samples, layers=3)
        for layer in range(3):
            cache.append(
                layer,
                make_kv_matrix(tokens=6, seed=layer),
                make_kv_matrix(tokens=6, seed=layer + 50),
            )
        assert cache.num_layers == 3
        assert cache.length == 6
        rk, rv = cache.read(1)
        assert rk.shape[0] == 6
        assert cache.nbytes() > 0

    def test_summary_keys(self, kv_samples):
        cache = make_cache(kv_samples)
        cache.append(0, make_kv_matrix(tokens=2), make_kv_matrix(tokens=2))
        cache.append(1, make_kv_matrix(tokens=2), make_kv_matrix(tokens=2))
        summary = cache.summary()
        assert set(summary) == {
            "layers", "tokens", "bytes", "effective_bitwidth"
        }
        assert summary["layers"] == 2.0

    def test_empty_cache_bitwidth_zero(self, kv_samples):
        cache = make_cache(kv_samples)
        assert cache.effective_bitwidth() == 0.0
        assert cache.length == 0

    def test_compression_vs_fp16(self, kv_samples):
        cache = make_cache(kv_samples, layers=1)
        k = make_kv_matrix(tokens=64)
        cache.append(0, k, k)
        fp16_bytes = 2 * k.size * 2
        assert cache.nbytes() < fp16_bytes / 2
