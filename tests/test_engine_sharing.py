"""Shared-prefix copy-on-write pool vs. a no-sharing twin, bit-for-bit.

The pinned contract: a forked sequence is *indistinguishable* from an
unshared copy — every ``read()`` byte-identical, for every registry
method, with and without tiering, under looped and batched paths.  The
harness replays seeded random op sequences (allocate / fork / append /
append_batch / read / read_batch / free at random points) against a
mirrored pool that never forks (the mirror re-encodes every forked
prefix from the same raw rows), asserting byte equality plus
refcount/footprint invariants after every op.
"""

import numpy as np
import pytest

from repro.engine import (
    BASELINE_NAMES,
    FusedCacheBackend,
    KVCachePool,
    TieredKVStore,
    shared_backend_factory,
)

from conftest import make_kv_matrix

pytestmark = pytest.mark.sharing

LAYERS = 2
DIM = 8
SEEDS = range(5)
OPS = 200
MAX_LIVE = 8
MAX_ROWS = 60


@pytest.fixture(scope="module", params=sorted(BASELINE_NAMES))
def factory(request):
    """One shared-quantizer factory per registry method.

    Both twin pools are built from the *same* factory, so their
    backends share fitted quantizers — any byte difference is the
    sharing layer's fault, never calibration drift.
    """
    calibration = [
        (
            make_kv_matrix(
                tokens=48, dim=DIM, seed=70 + layer,
                outlier_channels=(1, 5),
            ),
            make_kv_matrix(
                tokens=48, dim=DIM, seed=80 + layer,
                outlier_channels=(1, 5),
            ),
        )
        for layer in range(LAYERS)
    ]
    return shared_backend_factory(request.param, calibration=calibration)


class _Driver:
    """Twin-pool differential state machine.

    ``sharing`` forks; ``mirror`` re-encodes forked prefixes from the
    recorded raw rows.  ``history[seq][layer]`` is the exact float32
    row stream both pools have seen for that sequence, so a mirror of
    any fork can always be rebuilt from first principles.
    """

    def __init__(self, factory, tiered, seed):
        tiering = None
        if tiered:
            # Small device budget so the op stream genuinely spills.
            tiering = TieredKVStore(
                device_budget_bytes=2048.0, page_bytes=256.0
            )
        self.sharing = KVCachePool(factory, tiering=tiering)
        self.mirror = KVCachePool(factory)
        # Only the fused chunked backend aliases storage; adapter
        # backends fork by exact-row copy (bit-exact, no byte savings).
        self.cow = isinstance(factory(), FusedCacheBackend)
        self.rng = np.random.default_rng(seed)
        self.history = {}
        self.next_id = 0
        self.forked = 0

    # -- helpers -------------------------------------------------------

    def rows(self, n):
        return self.rng.standard_normal((n, DIM)).astype(np.float32)

    def live(self):
        return list(self.history)

    def length(self, seq_id):
        return sum(k.shape[0] for k, _ in self.history[seq_id][0])

    def pick(self):
        seqs = self.live()
        return seqs[int(self.rng.integers(len(seqs)))]

    # -- ops -----------------------------------------------------------

    def op_allocate(self):
        seq_id = self.next_id
        self.next_id += 1
        self.sharing.allocate(seq_id)
        self.mirror.allocate(seq_id)
        self.history[seq_id] = {layer: [] for layer in range(LAYERS)}
        return [seq_id]

    def op_fork(self):
        parent = self.pick()
        parent_len = self.length(parent)
        if parent_len < 1:
            return self.op_append()
        child = self.next_id
        self.next_id += 1
        prefix_len = int(self.rng.integers(1, parent_len + 1))
        self.sharing.fork(parent, child, prefix_len)
        self.mirror.allocate(child)
        self.history[child] = {}
        for layer in range(LAYERS):
            keys = np.concatenate(
                [k for k, _ in self.history[parent][layer]]
            )[:prefix_len]
            values = np.concatenate(
                [v for _, v in self.history[parent][layer]]
            )[:prefix_len]
            self.mirror.append(child, layer, keys, values)
            self.history[child][layer] = [(keys, values)]
        self.forked += 1
        # The boundary split rewrites the parent's chunk list in
        # place, so the parent's bytes must be re-verified too.
        return [parent, child]

    def op_append(self):
        seq_id = self.pick()
        if self.length(seq_id) >= MAX_ROWS:
            return [seq_id]
        n = int(self.rng.integers(1, 4))
        for layer in range(LAYERS):
            keys, values = self.rows(n), self.rows(n)
            self.sharing.append(seq_id, layer, keys, values)
            self.mirror.append(seq_id, layer, keys, values)
            self.history[seq_id][layer].append((keys, values))
        return [seq_id]

    def op_append_batch(self):
        seqs = [
            s for s in self.live() if self.length(s) < MAX_ROWS
        ]
        if not seqs:
            return []
        size = int(self.rng.integers(1, min(4, len(seqs)) + 1))
        picked = [
            seqs[i]
            for i in self.rng.choice(len(seqs), size=size, replace=False)
        ]
        for layer in range(LAYERS):
            batch = {}
            for seq_id in picked:
                keys, values = self.rows(1), self.rows(1)
                batch[seq_id] = (keys, values)
                self.history[seq_id][layer].append((keys, values))
            self.sharing.append_batch(layer, batch)
            self.mirror.append_batch(layer, dict(batch))
        return picked

    def op_read(self):
        seq_id = self.pick()
        if self.length(seq_id) == 0:
            return [seq_id]
        layer = int(self.rng.integers(LAYERS))
        a = self.sharing.read(seq_id, layer)
        b = self.mirror.read(seq_id, layer)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        return [seq_id]

    def op_read_batch(self):
        seqs = [s for s in self.live() if self.length(s) > 0]
        if not seqs:
            return []
        size = int(self.rng.integers(1, min(4, len(seqs)) + 1))
        picked = [
            seqs[i]
            for i in self.rng.choice(len(seqs), size=size, replace=False)
        ]
        layer = int(self.rng.integers(LAYERS))
        got = self.sharing.read_batch(layer, picked)
        want = self.mirror.read_batch(layer, picked)
        for (ak, av), (bk, bv) in zip(got, want):
            np.testing.assert_array_equal(ak, bk)
            np.testing.assert_array_equal(av, bv)
        return picked

    def op_free(self):
        seq_id = self.pick()
        self.sharing.free(seq_id)
        assert self.mirror.free(seq_id) or self.length(seq_id) == 0
        del self.history[seq_id]
        return []

    # -- invariants ----------------------------------------------------

    def verify(self, seq_ids):
        """Byte equality for ``seq_ids`` + footprint invariants."""
        for seq_id in seq_ids:
            if seq_id not in self.history or self.length(seq_id) == 0:
                continue
            for layer in range(LAYERS):
                a = self.sharing.read(seq_id, layer)
                b = self.mirror.read(seq_id, layer)
                np.testing.assert_array_equal(a[0], b[0])
                np.testing.assert_array_equal(a[1], b[1])
        shared_bytes, _ = self.sharing.measure()
        mirror_bytes, _ = self.mirror.measure()
        summary = self.sharing.summary()
        # Charge-once accounting: the sharing pool's footprint is the
        # mirror's minus exactly the refcounted overcount.
        assert np.isclose(
            shared_bytes, mirror_bytes - summary["shared_extra_bytes"]
        ), (shared_bytes, mirror_bytes, summary)
        assert shared_bytes <= mirror_bytes + 1e-9
        assert summary["shared_extra_bytes"] >= 0.0
        assert summary["shared_bytes"] <= mirror_bytes + 1e-9

    def drain(self):
        for seq_id in list(self.history):
            self.sharing.free(seq_id)
            self.mirror.free(seq_id)
        summary = self.sharing.summary()
        assert summary["shared_chunks"] == 0.0
        assert summary["shared_extra_bytes"] == 0.0
        shared_bytes, _ = self.sharing.measure()
        assert shared_bytes == 0.0
        if self.forked and self.cow:
            assert summary["shared_bytes_saved"] > 0.0


def _run(factory, tiered, seed):
    driver = _Driver(factory, tiered, seed)
    driver.op_allocate()
    ops = (
        ("allocate", 0.08),
        ("fork", 0.16),
        ("append", 0.28),
        ("append_batch", 0.14),
        ("read", 0.10),
        ("read_batch", 0.10),
        ("free", 0.14),
    )
    names = [name for name, _ in ops]
    weights = np.array([w for _, w in ops])
    weights /= weights.sum()
    for step in range(OPS):
        name = names[
            int(driver.rng.choice(len(names), p=weights))
        ]
        if name in ("allocate", "fork") and len(driver.live()) >= MAX_LIVE:
            name = "append"
        if name == "free" and len(driver.live()) <= 1:
            name = "allocate"
        touched = getattr(driver, f"op_{name}")()
        driver.verify(touched)
        if step % 16 == 15:
            driver.verify(driver.live())
    driver.verify(driver.live())
    assert driver.forked > 0, "op stream never forked; widen weights"
    driver.drain()


@pytest.mark.parametrize("seed", SEEDS)
class TestDifferentialReplay:
    """Seeded op-stream replays: every method, both tiering modes."""

    def test_untiered(self, factory, seed):
        _run(factory, tiered=False, seed=seed)

    def test_tiered(self, factory, seed):
        _run(factory, tiered=True, seed=seed)


def _require_cow(factory):
    """Skip for adapter backends: they fork by exact-row copy, so the
    zero-new-bytes / delta-only properties only hold for the fused
    chunk-aliasing backend."""
    if not isinstance(factory(), FusedCacheBackend):
        pytest.skip("adapter backends copy on fork (no byte aliasing)")


class TestChargeOnceAccounting:
    """The admission-capacity face of sharing: shared bytes are
    charged exactly once by ``nbytes()``/``measure``."""

    def test_fork_adds_zero_bytes(self, factory):
        _require_cow(factory)
        pool = KVCachePool(factory)
        pool.allocate("parent")
        rng = np.random.default_rng(0)
        for layer in range(LAYERS):
            rows = rng.standard_normal((6, DIM)).astype(np.float32)
            pool.append("parent", layer, rows, rows)
        before, _ = pool.measure()
        child = pool.fork("parent", "child", 6)
        after, _ = pool.measure()
        assert after == before
        assert child.nbytes() > 0.0

    def test_divergence_charges_only_the_delta(self, factory):
        _require_cow(factory)
        pool = KVCachePool(factory)
        twin = KVCachePool(factory)
        rng = np.random.default_rng(1)
        prefix = rng.standard_normal((5, DIM)).astype(np.float32)
        fresh = rng.standard_normal((2, DIM)).astype(np.float32)
        pool.allocate("parent")
        twin.allocate("solo")
        for layer in range(LAYERS):
            pool.append("parent", layer, prefix, prefix)
        pool.fork("parent", "child", 5)
        before, _ = pool.measure()
        for layer in range(LAYERS):
            pool.append("child", layer, fresh, fresh)
            twin.append("solo", layer, fresh, fresh)
        after, _ = pool.measure()
        delta, _ = twin.measure()
        assert np.isclose(after - before, delta)

    def test_last_reference_drop_releases_everything(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("a")
        rng = np.random.default_rng(2)
        for layer in range(LAYERS):
            rows = rng.standard_normal((4, DIM)).astype(np.float32)
            pool.append("a", layer, rows, rows)
        pool.fork("a", "b", 4)
        pool.fork("a", "c", 2)
        for seq_id in ("a", "b", "c"):
            pool.free(seq_id)
        total, _ = pool.measure()
        assert total == 0.0
        assert pool.summary()["shared_chunks"] == 0.0


class TestForkValidation:
    def test_unknown_parent(self, factory):
        pool = KVCachePool(factory)
        with pytest.raises(KeyError, match="ghost"):
            pool.fork("ghost", "child", 1)

    def test_child_already_allocated(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("a")
        pool.allocate("b")
        rows = np.zeros((2, DIM), dtype=np.float32)
        for layer in range(LAYERS):
            pool.append("a", layer, rows, rows)
        with pytest.raises(ValueError, match="already allocated"):
            pool.fork("a", "b", 1)

    def test_prefix_past_cached_length(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("a")
        rows = np.zeros((2, DIM), dtype=np.float32)
        for layer in range(LAYERS):
            pool.append("a", layer, rows, rows)
        with pytest.raises(ValueError, match="prefix_len"):
            pool.fork("a", "child", 3)
