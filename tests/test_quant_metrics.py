"""Unit tests for error metrics and storage accounting."""

import numpy as np
import pytest

from repro.quant.metrics import (
    StorageFootprint,
    effective_bitwidth,
    max_abs_error,
    mean_squared_error,
    signal_to_quantization_noise,
)


class TestErrorMetrics:
    def test_mse_zero_for_identical(self):
        x = np.ones((4, 4))
        assert mean_squared_error(x, x) == 0.0

    def test_mse_known_value(self):
        a = np.zeros(4)
        b = np.full(4, 2.0)
        assert mean_squared_error(a, b) == pytest.approx(4.0)

    def test_max_abs_known_value(self):
        a = np.array([0.0, 1.0, -3.0])
        b = np.array([0.5, 1.0, 1.0])
        assert max_abs_error(a, b) == pytest.approx(4.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_empty_arrays(self):
        assert mean_squared_error(np.array([]), np.array([])) == 0.0
        assert max_abs_error(np.array([]), np.array([])) == 0.0

    def test_sqnr_infinite_for_exact(self):
        x = np.arange(5.0)
        assert signal_to_quantization_noise(x, x) == float("inf")

    def test_sqnr_known_value(self):
        signal = np.full(8, 10.0)
        noisy = signal + 1.0
        # 10 log10(100 / 1) = 20 dB
        assert signal_to_quantization_noise(signal, noisy) == (
            pytest.approx(20.0)
        )

    def test_sqnr_zero_signal(self):
        assert signal_to_quantization_noise(
            np.zeros(4), np.ones(4)
        ) == float("-inf")


class TestStorageFootprint:
    def test_effective_bitwidth(self):
        fp = StorageFootprint(
            element_count=100, dense_bits=400.0, sparse_bits=80.0,
            metadata_bits=20.0,
        )
        assert fp.effective_bitwidth == pytest.approx(5.0)
        assert fp.total_bytes == pytest.approx(62.5)

    def test_zero_elements(self):
        assert StorageFootprint(element_count=0).effective_bitwidth == 0.0

    def test_compression_ratio_vs_fp16(self):
        fp = StorageFootprint(element_count=100, dense_bits=400.0)
        assert fp.compression_ratio() == pytest.approx(4.0)

    def test_merge_adds_components(self):
        a = StorageFootprint(
            element_count=10, dense_bits=40, breakdown={"d": 40.0}
        )
        b = StorageFootprint(
            element_count=10, dense_bits=60, sparse_bits=8,
            breakdown={"d": 60.0, "s": 8.0},
        )
        merged = a.merged_with(b)
        assert merged.element_count == 20
        assert merged.dense_bits == 100
        assert merged.breakdown["d"] == 100.0
        assert merged.breakdown["s"] == 8.0

    def test_helper_function(self):
        assert effective_bitwidth(10, 40.0, 8.0, 2.0) == pytest.approx(5.0)
