"""Byte-arithmetic bitpack fast paths must match the generic kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.bitpack import (
    _pack_bits_generic,
    _unpack_bits_generic,
    pack_bits,
    packed_nbytes,
    unpack_bits,
)


@pytest.mark.parametrize("width", [4, 8])
@pytest.mark.parametrize("count", [0, 1, 2, 3, 7, 8, 63, 64, 1000])
def test_fast_pack_matches_generic(width, count):
    rng = np.random.default_rng(width * 1000 + count)
    codes = rng.integers(0, 1 << width, size=count, dtype=np.uint32)
    fast = pack_bits(codes, width)
    generic = _pack_bits_generic(codes, width, packed_nbytes(count, width))
    if count == 0:
        assert fast.size == packed_nbytes(count, width)
    else:
        np.testing.assert_array_equal(fast, generic)
    assert fast.dtype == np.uint8


@pytest.mark.parametrize("width", [4, 8])
@pytest.mark.parametrize("count", [1, 2, 3, 7, 8, 63, 64, 1000])
def test_fast_unpack_matches_generic_and_roundtrips(width, count):
    rng = np.random.default_rng(width * 77 + count)
    codes = rng.integers(0, 1 << width, size=count, dtype=np.uint32)
    packed = pack_bits(codes, width)
    fast = unpack_bits(packed, width, count)
    generic = _unpack_bits_generic(packed, width, count)
    np.testing.assert_array_equal(fast, generic)
    np.testing.assert_array_equal(fast, codes.astype(np.uint16))
    assert fast.dtype == np.uint16


@given(
    width=st.sampled_from([4, 8]),
    seed=st.integers(0, 10_000),
    count=st.integers(0, 257),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(width, seed, count):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 1 << width, size=count, dtype=np.uint32)
    restored = unpack_bits(pack_bits(codes, width), width, count)
    np.testing.assert_array_equal(restored, codes.astype(np.uint16))


def test_overflowing_code_still_rejected():
    with pytest.raises(ValueError):
        pack_bits(np.array([16]), 4)
    with pytest.raises(ValueError):
        pack_bits(np.array([256]), 8)
