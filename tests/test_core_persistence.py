"""Tests for profile persistence and batch-invariance properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OakenConfig
from repro.core.persistence import (
    config_from_dict,
    config_to_dict,
    load_profile,
    save_profile,
    thresholds_from_dict,
    thresholds_to_dict,
)
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds

from conftest import make_kv_matrix


class TestPersistence:
    def test_config_roundtrip(self):
        config = OakenConfig.from_ratio_string(
            "2/2/90/6", outlier_bits=4, group_shift=False
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored == config

    def test_thresholds_roundtrip(self, kv_matrix):
        thresholds = profile_thresholds([kv_matrix], OakenConfig())
        restored = thresholds_from_dict(
            thresholds_to_dict(thresholds)
        )
        assert restored == thresholds

    def test_profile_roundtrip(self, kv_matrix):
        config = OakenConfig()
        layers = {
            (0, "key"): profile_thresholds([kv_matrix], config),
            (0, "value"): profile_thresholds([kv_matrix * 0.3], config),
            (1, "key"): profile_thresholds([kv_matrix * 2], config),
        }
        text = save_profile(config, layers, model_name="llama2-7b")
        loaded_config, loaded_layers, name = load_profile(text)
        assert loaded_config == config
        assert name == "llama2-7b"
        assert loaded_layers.keys() == layers.keys()
        assert loaded_layers[(1, "key")] == layers[(1, "key")]

    def test_loaded_profile_quantizes_identically(self, kv_matrix):
        config = OakenConfig()
        thresholds = profile_thresholds([kv_matrix], config)
        text = save_profile(config, {(0, "key"): thresholds})
        loaded_config, loaded, _ = load_profile(text)
        original = OakenQuantizer(config, thresholds)
        restored = OakenQuantizer(loaded_config, loaded[(0, "key")])
        np.testing.assert_array_equal(
            original.roundtrip(kv_matrix),
            restored.roundtrip(kv_matrix),
        )

    def test_bad_kind_rejected(self, kv_matrix):
        config = OakenConfig()
        thresholds = profile_thresholds([kv_matrix], config)
        with pytest.raises(ValueError):
            save_profile(config, {(0, "weights"): thresholds})

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            load_profile('{"format": "other"}')


class TestBatchInvariance:
    """Per-token quantization must not depend on batch composition.

    This is what lets the hardware quantize each newly generated token
    independently of its neighbours — the whole premise of the
    streaming engine.
    """

    def test_split_equals_whole(self, kv_samples):
        quantizer = OakenQuantizer.from_samples(
            kv_samples, OakenConfig()
        )
        x = make_kv_matrix(tokens=60, seed=21)
        whole = quantizer.roundtrip(x)
        parts = np.concatenate(
            [
                quantizer.roundtrip(x[:20]),
                quantizer.roundtrip(x[20:45]),
                quantizer.roundtrip(x[45:]),
            ]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_single_token_equals_batched(self, kv_samples):
        quantizer = OakenQuantizer.from_samples(
            kv_samples, OakenConfig()
        )
        x = make_kv_matrix(tokens=8, seed=33)
        whole = quantizer.roundtrip(x)
        rows = np.concatenate(
            [quantizer.roundtrip(x[i : i + 1]) for i in range(8)]
        )
        np.testing.assert_array_equal(whole, rows)

    @given(split=st.integers(1, 47), seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_property_any_split_point(self, split, seed, kv_samples):
        quantizer = OakenQuantizer.from_samples(
            kv_samples, OakenConfig()
        )
        x = make_kv_matrix(tokens=48, seed=seed)
        whole = quantizer.roundtrip(x)
        parts = np.concatenate(
            [
                quantizer.roundtrip(x[:split]),
                quantizer.roundtrip(x[split:]),
            ]
        )
        np.testing.assert_array_equal(whole, parts)
