"""Unit tests for the fault-injection plan layer."""

import pytest

from repro.serving.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    admission_blackout,
    brownout,
    crash_and_recover,
    crash_forever,
    generate_fault_plan,
)

pytestmark = pytest.mark.cluster


class TestFaultEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(-0.1, 0, FaultKind.CRASH)

    def test_negative_replica_rejected(self):
        with pytest.raises(ValueError, match="replica"):
            FaultEvent(0.0, -1, FaultKind.CRASH)

    def test_brownout_needs_slowdown_factor(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(0.0, 0, FaultKind.BROWNOUT, factor=0.5)
        FaultEvent(0.0, 0, FaultKind.BROWNOUT, factor=2.0)


class TestFaultPlan:
    def test_events_sorted_on_construction(self):
        plan = FaultPlan(
            crash_and_recover(1, 5.0, 1.0) + crash_and_recover(0, 1.0, 2.0)
        )
        times = [e.time_s for e in plan.events]
        assert times == sorted(times)

    def test_enabled(self):
        assert not FaultPlan([]).enabled
        assert FaultPlan(crash_forever(0, 1.0)).enabled

    def test_validate_rejects_out_of_range_replica(self):
        plan = FaultPlan(crash_forever(3, 1.0))
        with pytest.raises(ValueError, match="replica 3"):
            plan.validate(replicas=2)

    def test_validate_rejects_recover_without_crash(self):
        plan = FaultPlan([FaultEvent(1.0, 0, FaultKind.RECOVER)])
        with pytest.raises(ValueError, match="without a matching"):
            plan.validate(replicas=1)

    def test_validate_rejects_double_crash(self):
        plan = FaultPlan(
            [
                FaultEvent(1.0, 0, FaultKind.CRASH),
                FaultEvent(2.0, 0, FaultKind.CRASH),
            ]
        )
        with pytest.raises(ValueError, match="still open"):
            plan.validate(replicas=1)

    def test_crash_forever_is_valid(self):
        FaultPlan(crash_forever(0, 1.0)).validate(replicas=1)

    def test_for_replica_filters(self):
        plan = FaultPlan(
            crash_and_recover(0, 1.0, 1.0) + brownout(1, 2.0, 1.0)
        )
        assert all(e.replica == 1 for e in plan.for_replica(1))
        assert len(plan.for_replica(0)) == 2


class TestWindowHelpers:
    def test_crash_and_recover_pairs(self):
        crash, recover = crash_and_recover(2, 1.5, 0.5)
        assert crash.kind is FaultKind.CRASH
        assert recover.kind is FaultKind.RECOVER
        assert recover.time_s == pytest.approx(2.0)

    def test_nonpositive_windows_rejected(self):
        with pytest.raises(ValueError):
            crash_and_recover(0, 1.0, 0.0)
        with pytest.raises(ValueError):
            brownout(0, 1.0, -1.0)
        with pytest.raises(ValueError):
            admission_blackout(0, 1.0, 0.0)


class TestGeneratePlan:
    def test_seeded_plans_identical(self):
        a = generate_fault_plan(4, 20.0, seed=11)
        b = generate_fault_plan(4, 20.0, seed=11)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = generate_fault_plan(4, 50.0, seed=1, crash_rate=0.2)
        b = generate_fault_plan(4, 50.0, seed=2, crash_rate=0.2)
        assert a.events != b.events

    def test_generated_plan_validates(self):
        plan = generate_fault_plan(
            3, 30.0, seed=5, crash_rate=0.2, brownout_rate=0.2,
            reject_rate=0.2,
        )
        plan.validate(replicas=3)
        assert plan.enabled

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            generate_fault_plan(0, 10.0)
        with pytest.raises(ValueError):
            generate_fault_plan(2, 0.0)
