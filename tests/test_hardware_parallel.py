"""Tests of the explicit pipeline-parallel model (Section 6.1 setup)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.overheads import get_system
from repro.hardware.parallel import (
    PipelinePlan,
    partition_layers,
    pipeline_generation_iteration,
    pipeline_max_batch,
)
from repro.hardware.perf import generation_iteration, max_supported_batch
from repro.models.config import get_model

LLAMA70B = get_model("llama2-70b").arch
LLAMA13B = get_model("llama2-13b").arch


class TestPartitionLayers:
    def test_even_split(self):
        assert partition_layers(80, 2) == (40, 40)

    def test_remainder_goes_to_front_stages(self):
        assert partition_layers(41, 2) == (21, 20)
        assert partition_layers(10, 3) == (4, 3, 3)

    def test_single_stage_identity(self):
        assert partition_layers(32, 1) == (32,)

    def test_counts_sum_to_layers(self):
        for layers in (7, 32, 80):
            for stages in (1, 2, 3, 4):
                if layers >= stages:
                    assert sum(partition_layers(layers, stages)) == layers

    def test_more_stages_than_layers_rejected(self):
        with pytest.raises(ValueError, match="split"):
            partition_layers(2, 3)

    def test_zero_stages_rejected(self):
        with pytest.raises(ValueError, match="num_stages"):
            partition_layers(8, 0)


class TestPipelinePlan:
    def test_balanced_constructor(self):
        plan = PipelinePlan.balanced(LLAMA70B, 2, microbatches=4)
        assert plan.layer_split == (40, 40)
        assert plan.microbatches == 4

    def test_invalid_microbatches_rejected(self):
        with pytest.raises(ValueError, match="microbatches"):
            PipelinePlan(layer_split=(40, 40), microbatches=0)

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError, match="layer"):
            PipelinePlan(layer_split=(40, 0))


class TestIterationTiming:
    def test_single_stage_matches_monolithic_model(self):
        """A 1-stage, 1-microbatch pipeline is exactly the perf model."""
        system = get_system("vllm")
        plan = PipelinePlan.balanced(LLAMA13B, 1)
        pipe = pipeline_generation_iteration(
            system, LLAMA13B, batch=16, context=1024, plan=plan
        )
        mono = generation_iteration(system, LLAMA13B, 16, 1024)
        assert pipe.iteration_s == pytest.approx(mono.total_s, rel=1e-9)
        assert pipe.bubble_fraction == pytest.approx(0.0)

    def test_plan_must_cover_model(self):
        system = get_system("vllm")
        plan = PipelinePlan(layer_split=(10, 10))
        with pytest.raises(ValueError, match="layers"):
            pipeline_generation_iteration(
                system, LLAMA13B, batch=4, context=256, plan=plan
            )

    def test_batch_must_be_positive(self):
        system = get_system("vllm")
        plan = PipelinePlan.balanced(LLAMA13B, 2)
        with pytest.raises(ValueError, match="batch"):
            pipeline_generation_iteration(
                system, LLAMA13B, batch=0, context=256, plan=plan
            )

    def test_two_stages_one_microbatch_adds_no_bubble_but_serializes(
        self,
    ):
        """M=1: the iteration is the sum of stage times (pure serial
        dependency), and the bottleneck device idles half the time."""
        system = get_system("vllm")
        plan = PipelinePlan.balanced(LLAMA70B, 2, microbatches=1)
        pipe = pipeline_generation_iteration(
            system, LLAMA70B, batch=16, context=1024, plan=plan
        )
        total = sum(s.total_s for s in pipe.stage_times)
        assert pipe.iteration_s == pytest.approx(total)
        assert pipe.bubble_fraction == pytest.approx(0.5, abs=0.02)

    def test_microbatching_shrinks_bubble(self):
        system = get_system("vllm")
        bubbles = []
        for m in (1, 2, 4, 8):
            plan = PipelinePlan.balanced(LLAMA70B, 2, microbatches=m)
            pipe = pipeline_generation_iteration(
                system, LLAMA70B, batch=32, context=1024, plan=plan
            )
            bubbles.append(pipe.bubble_fraction)
        assert bubbles == sorted(bubbles, reverse=True)
        # GPipe bound for equal stages: (S-1)/(S+M-1).
        assert bubbles[-1] == pytest.approx(1.0 / 9.0, abs=0.02)

    def test_microbatching_restreams_weights(self):
        """More microbatches re-pay the weight stream: per-microbatch
        nonattn time is weight-bound and constant, so M microbatches
        cost ~M weight streams on the bottleneck stage."""
        system = get_system("vllm")
        one = pipeline_generation_iteration(
            system, LLAMA70B, batch=32, context=1024,
            plan=PipelinePlan.balanced(LLAMA70B, 2, microbatches=1),
        )
        eight = pipeline_generation_iteration(
            system, LLAMA70B, batch=32, context=1024,
            plan=PipelinePlan.balanced(LLAMA70B, 2, microbatches=8),
        )
        # Weight-bound regime: despite the smaller bubble, total
        # iteration time grows because each microbatch restreams the
        # 70B weight slice.
        assert eight.iteration_s > one.iteration_s

    def test_bottleneck_is_larger_stage(self):
        system = get_system("vllm")
        plan = PipelinePlan(layer_split=(60, 20))
        pipe = pipeline_generation_iteration(
            system, LLAMA70B, batch=16, context=1024, plan=plan
        )
        assert pipe.bottleneck_stage == 0

    def test_throughput_property(self):
        system = get_system("vllm")
        plan = PipelinePlan.balanced(LLAMA70B, 2)
        pipe = pipeline_generation_iteration(
            system, LLAMA70B, batch=16, context=1024, plan=plan
        )
        assert pipe.throughput_tokens_per_s == pytest.approx(
            16 / pipe.iteration_s
        )

    @settings(max_examples=20, deadline=None)
    @given(
        stages=st.integers(1, 4),
        microbatches=st.integers(1, 8),
        batch=st.integers(1, 64),
    )
    def test_property_iteration_bounded_below_by_bottleneck(
        self, stages, microbatches, batch
    ):
        system = get_system("vllm")
        plan = PipelinePlan.balanced(
            LLAMA70B, stages, microbatches=microbatches
        )
        pipe = pipeline_generation_iteration(
            system, LLAMA70B, batch=batch, context=512, plan=plan
        )
        slowest = max(s.total_s for s in pipe.stage_times)
        assert pipe.iteration_s >= microbatches * slowest * (1 - 1e-9)
        assert 0.0 <= pipe.bubble_fraction < 1.0


class TestPipelineCapacity:
    def test_two_stage_matches_monolithic_x2_approximation(self):
        """The device catalog's a100x2 (160 GB monolith) and the
        explicit balanced 2-stage pipeline admit ~the same batch."""
        system = get_system("vllm")
        plan = PipelinePlan.balanced(LLAMA70B, 2)
        explicit = pipeline_max_batch(system, LLAMA70B, 2048, plan)
        monolith = max_supported_batch(system, LLAMA70B, 2048)
        assert explicit == pytest.approx(monolith, abs=2)

    def test_unbalanced_split_reduces_capacity(self):
        system = get_system("vllm")
        balanced = pipeline_max_batch(
            system, LLAMA70B, 2048, PipelinePlan.balanced(LLAMA70B, 2)
        )
        skewed = pipeline_max_batch(
            system, LLAMA70B, 2048, PipelinePlan(layer_split=(60, 20))
        )
        assert skewed < balanced

    def test_weights_too_large_for_stage_is_oom(self):
        """Llama2-70B on a single A100 stage: the full 140 GB of
        weights cannot fit, so a 1-stage plan reports 0."""
        system = get_system("vllm")
        plan = PipelinePlan.balanced(LLAMA70B, 1)
        assert pipeline_max_batch(system, LLAMA70B, 2048, plan) == 0

    def test_plan_must_cover_model(self):
        system = get_system("vllm")
        with pytest.raises(ValueError, match="layers"):
            pipeline_max_batch(
                system, LLAMA70B, 2048, PipelinePlan(layer_split=(40,))
            )
