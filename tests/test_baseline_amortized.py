"""Amortized sliding-window reads vs. full re-quantization, bit-for-bit.

The adapter backend's amortized read path
(:meth:`repro.baselines.base.KVCacheQuantizer.stable_prefix` +
:class:`repro.engine.backend._BaselineStream`) must be invisible: for
every registry method, at every step of a streaming append pattern, the
amortized read must equal the one-shot ``roundtrip`` of the full
history — the transform the accuracy harness measures.
"""

import numpy as np
import pytest

from repro.baselines.kivi import KIVIQuantizer
from repro.baselines.registry import available_methods, create_method
from repro.engine.backend import BaselineCacheBackend

from conftest import make_kv_matrix

DIM = 48

#: Ragged per-step append sizes: single tokens, prefill-sized bursts,
#: and a jump larger than any tested window.
APPEND_PATTERN = (3, 1, 7, 1, 1, 40, 2, 1, 1, 1)


def fitted(method, kind, **kwargs):
    if method == "kivi" and kwargs:
        quantizer = KIVIQuantizer(kind, **kwargs)
    else:
        quantizer = create_method(method, kind)
    quantizer.fit(
        [make_kv_matrix(96, DIM, seed=5), make_kv_matrix(96, DIM, seed=6)]
    )
    return quantizer


def stream_and_compare(make_backend):
    """Append the ragged pattern, comparing reads at every step."""
    amortized = make_backend(True)
    full = make_backend(False)
    seed = 0
    for rows in APPEND_PATTERN:
        seed += 1
        keys = make_kv_matrix(rows, DIM, seed=seed)
        values = make_kv_matrix(rows, DIM, seed=seed + 999)
        for backend in (amortized, full):
            backend.append(0, keys, values)
        amortized_keys, amortized_values = amortized.read(0)
        full_keys, full_values = full.read(0)
        np.testing.assert_array_equal(amortized_keys, full_keys)
        np.testing.assert_array_equal(amortized_values, full_values)
    # And against a one-shot roundtrip of the accumulated history.
    matrix = np.concatenate(
        [
            make_kv_matrix(rows, DIM, seed=step + 1)
            for step, rows in enumerate(APPEND_PATTERN)
        ]
    )
    oneshot = np.asarray(
        full._keys[0].quantizer.roundtrip(matrix), dtype=np.float32
    )
    np.testing.assert_array_equal(amortized.read(0)[0], oneshot)


@pytest.mark.parametrize("method", sorted(available_methods()))
def test_amortized_read_matches_full_for_every_method(method):
    def make_backend(amortize):
        return BaselineCacheBackend(
            [fitted(method, "key")],
            [fitted(method, "value")],
            method=method,
            amortize=amortize,
        )

    stream_and_compare(make_backend)


@pytest.mark.parametrize("residual_length", [0, 1, 5, 16, 32, 100])
@pytest.mark.parametrize("group_size", [4, 32])
def test_kivi_window_sizes(residual_length, group_size):
    """The sliding window at several sizes, including degenerate ones.

    ``residual_length=0`` has no FP16 window (stability limited only by
    the trailing partial key group); ``100`` exceeds the final history
    length, so every read stays inside the window.
    """

    def make_backend(amortize):
        kwargs = dict(
            group_size=group_size, residual_length=residual_length
        )
        return BaselineCacheBackend(
            [fitted("kivi", "key", **kwargs)],
            [fitted("kivi", "value", **kwargs)],
            method="kivi",
            amortize=amortize,
        )

    stream_and_compare(make_backend)


def test_stable_prefix_contracts():
    """Spot-check the declared stability geometry."""
    # Row-local methods: everything already decoded stays.
    for method in ("fp16", "oaken", "qserve", "atom", "tender"):
        quantizer = fitted(method, "key")
        assert quantizer.stable_prefix(10, 17) == 10
    # History-global topK: nothing survives.
    assert fitted("kvquant", "key").stable_prefix(10, 17) == 0
    # KIVI keys: old window start, rounded down to a group boundary.
    kivi_key = KIVIQuantizer("key", group_size=4, residual_length=8)
    assert kivi_key.stable_prefix(21, 30) == 12  # (21 - 8) -> 13 -> 12
    assert kivi_key.stable_prefix(6, 30) == 0  # inside the window
    # KIVI values: per-token prefix, no group rounding.
    kivi_value = KIVIQuantizer("value", group_size=4, residual_length=8)
    assert kivi_value.stable_prefix(21, 30) == 13


def test_amortized_reads_are_readonly_and_memoized():
    backend = BaselineCacheBackend(
        [fitted("kivi", "key")], [fitted("kivi", "value")]
    )
    backend.append(0, make_kv_matrix(4, DIM, seed=1),
                   make_kv_matrix(4, DIM, seed=2))
    first_keys, _ = backend.read(0)
    again_keys, _ = backend.read(0)
    assert first_keys is again_keys  # memoized between appends
    with pytest.raises(ValueError):
        first_keys[0, 0] = 1.0
