"""Cache-backed serving replay: a real KVCachePool under the scheduler."""

import dataclasses

import pytest

from repro.data.traces import TraceRequest, generate_trace
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchScheduler
from repro.serving.simulator import (
    CacheReplayConfig,
    _CacheReplay,
    simulate_trace,
)

ARCH = get_model("llama2-13b").arch


def closed_trace(count=6, inputs=64, outputs=6):
    return [
        TraceRequest(arrival_s=0.0, input_tokens=inputs,
                     output_tokens=outputs)
        for _ in range(count)
    ]


class TestReplayEndToEnd:
    @pytest.mark.parametrize("method", ["oaken", "kivi", "fp16"])
    def test_replay_runs_for_paper_method_and_baselines(self, method):
        """The replay mode serves the paper method and any baseline."""
        report = simulate_trace(
            get_system("oaken-lpddr"), ARCH, closed_trace(), 4,
            replay=CacheReplayConfig(method=method),
        )
        assert not report.oom
        assert report.generated_tokens == 6 * 6
        assert report.generation_throughput > 0
        replay = report.replay
        assert replay is not None
        assert replay["method"] == method
        # Batched multi-sequence reads and appends ran every
        # generation iteration.
        assert replay["batched_reads"] > 0
        assert replay["batched_appends"] > 0
        if method == "oaken":
            # Fused backends batch the kernel calls themselves.
            assert replay["batched_encodes"] > 0
            assert replay["batched_decodes"] > 0
        if method == "fp16":
            # Row-local adapter pools batch their writes: one merged
            # roundtrip per tensor across the resident set.
            assert replay["batched_append_roundtrips"] > 0
        # Admission worked off measured footprint, which exists.
        assert 0 < replay["measured_kv_bits"] <= 16.0
        assert replay["peak_pool_bytes"] > 0
        assert replay["replayed_tokens"] > 0

    def test_quantized_method_measures_fewer_bits_than_fp16(self):
        quantized = simulate_trace(
            get_system("oaken-lpddr"), ARCH, closed_trace(), 4,
            replay=CacheReplayConfig(method="oaken"),
        )
        fp16 = simulate_trace(
            get_system("vllm"), ARCH, closed_trace(), 4,
            replay=CacheReplayConfig(method="fp16"),
        )
        assert (
            quantized.replay["measured_kv_bits"]
            < fp16.replay["measured_kv_bits"]
        )

    def test_analytic_mode_unchanged_by_default(self):
        default = simulate_trace(
            get_system("oaken-lpddr"), ARCH, closed_trace(), 4
        )
        explicit = simulate_trace(
            get_system("oaken-lpddr"), ARCH, closed_trace(), 4,
            replay=None,
        )
        assert default.replay is None
        assert dataclasses.asdict(default) == dataclasses.asdict(explicit)

    def test_replay_with_arrivals_and_chunked_prefill(self):
        trace = generate_trace("conversation", num_requests=8, seed=0,
                               max_tokens=128)
        report = simulate_trace(
            get_system("oaken-lpddr"), ARCH, trace, 4,
            prefill_chunk=64,
            replay=CacheReplayConfig(method="oaken"),
        )
        assert not report.oom
        assert report.generated_tokens == sum(
            r.output_tokens for r in trace
        )
        assert report.replay["batched_reads"] > 0

    def test_pool_drains_by_end_of_replay(self):
        config = CacheReplayConfig(method="oaken")
        system = get_system("oaken-lpddr")
        replay_engine = _CacheReplay(config, system, ARCH)
        # Run through simulate_trace separately; then check a fresh
        # engine admits/retires symmetrically.
        request = Request(request_id=0, arrival_s=0.0,
                          input_tokens=32, output_tokens=4)
        replay_engine.admit(request)
        assert len(replay_engine.pool) == 1
        replay_engine.step([request])
        replay_engine.retire([request])
        assert len(replay_engine.pool) == 0
        assert replay_engine.pool.peak_bytes > 0


class TestEngineCycles:
    """engine_cycles=True routes the replay pool through the datapath
    engine models and reports accumulated end-to-end cycles."""

    def test_engine_backed_replay_accumulates_cycles(self):
        report = simulate_trace(
            get_system("oaken-lpddr"), ARCH, closed_trace(), 4,
            replay=CacheReplayConfig(method="oaken",
                                     engine_cycles=True),
        )
        assert not report.oom
        replay = report.replay
        assert replay["engine"] == "vectorized"
        assert replay["engine_quant_cycles"] > 0
        assert replay["engine_dequant_cycles"] > 0
        assert replay["engine_cycles"] == (
            replay["engine_quant_cycles"]
            + replay["engine_dequant_cycles"]
        )
        assert replay["engine_cycles_per_token"] > 0
        # The engine-backed pool still rides the batched paths.
        assert replay["batched_encodes"] > 0
        assert replay["batched_decodes"] > 0

    def test_default_replay_reports_no_cycles(self):
        report = simulate_trace(
            get_system("oaken-lpddr"), ARCH, closed_trace(), 4,
            replay=CacheReplayConfig(method="oaken"),
        )
        assert "engine_cycles" not in report.replay

    def test_engine_cycles_requires_the_paper_method(self):
        with pytest.raises(ValueError, match="oaken"):
            simulate_trace(
                get_system("vllm"), ARCH, closed_trace(), 4,
                replay=CacheReplayConfig(method="fp16",
                                         engine_cycles=True),
            )

    def test_scalar_and_vectorized_tiers_model_equal_cycles(self):
        """The cycle model prices the hardware, not the host: both
        engine tiers must report identical totals for one trace."""
        def run(engine):
            return simulate_trace(
                get_system("oaken-lpddr"), ARCH,
                closed_trace(count=2, inputs=16, outputs=2), 2,
                replay=CacheReplayConfig(
                    method="oaken", engine_cycles=True, engine=engine
                ),
            ).replay

        vectorized = run("vectorized")
        scalar = run("scalar")
        assert (
            vectorized["engine_cycles"] == scalar["engine_cycles"] > 0
        )

    def test_measured_bits_match_plain_replay(self):
        """Engine-backed caches are bit-compatible with the fused
        kernels: the measured footprint is unchanged."""
        plain = simulate_trace(
            get_system("oaken-lpddr"), ARCH, closed_trace(), 4,
            replay=CacheReplayConfig(method="oaken",
                                     mode="exact_f64"),
        )
        backed = simulate_trace(
            get_system("oaken-lpddr"), ARCH, closed_trace(), 4,
            replay=CacheReplayConfig(method="oaken", mode="exact_f64",
                                     engine_cycles=True),
        )
        assert (
            backed.replay["measured_kv_bits"]
            == plain.replay["measured_kv_bits"]
        )
        assert (
            backed.replay["peak_pool_bytes"]
            == plain.replay["peak_pool_bytes"]
        )


class TestMeasuredAdmission:
    def make_engine(self, budget=None):
        engine = _CacheReplay(
            CacheReplayConfig(method="oaken"),
            get_system("oaken-lpddr"),
            ARCH,
        )
        if budget is not None:
            engine.budget_bytes = budget
        return engine

    def request(self, rid, inputs=64, outputs=64):
        return Request(request_id=rid, arrival_s=0.0,
                       input_tokens=inputs, output_tokens=outputs)

    def test_empty_pool_always_admits(self):
        engine = self.make_engine(budget=1.0)
        assert engine.admission_gate(self.request(0))

    def test_small_budget_blocks_once_measured(self):
        engine = self.make_engine()
        first = self.request(0)
        engine.admit(first)
        engine.step([first])
        engine.budget_bytes = 1.0  # below any measured projection
        assert not engine.admission_gate(self.request(1))

    def test_same_wave_arrivals_share_the_budget(self):
        """Gate approvals reserve immediately: a burst of simultaneous
        arrivals is projected cumulatively even though the pool is
        only populated after the iteration plan returns."""
        engine = self.make_engine()
        per_request = engine.arch.kv_bytes_per_token(
            engine.measured_kv_bits()
        ) * engine.arch.attended_length(128)
        engine.budget_bytes = 1.5 * per_request  # fits one, not two
        assert engine.admission_gate(self.request(0))
        assert not engine.admission_gate(self.request(1))

    def test_first_wave_measured_from_calibration_probe(self):
        """measured_kv_bits is primed before any request is admitted."""
        engine = self.make_engine()
        assert 0 < engine.measured_kv_bits() <= 16.0

    def test_large_budget_admits(self):
        engine = self.make_engine()
        first = self.request(0)
        engine.admit(first)
        engine.step([first])
        assert engine.admission_gate(self.request(1))

    def test_gate_blocks_scheduler_admission(self):
        scheduler = ContinuousBatchScheduler(
            4, admission_gate=lambda request: request.request_id == 0
        )
        for rid in range(3):
            scheduler.submit(self.request(rid, outputs=2))
        plan = scheduler.plan_iteration(0.0)
        assert [r.request_id for r in plan.admitted] == [0]
        assert scheduler.pending == 2

    def test_oom_when_weights_do_not_fit(self):
        arch70 = get_model("llama2-70b").arch
        report = simulate_trace(
            get_system("oaken-hbm"), arch70, closed_trace(1), 2,
            replay=CacheReplayConfig(method="oaken"),
        )
        assert report.oom
        assert report.replay is not None


class TestReplayRobustness:
    """OOM edges and admission-gate bookkeeping for the replay."""

    def make_engine(self):
        return _CacheReplay(
            CacheReplayConfig(method="oaken"),
            get_system("oaken-lpddr"),
            ARCH,
        )

    def request(self, rid, inputs=64, outputs=64):
        return Request(request_id=rid, arrival_s=0.0,
                       input_tokens=inputs, output_tokens=outputs)

    def test_zero_budget_is_oom_not_a_crash(self, monkeypatch):
        """Weights alone exhaust the device -> an OOM report with the
        replay measurements attached, never an exception or a silent
        zero-throughput replay."""
        import repro.serving.simulator as simulator

        monkeypatch.setattr(
            simulator, "weight_bytes", lambda *args, **kwargs: 1e18
        )
        report = simulate_trace(
            get_system("oaken-hbm"), ARCH, closed_trace(2), 2,
            replay=CacheReplayConfig(method="oaken"),
        )
        assert report.oom
        assert report.effective_batch == 0
        assert report.generation_throughput == 0.0
        assert report.replay is not None
        assert report.replay["method"] == "oaken"

    def test_gate_rejection_reserves_nothing(self):
        """A refused request leaves no residue in the reservation
        table: re-offering it later (after retirements) can succeed."""
        engine = self.make_engine()
        first = self.request(0)
        engine.admit(first)
        engine.step([first])
        engine.budget_bytes = 1.0
        rejected = self.request(1)
        assert not engine.admission_gate(rejected)
        assert 1 not in engine._contexts
        # free the resident; the once-rejected request now admits
        # (empty reservation table always admits)
        engine.retire([first])
        assert engine.admission_gate(rejected)

    def test_gate_approval_reserves_immediately(self):
        engine = self.make_engine()
        assert engine.admission_gate(self.request(0))
        assert 0 in engine._contexts

    def test_abort_backs_out_partial_admission(self):
        engine = self.make_engine()
        request = self.request(0)
        engine.admit(request)
        assert request.request_id in engine.pool
        engine.abort(request)
        assert request.request_id not in engine.pool
        assert request.request_id not in engine._contexts

    def test_abort_unknown_request_is_a_noop(self):
        engine = self.make_engine()
        engine.abort(self.request(42))  # never admitted: no error
