"""Tests for the Sarathi-style chunked prefill scheduling extension."""

import pytest

from repro.data.traces import TraceRequest, generate_trace
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchScheduler
from repro.serving.simulator import simulate_trace

ARCH = get_model("llama2-13b").arch


def make_request(i, arrival=0.0, inputs=256, outputs=4):
    return Request(
        request_id=i, arrival_s=arrival,
        input_tokens=inputs, output_tokens=outputs,
    )


class TestChunkedScheduler:
    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(4, prefill_chunk=0)

    def test_request_generates_only_after_prefill(self):
        scheduler = ContinuousBatchScheduler(2, prefill_chunk=100)
        scheduler.submit(make_request(0, inputs=250))
        # 250 prompt tokens at 100/iteration: two pure-prefill
        # iterations, then the final 50-token chunk fuses with the
        # first generation step (Sarathi-style piggybacking).
        for iteration in range(2):
            plan = scheduler.plan_iteration(float(iteration))
            assert plan.prefill_tokens == 100
            assert plan.resident == []
            scheduler.complete_iteration(float(iteration) + 0.5)
        plan = scheduler.plan_iteration(10.0)
        assert plan.prefill_tokens == 50
        assert len(plan.resident) == 1

    def test_chunk_budget_shared_fcfs(self):
        scheduler = ContinuousBatchScheduler(4, prefill_chunk=100)
        scheduler.submit(make_request(0, inputs=80))
        scheduler.submit(make_request(1, inputs=80))
        plan = scheduler.plan_iteration(0.0)
        # 80 + 20 of the second request fit in the 100-token budget.
        assert plan.prefill_tokens == 100

    def test_generation_continues_during_prefill(self):
        scheduler = ContinuousBatchScheduler(2, prefill_chunk=50)
        scheduler.submit(make_request(0, inputs=10, outputs=8))
        # First request prefils in one chunk, then generates.
        plan = scheduler.plan_iteration(0.0)
        scheduler.complete_iteration(0.5)
        scheduler.submit(make_request(1, arrival=0.5, inputs=500))
        plan = scheduler.plan_iteration(1.0)
        # Request 0 generates while request 1 prefils.
        assert len(plan.resident) == 1
        assert plan.resident[0].request_id == 0
        assert plan.prefill_tokens == 50

    def test_all_work_completes(self):
        scheduler = ContinuousBatchScheduler(3, prefill_chunk=64)
        for i in range(6):
            scheduler.submit(make_request(i, inputs=100, outputs=3))
        now = 0.0
        for _ in range(1000):
            if not scheduler.has_work:
                break
            plan = scheduler.plan_iteration(now)
            now += 0.1
            scheduler.complete_iteration(now)
        assert not scheduler.has_work
        assert len(scheduler.finished) == 6
        assert all(r.generated == 3 for r in scheduler.finished)

    def test_default_mode_unchanged(self):
        scheduler = ContinuousBatchScheduler(2)
        scheduler.submit(make_request(0))
        plan = scheduler.plan_iteration(0.0)
        assert plan.prefill_tokens == 0
        assert len(plan.resident) == 1


class TestChunkedSimulation:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace("conversation", num_requests=48, seed=9,
                              max_tokens=1024)

    def test_same_tokens_generated(self, trace):
        system = get_system("oaken-lpddr")
        plain = simulate_trace(system, ARCH, trace, 16)
        chunked = simulate_trace(
            system, ARCH, trace, 16, prefill_chunk=256
        )
        assert chunked.generated_tokens == plain.generated_tokens

    def test_chunking_improves_tail_latency(self, trace):
        """The Sarathi claim: chunked prefill smooths the tail."""
        system = get_system("oaken-lpddr")
        plain = simulate_trace(system, ARCH, trace, 16)
        chunked = simulate_trace(
            system, ARCH, trace, 16, prefill_chunk=256
        )
        assert chunked.p95_latency_s <= plain.p95_latency_s * 1.05

    def test_throughput_comparable(self, trace):
        system = get_system("oaken-lpddr")
        plain = simulate_trace(system, ARCH, trace, 16)
        chunked = simulate_trace(
            system, ARCH, trace, 16, prefill_chunk=256
        )
        ratio = (
            chunked.generation_throughput
            / plain.generation_throughput
        )
        assert 0.5 < ratio < 2.0
