"""Serving-level tiering contracts: spill replay and cluster behavior.

The engine-level gate (``test_engine_tiering.py``) proves reads are
bit-exact across tiers; this file proves the *serving* claims — a
longer-than-device-budget trace completes with evict-and-spill instead
of being rejected, seeded replays are bit-identical rerun-to-rerun for
both eviction policies, and the cluster's exactly-once contract
survives fault injection with tiering enabled.
"""

import pytest

from repro.data.traces import generate_longcontext_trace
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.serving.cluster import ClusterConfig, simulate_cluster
from repro.serving.faults import generate_fault_plan
from repro.serving.scheduler import ContinuousBatchScheduler
from repro.serving.request import Request
from repro.serving.simulator import CacheReplayConfig, simulate_trace

pytestmark = pytest.mark.tiering

ARCH = get_model("llama2-13b").arch
SYSTEM = get_system("oaken-hbm")

# Few sequences, long decodes: the spill shape.  Small enough to keep
# the token-level replay fast, long enough that the combined history
# dwarfs the device budgets used below.
TRACE = generate_longcontext_trace(
    num_requests=3, input_tokens=48, output_tokens=160, seed=4
)


def run_replay(device_budget_mb=None, eviction="lru", trace=TRACE,
               max_batch=4, charge_transfer_cycles=False):
    return simulate_trace(
        SYSTEM, ARCH, trace, max_batch,
        replay=CacheReplayConfig(
            device_budget_mb=device_budget_mb, eviction=eviction,
            charge_transfer_cycles=charge_transfer_cycles,
        ),
    )


class TestLongContextTrace:
    def test_reproducible_and_sorted(self):
        a = generate_longcontext_trace(num_requests=5, seed=9)
        b = generate_longcontext_trace(num_requests=5, seed=9)
        assert a == b
        assert len(a) == 5
        arrivals = [r.arrival_s for r in a]
        assert arrivals == sorted(arrivals)

    def test_decode_dominates(self):
        trace = generate_longcontext_trace(num_requests=8, seed=0)
        for request in trace:
            assert request.output_tokens > request.input_tokens

    def test_output_floor(self):
        trace = generate_longcontext_trace(
            num_requests=16, output_tokens=600, seed=2
        )
        assert min(r.output_tokens for r in trace) >= 300

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown trace"):
            generate_longcontext_trace("alibaba")


class TestSpillReplay:
    def test_completes_longer_than_budget_trace(self):
        # The headline capability: at 25% of the measured working set
        # the replay still generates every token the untiered run does,
        # absorbing the pressure as spill traffic instead of refusing
        # admissions.
        flat = run_replay()
        working_set = flat.replay["peak_pool_bytes"]
        budget_mb = 0.25 * working_set / 2.0**20
        tiered = run_replay(device_budget_mb=budget_mb)
        assert not tiered.oom
        assert tiered.generated_tokens == flat.generated_tokens
        detail = tiered.replay
        assert detail["tier_evictions"] > 0
        assert detail["tier_misses"] > 0
        assert detail["tier_spilled_bytes"] > 0
        assert detail["tier_transfer_cycles"] > 0
        assert detail["tier_peak_device_bytes"] <= (
            detail["tier_device_capacity_bytes"]
        )
        # Evict-and-spill admission: the gate never refuses.
        assert detail["gate_refusals"] == 0

    @pytest.mark.parametrize("eviction", ("lru", "plru"))
    def test_seeded_reruns_bit_identical(self, eviction):
        first = run_replay(device_budget_mb=0.03, eviction=eviction)
        second = run_replay(device_budget_mb=0.03, eviction=eviction)
        assert first.replay == second.replay
        assert first.__dict__ == second.__dict__
        assert first.replay["eviction"] == eviction

    def test_tighter_budget_costs_more_transfer(self):
        loose = run_replay(device_budget_mb=0.10)
        tight = run_replay(device_budget_mb=0.02)
        assert tight.generated_tokens == loose.generated_tokens
        assert (
            tight.replay["tier_transfer_cycles"]
            > loose.replay["tier_transfer_cycles"]
        )

    def test_charged_transfers_slow_the_makespan(self):
        # charge_transfer_cycles folds modeled transfer time into
        # iteration time; with real spill traffic the charged run must
        # be strictly slower, and tokens must be untouched (charging
        # reprices time, never changes what the replay computes).
        free = run_replay(device_budget_mb=0.03)
        charged = run_replay(
            device_budget_mb=0.03, charge_transfer_cycles=True
        )
        assert charged.generated_tokens == free.generated_tokens
        assert charged.replay["tier_transfer_cycles"] > 0
        assert charged.total_time_s > free.total_time_s
        # The charge equals the cycle counter at the transfer clock.
        from repro.engine.tiering import DEFAULT_CLOCK_HZ

        expected = (
            charged.replay["tier_transfer_cycles"] / DEFAULT_CLOCK_HZ
        )
        assert charged.total_time_s - free.total_time_s == pytest.approx(
            expected, rel=1e-9
        )

    def test_charged_makespan_monotone_in_spill_pressure(self):
        # More spill pressure (tighter device budget) means more
        # transfer cycles charged, so the charged makespan can only
        # grow as the budget shrinks.
        budgets = (0.10, 0.05, 0.02)
        makespans = [
            run_replay(
                device_budget_mb=budget, charge_transfer_cycles=True
            ).total_time_s
            for budget in budgets
        ]
        assert makespans == sorted(makespans)
        # And charging is never faster than not charging.
        for budget, charged_makespan in zip(budgets, makespans):
            free = run_replay(device_budget_mb=budget)
            assert charged_makespan >= free.total_time_s

    def test_charge_flag_noop_without_tiering(self):
        free = run_replay()
        charged = run_replay(charge_transfer_cycles=True)
        assert charged.__dict__ == free.__dict__

    def test_untiered_gate_refusals_counted(self):
        # The counter that separates reject/queue backpressure from
        # evict-and-spill: a refusing gate increments it, and it rides
        # the replay report (zero in the tiered runs above).
        scheduler = ContinuousBatchScheduler(
            4, admission_gate=lambda request: False
        )
        scheduler.submit(Request(
            request_id=0, arrival_s=0.0, input_tokens=4, output_tokens=4,
        ))
        assert scheduler.plan_iteration(0.0) is None
        assert scheduler.gate_refusals == 1


@pytest.mark.cluster
class TestClusterTiering:
    CONFIG = dict(replicas=2, max_batch=4)

    def run(self, faults=None, eviction="lru",
            charge_transfer_cycles=False):
        return simulate_cluster(
            SYSTEM, ARCH, TRACE,
            ClusterConfig(
                replay=CacheReplayConfig(
                    device_budget_mb=0.02, eviction=eviction,
                    charge_transfer_cycles=charge_transfer_cycles,
                ),
                **self.CONFIG,
            ),
            faults,
        )

    def test_exactly_once_under_faults(self):
        faults = generate_fault_plan(2, 30.0, seed=1)
        report = self.run(faults)
        assert report.completed == len(TRACE)
        assert report.lost == 0
        assert report.tier_evictions > 0
        assert report.tier_transfer_cycles > 0

    def test_seeded_rerun_bit_identical(self):
        faults = generate_fault_plan(2, 30.0, seed=1)
        assert self.run(faults).as_dict() == self.run(faults).as_dict()

    def test_charged_transfers_slow_the_cluster(self):
        free = self.run()
        charged = self.run(charge_transfer_cycles=True)
        assert charged.completed == free.completed
        assert charged.generated_tokens == free.generated_tokens
        assert charged.tier_transfer_cycles > 0
        assert charged.total_time_s > free.total_time_s

    def test_replica_telemetry_sums_to_report(self):
        report = self.run(eviction="plru")
        assert report.tier_evictions == sum(
            int(row.get("tier_evictions", 0.0))
            for row in report.per_replica
        )
        assert report.completed == len(TRACE)
