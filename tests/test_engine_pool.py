"""KVCachePool: batched reads vs. per-sequence loops, bit-for-bit."""

import numpy as np
import pytest

from repro.engine import KVCachePool, shared_backend_factory

from conftest import make_kv_matrix

LAYERS = 2
DIM = 64


@pytest.fixture(scope="module")
def calibration():
    return [
        (make_kv_matrix(seed=70 + layer), make_kv_matrix(seed=80 + layer))
        for layer in range(LAYERS)
    ]


@pytest.fixture(scope="module", params=["oaken", "kivi"])
def factory(request, calibration):
    """Fused (merged-decode) and adapter (fallback) pool factories."""
    return shared_backend_factory(
        request.param, calibration=calibration
    )


def twin_pools(factory, count):
    batched = KVCachePool(factory)
    looped = KVCachePool(factory)
    for seq_id in range(count):
        batched.allocate(seq_id)
        looped.allocate(seq_id)
    return batched, looped


def append_rows(pools, seq_id, layer, seed, rows=1):
    keys = make_kv_matrix(tokens=rows, seed=seed)
    values = make_kv_matrix(tokens=rows, seed=seed + 10000)
    for pool in pools:
        pool.append(seq_id, layer, keys, values)


def assert_batch_equals_loop(batched, looped, layer, seq_ids):
    batch_reads = batched.read_batch(layer, seq_ids)
    loop_reads = [looped.read(seq_id, layer) for seq_id in seq_ids]
    for (bk, bv), (lk, lv) in zip(batch_reads, loop_reads):
        np.testing.assert_array_equal(bk, lk)
        np.testing.assert_array_equal(bv, lv)


class TestReadBatch:
    def test_matches_looped_reads_after_interleaved_appends(
        self, factory
    ):
        batched, looped = twin_pools(factory, 4)
        seq_ids = list(range(4))
        seed = 0
        for step, rows in enumerate([3, 1, 4, 1, 1, 2]):
            for seq_id in seq_ids:
                # Ragged appends: sequences grow at different rates.
                count = rows if (seq_id + step) % 2 else 1
                for layer in range(LAYERS):
                    seed += 1
                    append_rows(
                        (batched, looped), seq_id, layer, seed, count
                    )
            for layer in range(LAYERS):
                assert_batch_equals_loop(
                    batched, looped, layer, seq_ids
                )

    def test_matches_after_sequence_retirement(self, factory):
        batched, looped = twin_pools(factory, 5)
        seed = 500
        for seq_id in range(5):
            for layer in range(LAYERS):
                seed += 1
                append_rows((batched, looped), seq_id, layer, seed, 2)
        for layer in range(LAYERS):
            assert_batch_equals_loop(
                batched, looped, layer, list(range(5))
            )
        # Retire two sequences, admit a fresh one, keep streaming.
        for pool in (batched, looped):
            pool.free(1)
            pool.free(3)
            pool.allocate(9)
        survivors = [0, 2, 4, 9]
        for step in range(3):
            for seq_id in survivors:
                for layer in range(LAYERS):
                    seed += 1
                    append_rows(
                        (batched, looped), seq_id, layer, seed, 1
                    )
            for layer in range(LAYERS):
                assert_batch_equals_loop(
                    batched, looped, layer, survivors
                )

    def test_duplicate_seq_ids_decode_once(self, factory):
        """Repeated ids must not double-commit pending chunks."""
        pool = KVCachePool(factory)
        pool.allocate(0)
        pool.allocate(1)
        append_rows((pool,), 0, 0, seed=910, rows=1)
        append_rows((pool,), 1, 0, seed=911, rows=1)
        reads = pool.read_batch(0, [0, 0, 1])
        assert reads[0][0].shape[0] == 1
        np.testing.assert_array_equal(reads[0][0], reads[1][0])
        # Later appends still decode correctly.
        append_rows((pool,), 0, 0, seed=912, rows=1)
        keys, _ = pool.read(0, 0)
        assert keys.shape[0] == 2
        expected, _ = pool.read_batch(0, [0, 1])[0]
        np.testing.assert_array_equal(keys, expected)

    def test_single_sequence_batch(self, factory):
        batched, looped = twin_pools(factory, 1)
        append_rows((batched, looped), 0, 0, seed=900, rows=4)
        assert_batch_equals_loop(batched, looped, 0, [0])

    def test_read_order_follows_seq_ids(self, factory):
        pool = KVCachePool(factory)
        for seq_id in (7, 3):
            pool.allocate(seq_id)
        pool.append(7, 0, make_kv_matrix(2, seed=1),
                    make_kv_matrix(2, seed=2))
        pool.append(3, 0, make_kv_matrix(5, seed=3),
                    make_kv_matrix(5, seed=4))
        reads = pool.read_batch(0, [3, 7])
        assert reads[0][0].shape[0] == 5
        assert reads[1][0].shape[0] == 2

    def test_fused_pool_uses_merged_decodes(self, calibration):
        factory = shared_backend_factory("oaken",
                                         calibration=calibration)
        pool = KVCachePool(factory)
        for seq_id in range(3):
            pool.allocate(seq_id)
            pool.append(seq_id, 0, make_kv_matrix(1, seed=seq_id),
                        make_kv_matrix(1, seed=50 + seq_id))
        assert pool.batched_decodes == 0
        pool.read_batch(0, [0, 1, 2])
        assert pool.batched_decodes == 2  # one per tensor kind
        # Nothing pending: a second batched read decodes nothing new.
        pool.read_batch(0, [0, 1, 2])
        assert pool.batched_decodes == 2


class TestLifecycle:
    def test_double_allocate_rejected(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("a")
        with pytest.raises(ValueError):
            pool.allocate("a")

    def test_free_unknown_rejected(self, factory):
        with pytest.raises(KeyError):
            KVCachePool(factory).free("ghost")

    def test_membership_and_len(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("a")
        pool.allocate("b")
        assert "a" in pool and "c" not in pool
        assert len(pool) == 2
        assert pool.seq_ids == ["a", "b"]
        pool.free("a")
        assert len(pool) == 1


class TestFootprint:
    def test_pool_bytes_sum_sequences(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        pool.allocate(1)
        append_rows((pool,), 0, 0, seed=21, rows=4)
        append_rows((pool,), 1, 0, seed=22, rows=4)
        total = pool.nbytes()
        assert total == pytest.approx(
            pool.get(0).nbytes() + pool.get(1).nbytes()
        )
        assert pool.total_tokens() == 8
        assert 0 < pool.effective_bitwidth() <= 16.0

    def test_peak_survives_retirement(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        append_rows((pool,), 0, 0, seed=23, rows=8)
        peak = pool.peak_bytes
        assert peak > 0
        pool.free(0)
        assert pool.nbytes() == 0
        assert pool.peak_bytes == peak

    def test_would_fit_budget(self, factory):
        pool = KVCachePool(factory, capacity_bytes=None)
        assert pool.would_fit(10**9)  # unbounded
        pool = KVCachePool(factory, capacity_bytes=10.0)
        pool.allocate(0)
        assert pool.would_fit(100)  # empty pool: nothing measured yet
        append_rows((pool,), 0, 0, seed=24, rows=4)
        assert pool.bytes_per_token() > 0
        assert not pool.would_fit(10_000)
        assert pool.would_fit(0) == (pool.nbytes() <= 10.0)

    def test_summary_keys(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        append_rows((pool,), 0, 0, seed=25, rows=2)
        summary = pool.summary()
        assert summary["sequences"] == 1.0
        assert summary["tokens"] == 2.0
        assert summary["bytes"] > 0
