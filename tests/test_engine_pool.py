"""KVCachePool: batched reads and appends vs. per-sequence loops,
bit-for-bit."""

import numpy as np
import pytest

from repro.engine import (
    CacheCapacityError,
    KVCachePool,
    shared_backend_factory,
)

from conftest import make_kv_matrix

LAYERS = 2
DIM = 64


@pytest.fixture(scope="module")
def calibration():
    return [
        (make_kv_matrix(seed=70 + layer), make_kv_matrix(seed=80 + layer))
        for layer in range(LAYERS)
    ]


@pytest.fixture(scope="module", params=["oaken", "kivi"])
def factory(request, calibration):
    """Fused (merged-decode) and adapter (fallback) pool factories."""
    return shared_backend_factory(
        request.param, calibration=calibration
    )


def twin_pools(factory, count):
    batched = KVCachePool(factory)
    looped = KVCachePool(factory)
    for seq_id in range(count):
        batched.allocate(seq_id)
        looped.allocate(seq_id)
    return batched, looped


def append_rows(pools, seq_id, layer, seed, rows=1):
    keys = make_kv_matrix(tokens=rows, seed=seed)
    values = make_kv_matrix(tokens=rows, seed=seed + 10000)
    for pool in pools:
        pool.append(seq_id, layer, keys, values)


def assert_batch_equals_loop(batched, looped, layer, seq_ids):
    batch_reads = batched.read_batch(layer, seq_ids)
    loop_reads = [looped.read(seq_id, layer) for seq_id in seq_ids]
    for (bk, bv), (lk, lv) in zip(batch_reads, loop_reads):
        np.testing.assert_array_equal(bk, lk)
        np.testing.assert_array_equal(bv, lv)


class TestReadBatch:
    def test_matches_looped_reads_after_interleaved_appends(
        self, factory
    ):
        batched, looped = twin_pools(factory, 4)
        seq_ids = list(range(4))
        seed = 0
        for step, rows in enumerate([3, 1, 4, 1, 1, 2]):
            for seq_id in seq_ids:
                # Ragged appends: sequences grow at different rates.
                count = rows if (seq_id + step) % 2 else 1
                for layer in range(LAYERS):
                    seed += 1
                    append_rows(
                        (batched, looped), seq_id, layer, seed, count
                    )
            for layer in range(LAYERS):
                assert_batch_equals_loop(
                    batched, looped, layer, seq_ids
                )

    def test_matches_after_sequence_retirement(self, factory):
        batched, looped = twin_pools(factory, 5)
        seed = 500
        for seq_id in range(5):
            for layer in range(LAYERS):
                seed += 1
                append_rows((batched, looped), seq_id, layer, seed, 2)
        for layer in range(LAYERS):
            assert_batch_equals_loop(
                batched, looped, layer, list(range(5))
            )
        # Retire two sequences, admit a fresh one, keep streaming.
        for pool in (batched, looped):
            pool.free(1)
            pool.free(3)
            pool.allocate(9)
        survivors = [0, 2, 4, 9]
        for step in range(3):
            for seq_id in survivors:
                for layer in range(LAYERS):
                    seed += 1
                    append_rows(
                        (batched, looped), seq_id, layer, seed, 1
                    )
            for layer in range(LAYERS):
                assert_batch_equals_loop(
                    batched, looped, layer, survivors
                )

    def test_duplicate_seq_ids_decode_once(self, factory):
        """Repeated ids must not double-commit pending chunks."""
        pool = KVCachePool(factory)
        pool.allocate(0)
        pool.allocate(1)
        append_rows((pool,), 0, 0, seed=910, rows=1)
        append_rows((pool,), 1, 0, seed=911, rows=1)
        reads = pool.read_batch(0, [0, 0, 1])
        assert reads[0][0].shape[0] == 1
        np.testing.assert_array_equal(reads[0][0], reads[1][0])
        # Later appends still decode correctly.
        append_rows((pool,), 0, 0, seed=912, rows=1)
        keys, _ = pool.read(0, 0)
        assert keys.shape[0] == 2
        expected, _ = pool.read_batch(0, [0, 1])[0]
        np.testing.assert_array_equal(keys, expected)

    def test_single_sequence_batch(self, factory):
        batched, looped = twin_pools(factory, 1)
        append_rows((batched, looped), 0, 0, seed=900, rows=4)
        assert_batch_equals_loop(batched, looped, 0, [0])

    def test_read_order_follows_seq_ids(self, factory):
        pool = KVCachePool(factory)
        for seq_id in (7, 3):
            pool.allocate(seq_id)
        pool.append(7, 0, make_kv_matrix(2, seed=1),
                    make_kv_matrix(2, seed=2))
        pool.append(3, 0, make_kv_matrix(5, seed=3),
                    make_kv_matrix(5, seed=4))
        reads = pool.read_batch(0, [3, 7])
        assert reads[0][0].shape[0] == 5
        assert reads[1][0].shape[0] == 2

    def test_fused_pool_uses_merged_decodes(self, calibration):
        factory = shared_backend_factory("oaken",
                                         calibration=calibration)
        pool = KVCachePool(factory)
        for seq_id in range(3):
            pool.allocate(seq_id)
            pool.append(seq_id, 0, make_kv_matrix(1, seed=seq_id),
                        make_kv_matrix(1, seed=50 + seq_id))
        assert pool.batched_decodes == 0
        pool.read_batch(0, [0, 1, 2])
        assert pool.batched_decodes == 2  # one per tensor kind
        # Nothing pending: a second batched read decodes nothing new.
        pool.read_batch(0, [0, 1, 2])
        assert pool.batched_decodes == 2


def assert_same_cache_state(batched, looped, seq_ids):
    """Full bit-for-bit comparison of two pools' cache contents.

    Compares every encoded chunk array when the backends are fused
    caches (append_batch must store *identical* chunks, not merely
    chunks that decode identically), and always compares full reads.
    """
    for seq_id in seq_ids:
        b, l = batched.get(seq_id), looped.get(seq_id)
        assert b.length == l.length
        for layer in range(LAYERS):
            if hasattr(b, "layers"):
                bl, ll = b.layers[layer], l.layers[layer]
                assert len(bl._key_chunks) == len(ll._key_chunks)
                chunk_pairs = zip(
                    bl._key_chunks + bl._value_chunks,
                    ll._key_chunks + ll._value_chunks,
                )
                for bc, lc in chunk_pairs:
                    assert bc.shape == lc.shape
                    np.testing.assert_array_equal(
                        bc.dense_codes, lc.dense_codes
                    )
                    np.testing.assert_array_equal(
                        bc.middle_lo, lc.middle_lo
                    )
                    np.testing.assert_array_equal(
                        bc.middle_hi, lc.middle_hi
                    )
                    np.testing.assert_array_equal(
                        bc.band_lo, lc.band_lo
                    )
                    np.testing.assert_array_equal(
                        bc.band_hi, lc.band_hi
                    )
                    np.testing.assert_array_equal(
                        bc.sparse_token, lc.sparse_token
                    )
                    np.testing.assert_array_equal(
                        bc.sparse_pos, lc.sparse_pos
                    )
                    np.testing.assert_array_equal(
                        bc.sparse_band, lc.sparse_band
                    )
                    np.testing.assert_array_equal(
                        bc.sparse_side, lc.sparse_side
                    )
                    np.testing.assert_array_equal(
                        bc.sparse_mag_code, lc.sparse_mag_code
                    )
            has_rows = (
                b.layers[layer].length
                if hasattr(b, "layers")
                else b._keys[layer].length
            )
            if has_rows:
                bk, bv = b.read(layer)
                lk, lv = l.read(layer)
                np.testing.assert_array_equal(bk, lk)
                np.testing.assert_array_equal(bv, lv)


class TestAppendBatch:
    def test_matches_looped_appends_uniform_rows(self, factory):
        batched, looped = twin_pools(factory, 4)
        seq_ids = list(range(4))
        seed = 3000
        for step in range(4):
            for layer in range(LAYERS):
                updates = {}
                for seq_id in seq_ids:
                    seed += 1
                    keys = make_kv_matrix(tokens=1, seed=seed)
                    values = make_kv_matrix(tokens=1, seed=seed + 7777)
                    updates[seq_id] = (keys, values)
                    looped.append(seq_id, layer, keys, values)
                batched.append_batch(layer, updates)
        assert_same_cache_state(batched, looped, seq_ids)

    def test_matches_looped_appends_ragged_rows(self, factory):
        """Sequences appending different row counts in one batch."""
        batched, looped = twin_pools(factory, 4)
        seq_ids = list(range(4))
        seed = 4000
        for step, counts in enumerate(
            [(3, 1, 5, 2), (1, 4, 1, 1), (2, 2, 7, 1)]
        ):
            for layer in range(LAYERS):
                updates = []
                for seq_id, rows in zip(seq_ids, counts):
                    seed += 1
                    keys = make_kv_matrix(tokens=rows, seed=seed)
                    values = make_kv_matrix(
                        tokens=rows, seed=seed + 7777
                    )
                    updates.append((seq_id, keys, values))
                    looped.append(seq_id, layer, keys, values)
                batched.append_batch(layer, updates)
        assert_same_cache_state(batched, looped, seq_ids)

    def test_empty_update_sequences_skipped(self, factory):
        """Zero-row updates contribute nothing — no chunk, no growth."""
        batched, looped = twin_pools(factory, 3)
        seq_ids = list(range(3))
        seed = 5000
        for layer in range(LAYERS):
            updates = []
            for seq_id, rows in zip(seq_ids, (2, 0, 3)):
                seed += 1
                keys = make_kv_matrix(tokens=rows, seed=seed)
                values = make_kv_matrix(tokens=rows, seed=seed + 7777)
                updates.append((seq_id, keys, values))
                if rows:
                    looped.append(seq_id, layer, keys, values)
            batched.append_batch(layer, updates)
        assert batched.get(1).length == 0
        assert_same_cache_state(batched, looped, [0, 2])

    def test_all_empty_batch_is_noop(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        pool.allocate(1)
        empty = np.empty((0, DIM))
        pool.append_batch(0, {0: (empty, empty), 1: (empty, empty)})
        assert pool.get(0).length == 0
        assert pool.batched_encodes == 0

    def test_single_nonempty_update_falls_back_to_append(self, factory):
        batched, looped = twin_pools(factory, 2)
        keys = make_kv_matrix(tokens=2, seed=6000)
        values = make_kv_matrix(tokens=2, seed=6001)
        batched.append_batch(0, {0: (keys, values)})
        looped.append(0, 0, keys, values)
        assert batched.batched_encodes == 0
        assert_same_cache_state(batched, looped, [0])

    def test_shape_mismatch_rejected(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        with pytest.raises(ValueError):
            pool.append_batch(
                0,
                {0: (make_kv_matrix(2, seed=1),
                     make_kv_matrix(3, seed=2))},
            )

    def test_unknown_sequence_rejected(self, factory):
        pool = KVCachePool(factory)
        with pytest.raises(KeyError):
            pool.append_batch(
                0,
                {"ghost": (make_kv_matrix(1, seed=1),
                           make_kv_matrix(1, seed=2))},
            )

    def test_fused_pool_counts_batched_encodes(self, calibration):
        factory = shared_backend_factory(
            "oaken", calibration=calibration
        )
        pool = KVCachePool(factory)
        for seq_id in range(3):
            pool.allocate(seq_id)
        pool.append_batch(
            0,
            {
                seq_id: (
                    make_kv_matrix(1, seed=seq_id),
                    make_kv_matrix(1, seed=50 + seq_id),
                )
                for seq_id in range(3)
            },
        )
        assert pool.batched_encodes == 2  # one per tensor kind
        assert pool.summary()["batched_encodes"] == 2.0

    def test_adapter_backends_fall_back_to_loop(self, calibration):
        factory = shared_backend_factory(
            "kivi", calibration=calibration
        )
        batched, looped = twin_pools(factory, 2)
        seed = 7000
        for layer in range(LAYERS):
            updates = {}
            for seq_id in range(2):
                seed += 1
                keys = make_kv_matrix(tokens=2, seed=seed)
                values = make_kv_matrix(tokens=2, seed=seed + 7777)
                updates[seq_id] = (keys, values)
                looped.append(seq_id, layer, keys, values)
            batched.append_batch(layer, updates)
        assert batched.batched_encodes == 0
        assert_same_cache_state(batched, looped, [0, 1])

    def test_batched_appends_feed_batched_reads(self, calibration):
        """The fused write and read paths compose bit-for-bit."""
        factory = shared_backend_factory(
            "oaken", calibration=calibration
        )
        batched, looped = twin_pools(factory, 3)
        seq_ids = list(range(3))
        seed = 8000
        for step in range(3):
            for layer in range(LAYERS):
                updates = {}
                for seq_id in seq_ids:
                    seed += 1
                    keys = make_kv_matrix(tokens=1, seed=seed)
                    values = make_kv_matrix(
                        tokens=1, seed=seed + 7777
                    )
                    updates[seq_id] = (keys, values)
                    looped.append(seq_id, layer, keys, values)
                batched.append_batch(layer, updates)
            for layer in range(LAYERS):
                assert_batch_equals_loop(
                    batched, looped, layer, seq_ids
                )
        assert batched.batched_encodes > 0
        assert batched.batched_decodes > 0


class TestAdapterBatchedAppends:
    """Row-local adapter pools quantize batched appends eagerly: one
    merged ``roundtrip_batch`` per tensor across the resident set,
    end state bit-identical to per-sequence ``append`` loops."""

    ROW_LOCAL = ["fp16", "oaken", "qserve", "atom", "tender"]
    HISTORY_GLOBAL = ["kivi", "kvquant"]

    def _stream_pools(self, method, calibration, count=3, steps=3):
        factory = shared_backend_factory(
            method, "adapter", calibration=calibration
        )
        batched, looped = twin_pools(factory, count)
        seq_ids = list(range(count))
        seed = 9500
        for step in range(steps):
            for layer in range(LAYERS):
                updates = []
                for seq_id in seq_ids:
                    seed += 1
                    # Ragged batches: row counts differ per sequence.
                    rows = 1 + (seq_id + step) % 2
                    keys = make_kv_matrix(tokens=rows, seed=seed)
                    values = make_kv_matrix(
                        tokens=rows, seed=seed + 10000
                    )
                    updates.append((seq_id, keys, values))
                    looped.append(seq_id, layer, keys, values)
                batched.append_batch(layer, updates)
        return batched, looped, seq_ids

    @pytest.mark.parametrize("method", ROW_LOCAL)
    def test_row_local_methods_batch_bit_identically(
        self, method, calibration
    ):
        batched, looped, seq_ids = self._stream_pools(
            method, calibration
        )
        assert batched.batched_append_roundtrips > 0
        assert looped.batched_append_roundtrips == 0
        assert_same_cache_state(batched, looped, seq_ids)

    @pytest.mark.parametrize("method", HISTORY_GLOBAL)
    def test_history_global_methods_fall_back(
        self, method, calibration
    ):
        batched, looped, seq_ids = self._stream_pools(
            method, calibration
        )
        assert batched.batched_append_roundtrips == 0
        assert_same_cache_state(batched, looped, seq_ids)

    def test_batched_appends_prime_reads(self, calibration):
        """After an eager batched append, reads are pure memo hits:
        no further merged roundtrip is needed on the read side."""
        batched, looped, seq_ids = self._stream_pools(
            "qserve", calibration
        )
        before = batched.batched_roundtrips
        for layer in range(LAYERS):
            assert_batch_equals_loop(batched, looped, layer, seq_ids)
        assert batched.batched_roundtrips == before

    def test_empty_updates_skipped_but_rest_batches(self, calibration):
        factory = shared_backend_factory(
            "fp16", "adapter", num_layers=LAYERS
        )
        batched, looped = twin_pools(factory, 3)
        empty = np.empty((0, DIM))
        updates = [(1, empty, empty)]
        seed = 9700
        for seq_id in (0, 2):
            seed += 1
            keys = make_kv_matrix(tokens=2, seed=seed)
            values = make_kv_matrix(tokens=2, seed=seed + 10000)
            updates.append((seq_id, keys, values))
            looped.append(seq_id, 0, keys, values)
        batched.append_batch(0, updates)
        assert batched.get(1).length == 0
        assert batched.batched_append_roundtrips == 2  # per tensor
        assert_same_cache_state(batched, looped, [0, 2])

    def test_single_sequence_batch_falls_back(self, calibration):
        factory = shared_backend_factory(
            "fp16", "adapter", num_layers=LAYERS
        )
        batched, looped = twin_pools(factory, 2)
        keys = make_kv_matrix(tokens=2, seed=9800)
        values = make_kv_matrix(tokens=2, seed=9801)
        batched.append_batch(0, {0: (keys, values)})
        looped.append(0, 0, keys, values)
        assert batched.batched_append_roundtrips == 0
        assert_same_cache_state(batched, looped, [0])

    def test_duplicate_seq_ids_append_like_a_loop(self, calibration):
        """Duplicated ids append twice, merge-quantize once."""
        factory = shared_backend_factory(
            "qserve", "adapter", calibration=calibration
        )
        batched, looped = twin_pools(factory, 2)
        updates = []
        seed = 9850
        for seq_id in (0, 0, 1):
            seed += 1
            keys = make_kv_matrix(tokens=1, seed=seed)
            values = make_kv_matrix(tokens=1, seed=seed + 10000)
            updates.append((seq_id, keys, values))
            looped.append(seq_id, 0, keys, values)
        batched.append_batch(0, updates)
        assert batched.get(0).length == 2
        assert batched.batched_append_roundtrips == 2  # per tensor
        assert_same_cache_state(batched, looped, [0, 1])

    def test_counter_reported_in_summary(self, calibration):
        factory = shared_backend_factory(
            "fp16", "adapter", num_layers=LAYERS
        )
        pool = KVCachePool(factory)
        for seq_id in range(2):
            pool.allocate(seq_id)
        pool.append_batch(
            0,
            {
                seq_id: (
                    make_kv_matrix(1, seed=9900 + seq_id),
                    make_kv_matrix(1, seed=9950 + seq_id),
                )
                for seq_id in range(2)
            },
        )
        assert pool.batched_append_roundtrips == 2  # one per tensor
        assert pool.summary()["batched_append_roundtrips"] == 2.0


class TestLifecycle:
    def test_double_allocate_rejected(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("a")
        with pytest.raises(ValueError):
            pool.allocate("a")

    def test_free_unknown_rejected(self, factory):
        with pytest.raises(KeyError):
            KVCachePool(factory).free("ghost")

    def test_membership_and_len(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("a")
        pool.allocate("b")
        assert "a" in pool and "c" not in pool
        assert len(pool) == 2
        assert pool.seq_ids == ["a", "b"]
        pool.free("a")
        assert len(pool) == 1

    def test_free_reports_whether_bytes_released(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("empty")
        pool.allocate("full")
        pool.append(
            "full", 0,
            make_kv_matrix(tokens=2, seed=1),
            make_kv_matrix(tokens=2, seed=2),
        )
        # A never-appended cache holds no bytes: nothing to release.
        assert pool.free("empty") is False
        assert pool.free("full") is True

    def test_double_free_raises_keyerror_naming_sequence(self, factory):
        pool = KVCachePool(factory)
        pool.allocate("victim")
        pool.free("victim")
        with pytest.raises(KeyError, match="victim"):
            pool.free("victim")


class TestFootprint:
    def test_pool_bytes_sum_sequences(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        pool.allocate(1)
        append_rows((pool,), 0, 0, seed=21, rows=4)
        append_rows((pool,), 1, 0, seed=22, rows=4)
        total = pool.nbytes()
        assert total == pytest.approx(
            pool.get(0).nbytes() + pool.get(1).nbytes()
        )
        assert pool.total_tokens() == 8
        assert 0 < pool.effective_bitwidth() <= 16.0

    def test_peak_survives_retirement(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        append_rows((pool,), 0, 0, seed=23, rows=8)
        peak = pool.peak_bytes
        assert peak > 0
        pool.free(0)
        assert pool.nbytes() == 0
        assert pool.peak_bytes == peak

    def test_would_fit_budget(self, factory):
        pool = KVCachePool(factory, capacity_bytes=None)
        assert pool.would_fit(10**9)  # unbounded
        pool = KVCachePool(factory, capacity_bytes=10.0)
        pool.allocate(0)
        assert pool.would_fit(100)  # empty pool: nothing measured yet
        append_rows((pool,), 0, 0, seed=24, rows=4)
        assert pool.bytes_per_token() > 0
        assert not pool.would_fit(10_000)
        assert pool.would_fit(0) == (pool.nbytes() <= 10.0)

    def test_summary_keys(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        append_rows((pool,), 0, 0, seed=25, rows=2)
        summary = pool.summary()
        assert summary["sequences"] == 1.0
        assert summary["tokens"] == 2.0
        assert summary["bytes"] > 0


class TestCapacityErrors:
    """Typed capacity refusals: diagnosable, retryable, non-mutating."""

    def tiny_pool(self, factory, capacity=10.0):
        pool = KVCachePool(factory, capacity_bytes=capacity)
        pool.allocate(0)
        append_rows((pool,), 0, 0, seed=90, rows=4)
        return pool

    def test_append_raises_typed_error(self, factory):
        pool = self.tiny_pool(factory)
        with pytest.raises(CacheCapacityError) as excinfo:
            append_rows((pool,), 0, 0, seed=91, rows=64)
        error = excinfo.value
        assert error.seq_id == 0
        assert error.requested_bytes > 0
        assert error.measured_bytes > 0
        assert error.capacity_bytes == 10.0
        assert "retryable" in str(error)

    def test_error_is_a_runtime_error(self, factory):
        pool = self.tiny_pool(factory)
        with pytest.raises(RuntimeError):
            append_rows((pool,), 0, 0, seed=92, rows=64)

    def test_refused_append_leaves_pool_unchanged(self, factory):
        pool = self.tiny_pool(factory)
        before_tokens = pool.total_tokens()
        before_bytes = pool.nbytes()
        with pytest.raises(CacheCapacityError):
            append_rows((pool,), 0, 0, seed=93, rows=64)
        assert pool.total_tokens() == before_tokens
        assert pool.nbytes() == before_bytes

    def test_refused_batch_append_leaves_every_sequence_untouched(
        self, factory
    ):
        pool = KVCachePool(factory)
        pool.allocate(0)
        pool.allocate(1)
        append_rows((pool,), 0, 0, seed=90, rows=4)
        append_rows((pool,), 1, 0, seed=94, rows=4)
        # Bound the pool with headroom for a few tokens, not 64.
        pool.capacity_bytes = pool.nbytes() * 1.5
        before = pool.total_tokens()
        batch = {
            0: (make_kv_matrix(tokens=32, seed=95),
                make_kv_matrix(tokens=32, seed=96)),
            1: (make_kv_matrix(tokens=32, seed=97),
                make_kv_matrix(tokens=32, seed=98)),
        }
        with pytest.raises(CacheCapacityError):
            pool.append_batch(0, batch)
        assert pool.total_tokens() == before

    def test_unbounded_pool_never_raises(self, factory):
        pool = KVCachePool(factory)
        pool.allocate(0)
        append_rows((pool,), 0, 0, seed=99, rows=64)

    def test_first_append_to_empty_bounded_pool_admits(self, factory):
        # Nothing measured yet: the projection is undefined, so the
        # pool admits rather than refusing blind (matching would_fit).
        pool = KVCachePool(factory, capacity_bytes=1.0)
        pool.allocate(0)
        append_rows((pool,), 0, 0, seed=100, rows=2)
        assert pool.total_tokens() == 2


class TestAdapterBatchedReads:
    """Row-local adapter pools merge pending suffixes into one
    roundtrip per tensor — bit-identical to per-sequence reads."""

    ROW_LOCAL = ["fp16", "oaken", "qserve", "atom", "tender"]
    HISTORY_GLOBAL = ["kivi", "kvquant"]

    def _stream_pools(self, method, calibration, count=3, steps=3):
        factory = shared_backend_factory(
            method, "adapter", calibration=calibration
        )
        batched, looped = twin_pools(factory, count)
        seq_ids = list(range(count))
        seed = 9100
        for step in range(steps):
            for layer in range(LAYERS):
                for seq_id in seq_ids:
                    seed += 1
                    append_rows(
                        (batched, looped), seq_id, layer, seed,
                        rows=1 + (seq_id + step) % 2,
                    )
                assert_batch_equals_loop(
                    batched, looped, layer, seq_ids
                )
        return batched, looped, seq_ids

    @pytest.mark.parametrize("method", ROW_LOCAL)
    def test_row_local_methods_batch_bit_identically(
        self, method, calibration
    ):
        batched, looped, seq_ids = self._stream_pools(
            method, calibration
        )
        assert batched.batched_roundtrips > 0
        assert looped.batched_roundtrips == 0
        assert_same_cache_state(batched, looped, seq_ids)

    @pytest.mark.parametrize("method", HISTORY_GLOBAL)
    def test_history_global_methods_fall_back(
        self, method, calibration
    ):
        batched, looped, seq_ids = self._stream_pools(
            method, calibration
        )
        assert batched.batched_roundtrips == 0
        assert_same_cache_state(batched, looped, seq_ids)

    def test_counter_reported_in_summary(self, calibration):
        factory = shared_backend_factory(
            "fp16", "adapter", num_layers=LAYERS
        )
        pool = KVCachePool(factory)
        for seq_id in range(2):
            pool.allocate(seq_id)
            append_rows((pool,), seq_id, 0, 9900 + seq_id)
        pool.read_batch(0, [0, 1])
        assert pool.batched_roundtrips == 2  # one per tensor kind
        assert pool.summary()["batched_roundtrips"] == 2.0

    def test_single_pending_sequence_reads_lazily(self, calibration):
        """With one stale sequence there is nothing to merge."""
        factory = shared_backend_factory(
            "fp16", "adapter", num_layers=LAYERS
        )
        pool = KVCachePool(factory)
        for seq_id in range(2):
            pool.allocate(seq_id)
            append_rows((pool,), seq_id, 0, 9950 + seq_id)
        pool.read(1, 0)  # sequence 1 is now memoized
        reads = pool.read_batch(0, [0, 1])
        assert pool.batched_roundtrips == 0
        for keys, values in reads:
            assert keys.shape[0] == 1
