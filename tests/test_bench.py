"""Smoke tests for the perf-regression harness (:mod:`repro.bench`).

The smoke run's ``> 1.0`` speedup floors are deflaked inside the
harness itself: every stepped-loop benchmark (pool reads/appends,
baseline reads, and — at quick sizes — generation) times best-of-N
independent streams, so one host load spike during a full-suite run
cannot push a genuine speedup below its floor.  The tests carry the
``bench`` marker so CI can rerun just this module on a timing failure
without rerunning the whole suite.
"""

import json
import time

import pytest

from repro.bench import run_benchmarks
from repro.bench.hotpath import format_summary

pytestmark = pytest.mark.bench


def test_harness_runs_quickly_and_writes_json(tmp_path):
    """Reduced-size run: complete in <60s, emit a well-formed report."""
    out = tmp_path / "BENCH_quant.json"
    start = time.perf_counter()
    report = run_benchmarks(
        quick=True,
        out_path=str(out),
        tokens=256,
        dim=256,
        steps=48,
        repeats=1,
    )
    elapsed = time.perf_counter() - start
    assert elapsed < 60.0

    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "repro.bench/v1"
    bench = on_disk["benchmarks"]
    assert set(bench) == {
        "encode_roundtrip", "generation", "bitpack", "pool_read",
        "pool_append", "baseline_read", "datapath", "replay",
        "cluster", "tiering", "prefix_sharing", "analytic",
    }

    enc = bench["encode_roundtrip"]
    assert enc["tokens"] == 256 and enc["dim"] == 256
    # Loose floors: smoke sizes are overhead-dominated; the real
    # targets are enforced by the full-size run in BENCH_quant.json.
    assert enc["speedup_roundtrip"] > 1.0
    gen = bench["generation"]
    assert gen["steps"] == 48
    assert gen["tokens_identical"] is True
    assert gen["speedup"] > 1.0
    pool = bench["pool_read"]
    assert pool["reads_identical"] is True
    assert pool["speedup_batched"] > 1.0
    assert pool["repeats"] >= 2  # best-of floor is load-independent
    appends = bench["pool_append"]
    assert appends["caches_identical"] is True
    assert appends["speedup_batched"] > 1.0
    assert appends["adapter_caches_identical"] is True
    assert appends["speedup_adapter_batched"] > 1.0
    # Arena sweep: both serving batch sizes present under pool_read /
    # pool_append, bit-identical reads, and the SoA arena faster than
    # the chunked pool even at smoke sizes.
    for entry in (pool, appends):
        for key in ("batch64", "batch128"):
            sub = entry[key]
            assert sub["reads_identical"] is True
            assert sub["speedup_arena"] > 1.0
            assert sub["repeats"] >= 2
    baseline = bench["baseline_read"]
    assert baseline["reads_identical"] is True
    assert baseline["speedup_amortized"] > 1.0
    assert baseline["repeats"] >= 2
    datapath = bench["datapath"]
    assert datapath["bits_identical"] is True
    assert datapath["cycles_identical"] is True
    # The scalar tier is a per-element python loop; even at smoke
    # sizes the vectorized twins clear an order of magnitude.
    assert datapath["speedup_vectorized"] > 10.0
    replay = bench["replay"]
    assert replay["replayed_tokens"] > 0
    assert replay["engine_cycles"] > 0
    assert replay["tokens_per_mcycle"] > 0
    assert replay["engine_cycles"] == (
        replay["engine_quant_cycles"] + replay["engine_dequant_cycles"]
    )
    # End-to-end replay sweep: the arena must not change the tokens a
    # trace generates, must actually compact under retirement churn,
    # and must beat the chunked pool on host wall clock.
    for key in ("batch64", "batch128"):
        sub = replay[key]
        assert sub["tokens_identical"] is True
        assert sub["arena_compactions"] > 0
        assert sub["speedup_arena"] > 1.0
    cluster = bench["cluster"]
    # Sim-time metrics: deterministic, so exact floors are safe.
    assert cluster["speedup_replicas"] > 1.0
    assert cluster["faulted"]["failovers"] > 0
    assert cluster["faulted"]["completed"] + cluster["faulted"][
        "failed"
    ] == cluster["requests"]
    tiering = bench["tiering"]
    # Also sim-time: the pressure sweep must show rising transfer cost
    # as the device budget shrinks, and merged prefetch must beat
    # per-page promotion (the harness asserts token-count equality
    # with the untiered run internally).
    assert tiering["budget_25"]["transfer_cycles"] > (
        tiering["budget_100"]["transfer_cycles"]
    )
    assert tiering["budget_25"]["evictions"] > 0
    assert tiering["budget_25"]["hit_rate"] < (
        tiering["budget_100"]["hit_rate"]
    )
    assert tiering["speedup_prefetch"] > 1.0
    sharing = bench["prefix_sharing"]
    # Byte accounting, also sim-time deterministic: the sharing run
    # must hold a strictly smaller peak than its no-sharing twin and
    # admit strictly more sequences into the bounded pool (the
    # harness asserts token-count equality and nonzero forks
    # internally).
    assert sharing["forks"] > 0
    assert sharing["shared_bytes_saved"] > 0
    assert sharing["speedup_footprint"] > 1.0
    assert sharing["speedup_admission"] > 1.0
    analytic = bench["analytic"]
    # bench_analytic raises if any grid cell diverges from the scalar
    # run, so runs_identical is an invariant, not a measurement; the
    # vectorized sweep clears 1x even at the quick grid size.
    assert analytic["runs_identical"] == 1.0
    assert analytic["points"] > 0
    assert analytic["speedup_vectorized"] > 1.0

    summary = format_summary(report)
    assert "encode roundtrip" in summary
    assert "generation" in summary
    assert "pool reads" in summary
    assert "pool appends" in summary
    assert "adapter" in summary
    assert "arena batch=64" in summary
    assert "arena batch=128" in summary
    assert "compactions" in summary
    assert "baseline reads" in summary
    assert "datapath engines" in summary
    assert "serving replay" in summary
    assert "cluster replay" in summary
    assert "tiered KV" in summary
    assert "prefix sharing" in summary
    assert "analytic sweep" in summary


def test_no_output_file_when_disabled(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_benchmarks(
        quick=True,
        out_path=None,
        tokens=128,
        dim=128,
        steps=16,
        repeats=1,
    )
    assert not (tmp_path / "BENCH_quant.json").exists()


def test_merge_and_regression_helpers():
    """Best-of-runs merge + the speedup regression gate semantics."""
    from repro.bench import find_regressions, merge_reports, missing_speedups

    def report(seconds, speedup, extra=True):
        bench = {"encode": {"fused_s": seconds, "speedup_roundtrip": speedup}}
        if extra:
            bench["datapath"] = {"speedup_vectorized": 300.0}
        return {"schema": "repro.bench/v1", "quick": True,
                "benchmarks": bench}

    merged = merge_reports([report(0.5, 4.0), report(0.4, 3.5)])
    assert merged["merged_runs"] == 2
    enc = merged["benchmarks"]["encode"]
    assert enc["fused_s"] == 0.4          # min of the _s leaves
    assert enc["speedup_roundtrip"] == 4.0  # max of the speedups

    committed = report(0.4, 4.0)
    # Within the factor: no regression.
    assert find_regressions(report(0.5, 3.0), committed, 0.5) == []
    # Collapsed speedup trips the gate.
    regressions = find_regressions(report(0.5, 1.1), committed, 0.5)
    assert regressions == [("encode.speedup_roundtrip", 1.1, 4.0)]
    # A committed entry the current run no longer emits is lost
    # coverage and must be reported.
    assert missing_speedups(report(0.5, 4.0, extra=False), committed) == [
        "datapath.speedup_vectorized"
    ]
    # Entries only the current run has never fail retroactively.
    assert missing_speedups(committed, report(0.5, 4.0, extra=False)) == []
