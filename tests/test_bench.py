"""Smoke tests for the perf-regression harness (:mod:`repro.bench`)."""

import json
import time

from repro.bench import run_benchmarks
from repro.bench.hotpath import format_summary


def test_harness_runs_quickly_and_writes_json(tmp_path):
    """Reduced-size run: complete in <60s, emit a well-formed report."""
    out = tmp_path / "BENCH_quant.json"
    start = time.perf_counter()
    report = run_benchmarks(
        quick=True,
        out_path=str(out),
        tokens=256,
        dim=256,
        steps=48,
        repeats=1,
    )
    elapsed = time.perf_counter() - start
    assert elapsed < 60.0

    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "repro.bench/v1"
    bench = on_disk["benchmarks"]
    assert set(bench) == {
        "encode_roundtrip", "generation", "bitpack", "pool_read",
        "pool_append", "baseline_read",
    }

    enc = bench["encode_roundtrip"]
    assert enc["tokens"] == 256 and enc["dim"] == 256
    # Loose floors: smoke sizes are overhead-dominated; the real
    # targets are enforced by the full-size run in BENCH_quant.json.
    assert enc["speedup_roundtrip"] > 1.0
    gen = bench["generation"]
    assert gen["steps"] == 48
    assert gen["tokens_identical"] is True
    assert gen["speedup"] > 1.0
    pool = bench["pool_read"]
    assert pool["reads_identical"] is True
    assert pool["speedup_batched"] > 1.0
    appends = bench["pool_append"]
    assert appends["caches_identical"] is True
    assert appends["speedup_batched"] > 1.0
    baseline = bench["baseline_read"]
    assert baseline["reads_identical"] is True
    assert baseline["speedup_amortized"] > 1.0

    summary = format_summary(report)
    assert "encode roundtrip" in summary
    assert "generation" in summary
    assert "pool reads" in summary
    assert "pool appends" in summary
    assert "baseline reads" in summary


def test_no_output_file_when_disabled(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_benchmarks(
        quick=True,
        out_path=None,
        tokens=128,
        dim=128,
        steps=16,
        repeats=1,
    )
    assert not (tmp_path / "BENCH_quant.json").exists()
