"""Sweep tests for the ``repro.commands`` package.

Every subcommand of the front door runs once with quick arguments and
must exit 0; the ``--json`` surfaces must parse and carry their
documented keys; the two bench spellings must expose one parser; and
the replay/cluster shared flags (``commands/common.py``) must parse
identically for both subcommands.
"""

import argparse
import json

import pytest

from repro.cli import build_parser, main

# (case id, argv) — quick arguments so the whole sweep stays fast.
# ``bench`` runs real timed kernels, so it carries the bench marker and
# stays out of the default tier-1 run like the rest of the harness.
SUBCOMMANDS = [
    ("list-models", ["list-models"]),
    ("list-systems", ["list-systems"]),
    ("quantize", ["quantize", "--tokens", "32", "--dim", "64"]),
    ("throughput", ["throughput", "--batch", "16"]),
    ("capacity", ["capacity", "--context", "1024"]),
    ("datapath", ["datapath", "--tokens", "8", "--dim", "64"]),
    ("fabric", ["fabric", "--batch", "4"]),
    ("overlap", ["overlap", "--batch", "8"]),
    ("replay", ["replay", "--requests", "2", "--batch", "2"]),
    (
        "replay-tiered",
        ["replay", "--requests", "2", "--batch", "2",
         "--device-budget-mb", "1", "--charge-transfer-cycles"],
    ),
    (
        "cluster",
        ["cluster", "--requests", "4", "--replicas", "2",
         "--batch", "2"],
    ),
    ("experiment", ["experiment", "fig01"]),
    (
        "analyze",
        None,  # needs a report file; built in the test via tmp_path
    ),
    (
        "serve",
        None,  # needs a config file; built in the test via tmp_path
    ),
]


def _write_replay_report(tmp_path):
    """A real replay report JSON for analyze/serve cases."""
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(
            ["replay", "--requests", "2", "--batch", "2", "--json"]
        )
    assert code == 0
    path = tmp_path / "replay.json"
    path.write_text(buffer.getvalue(), encoding="utf-8")
    return path


class TestSubcommandSweep:
    @pytest.mark.parametrize(
        "argv",
        [case[1] for case in SUBCOMMANDS if case[1] is not None],
        ids=[case[0] for case in SUBCOMMANDS if case[1] is not None],
    )
    def test_exits_zero(self, argv, capsys):
        assert main(argv) == 0
        assert capsys.readouterr().out

    def test_analyze_exits_zero(self, tmp_path, capsys):
        report = _write_replay_report(tmp_path)
        capsys.readouterr()
        assert main(["analyze", str(report)]) == 0
        out = capsys.readouterr().out
        assert "(replay)" in out and "generation_throughput" in out

    def test_serve_exits_zero(self, tmp_path, capsys):
        config = tmp_path / "serve.json"
        config.write_text(
            json.dumps(
                {"mode": "replay", "requests": 2, "batch": 2}
            ),
            encoding="utf-8",
        )
        assert main(["serve", str(config)]) == 0
        assert "tokens/s" in capsys.readouterr().out

    @pytest.mark.bench
    def test_bench_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        argv = [
            "bench", "--quick", "--repeats", "1",
            "--out", str(out),
        ]
        assert main(argv) == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert "analytic" in report["benchmarks"]
        entry = report["benchmarks"]["analytic"]
        assert entry["runs_identical"] == 1.0
        assert entry["speedup_vectorized"] > 0.0


class TestJsonSurfaces:
    REPLAY_KEYS = {
        "system", "batch", "effective_batch", "oom",
        "generation_throughput", "total_time_s", "generated_tokens",
        "mean_latency_s", "p95_latency_s", "mean_ttft_s",
        "p95_ttft_s", "mean_tpot_s", "replay",
    }
    CLUSTER_KEYS = {
        "system", "replicas", "policy", "oom", "completed", "failed",
        "generated_tokens", "total_time_s", "generation_throughput",
        "tokens_per_s", "p99_queue_delay_s", "failovers", "requeues",
        "retries", "forks", "shared_bytes_saved", "per_replica",
    }

    def test_replay_json(self, capsys):
        assert main(
            ["replay", "--requests", "2", "--batch", "2", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert self.REPLAY_KEYS <= set(report)

    def test_cluster_json(self, capsys):
        assert main(
            ["cluster", "--requests", "4", "--replicas", "2",
             "--batch", "2", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert self.CLUSTER_KEYS <= set(report)

    def test_analyze_json(self, tmp_path, capsys):
        report = _write_replay_report(tmp_path)
        capsys.readouterr()
        assert main(["analyze", str(report), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary) == {"reports"}
        (entry,) = summary["reports"]
        assert entry["path"] == str(report)
        assert entry["kind"] == "replay"
        assert entry["metrics"]["generated_tokens"] > 0

    def test_serve_json_flag_forces_json(self, tmp_path, capsys):
        config = tmp_path / "serve.json"
        config.write_text(
            json.dumps(
                {"mode": "replay", "requests": 2, "batch": 2}
            ),
            encoding="utf-8",
        )
        assert main(["serve", str(config), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert TestJsonSurfaces.REPLAY_KEYS <= set(report)


class TestServeErrors:
    def test_missing_mode(self, tmp_path, capsys):
        config = tmp_path / "serve.json"
        config.write_text(json.dumps({"requests": 2}), encoding="utf-8")
        assert main(["serve", str(config)]) == 2
        assert "mode" in capsys.readouterr().err

    def test_non_object_config(self, tmp_path, capsys):
        config = tmp_path / "serve.json"
        config.write_text("[1, 2]", encoding="utf-8")
        assert main(["serve", str(config)]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_unknown_flag_fails_like_argparse(self, tmp_path):
        config = tmp_path / "serve.json"
        config.write_text(
            json.dumps({"mode": "replay", "bogus_flag": 1}),
            encoding="utf-8",
        )
        with pytest.raises(SystemExit):
            main(["serve", str(config)])


class TestAnalyzeErrors:
    def test_missing_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err

    def test_unknown_kind(self, tmp_path, capsys):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"what": 1}), encoding="utf-8")
        assert main(["analyze", str(path)]) == 0
        assert "unknown" in capsys.readouterr().out


def _subparser(parser: argparse.ArgumentParser, name: str):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices[name]
    raise AssertionError("no subparsers on parser")


class TestBenchParserAgreement:
    def test_same_flags_and_defaults(self):
        """``repro bench`` and ``python -m repro.bench`` cannot drift."""
        from repro.bench.__main__ import build_parser as bench_parser

        standalone = bench_parser()
        mounted = _subparser(build_parser(), "bench")

        def surface(parser):
            return {
                tuple(action.option_strings): (
                    action.default, action.nargs, action.type,
                )
                for action in parser._actions
                if action.option_strings != ["-h", "--help"]
                and action.dest != "func"
            }

        assert surface(standalone) == surface(mounted)

    def test_runs_validation_both_spellings(self, capsys):
        from repro.bench.__main__ import main as bench_main

        assert bench_main(["--runs", "0"]) == 2
        assert main(["bench", "--runs", "0"]) == 2


class TestSharedReplayClusterFlags:
    """The common.py helpers parse identically for both subcommands."""

    SHARED = [
        "--method", "kvquant",
        "--trace", "burstgpt",
        "--workload", "rag",
        "--requests", "24",
        "--seed", "5",
        "--device-budget-mb", "2",
        "--eviction", "plru",
        "--charge-transfer-cycles",
        "--arena",
        "--profile-top", "7",
    ]
    SHARED_DESTS = (
        "method", "trace", "workload", "requests", "seed",
        "device_budget_mb", "eviction", "charge_transfer_cycles",
        "arena", "profile", "profile_top", "profile_out",
    )

    def test_parse_identity(self):
        parser = build_parser()
        replay_ns = parser.parse_args(["replay"] + self.SHARED)
        cluster_ns = parser.parse_args(["cluster"] + self.SHARED)
        for dest in self.SHARED_DESTS:
            assert getattr(replay_ns, dest) == getattr(
                cluster_ns, dest
            ), dest

    def test_replay_config_identity(self):
        from repro.commands.common import replay_config

        parser = build_parser()
        replay_ns = parser.parse_args(["replay"] + self.SHARED)
        cluster_ns = parser.parse_args(["cluster"] + self.SHARED)
        assert replay_config(replay_ns) == replay_config(cluster_ns)

    def test_build_trace_identity(self):
        from repro.commands.common import build_trace

        parser = build_parser()
        replay_ns = parser.parse_args(["replay"] + self.SHARED)
        cluster_ns = parser.parse_args(["cluster"] + self.SHARED)
        assert build_trace(replay_ns) == build_trace(cluster_ns)


class TestExampleConfigs:
    """The checked-in serve configs CI runs stay valid."""

    @pytest.mark.parametrize(
        "name", ["serve_replay.json", "serve_cluster.json"]
    )
    def test_example_parses_and_maps(self, name):
        import pathlib

        from repro.commands.serve import MODES, config_to_argv

        path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "examples" / name
        )
        config = json.loads(path.read_text(encoding="utf-8"))
        mode = config.pop("mode")
        assert mode in MODES
        ns = build_parser().parse_args(
            [mode] + config_to_argv(config)
        )
        assert callable(ns.func)
