"""The ComputeMode policy and its plumbing from core to serving.

One policy object carries compute dtype, golden-model anchor and
tolerance contract; these tests pin where each default lands:
``exact_f64`` stays the core-layer / accuracy-harness / golden-test
anchor, while ``deploy_f32`` is the engine-layer and serving-replay
default — threaded through :func:`repro.engine.create_backend`,
:func:`repro.engine.shared_backend_factory`, every registry method's
backend, and :class:`repro.serving.simulator.CacheReplayConfig`.
"""

import numpy as np
import pytest

from repro.baselines.registry import BASELINE_NAMES
from repro.core import (
    COMPUTE_MODES,
    DEPLOY_F32,
    EXACT_F64,
    ComputeMode,
    OakenConfig,
    OakenQuantizer,
    resolve_compute_mode,
)
from repro.core.thresholds import profile_thresholds
from repro.engine import (
    FusedCacheBackend,
    create_backend,
    create_quantizer,
    shared_backend_factory,
)

from conftest import make_kv_matrix

LAYERS = 2


@pytest.fixture(scope="module")
def calibration():
    return [
        (make_kv_matrix(seed=70 + layer), make_kv_matrix(seed=80 + layer))
        for layer in range(LAYERS)
    ]


class TestResolveComputeMode:
    def test_registry_names(self):
        assert resolve_compute_mode("exact_f64") is EXACT_F64
        assert resolve_compute_mode("deploy_f32") is DEPLOY_F32
        assert set(COMPUTE_MODES) == {"exact_f64", "deploy_f32"}

    def test_mode_objects_pass_through(self):
        assert resolve_compute_mode(DEPLOY_F32) is DEPLOY_F32

    def test_dtype_likes_resolve(self):
        """The legacy compute_dtype spellings map onto the policies."""
        assert resolve_compute_mode(np.float64) is EXACT_F64
        assert resolve_compute_mode(np.float32) is DEPLOY_F32
        assert resolve_compute_mode("float32") is DEPLOY_F32
        assert resolve_compute_mode(np.dtype(np.float64)) is EXACT_F64

    def test_none_takes_the_callers_default(self):
        assert resolve_compute_mode(None) is EXACT_F64
        assert resolve_compute_mode(None, DEPLOY_F32) is DEPLOY_F32

    def test_rejects_unsupported_specs(self):
        with pytest.raises(ValueError):
            resolve_compute_mode("fast")
        with pytest.raises(ValueError):
            resolve_compute_mode(np.int32)
        with pytest.raises(ValueError):
            resolve_compute_mode(object())

    def test_policy_contract_fields(self):
        assert EXACT_F64.exact and EXACT_F64.code_tolerance == 0
        assert EXACT_F64.golden == "seed-reference"
        assert not DEPLOY_F32.exact and DEPLOY_F32.code_tolerance == 1
        assert DEPLOY_F32.golden == "exact-f64"
        assert DEPLOY_F32.compute_dtype == np.float32

    def test_cast_uses_the_policy_dtype(self):
        x = np.ones((2, 2), dtype=np.float64)
        assert DEPLOY_F32.cast(x).dtype == np.float32
        assert EXACT_F64.cast(x) is x


class TestCoreLayerDefaults:
    def test_quantizer_pins_exact_f64(self, kv_samples):
        """The golden anchor: a bare OakenQuantizer stays bit-exact."""
        config = OakenConfig()
        quantizer = OakenQuantizer(
            config, profile_thresholds(kv_samples, config)
        )
        assert quantizer.mode is EXACT_F64
        assert quantizer.compute_dtype == np.float64

    def test_create_quantizer_pins_exact_f64(self):
        """The accuracy harness's per-tensor factory stays f64."""
        quantizer = create_quantizer("oaken", "key")
        assert quantizer.mode is EXACT_F64

    def test_create_quantizer_accepts_mode_for_oaken(self):
        quantizer = create_quantizer("oaken", "key", mode="deploy_f32")
        assert quantizer.mode is DEPLOY_F32

    @pytest.mark.parametrize(
        "method", [m for m in BASELINE_NAMES if m != "oaken"]
    )
    def test_create_quantizer_mode_is_inert_for_baselines(self, method):
        """Registry methods define their own arithmetic; mode is a tag."""
        quantizer = create_quantizer(method, "key", mode="deploy_f32")
        assert quantizer.name == method


class TestEngineLayerDefaults:
    @pytest.mark.parametrize("method", BASELINE_NAMES)
    def test_create_backend_defaults_to_deploy_f32(
        self, method, calibration
    ):
        backend = create_backend(method, calibration=calibration)
        assert backend.mode is DEPLOY_F32

    def test_fused_backend_mode_reaches_the_kernels(self, calibration):
        backend = create_backend("oaken", calibration=calibration)
        assert isinstance(backend, FusedCacheBackend)
        for layer in backend.layers:
            assert layer.key_quantizer.mode is DEPLOY_F32
            assert layer.value_quantizer.mode is DEPLOY_F32

    def test_exact_f64_opt_out(self, calibration):
        backend = create_backend(
            "oaken", calibration=calibration, mode="exact_f64"
        )
        assert backend.mode is EXACT_F64
        for layer in backend.layers:
            assert layer.key_quantizer.mode is EXACT_F64

    def test_from_calibration_defaults_to_deploy_f32(self, calibration):
        backend = FusedCacheBackend.from_calibration(calibration)
        assert backend.mode is DEPLOY_F32

    def test_shared_factory_propagates_mode(self, calibration):
        for mode in (EXACT_F64, DEPLOY_F32):
            factory = shared_backend_factory(
                "oaken", calibration=calibration, mode=mode
            )
            assert factory().mode is mode
        adapter_factory = shared_backend_factory(
            "fp16", num_layers=LAYERS, mode="exact_f64"
        )
        assert adapter_factory().mode is EXACT_F64

    def test_f32_backend_stays_close_to_f64(self, calibration):
        """The deploy default obeys the documented tolerance contract."""
        keys = make_kv_matrix(tokens=24, seed=90)
        values = make_kv_matrix(tokens=24, seed=91)
        deploy = create_backend("oaken", calibration=calibration)
        exact = create_backend(
            "oaken", calibration=calibration, mode="exact_f64"
        )
        deploy.append(0, keys, values)
        exact.append(0, keys, values)
        dk, _ = deploy.read(0)
        ek, _ = exact.read(0)
        # One code level of the middle group, plus fp16 scale slack.
        config = OakenConfig()
        assert float(np.abs(dk - ek).max()) < 1.0 / (
            2**config.inlier_bits - 1
        ) + 0.25


class TestServingReplayDefault:
    def test_replay_config_defaults_to_deploy_f32(self):
        from repro.serving.simulator import CacheReplayConfig

        assert CacheReplayConfig().mode == "deploy_f32"

    def test_replay_threads_mode_into_the_pool(self):
        from repro.data.traces import TraceRequest
        from repro.hardware.overheads import get_system
        from repro.models.config import get_model
        from repro.serving.simulator import (
            CacheReplayConfig,
            simulate_trace,
        )

        trace = [
            TraceRequest(arrival_s=0.0, input_tokens=32, output_tokens=4)
            for _ in range(3)
        ]
        report = simulate_trace(
            get_system("oaken-lpddr"),
            get_model("llama2-13b").arch,
            trace,
            3,
            replay=CacheReplayConfig(method="oaken"),
        )
        assert report.replay is not None
        assert report.replay["mode"] == "deploy_f32"
        exact = simulate_trace(
            get_system("oaken-lpddr"),
            get_model("llama2-13b").arch,
            trace,
            3,
            replay=CacheReplayConfig(method="oaken", mode="exact_f64"),
        )
        assert exact.replay["mode"] == "exact_f64"
