"""Unit tests for the memory models."""

import pytest

from repro.hardware.memory import HBM_80GB, HBM_160GB, LPDDR_256GB, MemorySpec


class TestSpecs:
    def test_paper_table1_values(self):
        assert HBM_80GB.capacity_gb == 80.0
        assert HBM_80GB.bandwidth_gbps == 2000.0
        assert LPDDR_256GB.capacity_gb == 256.0
        assert LPDDR_256GB.bandwidth_gbps == 1100.0

    def test_dual_gpu_capacity(self):
        assert HBM_160GB.capacity_gb == 160.0
        assert HBM_160GB.bandwidth_gbps == HBM_80GB.bandwidth_gbps

    def test_tradeoff_direction(self):
        assert HBM_80GB.bandwidth_gbps > LPDDR_256GB.bandwidth_gbps
        assert LPDDR_256GB.capacity_gb > HBM_80GB.capacity_gb


class TestBurstEfficiency:
    def test_monotone_in_transfer_size(self):
        spec = HBM_80GB
        sizes = [8, 64, 256, 1024, 4096]
        efficiencies = [spec.burst_efficiency(s) for s in sizes]
        assert efficiencies == sorted(efficiencies)

    def test_full_burst_near_peak(self):
        assert HBM_80GB.burst_efficiency(4096) > 0.9

    def test_tiny_transfer_poor(self):
        assert HBM_80GB.burst_efficiency(8) < 0.2

    def test_zero_transfer(self):
        assert HBM_80GB.burst_efficiency(0) == 0.0

    def test_saturates_at_burst_size(self):
        spec = HBM_80GB
        assert spec.burst_efficiency(spec.burst_bytes) == (
            spec.burst_efficiency(10 * spec.burst_bytes)
        )


class TestReadTime:
    def test_linear_in_bytes(self):
        t1 = HBM_80GB.read_time_s(1e9)
        t2 = HBM_80GB.read_time_s(2e9)
        assert t2 == pytest.approx(2 * t1)

    def test_bandwidth_ratio(self):
        hbm = HBM_80GB.read_time_s(1e9)
        lpddr = LPDDR_256GB.read_time_s(1e9)
        assert lpddr / hbm == pytest.approx(2000.0 / 1100.0)

    def test_small_granularity_slower(self):
        fast = HBM_80GB.read_time_s(1e9)
        slow = HBM_80GB.read_time_s(1e9, transfer_bytes=32)
        assert slow > 2 * fast

    def test_zero_bytes(self):
        assert HBM_80GB.read_time_s(0) == 0.0

    def test_fits(self):
        assert HBM_80GB.fits(70 * 1024**3)
        assert not HBM_80GB.fits(90 * 1024**3)
