"""Unit and property tests for the page-based MMU."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.mmu import (
    MemoryManagementUnit,
    OutOfPagesError,
    PageTableKind,
)


def small_mmu(pages=16, page_bytes=256):
    return MemoryManagementUnit(
        capacity_bytes=pages * page_bytes, page_bytes=page_bytes
    )


class TestAllocation:
    def test_sequential_entries_contiguous(self):
        mmu = small_mmu()
        for token in range(4):
            mmu.write_entry(0, 0, 0, PageTableKind.DENSE, token, 32)
        schedule = mmu.read_schedule(0, 0, 0, PageTableKind.DENSE)
        assert len(schedule) == 1
        assert schedule[0][1] == 128

    def test_page_overflow_opens_new_page(self):
        mmu = small_mmu(page_bytes=64)
        mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 48)
        mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 1, 48)
        assert mmu.pages_in_use == 2

    def test_entries_do_not_straddle_pages(self):
        mmu = small_mmu(page_bytes=64)
        mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 40)
        entry = mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 1, 40)
        assert entry.physical_addr % 64 == 0

    def test_oversized_entry_rejected(self):
        mmu = small_mmu(page_bytes=64)
        with pytest.raises(ValueError):
            mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 128)

    def test_nonpositive_entry_rejected(self):
        mmu = small_mmu()
        with pytest.raises(ValueError):
            mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 0)

    def test_pool_exhaustion(self):
        mmu = small_mmu(pages=2, page_bytes=64)
        mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 64)
        mmu.write_entry(0, 0, 1, PageTableKind.DENSE, 0, 64)
        with pytest.raises(OutOfPagesError):
            mmu.write_entry(0, 0, 2, PageTableKind.DENSE, 0, 64)

    def test_streams_use_distinct_pages(self):
        """KV of different heads land on different pages (Section 5.2)."""
        mmu = small_mmu()
        a = mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 32)
        b = mmu.write_entry(0, 0, 1, PageTableKind.DENSE, 0, 32)
        assert a.physical_addr // 256 != b.physical_addr // 256

    def test_dense_and_sparse_tables_separate(self):
        mmu = small_mmu()
        dense, sparse = mmu.append_token(0, 0, 0, 0, 32, 8)
        assert sparse is not None
        assert dense.physical_addr // 256 != (
            sparse.physical_addr // 256
        )

    def test_append_token_without_outliers(self):
        mmu = small_mmu()
        dense, sparse = mmu.append_token(0, 0, 0, 0, 32, 0)
        assert sparse is None


class TestTranslation:
    def test_lookup_returns_entry(self):
        mmu = small_mmu()
        written = mmu.write_entry(0, 1, 2, PageTableKind.SPARSE, 7, 16)
        found = mmu.lookup(0, 1, 2, PageTableKind.SPARSE, 7)
        assert found.physical_addr == written.physical_addr
        assert found.transfer_bytes == 16

    def test_lookup_missing_rejected(self):
        with pytest.raises(KeyError):
            small_mmu().lookup(0, 0, 0, PageTableKind.DENSE, 0)

    def test_no_address_overlap_across_streams(self):
        mmu = small_mmu(pages=64)
        occupied = set()
        rng = np.random.default_rng(0)
        for _ in range(100):
            seq = int(rng.integers(0, 3))
            head = int(rng.integers(0, 2))
            size = int(rng.integers(8, 48))
            entry = mmu.write_entry(
                seq, 0, head, PageTableKind.DENSE, 0, size
            )
            span = set(
                range(entry.physical_addr,
                      entry.physical_addr + entry.transfer_bytes)
            )
            assert not (span & occupied)
            occupied |= span


class TestReclamation:
    def test_free_sequence_returns_pages(self):
        mmu = small_mmu()
        for token in range(8):
            mmu.append_token(5, 0, 0, token, 64, 8)
        used = mmu.pages_in_use
        assert used > 0
        reclaimed = mmu.free_sequence(5)
        assert reclaimed == used
        assert mmu.pages_in_use == 0

    def test_free_leaves_other_sequences(self):
        mmu = small_mmu()
        mmu.write_entry(1, 0, 0, PageTableKind.DENSE, 0, 32)
        mmu.write_entry(2, 0, 0, PageTableKind.DENSE, 0, 32)
        mmu.free_sequence(1)
        assert mmu.pages_in_use == 1
        mmu.lookup(2, 0, 0, PageTableKind.DENSE, 0)

    def test_freed_pages_reusable(self):
        mmu = small_mmu(pages=2, page_bytes=64)
        mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 64)
        mmu.write_entry(0, 0, 1, PageTableKind.DENSE, 0, 64)
        mmu.free_sequence(0)
        mmu.write_entry(1, 0, 0, PageTableKind.DENSE, 0, 64)


class TestMetrics:
    def test_fragmentation_zero_when_pages_full(self):
        mmu = small_mmu(page_bytes=64)
        mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 64)
        assert mmu.fragmentation() == 0.0

    def test_fragmentation_counts_waste(self):
        mmu = small_mmu(page_bytes=64)
        mmu.write_entry(0, 0, 0, PageTableKind.DENSE, 0, 16)
        assert mmu.fragmentation() == pytest.approx(0.75)

    def test_empty_mmu_fragmentation(self):
        assert small_mmu().fragmentation() == 0.0

    def test_burst_count_grows_with_pages(self):
        mmu = small_mmu(page_bytes=64)
        for token in range(8):  # 4 pages of 2 entries
            mmu.write_entry(0, 0, 0, PageTableKind.DENSE, token, 32)
        assert mmu.burst_count(0, 0, 0, PageTableKind.DENSE) <= 4

    @given(
        sizes=st.lists(st.integers(4, 60), min_size=1, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_schedule_covers_all_bytes(self, sizes):
        mmu = MemoryManagementUnit(
            capacity_bytes=64 * 4096, page_bytes=64
        )
        for token, size in enumerate(sizes):
            mmu.write_entry(0, 0, 0, PageTableKind.SPARSE, token, size)
        schedule = mmu.read_schedule(0, 0, 0, PageTableKind.SPARSE)
        assert sum(s for _, s in schedule) == sum(sizes)
        # Bursts never overlap and are in write order per page.
        spans = []
        for addr, size in schedule:
            spans.append((addr, addr + size))
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0 or b1 <= a0
