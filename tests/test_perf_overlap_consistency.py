"""Consistency between the perf model's overlap heuristic and the
measured overlap schedule.

:func:`repro.hardware.perf.generation_iteration` encodes Section 5.3
as ``exposed = max(0, quant + dequant - 0.9 * t_attn)``; the
:mod:`repro.hardware.overlap` scheduler measures exposure from an
actual iteration schedule.  Both must agree on the paper's headline
regimes: negligible exposure for Oaken's hardware engines at serving
batch sizes, large exposure for the GPU software port.
"""

from __future__ import annotations

import pytest

from repro.hardware.overheads import get_system
from repro.hardware.overlap import OverlapConfig, simulate_overlap
from repro.hardware.perf import generation_iteration
from repro.models.config import get_model

ARCH = get_model("llama2-7b").arch
CONTEXT = 1024


def measured_exposure_fraction(batch: int, system_name: str) -> float:
    """Exposure fraction from the overlap schedule, fed with the same
    per-request quantities the perf model uses."""
    system = get_system(system_name)
    kv_bits = system.kv_bits(ARCH)
    kv_read = ARCH.attended_length(CONTEXT) * ARCH.kv_bytes_per_token(
        kv_bits
    )
    new_kv = ARCH.kv_bytes_per_token(16.0)
    breakdown = generation_iteration(system, ARCH, batch, CONTEXT)
    attention_per_request = breakdown.attn_s / batch
    if system_name == "oaken-lpddr":
        config = OverlapConfig()  # hardware engine rates
    else:
        # GPU software port: effective (de)quantization rates far
        # below the stream (warp-divergent kernels).
        config = OverlapConfig(dequant_gbps=4.0, quant_gbps=0.5)
    report = simulate_overlap(
        batch, kv_read, new_kv, attention_per_request, config=config
    )
    return report.exposed_s / report.makespan_s


class TestModelsAgree:
    def test_oaken_engines_negligible_both_ways(self):
        """Hardware engines: both models put exposure in the noise at
        serving batch sizes."""
        system = get_system("oaken-lpddr")
        breakdown = generation_iteration(system, ARCH, 64, CONTEXT)
        heuristic = breakdown.exposed_overhead_s / breakdown.total_s
        measured = measured_exposure_fraction(64, "oaken-lpddr")
        assert heuristic < 0.02
        assert measured < 0.02

    def test_gpu_port_significant_both_ways(self):
        """Software port: both models put (de)quantization squarely on
        the critical path."""
        system = get_system("oaken-gpu")
        breakdown = generation_iteration(system, ARCH, 64, CONTEXT)
        heuristic = breakdown.exposed_overhead_s / breakdown.total_s
        measured = measured_exposure_fraction(64, "oaken-gpu")
        assert heuristic > 0.10
        assert measured > 0.10

    @pytest.mark.parametrize("batch", (16, 64, 128))
    def test_ranking_preserved_across_batches(self, batch):
        """At every batch, both models rank the hardware engines ahead
        of the software port."""
        hw = measured_exposure_fraction(batch, "oaken-lpddr")
        sw = measured_exposure_fraction(batch, "oaken-gpu")
        assert hw < sw
        hw_b = generation_iteration(
            get_system("oaken-lpddr"), ARCH, batch, CONTEXT
        )
        sw_b = generation_iteration(
            get_system("oaken-gpu"), ARCH, batch, CONTEXT
        )
        assert (
            hw_b.exposed_overhead_s / hw_b.total_s
            < sw_b.exposed_overhead_s / sw_b.total_s
        )
