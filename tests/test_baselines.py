"""Interface-conformance and behaviour tests for all baselines."""

import numpy as np
import pytest

from repro.baselines import (
    AtomQuantizer,
    FP16Baseline,
    KIVIQuantizer,
    KVQuantQuantizer,
    QServeQuantizer,
    TenderQuantizer,
    available_methods,
    create_method,
)
from repro.baselines.registry import BASELINE_NAMES

from conftest import make_kv_matrix

ALL_METHODS = sorted(available_methods())


class TestRegistry:
    def test_all_paper_methods_registered(self):
        for name in (
            "fp16", "kvquant", "kivi", "qserve", "atom", "tender",
            "oaken",
        ):
            assert name in available_methods()

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            create_method("nonexistent")

    def test_invalid_tensor_kind_rejected(self):
        with pytest.raises(ValueError):
            create_method("fp16", "weights")

    def test_baseline_names_order(self):
        assert BASELINE_NAMES[0] == "fp16"
        assert BASELINE_NAMES[-1] == "oaken"


@pytest.mark.parametrize("name", ALL_METHODS)
class TestInterfaceConformance:
    def test_roundtrip_shape_and_dtype(self, name, kv_samples, kv_matrix):
        quantizer = create_method(name, "key").fit(kv_samples)
        restored = quantizer.roundtrip(kv_matrix)
        assert restored.shape == kv_matrix.shape
        assert restored.dtype == np.float32
        assert np.isfinite(restored).all()

    def test_footprint_positive(self, name, kv_samples, kv_matrix):
        quantizer = create_method(name, "value").fit(kv_samples)
        footprint = quantizer.footprint(kv_matrix)
        assert footprint.total_bits > 0
        assert footprint.element_count == kv_matrix.size

    def test_effective_bitwidth_below_fp16_for_quantizers(
        self, name, kv_samples, kv_matrix
    ):
        quantizer = create_method(name, "key").fit(kv_samples)
        bits = quantizer.effective_bitwidth(kv_matrix)
        if name == "fp16":
            assert bits == pytest.approx(16.0)
        else:
            assert bits < 8.0

    def test_relative_error_bounded(self, name, kv_samples, kv_matrix):
        quantizer = create_method(name, "key").fit(kv_samples)
        restored = quantizer.roundtrip(kv_matrix)
        rel = np.sqrt(np.mean((restored - kv_matrix) ** 2))
        rel /= kv_matrix.std()
        # Tender is deliberately the coarsest method.
        limit = 0.6 if name == "tender" else 0.25
        assert rel < limit


class TestCalibrationRequirements:
    @pytest.mark.parametrize("name", ["qserve", "atom", "tender", "oaken"])
    def test_unfitted_use_rejected(self, name, kv_matrix):
        with pytest.raises(RuntimeError):
            create_method(name, "key").roundtrip(kv_matrix)

    @pytest.mark.parametrize("name", ["fp16", "kvquant", "kivi"])
    def test_calibration_free_methods(self, name, kv_matrix):
        restored = create_method(name, "key").roundtrip(kv_matrix)
        assert restored.shape == kv_matrix.shape

    def test_dim_mismatch_rejected(self, kv_samples):
        quantizer = QServeQuantizer("key").fit(kv_samples)
        with pytest.raises(ValueError):
            quantizer.roundtrip(np.zeros((4, 32)))


class TestFP16:
    def test_exact_within_half_precision(self, kv_matrix):
        restored = FP16Baseline("key").roundtrip(kv_matrix)
        np.testing.assert_allclose(
            restored, kv_matrix.astype(np.float16), rtol=1e-7
        )

    def test_bitwidth_exactly_16(self, kv_matrix):
        assert FP16Baseline("key").effective_bitwidth(kv_matrix) == 16.0


class TestKVQuant:
    def test_outliers_kept_exact(self, kv_matrix):
        quantizer = KVQuantQuantizer("key", outlier_fraction=0.01)
        restored = quantizer.roundtrip(kv_matrix)
        mask = quantizer._outlier_mask(kv_matrix)
        np.testing.assert_allclose(
            restored[mask],
            kv_matrix[mask].astype(np.float16),
            rtol=1e-6,
        )

    def test_outlier_fraction_respected(self, kv_matrix):
        quantizer = KVQuantQuantizer("key", outlier_fraction=0.02)
        mask = quantizer._outlier_mask(kv_matrix)
        assert mask.mean() == pytest.approx(0.02, abs=0.005)

    def test_zero_outlier_fraction(self, kv_matrix):
        quantizer = KVQuantQuantizer("key", outlier_fraction=0.0)
        assert not quantizer._outlier_mask(kv_matrix).any()

    def test_key_vs_value_axis_differs(self, kv_matrix):
        keys = KVQuantQuantizer("key").roundtrip(kv_matrix)
        values = KVQuantQuantizer("value").roundtrip(kv_matrix)
        assert not np.allclose(keys, values)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            KVQuantQuantizer("key", outlier_fraction=1.5)


class TestKIVI:
    def test_residual_window_exact(self, kv_matrix):
        quantizer = KIVIQuantizer("key", residual_length=16)
        restored = quantizer.roundtrip(kv_matrix)
        np.testing.assert_allclose(
            restored[-16:],
            kv_matrix[-16:].astype(np.float16),
            rtol=1e-6,
        )

    def test_prefix_is_quantized(self, kv_matrix):
        quantizer = KIVIQuantizer("key", residual_length=16)
        restored = quantizer.roundtrip(kv_matrix)
        assert not np.allclose(
            restored[:-16], kv_matrix[:-16].astype(np.float16)
        )

    def test_short_sequence_fully_residual(self):
        x = make_kv_matrix(tokens=8)
        quantizer = KIVIQuantizer("key", residual_length=32)
        restored = quantizer.roundtrip(x)
        np.testing.assert_allclose(
            restored, x.astype(np.float16), rtol=1e-6
        )

    def test_effective_bits_near_five(self, kv_matrix):
        # 4-bit codes + per-32-group scales ~= 5 bits + residual.
        bits = KIVIQuantizer("key").effective_bitwidth(kv_matrix)
        assert 5.0 < bits < 8.5

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            KIVIQuantizer("key", group_size=0)
        with pytest.raises(ValueError):
            KIVIQuantizer("key", residual_length=-1)


class TestQServe:
    def test_equalization_improves_on_channel_outliers(self, kv_samples,
                                                       kv_matrix):
        fitted = QServeQuantizer("key").fit(kv_samples)
        restored = fitted.roundtrip(kv_matrix)
        mse = np.mean((restored - kv_matrix) ** 2)
        # Plain per-token over the full width (no equalization).
        plain = QServeQuantizer("key", alpha=0.0, group_size=10**6)
        plain.fit(kv_samples)
        plain_mse = np.mean((plain.roundtrip(kv_matrix) - kv_matrix) ** 2)
        assert mse < plain_mse

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            QServeQuantizer("key", alpha=1.5)

    def test_empty_calibration_rejected(self):
        with pytest.raises(ValueError):
            QServeQuantizer("key").fit([])


class TestAtom:
    def test_reorder_is_permutation(self, kv_samples):
        quantizer = AtomQuantizer("key").fit(kv_samples)
        order = np.sort(quantizer._order)
        np.testing.assert_array_equal(
            order, np.arange(kv_samples[0].shape[1])
        )

    def test_roundtrip_unpermuted(self, kv_samples, kv_matrix):
        quantizer = AtomQuantizer("key").fit(kv_samples)
        restored = quantizer.roundtrip(kv_matrix)
        # Correlation with the original must be high channel-wise
        # (reordering must be undone).
        for channel in (3, 17, 40):
            corr = np.corrcoef(
                restored[:, channel], kv_matrix[:, channel]
            )[0, 1]
            assert corr > 0.95


class TestTender:
    def test_power_of_two_scale_ladder(self, kv_samples):
        quantizer = TenderQuantizer("key").fit(kv_samples)
        scales = quantizer._group_scale
        ratios = scales / scales[0]
        log2 = np.log2(ratios)
        np.testing.assert_allclose(log2, np.round(log2), atol=1e-9)

    def test_coarsest_method(self, kv_samples, kv_matrix):
        tender = TenderQuantizer("key").fit(kv_samples)
        kvq = KVQuantQuantizer("key")
        tender_mse = np.mean(
            (tender.roundtrip(kv_matrix) - kv_matrix) ** 2
        )
        kvq_mse = np.mean((kvq.roundtrip(kv_matrix) - kv_matrix) ** 2)
        assert tender_mse > kvq_mse

    def test_lowest_effective_bits(self, kv_samples, kv_matrix):
        tender = TenderQuantizer("key").fit(kv_samples)
        bits = tender.effective_bitwidth(kv_matrix)
        assert bits < 4.5

    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError):
            TenderQuantizer("key", num_groups=0)


class TestAccuracyOrdering:
    def test_error_ordering_matches_paper(self, kv_samples, kv_matrix):
        """Outlier-aware methods beat coarse per-group methods."""
        mses = {}
        for name in ("kvquant", "oaken", "qserve", "tender"):
            quantizer = create_method(name, "key").fit(kv_samples)
            restored = quantizer.roundtrip(kv_matrix)
            mses[name] = np.mean((restored - kv_matrix) ** 2)
        assert mses["kvquant"] < mses["tender"]
        assert mses["oaken"] < mses["qserve"] < mses["tender"]


class TestRoundtripBatch:
    """The batched-quantize contract behind the pool's merged adapter
    paths: row-local methods merge blocks into one transform, every
    method returns per-block results equal to per-block roundtrips."""

    def blocks(self):
        return [
            make_kv_matrix(tokens=tokens, seed=30 + tokens)
            for tokens in (1, 3, 2)
        ]

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_matches_per_block_roundtrips(self, method):
        quantizer = create_method(method, "key")
        quantizer.fit([make_kv_matrix(seed=1)])
        batch = quantizer.roundtrip_batch(self.blocks())
        singles = [
            np.asarray(quantizer.roundtrip(block))
            for block in self.blocks()
        ]
        assert len(batch) == len(singles)
        for got, want in zip(batch, singles):
            np.testing.assert_array_equal(got, want)

    def test_row_local_merges_into_one_transform(self):
        calls = []

        class Probe(FP16Baseline):
            def roundtrip(self, values):
                calls.append(values.shape[0])
                return super().roundtrip(values)

        probe = Probe("key")
        out = probe.roundtrip_batch(
            [make_kv_matrix(2, seed=1), make_kv_matrix(3, seed=2)]
        )
        assert calls == [5]  # one merged [2 + 3, D] call
        assert [block.shape[0] for block in out] == [2, 3]

    def test_history_global_stays_per_block(self):
        calls = []

        class Probe(KIVIQuantizer):
            def roundtrip(self, values):
                calls.append(values.shape[0])
                return super().roundtrip(values)

        probe = Probe("key")
        probe.roundtrip_batch(
            [make_kv_matrix(2, seed=1), make_kv_matrix(3, seed=2)]
        )
        assert calls == [2, 3]  # merging would change the window bits

    def test_single_block_skips_the_merge(self):
        calls = []

        class Probe(FP16Baseline):
            def roundtrip(self, values):
                calls.append(values.shape[0])
                return super().roundtrip(values)

        probe = Probe("key")
        out = probe.roundtrip_batch([make_kv_matrix(4, seed=3)])
        assert calls == [4]
        assert len(out) == 1
