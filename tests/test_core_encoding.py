"""Unit tests for the fused dense-and-sparse encoding accounting."""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.encoding import (
    concat_encoded,
    sparse_record_bits,
    split_encoded,
)
from repro.core.quantizer import OakenQuantizer
from repro.engine import BASELINE_NAMES, create_quantizer

from conftest import make_kv_matrix


class TestSparseRecordBits:
    def test_paper_default_is_8(self):
        # 6 index + 1 group + 1 code bit = 8 (Section 4.5).
        assert sparse_record_bits(OakenConfig()) == 8

    def test_two_groups_still_8(self):
        # Table 3: the 2-group configs keep 8 bits via padding.
        config = OakenConfig.from_ratio_string("90/10")
        assert sparse_record_bits(config) == 8

    def test_four_groups_pad_to_16(self):
        # Table 3: 9-bit records (2 group bits) pad to 16.
        config = OakenConfig.from_ratio_string("4/90/3/3")
        assert sparse_record_bits(config) == 16

    def test_four_bit_outliers_restore_8(self):
        # Table 3: 4-bit outliers fit entirely in the dense slot.
        config = OakenConfig.from_ratio_string(
            "4/90/3/3", outlier_bits=4
        )
        assert sparse_record_bits(config) == 8

    def test_naive_encoding_is_23(self):
        # 16-bit value + 6-bit index + 1 group bit (prior work).
        config = OakenConfig(fused_encoding=False)
        assert sparse_record_bits(config) == 23


class TestEncodedKV:
    @pytest.fixture(scope="class")
    def encoded(self, kv_samples, kv_matrix):
        quantizer = OakenQuantizer.from_samples(kv_samples, OakenConfig())
        return quantizer.quantize(kv_matrix)

    def test_shape_metadata(self, encoded, kv_matrix):
        assert encoded.num_tokens == kv_matrix.shape[0]
        assert encoded.dim == kv_matrix.shape[1]

    def test_dense_codes_fit_in_nibbles(self, encoded):
        assert encoded.dense_codes.max() <= 15

    def test_footprint_hand_computed(self, encoded):
        fp = encoded.footprint()
        elements = encoded.num_tokens * encoded.dim
        assert fp.dense_bits == elements * 4
        assert fp.sparse_bits == encoded.num_outliers * 8
        # 2 scalars for middle + 2 per band, 2 bands, FP16 each.
        assert fp.metadata_bits == encoded.num_tokens * 6 * 16
        assert fp.element_count == elements

    def test_footprint_cached(self, encoded):
        assert encoded.footprint() is encoded.footprint()

    def test_outliers_of_token(self, encoded):
        token = int(encoded.sparse_token[0])
        indices = encoded.outliers_of_token(token)
        assert (encoded.sparse_token[indices] == token).all()

    def test_nbytes_consistent(self, encoded):
        assert encoded.nbytes() == pytest.approx(
            encoded.footprint().total_bits / 8.0
        )

    def test_band_ids_valid(self, encoded):
        assert encoded.sparse_band.min() >= 0
        assert encoded.sparse_band.max() < 2

    def test_scale_arrays_shapes(self, encoded):
        assert encoded.middle_lo.shape == (encoded.num_tokens,)
        assert encoded.band_lo.shape == (encoded.num_tokens, 2)


class TestFusedNibbleConsistency:
    def test_dense_slot_carries_outlier_payload(self):
        x = make_kv_matrix(tokens=64, dim=64, seed=9)
        quantizer = OakenQuantizer.from_samples([x], OakenConfig())
        encoded = quantizer.quantize(x)
        token, pos = encoded.sparse_token, encoded.sparse_pos
        # With 5-bit outliers the dense nibble holds the 4 magnitude
        # bits of each outlier code.
        nibbles = encoded.dense_codes[token, pos]
        np.testing.assert_array_equal(
            nibbles, encoded.sparse_mag_code & 0xF
        )

    def test_naive_encoding_zeroes_dense_slots(self):
        x = make_kv_matrix(tokens=64, dim=64, seed=9)
        config = OakenConfig(fused_encoding=False)
        quantizer = OakenQuantizer.from_samples([x], config)
        encoded = quantizer.quantize(x)
        token, pos = encoded.sparse_token, encoded.sparse_pos
        assert (encoded.dense_codes[token, pos] == 0).all()


class TestSplitEncoded:
    """split_encoded is the exact inverse of batch-quantizing blocks."""

    @staticmethod
    def _assert_chunks_equal(a, b):
        assert a.shape == b.shape
        for name in (
            "dense_codes", "middle_lo", "middle_hi", "band_lo",
            "band_hi", "sparse_token", "sparse_pos", "sparse_band",
            "sparse_side", "sparse_mag_code",
        ):
            np.testing.assert_array_equal(
                getattr(a, name), getattr(b, name)
            )
        if a.sparse_fp16 is None:
            assert b.sparse_fp16 is None
        else:
            np.testing.assert_array_equal(a.sparse_fp16, b.sparse_fp16)

    @pytest.mark.parametrize("fused", [True, False])
    def test_split_of_batch_matches_per_block_quantize(self, fused):
        config = OakenConfig(fused_encoding=fused)
        calibration = make_kv_matrix(tokens=96, dim=64, seed=1)
        quantizer = OakenQuantizer.from_samples([calibration], config)
        blocks = [
            make_kv_matrix(tokens=rows, dim=64, seed=10 + i)
            for i, rows in enumerate((3, 1, 0, 5))
        ]
        batch = quantizer.quantize(np.concatenate(blocks))
        pieces = split_encoded(batch, [b.shape[0] for b in blocks])
        assert len(pieces) == len(blocks)
        for block, piece in zip(blocks, pieces):
            if block.shape[0] == 0:
                assert piece.num_tokens == 0
                continue
            self._assert_chunks_equal(piece, quantizer.quantize(block))

    def test_split_concat_roundtrip(self):
        quantizer = OakenQuantizer.from_samples(
            [make_kv_matrix(tokens=96, dim=64, seed=2)]
        )
        batch = quantizer.quantize(make_kv_matrix(tokens=9, dim=64, seed=3))
        pieces = split_encoded(batch, [4, 5])
        merged = concat_encoded(pieces)
        self._assert_chunks_equal(merged, batch)

    def test_split_pieces_own_their_arrays(self):
        quantizer = OakenQuantizer.from_samples(
            [make_kv_matrix(tokens=96, dim=64, seed=2)]
        )
        batch = quantizer.quantize(make_kv_matrix(tokens=4, dim=64, seed=4))
        piece = split_encoded(batch, [2, 2])[0]
        piece.dense_codes[0, 0] += 1
        assert piece.dense_codes.base is not batch.dense_codes
        assert batch.dense_codes[0, 0] != piece.dense_codes[0, 0]

    def test_bad_row_counts_rejected(self):
        quantizer = OakenQuantizer.from_samples(
            [make_kv_matrix(tokens=96, dim=64, seed=2)]
        )
        batch = quantizer.quantize(make_kv_matrix(tokens=4, dim=64, seed=5))
        with pytest.raises(ValueError):
            split_encoded(batch, [1, 1])
        with pytest.raises(ValueError):
            split_encoded(batch, [5, -1])

    # -- property-based fuzz ------------------------------------------

    # The Table 3 encoding variants: default fused 5-bit records,
    # naive 23-bit records (fp16 outlier payloads, exercising the
    # sparse_fp16 arrays), 4-bit outliers folded into the dense slot,
    # and the 4-group 16-bit-record layout.
    FUZZ_CONFIGS = {
        "fused-5b": OakenConfig(),
        "naive-fp16": OakenConfig(fused_encoding=False),
        "outlier-4b": OakenConfig.from_ratio_string(
            "4/90/3/3", outlier_bits=4
        ),
        "groups-16b": OakenConfig.from_ratio_string("4/90/3/3"),
    }

    @pytest.mark.parametrize("variant", sorted(FUZZ_CONFIGS))
    @pytest.mark.parametrize("seed", range(5))
    def test_concat_of_split_is_identity_under_random_geometry(
        self, variant, seed
    ):
        """concat(split(x, k)) == x for seeded random chunk shapes.

        Geometries deliberately include the degenerate cases: empty
        pieces, single rows, ragged runs, and whole-batch splits.
        """
        config = self.FUZZ_CONFIGS[variant]
        quantizer = OakenQuantizer.from_samples(
            [make_kv_matrix(tokens=96, dim=64, seed=6)], config
        )
        rng = np.random.default_rng(seed)
        for round_index in range(8):
            tokens = int(rng.integers(1, 24))
            batch = quantizer.quantize(
                make_kv_matrix(
                    tokens=tokens, dim=64, seed=100 * seed + round_index
                )
            )
            # Random composition of tokens into (possibly empty) parts.
            parts = []
            remaining = tokens
            while remaining > 0:
                take = int(rng.integers(0, remaining + 1))
                parts.append(take)
                remaining -= take
            if not parts or rng.integers(2):
                parts.append(0)
            pieces = split_encoded(batch, parts)
            assert [p.num_tokens for p in pieces] == parts
            self._assert_chunks_equal(concat_encoded(pieces), batch)

    def test_split_points_preserve_row_footprint(self):
        """Splitting never changes total bytes (row-additive storage)."""
        quantizer = OakenQuantizer.from_samples(
            [make_kv_matrix(tokens=96, dim=64, seed=6)]
        )
        batch = quantizer.quantize(make_kv_matrix(tokens=17, dim=64, seed=7))
        pieces = split_encoded(batch, [5, 0, 1, 11])
        assert sum(p.nbytes() for p in pieces) == batch.nbytes()


class TestRegistryBlockwiseRoundtrips:
    """The registry-wide face of the split/concat contract.

    Only Oaken emits :class:`EncodedKV`, so for the other registry
    methods the equivalent property is at the roundtrip level:
    ``roundtrip_batch`` over a seeded random block geometry must be
    bit-identical to per-block ``roundtrip`` calls — the invariant the
    pool's batched adapter paths (and the mirror pool in the sharing
    differential harness) lean on.
    """

    @pytest.mark.parametrize("method", sorted(BASELINE_NAMES))
    @pytest.mark.parametrize("seed", range(3))
    def test_batched_blocks_match_per_block(self, method, seed):
        quantizer = create_quantizer(method)
        quantizer.fit([make_kv_matrix(tokens=96, dim=64, seed=8)])
        rng = np.random.default_rng(seed)
        blocks = [
            make_kv_matrix(
                tokens=int(rng.integers(1, 9)), dim=64,
                seed=200 * seed + i,
            )
            for i in range(int(rng.integers(2, 6)))
        ]
        batched = quantizer.roundtrip_batch(blocks)
        for block, merged in zip(blocks, batched):
            np.testing.assert_array_equal(
                merged, quantizer.roundtrip(block)
            )
