"""Unit tests for corpora, QA tasks, and trace generators."""

import numpy as np
import pytest

from repro.data.corpus import (
    DATASETS,
    build_corpus,
    calibration_corpus,
    dataset_profile,
)
from repro.data.qa_tasks import QA_TASK_PROFILES, build_qa_batch
from repro.data.traces import (
    TRACE_NAMES,
    generate_trace,
    trace_summary,
)


class TestCorpus:
    def test_four_paper_datasets(self):
        assert set(DATASETS) == {
            "wikitext2", "piqa", "winogrande", "hellaswag"
        }

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            dataset_profile("imagenet")

    def test_corpus_shape(self, small_model):
        corpus = build_corpus(small_model, "wikitext2", batch=3,
                              length=32)
        assert corpus.shape == (3, 32)

    def test_default_length_from_profile(self, small_model):
        corpus = build_corpus(small_model, "piqa", batch=2)
        assert corpus.shape[1] == DATASETS["piqa"].length

    def test_reproducible(self, small_model):
        a = build_corpus(small_model, "wikitext2", batch=2, length=24)
        b = build_corpus(small_model, "wikitext2", batch=2, length=24)
        np.testing.assert_array_equal(a, b)

    def test_datasets_differ(self, small_model):
        a = build_corpus(small_model, "wikitext2", batch=2, length=24)
        b = build_corpus(small_model, "piqa", batch=2, length=24)
        assert not np.array_equal(a, b)

    def test_calibration_disjoint_from_eval(self, small_model):
        calibration = calibration_corpus(small_model, batch=2, length=24)
        evaluation = build_corpus(
            small_model, "wikitext2", batch=2, length=24
        )
        assert not np.array_equal(calibration, evaluation)


class TestQATasks:
    def test_three_paper_tasks(self):
        assert set(QA_TASK_PROFILES) == {
            "piqa", "winogrande", "hellaswag"
        }

    def test_unknown_task_rejected(self, small_model):
        with pytest.raises(ValueError):
            build_qa_batch(small_model, "mmlu")

    def test_batch_shapes(self, small_model):
        batch = build_qa_batch(small_model, "piqa", num_items=8)
        profile = QA_TASK_PROFILES["piqa"]
        assert batch.context.shape == (8, profile.context_length)
        assert batch.correct.shape == (
            8, profile.continuation_length
        )
        assert batch.distractor.shape == batch.correct.shape
        assert batch.num_items == 8

    def test_deterministic(self, small_model):
        a = build_qa_batch(small_model, "winogrande", num_items=4)
        b = build_qa_batch(small_model, "winogrande", num_items=4)
        np.testing.assert_array_equal(a.correct, b.correct)
        np.testing.assert_array_equal(a.distractor, b.distractor)

    def test_distractor_differs_from_correct(self, small_model):
        batch = build_qa_batch(small_model, "piqa", num_items=8)
        same = (batch.correct == batch.distractor).all(axis=1)
        assert same.mean() < 0.5


class TestTraces:
    def test_two_paper_traces(self):
        assert TRACE_NAMES == ("conversation", "burstgpt")

    def test_unknown_trace_rejected(self):
        with pytest.raises(ValueError):
            generate_trace("alibaba")

    def test_sorted_arrivals(self):
        trace = generate_trace("conversation", num_requests=64, seed=0)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)

    def test_reproducible(self):
        a = generate_trace("burstgpt", num_requests=32, seed=5)
        b = generate_trace("burstgpt", num_requests=32, seed=5)
        assert a == b

    def test_conversation_outputs_shorter_than_inputs(self):
        trace = generate_trace("conversation", num_requests=256, seed=1)
        summary = trace_summary(trace)
        assert summary["mean_output"] < summary["mean_input"] / 2

    def test_burstgpt_longer_outputs(self):
        conversation = trace_summary(
            generate_trace("conversation", num_requests=256, seed=1)
        )
        burst = trace_summary(
            generate_trace("burstgpt", num_requests=256, seed=1)
        )
        assert burst["mean_output"] > 2 * conversation["mean_output"]

    def test_burstgpt_is_burstier(self):
        conversation = trace_summary(
            generate_trace("conversation", num_requests=512, seed=2)
        )
        burst = trace_summary(
            generate_trace("burstgpt", num_requests=512, seed=2)
        )
        assert burst["arrival_cv2"] > conversation["arrival_cv2"]

    def test_length_caps_respected(self):
        trace = generate_trace(
            "burstgpt", num_requests=128, seed=3, max_tokens=1024
        )
        assert max(r.input_tokens for r in trace) <= 1024
        assert max(r.output_tokens for r in trace) <= 1024
        assert min(r.output_tokens for r in trace) >= 8

    def test_summary_empty(self):
        assert trace_summary([]) == {"requests": 0}
