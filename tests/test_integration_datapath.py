"""Hardware-in-the-loop integration: engines under the full stack.

Runs the paged quantized KV cache — and whole-model autoregressive
generation — with the structural Figure 9 engines substituted for the
vectorized quantizer, asserting the system produces *identical* tokens
and cache bytes.  This is the top of the verification pyramid: stage
models -> tensor equivalence -> cache equivalence -> model-level
equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.kvcache import QuantizedKVCache
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.hardware.datapath import EngineBackedQuantizer
from repro.models.config import get_model
from repro.models.quantized_generation import (
    build_cache_for_model,
    generate_with_quantized_cache,
)
from repro.models.transformer import DecoderModel


@pytest.fixture(scope="module")
def model():
    return DecoderModel(get_model("llama2-7b"))


def engine_backed_twin(cache: QuantizedKVCache) -> QuantizedKVCache:
    """Clone a cache's fitted quantizers onto streaming engines."""
    keys = [
        EngineBackedQuantizer(
            layer.key_quantizer.config, layer.key_quantizer.thresholds
        )
        for layer in cache.layers
    ]
    values = [
        EngineBackedQuantizer(
            layer.value_quantizer.config,
            layer.value_quantizer.thresholds,
        )
        for layer in cache.layers
    ]
    return QuantizedKVCache(keys, values)


class TestEngineBackedQuantizer:
    def test_matches_vectorized_roundtrip(self):
        rng = np.random.default_rng(5)
        cfg = OakenConfig()
        samples = [rng.standard_normal((32, 64)) * 3.0]
        thresholds = profile_thresholds(samples, cfg)
        reference = OakenQuantizer(cfg, thresholds)
        engine = EngineBackedQuantizer(cfg, thresholds)
        x = rng.standard_normal((8, 64)) * 3.0
        np.testing.assert_array_equal(
            engine.roundtrip(x), reference.roundtrip(x)
        )

    def test_accumulates_cycles(self):
        rng = np.random.default_rng(7)
        cfg = OakenConfig()
        thresholds = profile_thresholds(
            [rng.standard_normal((32, 64))], cfg
        )
        engine = EngineBackedQuantizer(cfg, thresholds)
        engine.roundtrip(rng.standard_normal((4, 64)))
        assert engine.quant_cycles > 0
        assert engine.dequant_cycles > 0
        assert engine.engine_time_s() > 0.0
        before = engine.engine_time_s()
        engine.roundtrip(rng.standard_normal((4, 64)))
        assert engine.engine_time_s() > before


class TestCacheEquivalence:
    def test_cache_reads_identical(self, model):
        rng = np.random.default_rng(11)
        calibration = rng.integers(
            0, model.shape.vocab, size=(2, 48)
        )
        vectorized = build_cache_for_model(
            model, calibration, mode="exact_f64"
        )
        engined = engine_backed_twin(vectorized)
        kv = model.collect_layer_kv(calibration)
        for layer, (keys, values) in enumerate(kv):
            vectorized.append(layer, keys[:6], values[:6])
            engined.append(layer, keys[:6], values[:6])
        for layer in range(model.shape.n_layers):
            vec_k, vec_v = vectorized.read(layer)
            eng_k, eng_v = engined.read(layer)
            np.testing.assert_array_equal(eng_k, vec_k)
            np.testing.assert_array_equal(eng_v, vec_v)

    def test_cache_accounting_identical(self, model):
        rng = np.random.default_rng(13)
        calibration = rng.integers(0, model.shape.vocab, size=(2, 48))
        vectorized = build_cache_for_model(
            model, calibration, mode="exact_f64"
        )
        engined = engine_backed_twin(vectorized)
        kv = model.collect_layer_kv(calibration)
        for layer, (keys, values) in enumerate(kv):
            vectorized.append(layer, keys[:6], values[:6])
            engined.append(layer, keys[:6], values[:6])
        assert engined.nbytes() == vectorized.nbytes()
        assert engined.effective_bitwidth() == pytest.approx(
            vectorized.effective_bitwidth()
        )


class TestModelLevelEquivalence:
    def test_generation_token_for_token(self, model):
        """Full autoregressive decode through the streaming engines
        produces exactly the vectorized path's tokens."""
        rng = np.random.default_rng(17)
        calibration = rng.integers(0, model.shape.vocab, size=(2, 48))
        vectorized = build_cache_for_model(
            model, calibration, mode="exact_f64"
        )
        engined = engine_backed_twin(vectorized)
        prompt = rng.integers(0, model.shape.vocab, size=(1, 8))
        reference = generate_with_quantized_cache(
            model, vectorized, length=16, prompt=prompt, seed=23
        )
        hardware = generate_with_quantized_cache(
            model, engined, length=16, prompt=prompt, seed=23
        )
        np.testing.assert_array_equal(
            hardware.tokens, reference.tokens
        )

    def test_generation_reports_engine_cycles(self, model):
        rng = np.random.default_rng(19)
        calibration = rng.integers(0, model.shape.vocab, size=(2, 48))
        cache = engine_backed_twin(
            build_cache_for_model(model, calibration, mode="exact_f64")
        )
        prompt = rng.integers(0, model.shape.vocab, size=(1, 4))
        generate_with_quantized_cache(
            model, cache, length=10, prompt=prompt, seed=29
        )
        engines = [
            layer.key_quantizer for layer in cache.layers
        ] + [layer.value_quantizer for layer in cache.layers]
        total = sum(
            q.quant_cycles + q.dequant_cycles for q in engines
        )
        assert total > 0
        # The decode loop re-reads the whole history per step, so
        # dequantization dominates the engine cycle budget.
        dequant = sum(q.dequant_cycles for q in engines)
        assert dequant > total / 2
