"""Cycle accounting of the streaming datapath models.

Checks the double-buffered pipeline math of the quantization engine,
the per-stage occupancy counters, and — the cross-validation the
analytic models rest on — that the structural engines' throughput
agrees with :mod:`repro.hardware.engines` within the fill/turnaround
terms.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.hardware.datapath import (
    CycleReport,
    DatapathTiming,
    DequantTiming,
    StageActivity,
    StreamingDequantEngine,
    StreamingQuantEngine,
)
from repro.hardware.engines import DequantEngine, QuantEngine


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(71)
    cfg = OakenConfig()
    samples = [rng.standard_normal((32, 128)) * 3.0 for _ in range(4)]
    thresholds = profile_thresholds(samples, cfg)
    return cfg, thresholds, rng


class TestCycleReport:
    def test_stage_counters_accumulate(self):
        report = CycleReport()
        report.stage("decomposer").record(32, 1)
        report.stage("decomposer").record(32, 1)
        assert report.stage("decomposer").elements == 64
        assert report.stage("decomposer").busy_cycles == 2

    def test_occupancy_fractions(self):
        report = CycleReport(total_cycles=100)
        report.stage("quantizer").record(64, 25)
        assert report.occupancy()["quantizer"] == pytest.approx(0.25)

    def test_occupancy_zero_total_safe(self):
        report = CycleReport()
        report.stage("quantizer").record(1, 1)
        assert report.occupancy()["quantizer"] == 0.0

    def test_time_scales_with_clock(self):
        report = CycleReport(total_cycles=2_000_000)
        assert report.time_s(1.0) == pytest.approx(2e-3)
        assert report.time_s(2.0) == pytest.approx(1e-3)


class TestQuantPipelineMath:
    def test_total_cycles_formula(self, setup):
        cfg, thresholds, rng = setup
        timing = DatapathTiming(lanes=32, scale_latency_cycles=4)
        engine = StreamingQuantEngine(cfg, thresholds, timing=timing)
        tokens, dim = 10, 128
        _, report = engine.quantize_matrix(
            rng.standard_normal((tokens, dim))
        )
        pass_cycles = math.ceil(dim / 32)
        fill = 2 * pass_cycles + 4
        interval = max(pass_cycles, 4)
        expected = fill + (tokens - 1) * interval
        assert report.total_cycles == expected

    def test_doubling_lanes_roughly_halves_cycles(self, setup):
        cfg, thresholds, rng = setup
        x = rng.standard_normal((32, 128))
        narrow = StreamingQuantEngine(
            cfg, thresholds, timing=DatapathTiming(lanes=16)
        )
        wide = StreamingQuantEngine(
            cfg, thresholds, timing=DatapathTiming(lanes=32)
        )
        _, slow = narrow.quantize_matrix(x)
        _, fast = wide.quantize_matrix(x)
        ratio = slow.total_cycles / fast.total_cycles
        assert 1.5 < ratio <= 2.1

    def test_stage_occupancy_covers_all_figure9_modules(self, setup):
        cfg, thresholds, rng = setup
        engine = StreamingQuantEngine(cfg, thresholds)
        _, report = engine.quantize_matrix(rng.standard_normal((4, 128)))
        assert set(report.stages) == {
            "decomposer",
            "minmax_finder",
            "scale_calculator",
            "quantizer",
            "zero_remove_shifter",
        }

    def test_zero_remove_shifter_sees_only_outliers(self, setup):
        cfg, thresholds, rng = setup
        engine = StreamingQuantEngine(cfg, thresholds)
        x = rng.standard_normal((8, 128)) * 3.0
        encoded, report = engine.quantize_matrix(x)
        assert (
            report.stage("zero_remove_shifter").elements
            == encoded.num_outliers
        )

    def test_empty_matrix_zero_cycles(self, setup):
        cfg, thresholds, _ = setup
        engine = StreamingQuantEngine(cfg, thresholds)
        _, report = engine.quantize_matrix(np.zeros((0, 128)))
        assert report.total_cycles == 0


class TestAgreementWithAnalyticModels:
    """The analytic engines assume lanes elements/cycle steady state;
    the structural pipeline must converge to that rate for long
    streams (fill and turnaround amortize away)."""

    def test_quant_engine_steady_state_rate(self, setup):
        cfg, thresholds, rng = setup
        timing = DatapathTiming(lanes=32, freq_ghz=1.0)
        engine = StreamingQuantEngine(cfg, thresholds, timing=timing)
        tokens, dim = 64, 128
        x = rng.standard_normal((tokens, dim))
        _, report = engine.quantize_matrix(x)
        analytic = QuantEngine(lanes=32, freq_ghz=1.0, num_cores=1)
        structural_s = report.time_s(timing.freq_ghz)
        analytic_s = analytic.time_s(tokens * dim)
        # Both converge to lanes elements/cycle; they differ only in
        # their fixed fill terms (structural: 2 passes + turnaround,
        # analytic: a flat pipeline constant).
        assert structural_s == pytest.approx(analytic_s, rel=0.15)

    def test_dequant_engine_steady_state_rate(self, setup):
        cfg, thresholds, rng = setup
        timing = DequantTiming(lanes=128, freq_ghz=1.0)
        engine = StreamingDequantEngine(cfg, thresholds, timing=timing)
        reference = OakenQuantizer(cfg, thresholds)
        tokens, dim = 64, 128
        encoded = reference.quantize(rng.standard_normal((tokens, dim)))
        _, report = engine.dequantize_matrix(encoded)
        analytic = DequantEngine(lanes=128, freq_ghz=1.0, num_cores=1)
        structural_s = report.time_s(timing.freq_ghz)
        analytic_s = analytic.time_s(tokens * dim)
        assert structural_s == pytest.approx(analytic_s, rel=0.05)

    def test_engine_latency_hidden_behind_attention_window(self, setup):
        """Paper Section 5.3: per-token quantization occupies a tiny
        fraction of the generation iteration it overlaps."""
        cfg, thresholds, rng = setup
        engine = StreamingQuantEngine(cfg, thresholds)
        # One token's KV for one layer: kv_dim elements.
        _, report = engine.quantize_matrix(rng.standard_normal((1, 128)))
        engine_s = report.time_s(1.0)
        # Generation iterations at batch>=16 are hundreds of
        # microseconds; one token's quantization is tens of ns.
        assert engine_s < 1e-6
