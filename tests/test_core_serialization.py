"""Unit and property tests for the byte-stream serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TABLE3_CONFIGURATIONS, OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.core.serialization import (
    SerializationError,
    deserialize,
    serialize,
    serialized_nbytes,
)

from conftest import make_kv_matrix


@pytest.fixture(scope="module")
def quantizer(kv_samples):
    return OakenQuantizer.from_samples(kv_samples, OakenConfig())


@pytest.fixture(scope="module")
def encoded(quantizer, kv_matrix):
    return quantizer.quantize(kv_matrix)


class TestRoundTrip:
    def test_lossless_reconstruction(self, quantizer, encoded):
        blob = serialize(encoded)
        restored = deserialize(blob, quantizer.config,
                               quantizer.thresholds)
        np.testing.assert_array_equal(
            quantizer.dequantize(encoded),
            quantizer.dequantize(restored),
        )

    def test_dense_codes_identical(self, quantizer, encoded):
        restored = deserialize(
            serialize(encoded), quantizer.config, quantizer.thresholds
        )
        np.testing.assert_array_equal(
            encoded.dense_codes, restored.dense_codes
        )

    def test_sparse_stream_identical(self, quantizer, encoded):
        restored = deserialize(
            serialize(encoded), quantizer.config, quantizer.thresholds
        )
        np.testing.assert_array_equal(
            encoded.sparse_token, restored.sparse_token
        )
        np.testing.assert_array_equal(
            encoded.sparse_pos, restored.sparse_pos
        )
        np.testing.assert_array_equal(
            encoded.sparse_band, restored.sparse_band
        )

    def test_size_prediction_exact(self, encoded):
        assert len(serialize(encoded)) == serialized_nbytes(encoded)

    def test_stream_smaller_than_fp16(self, encoded, kv_matrix):
        assert len(serialize(encoded)) < kv_matrix.size * 2 / 2

    @pytest.mark.parametrize("spec,bits", TABLE3_CONFIGURATIONS)
    def test_all_fused_configurations(self, spec, bits, kv_matrix):
        config = OakenConfig.from_ratio_string(spec, outlier_bits=bits)
        quantizer = OakenQuantizer.from_samples([kv_matrix], config)
        encoded = quantizer.quantize(kv_matrix)
        restored = deserialize(
            serialize(encoded), config, quantizer.thresholds
        )
        np.testing.assert_array_equal(
            quantizer.dequantize(encoded),
            quantizer.dequantize(restored),
        )

    @given(tokens=st.integers(1, 48), seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip(self, tokens, seed):
        x = make_kv_matrix(tokens=tokens, dim=96, seed=seed)
        quantizer = OakenQuantizer.from_samples([x], OakenConfig())
        encoded = quantizer.quantize(x)
        restored = deserialize(
            serialize(encoded), quantizer.config, quantizer.thresholds
        )
        np.testing.assert_array_equal(
            quantizer.dequantize(encoded),
            quantizer.dequantize(restored),
        )


class TestErrors:
    def test_naive_encoding_rejected(self, kv_matrix):
        config = OakenConfig(fused_encoding=False)
        quantizer = OakenQuantizer.from_samples([kv_matrix], config)
        with pytest.raises(SerializationError):
            serialize(quantizer.quantize(kv_matrix))

    def test_truncated_header_rejected(self, quantizer):
        with pytest.raises(SerializationError):
            deserialize(b"xx", quantizer.config, quantizer.thresholds)

    def test_bad_magic_rejected(self, quantizer, encoded):
        blob = bytearray(serialize(encoded))
        blob[0] ^= 0xFF
        with pytest.raises(SerializationError):
            deserialize(
                bytes(blob), quantizer.config, quantizer.thresholds
            )

    def test_config_mismatch_rejected(self, quantizer, encoded,
                                      kv_matrix):
        blob = serialize(encoded)
        other = OakenConfig.from_ratio_string("2/2/90/6")
        other_q = OakenQuantizer.from_samples([kv_matrix], other)
        with pytest.raises(SerializationError):
            deserialize(blob, other, other_q.thresholds)
