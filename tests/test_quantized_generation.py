"""Tests for autoregressive generation through the quantized cache."""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.data.corpus import calibration_corpus
from repro.models.quantized_generation import (
    build_cache_for_model,
    generate_with_quantized_cache,
)


@pytest.fixture(scope="module")
def calibration(small_model):
    return calibration_corpus(small_model, batch=3, length=48)


@pytest.fixture()
def fresh_cache(small_model, calibration):
    return build_cache_for_model(small_model, calibration)


class TestQuantizedGeneration:
    def test_generates_requested_length(self, small_model, fresh_cache):
        result = generate_with_quantized_cache(
            small_model, fresh_cache, length=24, seed=0
        )
        assert result.tokens.shape == (1, 24)
        assert result.steps == 23

    def test_cache_filled_during_generation(self, small_model,
                                            fresh_cache):
        result = generate_with_quantized_cache(
            small_model, fresh_cache, length=16, seed=0
        )
        # The final token's KV is never attended to, so it is never
        # cached: 15 cached positions for 16 tokens.
        assert result.cache.length == 15
        assert result.cache.nbytes() > 0
        assert 4.0 < result.cache.effective_bitwidth() < 7.0

    def test_prompt_preserved(self, small_model, fresh_cache):
        prompt = np.arange(5).reshape(1, 5)
        result = generate_with_quantized_cache(
            small_model, fresh_cache, length=12, prompt=prompt, seed=1
        )
        np.testing.assert_array_equal(result.tokens[:, :5], prompt)

    def test_deterministic(self, small_model, calibration):
        a = generate_with_quantized_cache(
            small_model, build_cache_for_model(small_model, calibration),
            length=20, seed=4,
        )
        b = generate_with_quantized_cache(
            small_model, build_cache_for_model(small_model, calibration),
            length=20, seed=4,
        )
        np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_generated_text_plausible_under_fp_model(
        self, small_model, fresh_cache
    ):
        """Compounded quantization error must not derail generation.

        The FP model should assign the quantized-cache generation a
        mean token log-probability in the same band as its own exact
        samples — that is the deployment-quality claim.
        """
        result = generate_with_quantized_cache(
            small_model, fresh_cache, length=40, seed=2
        )
        ll = small_model.sequence_log_likelihood(result.tokens)
        per_token = float(ll[0]) / (result.tokens.shape[1] - 1)
        # Exact self-samples score around -log(ppl) ~= -3; random text
        # scores near -log(vocab) ~= -6.2.
        assert per_token > -4.5

    def test_stale_cache_rejected(self, small_model, fresh_cache):
        generate_with_quantized_cache(
            small_model, fresh_cache, length=8, seed=0
        )
        with pytest.raises(ValueError):
            generate_with_quantized_cache(
                small_model, fresh_cache, length=8, seed=0
            )

    def test_batch_prompt_rejected(self, small_model, fresh_cache):
        with pytest.raises(ValueError):
            generate_with_quantized_cache(
                small_model, fresh_cache, length=8,
                prompt=np.zeros((2, 2), dtype=int),
            )

    def test_invalid_temperature_rejected(self, small_model,
                                          fresh_cache):
        with pytest.raises(ValueError):
            generate_with_quantized_cache(
                small_model, fresh_cache, length=8, temperature=0.0
            )

    def test_layer_mismatch_rejected(self, small_model, calibration):
        from repro.models.config import get_model
        from repro.models.transformer import DecoderModel

        other = DecoderModel(get_model("llama2-13b"))
        cache = build_cache_for_model(small_model, calibration)
        with pytest.raises(ValueError):
            generate_with_quantized_cache(other, cache, length=8)

    def test_custom_config_flows_through(self, small_model,
                                         calibration):
        config = OakenConfig.from_ratio_string("2/2/90/6")
        cache = build_cache_for_model(
            small_model, calibration, config=config
        )
        result = generate_with_quantized_cache(
            small_model, cache, length=12, seed=0
        )
        assert result.cache.effective_bitwidth() > 5.0
