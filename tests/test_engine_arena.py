"""Structure-of-arrays arena pool vs. the chunked pool, bit-for-bit.

The pinned contract: ``KVCachePool(arena=True)`` is *indistinguishable*
from the chunked pool — every ``read()`` byte-identical, for every
registry method, with and without tiering, under looped and batched
paths, including after compaction and fork divergence.  The harness
replays seeded random op sequences (allocate / fork / append /
append_batch / read / read_batch / free at random points) against a
chunked mirror pool built from the same factory, asserting byte
equality plus footprint invariants after every op.

Only the fused paper method actually gets an arena (adapter baselines
keep their per-method cache objects; ``arena=True`` is a structural
no-op for them), so the differential sweep doubles as a regression
gate on that opt-in boundary.
"""

import numpy as np
import pytest

from repro.engine import (
    BASELINE_NAMES,
    FusedCacheBackend,
    KVArena,
    KVCachePool,
    TieredKVStore,
    shared_backend_factory,
)

from conftest import make_kv_matrix

pytestmark = pytest.mark.arena

LAYERS = 2
DIM = 8
SEEDS = range(3)
OPS = 160
MAX_LIVE = 8
MAX_ROWS = 60


@pytest.fixture(scope="module", params=sorted(BASELINE_NAMES))
def factory(request):
    """One shared-quantizer factory per registry method.

    Both twin pools are built from the *same* factory, so their
    backends share fitted quantizers — any byte difference is the
    arena's fault, never calibration drift.
    """
    calibration = [
        (
            make_kv_matrix(
                tokens=48, dim=DIM, seed=70 + layer,
                outlier_channels=(1, 5),
            ),
            make_kv_matrix(
                tokens=48, dim=DIM, seed=80 + layer,
                outlier_channels=(1, 5),
            ),
        )
        for layer in range(LAYERS)
    ]
    return shared_backend_factory(request.param, calibration=calibration)


def _require_arena(factory):
    """Skip for adapter backends: only the fused paper method routes
    through the arena, so arena-specific invariants (compaction
    counters, capacity geometry) have nothing to measure elsewhere."""
    if not isinstance(factory(), FusedCacheBackend):
        pytest.skip("adapter backends do not use the arena")


class _Driver:
    """Twin-pool differential state machine.

    ``arena`` stores rows in the SoA arena (when the method is fused);
    ``mirror`` is the plain chunked pool.  ``history[seq][layer]`` is
    the exact float32 row stream both pools have seen for that
    sequence.  Forks diverge the storage models on purpose: the
    chunked mirror forks copy-on-write while the arena copies rows, so
    the byte-equality sweep exercises both against the same truth.
    """

    def __init__(self, factory, tiered, seed):
        tiering = None
        if tiered:
            # Small device budget so the op stream genuinely spills.
            tiering = TieredKVStore(
                device_budget_bytes=2048.0, page_bytes=256.0
            )
        self.arena = KVCachePool(factory, tiering=tiering, arena=True)
        self.mirror = KVCachePool(factory)
        self.fused = isinstance(factory(), FusedCacheBackend)
        # The opt-in boundary: fused pools get an arena, adapters are
        # a structural no-op.
        assert self.arena.arena_enabled == self.fused
        self.rng = np.random.default_rng(seed)
        self.history = {}
        self.next_id = 0
        self.forked = 0

    # -- helpers -------------------------------------------------------

    def rows(self, n):
        return self.rng.standard_normal((n, DIM)).astype(np.float32)

    def live(self):
        return list(self.history)

    def length(self, seq_id):
        return sum(k.shape[0] for k, _ in self.history[seq_id][0])

    def pick(self):
        seqs = self.live()
        return seqs[int(self.rng.integers(len(seqs)))]

    # -- ops -----------------------------------------------------------

    def op_allocate(self):
        seq_id = self.next_id
        self.next_id += 1
        self.arena.allocate(seq_id)
        self.mirror.allocate(seq_id)
        self.history[seq_id] = {layer: [] for layer in range(LAYERS)}
        return [seq_id]

    def op_fork(self):
        parent = self.pick()
        parent_len = self.length(parent)
        if parent_len < 1:
            return self.op_append()
        child = self.next_id
        self.next_id += 1
        prefix_len = int(self.rng.integers(1, parent_len + 1))
        self.arena.fork(parent, child, prefix_len)
        self.mirror.fork(parent, child, prefix_len)
        self.history[child] = {}
        for layer in range(LAYERS):
            keys = np.concatenate(
                [k for k, _ in self.history[parent][layer]]
            )[:prefix_len]
            values = np.concatenate(
                [v for _, v in self.history[parent][layer]]
            )[:prefix_len]
            self.history[child][layer] = [(keys, values)]
        self.forked += 1
        return [parent, child]

    def op_append(self):
        seq_id = self.pick()
        if self.length(seq_id) >= MAX_ROWS:
            return [seq_id]
        n = int(self.rng.integers(1, 4))
        for layer in range(LAYERS):
            keys, values = self.rows(n), self.rows(n)
            self.arena.append(seq_id, layer, keys, values)
            self.mirror.append(seq_id, layer, keys, values)
            self.history[seq_id][layer].append((keys, values))
        return [seq_id]

    def op_append_batch(self):
        seqs = [
            s for s in self.live() if self.length(s) < MAX_ROWS
        ]
        if not seqs:
            return []
        size = int(self.rng.integers(1, min(4, len(seqs)) + 1))
        picked = [
            seqs[i]
            for i in self.rng.choice(len(seqs), size=size, replace=False)
        ]
        for layer in range(LAYERS):
            batch = {}
            for seq_id in picked:
                keys, values = self.rows(1), self.rows(1)
                batch[seq_id] = (keys, values)
                self.history[seq_id][layer].append((keys, values))
            self.arena.append_batch(layer, batch)
            self.mirror.append_batch(layer, dict(batch))
        return picked

    def op_read(self):
        seq_id = self.pick()
        if self.length(seq_id) == 0:
            return [seq_id]
        layer = int(self.rng.integers(LAYERS))
        a = self.arena.read(seq_id, layer)
        b = self.mirror.read(seq_id, layer)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        return [seq_id]

    def op_read_batch(self):
        seqs = [s for s in self.live() if self.length(s) > 0]
        if not seqs:
            return []
        size = int(self.rng.integers(1, min(4, len(seqs)) + 1))
        picked = [
            seqs[i]
            for i in self.rng.choice(len(seqs), size=size, replace=False)
        ]
        layer = int(self.rng.integers(LAYERS))
        got = self.arena.read_batch(layer, picked)
        want = self.mirror.read_batch(layer, picked)
        for (ak, av), (bk, bv) in zip(got, want):
            np.testing.assert_array_equal(ak, bk)
            np.testing.assert_array_equal(av, bv)
        return picked

    def op_free(self):
        # Frees are how dead rows accumulate, so this op is the
        # compaction trigger; the post-op verify then re-reads every
        # survivor through relocated storage.
        seq_id = self.pick()
        self.arena.free(seq_id)
        self.mirror.free(seq_id)
        del self.history[seq_id]
        return list(self.history)

    # -- invariants ----------------------------------------------------

    def verify(self, seq_ids):
        """Byte equality for ``seq_ids`` + footprint invariants."""
        for seq_id in seq_ids:
            if seq_id not in self.history or self.length(seq_id) == 0:
                continue
            for layer in range(LAYERS):
                a = self.arena.read(seq_id, layer)
                b = self.mirror.read(seq_id, layer)
                np.testing.assert_array_equal(a[0], b[0])
                np.testing.assert_array_equal(a[1], b[1])
            # Per-sequence accounting is storage-agnostic: the arena
            # backend's closed-form bit count must equal the chunked
            # backend's chunk-summed one.
            a_cache = self.arena._caches[seq_id]
            b_cache = self.mirror._caches[seq_id]
            assert np.isclose(a_cache.nbytes(), b_cache.nbytes())
            assert np.isclose(
                a_cache.effective_bitwidth(),
                b_cache.effective_bitwidth(),
            )
        arena_bytes, _ = self.arena.measure()
        mirror_bytes, _ = self.mirror.measure()
        summary = self.mirror.summary()
        # The arena copies forked rows while the chunked mirror
        # charges shared chunks once, so the arena pool's footprint is
        # the mirror's plus exactly the mirror's refcount savings.
        assert np.isclose(
            arena_bytes,
            mirror_bytes + summary.get("shared_extra_bytes", 0.0),
        ), (arena_bytes, mirror_bytes, summary)
        if self.fused:
            arena_summary = self.arena.summary()
            # Live rows are token rows: every layer holds one row per
            # token of every live sequence, dead or compacted storage
            # never leaks into the live count.
            total_tokens = sum(self.length(s) for s in self.history)
            assert arena_summary["arena_rows_live"] == float(
                LAYERS * total_tokens
            )
            assert arena_summary["arena_rows_dead"] >= 0.0
            if total_tokens:
                assert arena_summary["arena_capacity_bytes"] > 0.0

    def drain(self):
        for seq_id in list(self.history):
            self.arena.free(seq_id)
            self.mirror.free(seq_id)
        arena_bytes, _ = self.arena.measure()
        assert arena_bytes == 0.0
        if self.fused:
            assert self.arena.summary()["arena_rows_live"] == 0.0


def _run(factory, tiered, seed):
    driver = _Driver(factory, tiered, seed)
    driver.op_allocate()
    ops = (
        ("allocate", 0.08),
        ("fork", 0.16),
        ("append", 0.26),
        ("append_batch", 0.14),
        ("read", 0.10),
        ("read_batch", 0.10),
        ("free", 0.16),
    )
    names = [name for name, _ in ops]
    weights = np.array([w for _, w in ops])
    weights /= weights.sum()
    for step in range(OPS):
        name = names[
            int(driver.rng.choice(len(names), p=weights))
        ]
        if name in ("allocate", "fork") and len(driver.live()) >= MAX_LIVE:
            name = "append"
        if name == "free" and len(driver.live()) <= 1:
            name = "allocate"
        touched = getattr(driver, f"op_{name}")()
        driver.verify(touched)
        if step % 16 == 15:
            driver.verify(driver.live())
    driver.verify(driver.live())
    assert driver.forked > 0, "op stream never forked; widen weights"
    driver.drain()


@pytest.mark.parametrize("seed", SEEDS)
class TestDifferentialReplay:
    """Seeded op-stream replays: every method, both tiering modes."""

    def test_untiered(self, factory, seed):
        _run(factory, tiered=False, seed=seed)

    def test_tiered(self, factory, seed):
        _run(factory, tiered=True, seed=seed)


class TestCompaction:
    """Deterministic compaction coverage: storage relocates, bytes
    don't change."""

    def test_free_churn_compacts_and_preserves_survivors(self, factory):
        _require_arena(factory)
        pool = KVCachePool(factory, arena=True)
        mirror = KVCachePool(factory)
        rng = np.random.default_rng(11)
        seqs = list(range(12))
        for seq_id in seqs:
            pool.allocate(seq_id)
            mirror.allocate(seq_id)
            for layer in range(LAYERS):
                rows = rng.standard_normal((5, DIM)).astype(np.float32)
                pool.append(seq_id, layer, rows, rows)
                mirror.append(seq_id, layer, rows, rows)
        # Free the front of the arena (never the tail slice) so dead
        # rows must accumulate until the watermark trips.
        for seq_id in seqs[:9]:
            pool.free(seq_id)
            mirror.free(seq_id)
        summary = pool.summary()
        assert summary["arena_compactions"] > 0.0
        assert summary["arena_rows_live"] == float(LAYERS * 3 * 5)
        # Post-free invariant: no layer may be left past the
        # compaction watermark (frees compact eagerly).
        for layer_arena in pool._arena.layers:
            assert not layer_arena.should_compact(
                pool._arena.compact_watermark
            )
        for seq_id in seqs[9:]:
            for layer in range(LAYERS):
                a = pool.read(seq_id, layer)
                b = mirror.read(seq_id, layer)
                np.testing.assert_array_equal(a[0], b[0])
                np.testing.assert_array_equal(a[1], b[1])
        pool_bytes, _ = pool.measure()
        mirror_bytes, _ = mirror.measure()
        assert np.isclose(pool_bytes, mirror_bytes)

    def test_fork_divergence_survives_compaction(self, factory):
        _require_arena(factory)
        pool = KVCachePool(factory, arena=True)
        mirror = KVCachePool(factory)
        rng = np.random.default_rng(13)
        prefix = rng.standard_normal((6, DIM)).astype(np.float32)
        pool.allocate("parent")
        mirror.allocate("parent")
        for layer in range(LAYERS):
            pool.append("parent", layer, prefix, prefix)
            mirror.append("parent", layer, prefix, prefix)
        pool.fork("parent", "child", 4)
        mirror.allocate("child")
        for layer in range(LAYERS):
            mirror.append(
                "child", layer, prefix[:4], prefix[:4]
            )
        # Diverge the fork, then churn enough short-lived sequences
        # through the arena to force at least one compaction pass.
        fresh = rng.standard_normal((3, DIM)).astype(np.float32)
        for layer in range(LAYERS):
            pool.append("child", layer, fresh, fresh)
            mirror.append("child", layer, fresh, fresh)
        before = pool.summary()["arena_compactions"]
        for burst in range(6):
            for offset in range(4):
                seq_id = ("churn", burst, offset)
                pool.allocate(seq_id)
                rows = rng.standard_normal((2, DIM)).astype(np.float32)
                for layer in range(LAYERS):
                    pool.append(seq_id, layer, rows, rows)
            for offset in range(4):
                pool.free(("churn", burst, offset))
        assert pool.summary()["arena_compactions"] > before
        for seq_id in ("parent", "child"):
            for layer in range(LAYERS):
                a = pool.read(seq_id, layer)
                b = mirror.read(seq_id, layer)
                np.testing.assert_array_equal(a[0], b[0])
                np.testing.assert_array_equal(a[1], b[1])


class TestCapacityGeometry:
    """Row-slice growth is geometric: appends double a sequence's row
    cap in place (or relocate it to the tail) instead of reallocating
    per token."""

    def test_row_cap_doubles(self, factory):
        _require_arena(factory)
        template = factory()
        arena = KVArena(
            [layer.key_quantizer for layer in template.layers],
            [layer.value_quantizer for layer in template.layers],
        )
        backend = arena.allocate("seq")
        rng = np.random.default_rng(17)
        caps = set()
        for _ in range(40):
            row = rng.standard_normal((1, DIM)).astype(np.float32)
            for layer in range(LAYERS):
                backend.append(layer, row, row)
            row_slice = arena.layers[0].rows["seq"]
            caps.add(row_slice.cap)
            assert row_slice.cap >= row_slice.length
        # Geometric schedule: every observed cap is the floor times a
        # power of two, and the number of distinct caps stays
        # logarithmic in the appended length.
        floor = min(caps)
        for cap in caps:
            ratio = cap / floor
            assert ratio == int(ratio) and int(ratio) & (int(ratio) - 1) == 0
        assert len(caps) <= 4

    def test_arena_capacity_tracks_growth(self, factory):
        _require_arena(factory)
        pool = KVCachePool(factory, arena=True)
        pool.allocate("seq")
        rng = np.random.default_rng(19)
        first = None
        # 320 rows: past the arena's initial row capacity, so the
        # row-parallel buffers must have doubled at least once.
        for step in range(20):
            rows = rng.standard_normal((16, DIM)).astype(np.float32)
            for layer in range(LAYERS):
                pool.append("seq", layer, rows, rows)
            if first is None:
                first = pool.summary()["arena_capacity_bytes"]
        grown = pool.summary()["arena_capacity_bytes"]
        assert grown > first
        # Slack is reported separately from content: the admission
        # gate's measured footprint never includes arena headroom.
        content, _ = pool.measure()
        assert content < grown
