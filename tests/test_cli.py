"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in (
            ["list-models"],
            ["list-systems"],
            ["quantize"],
            ["throughput"],
            ["experiment", "fig01"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)


class TestCommands:
    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "llama2-7b" in out and "mixtral-8x7b" in out

    def test_list_systems(self, capsys):
        assert main(["list-systems", "--model", "llama2-13b"]) == 0
        out = capsys.readouterr().out
        assert "oaken-lpddr" in out and "vllm" in out

    def test_quantize_default(self, capsys):
        assert main(["quantize", "--tokens", "64", "--dim", "64"]) == 0
        out = capsys.readouterr().out
        assert "effective bits/element" in out
        assert "serialized stream" in out

    def test_quantize_custom_ratios(self, capsys):
        code = main(
            ["quantize", "--ratios", "2/2/90/6", "--tokens", "32",
             "--dim", "64"]
        )
        assert code == 0
        assert "2/2/90/6" in capsys.readouterr().out

    def test_throughput_ok(self, capsys):
        code = main(
            ["throughput", "--model", "llama2-7b",
             "--system", "oaken-lpddr", "--batch", "32"]
        )
        assert code == 0
        assert "tokens/s" in capsys.readouterr().out

    def test_throughput_oom_exit_code(self, capsys):
        code = main(
            ["throughput", "--model", "llama2-70b",
             "--system", "oaken-hbm", "--batch", "16"]
        )
        assert code == 1
        assert "OOM" in capsys.readouterr().out

    def test_experiment_fig01(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        assert "oaken-lpddr" in capsys.readouterr().out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "quant_engine" in capsys.readouterr().out

    def test_experiment_energy(self, capsys):
        assert main(["experiment", "energy"]) == 0
        assert "tok/J" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestNewSubsystemCommands:
    def test_capacity_planner(self, capsys):
        assert main(
            ["capacity", "--model", "llama2-13b", "--context", "2048"]
        ) == 0
        out = capsys.readouterr().out
        assert "oaken-lpddr" in out and "max_batch@2048" in out

    def test_datapath_verifies_bit_exact(self, capsys):
        code = main(
            ["datapath", "--tokens", "4", "--dim", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-exact vs golden model: True" in out
        assert "decomposer" in out and "zero_insert_shifter" in out

    def test_datapath_custom_groups(self, capsys):
        code = main(
            ["datapath", "--tokens", "2", "--dim", "64",
             "--ratios", "2/2/90/6"]
        )
        assert code == 0
        assert "2/2/90/6" in capsys.readouterr().out

    def test_fabric_striped(self, capsys):
        assert main(["fabric", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "striped/paged" in out and "effective BW" in out

    def test_fabric_skewed_slower(self, capsys):
        assert main(["fabric", "--batch", "1", "--skewed"]) == 0
        assert "skewed" in capsys.readouterr().out

    def test_overlap_report(self, capsys):
        assert main(["overlap", "--batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "hidden fraction" in out

    def test_profiling_experiment_id_known(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "profiling"])
        assert args.id == "profiling"


@pytest.mark.tiering
class TestTieringCommands:
    def test_replay_parser_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.device_budget_mb is None
        assert args.eviction == "lru"
        assert callable(args.func)

    def test_replay_untiered(self, capsys):
        code = main(
            ["replay", "--workload", "longcontext", "--requests", "2",
             "--batch", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "generated" in out and "tiering" not in out

    def test_replay_tiered_spill(self, capsys):
        code = main(
            ["replay", "--workload", "longcontext", "--requests", "2",
             "--batch", "2", "--device-budget-mb", "0.02",
             "--eviction", "plru"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tiering (plru" in out
        assert "evictions" in out and "transfer" in out

    def test_replay_json_carries_tier_counters(self, capsys):
        import json

        code = main(
            ["replay", "--workload", "longcontext", "--requests", "2",
             "--batch", "2", "--device-budget-mb", "0.02", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["replay"]["tier_evictions"] > 0
        assert report["replay"]["gate_refusals"] == 0

    def test_cluster_tiered(self, capsys):
        code = main(
            ["cluster", "--workload", "longcontext", "--requests", "2",
             "--batch", "2", "--replicas", "2",
             "--device-budget-mb", "0.02"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tiering (lru" in out

    def test_bad_eviction_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["replay", "--eviction", "random"]
            )


@pytest.mark.sharing
class TestSharingCommands:
    def test_replay_rag_workload_forks(self, capsys):
        import json

        code = main(
            ["replay", "--workload", "rag", "--requests", "8",
             "--batch", "4", "--seed", "7", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["replay"]["forks"] > 0
        assert report["replay"]["shared_bytes_saved"] > 0

    def test_cluster_cache_replay_forks(self, capsys):
        import json

        code = main(
            ["cluster", "--workload", "rag", "--requests", "8",
             "--batch", "4", "--replicas", "2", "--seed", "7",
             "--policy", "prefix_affinity", "--cache-replay", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["lost"] == 0
        assert report["forks"] > 0
        assert report["shared_bytes_saved"] > 0

    def test_cluster_without_cache_replay_stays_analytic(self):
        args = build_parser().parse_args(["cluster"])
        assert args.cache_replay is False
        from repro.cli import _replay_config

        assert _replay_config(args) is None
