"""Smoke tests: the fast runnable examples execute end to end.

Each example is a documented entry point into the public API; these
tests run the quick ones in-process (importing their ``main``) so API
drift that would break a user's first contact shows up in CI.  The
slow, experiment-scale examples (accuracy table, throughput sweeps,
trace replay) are exercised through their underlying experiment
modules in the benchmark suite instead.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "examples"
)

FAST_EXAMPLES = (
    "quickstart",
    "datapath_trace",
    "capacity_planner",
    "hw_design_space",
    "slo_explorer",
)


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", path
    )
    module = importlib.util.module_from_spec(spec)
    # Examples read sys.argv; give them a clean one.
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = argv


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_every_example_has_a_docstring_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        text = path.read_text()
        assert text.lstrip().startswith(
            ("#!", '"""')
        ), f"{path.name} missing shebang/docstring"
        assert "def main(" in text, f"{path.name} has no main()"
        assert '__main__' in text, f"{path.name} not runnable"
