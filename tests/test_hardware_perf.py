"""Unit tests for devices, overhead profiles, and the perf model."""

import pytest

from repro.hardware.accelerator import DEVICES, get_device
from repro.hardware.engines import DequantEngine, QuantEngine
from repro.hardware.overheads import (
    PROFILES,
    SERVING_SYSTEMS,
    get_system,
)
from repro.hardware.perf import (
    generation_iteration,
    kv_bytes_per_token,
    max_supported_batch,
    prefill_time,
    simulate_generation_run,
    weight_bytes,
)
from repro.models.config import get_model

ARCH_7B = get_model("llama2-7b").arch
ARCH_70B = get_model("llama2-70b").arch


class TestDeviceCatalog:
    def test_paper_platforms_present(self):
        for name in (
            "a100", "a100x2", "oaken-hbm", "oaken-lpddr", "lpu-lpddr",
            "lpu-hbm", "tender",
        ):
            assert name in DEVICES

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            get_device("h100")

    def test_table1_specs(self):
        a100 = get_device("a100")
        assert a100.peak_fp16_tflops == 312.0
        assert a100.memory.capacity_gb == 80.0
        oaken = get_device("oaken-lpddr")
        assert oaken.peak_fp16_tflops == 270.0
        assert oaken.memory.capacity_gb == 256.0
        assert oaken.tdp_watts == pytest.approx(222.7)

    def test_gpu_pages_npu_does_not(self):
        assert get_device("a100").paged_serving
        assert not get_device("oaken-lpddr").paged_serving


class TestSystems:
    def test_figure_systems_present(self):
        for name in (
            "vllm", "kvquant-gpu", "kivi-gpu", "qserve-gpu",
            "oaken-gpu", "tender", "lpu", "oaken-lpddr", "oaken-hbm",
        ):
            assert name in SERVING_SYSTEMS

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            get_system("tpu")

    def test_large_models_use_two_devices(self):
        system = get_system("vllm")
        assert system.device_for(ARCH_7B).name == "a100"
        assert system.device_for(ARCH_70B).name == "a100x2"

    def test_kv_bits_paper_values(self):
        # Table 2 bottom rows at Llama2-7B width (kv_dim=4096).
        assert get_system("oaken-lpddr").kv_bits(ARCH_7B) == (
            pytest.approx(4.82, abs=0.01)
        )
        assert get_system("qserve-gpu").kv_bits(ARCH_7B) == (
            pytest.approx(4.25, abs=0.01)
        )
        assert get_system("kivi-gpu").kv_bits(ARCH_7B) == (
            pytest.approx(5.0, abs=0.01)
        )
        assert get_system("tender").kv_bits(ARCH_7B) == (
            pytest.approx(4.01, abs=0.01)
        )
        assert get_system("vllm").kv_bits(ARCH_7B) == 16.0

    def test_oaken_gqa_bitwidth(self):
        # Llama2-70B (kv_dim=1024): paper reports 4.89.
        assert get_system("oaken-lpddr").kv_bits(ARCH_70B) == (
            pytest.approx(4.89, abs=0.01)
        )

    def test_overlap_flags(self):
        assert PROFILES["oaken-engine"].overlapped
        assert not PROFILES["kvquant-gpu"].overlapped


class TestCapacity:
    def test_max_batch_shrinks_with_context(self):
        system = get_system("oaken-lpddr")
        short = max_supported_batch(system, ARCH_7B, 1024)
        long = max_supported_batch(system, ARCH_7B, 8192)
        assert short > long

    def test_quantization_grows_max_batch(self):
        quantized = max_supported_batch(
            get_system("oaken-lpddr"), ARCH_7B, 2048
        )
        fp16 = max_supported_batch(get_system("lpu"), ARCH_7B, 2048)
        assert quantized > 2.5 * fp16

    def test_zero_budget_when_weights_exceed_memory(self):
        # 70B FP16 weights (~128 GB) cannot fit one 80 GB HBM NPU.
        assert max_supported_batch(
            get_system("oaken-hbm"), ARCH_70B, 2048
        ) == 0

    def test_weight_bytes_scaling(self):
        assert weight_bytes(ARCH_7B, 4.0) == pytest.approx(
            weight_bytes(ARCH_7B, 16.0) / 4.0
        )

    def test_kv_bytes_helper(self):
        assert kv_bytes_per_token(ARCH_7B, 16.0) == pytest.approx(
            2 * 32 * 4096 * 2
        )


class TestIterationModel:
    def test_attention_grows_with_context(self):
        system = get_system("oaken-lpddr")
        short = generation_iteration(system, ARCH_7B, 32, 512)
        long = generation_iteration(system, ARCH_7B, 32, 4096)
        assert long.attn_s > 4 * short.attn_s
        assert long.nonattn_s == pytest.approx(short.nonattn_s)

    def test_attention_grows_with_batch(self):
        system = get_system("vllm")
        small = generation_iteration(system, ARCH_7B, 8, 1024)
        large = generation_iteration(system, ARCH_7B, 64, 1024)
        assert large.attn_s > 4 * small.attn_s

    def test_quantization_shrinks_attention(self):
        context = 2048
        lpu = generation_iteration(get_system("lpu"), ARCH_7B, 32, context)
        oaken = generation_iteration(
            get_system("oaken-lpddr"), ARCH_7B, 32, context
        )
        ratio = oaken.attn_s / lpu.attn_s
        assert ratio == pytest.approx(4.82 / 16.0, abs=0.05)

    def test_oaken_overhead_hidden(self):
        breakdown = generation_iteration(
            get_system("oaken-lpddr"), ARCH_7B, 64, 2048
        )
        assert breakdown.exposed_overhead_s == 0.0
        assert breakdown.quant_s > 0
        assert breakdown.dequant_s > 0

    def test_gpu_software_overhead_exposed(self):
        breakdown = generation_iteration(
            get_system("kvquant-gpu"), ARCH_7B, 64, 2048
        )
        assert breakdown.exposed_overhead_s > 0

    def test_ragged_penalty_slows_tender(self):
        smooth = generation_iteration(
            get_system("tender"), ARCH_7B, 64, 512, ragged=False
        )
        ragged = generation_iteration(
            get_system("tender"), ARCH_7B, 64, 512, ragged=True
        )
        assert ragged.total_s >= smooth.total_s

    def test_utilization_below_one(self):
        breakdown = generation_iteration(
            get_system("vllm"), ARCH_7B, 64, 1024
        )
        assert 0.0 < breakdown.compute_util < 1.0


class TestGenerationRun:
    def test_throughput_positive(self):
        run = simulate_generation_run(
            get_system("oaken-lpddr"), ARCH_7B, 64
        )
        assert not run.oom
        assert run.tokens_per_s > 0
        assert run.effective_batch == 64

    def test_npu_oom_semantics(self):
        run = simulate_generation_run(get_system("lpu"), ARCH_7B, 256)
        assert run.oom
        assert run.tokens_per_s == 0.0

    def test_gpu_paging_saturates(self):
        small = simulate_generation_run(get_system("vllm"), ARCH_7B, 64)
        big = simulate_generation_run(get_system("vllm"), ARCH_7B, 256)
        assert not big.oom
        assert big.effective_batch < 256
        assert big.tokens_per_s == pytest.approx(
            small.tokens_per_s, rel=0.35
        )

    def test_throughput_monotone_until_saturation(self):
        system = get_system("oaken-lpddr")
        rates = [
            simulate_generation_run(system, ARCH_7B, b).tokens_per_s
            for b in (16, 32, 64, 128)
        ]
        assert rates == sorted(rates)

    def test_prefill_scales_with_prompt(self):
        system = get_system("vllm")
        assert prefill_time(system, ARCH_7B, 8, 2048) > (
            1.5 * prefill_time(system, ARCH_7B, 8, 1024)
        )

    def test_headline_speedup_direction(self):
        """Oaken-LPDDR beats vLLM and QServe at batch 256 (Fig 11)."""
        oaken = simulate_generation_run(
            get_system("oaken-lpddr"), ARCH_7B, 256
        )
        vllm = simulate_generation_run(get_system("vllm"), ARCH_7B, 256)
        qserve = simulate_generation_run(
            get_system("qserve-gpu"), ARCH_7B, 256
        )
        assert oaken.tokens_per_s > qserve.tokens_per_s
        assert oaken.tokens_per_s > 1.5 * vllm.tokens_per_s


class TestEngines:
    def test_quant_engine_throughput(self):
        engine = QuantEngine()
        assert engine.elements_per_second == pytest.approx(
            32 * 1e9 * 256
        )
        assert engine.time_s(0) == 0.0
        assert engine.time_s(10**9) > 0

    def test_dequant_engine_wider(self):
        assert DequantEngine().elements_per_second > (
            QuantEngine().elements_per_second
        )

    def test_time_linear_in_elements(self):
        engine = DequantEngine()
        t1 = engine.time_s(10**9)
        t2 = engine.time_s(2 * 10**9)
        assert t2 < 2.1 * t1

    def test_throughput_gbps(self):
        assert QuantEngine().throughput_gbps(16.0) > 0
