"""Tests for the TTFT/TPOT serving-latency metrics."""

from __future__ import annotations

import pytest

from repro.data.traces import TraceRequest, generate_trace
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchScheduler
from repro.serving.simulator import simulate_trace

ARCH = get_model("llama2-13b").arch


def drive(scheduler: ContinuousBatchScheduler, step_s: float = 0.1):
    """Run the scheduler to completion with a fixed iteration time."""
    now = 0.0
    for _ in range(10_000):
        if not scheduler.has_work:
            return
        plan = scheduler.plan_iteration(now)
        if plan is None:
            upcoming = scheduler.next_arrival()
            if upcoming is None:
                return
            now = max(now, upcoming)
            continue
        now += step_s
        scheduler.complete_iteration(now)
    raise AssertionError("scheduler did not drain")


class TestRequestMetrics:
    def test_ttft_unset_raises(self):
        request = Request(
            request_id=0, arrival_s=0.0, input_tokens=4, output_tokens=2
        )
        with pytest.raises(RuntimeError, match="no token"):
            request.ttft_s()

    def test_tpot_before_finish_raises(self):
        request = Request(
            request_id=0, arrival_s=0.0, input_tokens=4, output_tokens=2
        )
        with pytest.raises(RuntimeError, match="not finished"):
            request.tpot_s()

    def test_single_token_output_has_zero_tpot(self):
        scheduler = ContinuousBatchScheduler(2)
        scheduler.submit(
            Request(request_id=0, arrival_s=0.0, input_tokens=4,
                    output_tokens=1)
        )
        drive(scheduler)
        request = scheduler.finished[0]
        assert request.tpot_s() == 0.0

    def test_first_token_recorded_on_first_generation(self):
        scheduler = ContinuousBatchScheduler(2)
        scheduler.submit(
            Request(request_id=0, arrival_s=0.0, input_tokens=4,
                    output_tokens=3)
        )
        drive(scheduler, step_s=0.1)
        request = scheduler.finished[0]
        assert request.first_token_s == pytest.approx(0.1)
        assert request.finish_s == pytest.approx(0.3)
        assert request.ttft_s() == pytest.approx(0.1)
        assert request.tpot_s() == pytest.approx(0.1)

    def test_queued_request_ttft_includes_queueing(self):
        scheduler = ContinuousBatchScheduler(1)
        scheduler.submit(
            Request(request_id=0, arrival_s=0.0, input_tokens=4,
                    output_tokens=5)
        )
        scheduler.submit(
            Request(request_id=1, arrival_s=0.0, input_tokens=4,
                    output_tokens=1)
        )
        drive(scheduler, step_s=0.1)
        blocked = next(
            r for r in scheduler.finished if r.request_id == 1
        )
        # Request 1 waited for request 0's five iterations.
        assert blocked.ttft_s() >= 0.5


class TestReportMetrics:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(
            "conversation", num_requests=32, seed=4, max_tokens=512
        )

    def test_report_carries_slo_metrics(self, trace):
        report = simulate_trace(
            get_system("oaken-lpddr"), ARCH, trace, 16
        )
        assert report.mean_ttft_s > 0.0
        assert report.p95_ttft_s >= report.mean_ttft_s * 0.5
        assert report.mean_tpot_s > 0.0
        assert report.mean_ttft_s < report.mean_latency_s

    def test_chunked_prefill_slo_tradeoff_is_bounded(self, trace):
        """Chunked prefill spreads admission work across iterations:
        generation smoothness (TPOT) holds within noise while TTFT
        pays a bounded premium (prompts now take several chunked
        iterations) — the classic Sarathi trade-off, not a free win."""
        system = get_system("oaken-lpddr")
        plain = simulate_trace(system, ARCH, trace, 16)
        chunked = simulate_trace(
            system, ARCH, trace, 16, prefill_chunk=256
        )
        assert chunked.mean_tpot_s <= plain.mean_tpot_s * 1.05
        assert chunked.p95_ttft_s <= plain.p95_ttft_s * 1.25

    def test_larger_cap_reduces_queueing_ttft(self, trace):
        system = get_system("oaken-lpddr")
        small = simulate_trace(system, ARCH, trace, 4)
        large = simulate_trace(system, ARCH, trace, 32)
        assert large.mean_ttft_s <= small.mean_ttft_s
