"""Direct tests of the core-occupancy model (Figure 3 at core level)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.coremap import (
    batching_occupancy_gain,
    generation_occupancy,
    occupancy_timeline,
    prefill_occupancy,
)
from repro.models.config import get_model

ARCH = get_model("llama2-7b").arch


class TestPrefillOccupancy:
    def test_long_prompt_saturates_cores(self):
        phase = prefill_occupancy(ARCH, batch=1, prompt_tokens=1024)
        assert phase.occupancy == 1.0
        assert phase.busy_cores == phase.total_cores

    def test_short_prompt_underfills(self):
        phase = prefill_occupancy(
            ARCH, batch=1, prompt_tokens=16, total_cores=256
        )
        assert phase.busy_cores == 16
        assert phase.occupancy == pytest.approx(16 / 256)

    def test_tokens_in_flight_counts_whole_batch(self):
        phase = prefill_occupancy(ARCH, batch=4, prompt_tokens=100)
        assert phase.tokens_in_flight == 400

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            prefill_occupancy(ARCH, batch=0, prompt_tokens=8)
        with pytest.raises(ValueError):
            prefill_occupancy(ARCH, batch=1, prompt_tokens=0)


class TestGenerationOccupancy:
    def test_single_request_uses_one_core(self):
        """Figure 3(a): the generation phase of one request keeps one
        core busy and idles the other 255."""
        phase = generation_occupancy(ARCH, batch=1, total_cores=256)
        assert phase.busy_cores == 1
        assert phase.occupancy == pytest.approx(1 / 256)

    def test_batch_fills_cores_linearly_until_cap(self):
        assert generation_occupancy(ARCH, 64).busy_cores == 64
        assert generation_occupancy(ARCH, 512).busy_cores == 256

    def test_gain_saturates_at_core_count(self):
        assert batching_occupancy_gain(ARCH, 64) == pytest.approx(64.0)
        assert batching_occupancy_gain(ARCH, 10_000) == pytest.approx(
            256.0
        )


class TestTimeline:
    def test_two_phase_shape(self):
        timeline = occupancy_timeline(
            ARCH, batch=8, prompt_tokens=512, output_tokens=128
        )
        assert [p.phase for p in timeline] == ["prefill", "generation"]
        assert timeline[0].occupancy >= timeline[1].occupancy

    def test_prefill_only_request(self):
        timeline = occupancy_timeline(
            ARCH, batch=8, prompt_tokens=512, output_tokens=0
        )
        assert [p.phase for p in timeline] == ["prefill"]

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 512),
        prompt=st.integers(1, 4096),
        cores=st.integers(1, 512),
    )
    def test_property_occupancy_in_unit_interval(
        self, batch, prompt, cores
    ):
        for phase in occupancy_timeline(
            ARCH, batch, prompt, output_tokens=1, total_cores=cores
        ):
            assert 0.0 < phase.occupancy <= 1.0
            assert phase.busy_cores <= phase.total_cores
