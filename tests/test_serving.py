"""Unit tests for the scheduler and trace-driven simulator."""

import pytest

from repro.data.traces import TraceRequest, generate_trace
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.serving.request import Request, RequestPhase
from repro.serving.scheduler import ContinuousBatchScheduler
from repro.serving.simulator import (
    simulate_synthesized_batches,
    simulate_trace,
)

ARCH = get_model("llama2-13b").arch


def make_request(i, arrival=0.0, inputs=64, outputs=8):
    return Request(
        request_id=i, arrival_s=arrival,
        input_tokens=inputs, output_tokens=outputs,
    )


class TestRequest:
    def test_context_length_grows(self):
        request = make_request(0)
        assert request.context_length == 64
        request.generated = 5
        assert request.context_length == 69

    def test_latency_requires_finish(self):
        with pytest.raises(RuntimeError):
            make_request(0).latency_s()

    def test_latency_value(self):
        request = make_request(0, arrival=1.0)
        request.finish_s = 3.5
        assert request.latency_s() == pytest.approx(2.5)


class TestScheduler:
    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(0)

    def test_admission_respects_capacity(self):
        scheduler = ContinuousBatchScheduler(2)
        for i in range(5):
            scheduler.submit(make_request(i))
        plan = scheduler.plan_iteration(0.0)
        assert len(plan.admitted) == 2
        assert scheduler.pending == 3

    def test_admission_respects_arrival_time(self):
        scheduler = ContinuousBatchScheduler(4)
        scheduler.submit(make_request(0, arrival=0.0))
        scheduler.submit(make_request(1, arrival=10.0))
        plan = scheduler.plan_iteration(0.0)
        assert len(plan.admitted) == 1

    def test_plan_none_before_any_arrival(self):
        scheduler = ContinuousBatchScheduler(4)
        scheduler.submit(make_request(0, arrival=5.0))
        assert scheduler.plan_iteration(0.0) is None
        assert scheduler.next_arrival() == 5.0

    def test_completion_retires_and_refills(self):
        scheduler = ContinuousBatchScheduler(1)
        scheduler.submit(make_request(0, outputs=1))
        scheduler.submit(make_request(1, outputs=1))
        plan = scheduler.plan_iteration(0.0)
        assert plan.resident[0].request_id == 0
        retired = scheduler.complete_iteration(1.0)
        assert len(retired) == 1
        assert retired[0].phase == RequestPhase.FINISHED
        plan = scheduler.plan_iteration(1.0)
        assert plan.resident[0].request_id == 1

    def test_fifo_order(self):
        scheduler = ContinuousBatchScheduler(2)
        for i in range(3):
            scheduler.submit(make_request(i))
        plan = scheduler.plan_iteration(0.0)
        assert [r.request_id for r in plan.admitted] == [0, 1]

    def test_ragged_flag(self):
        scheduler = ContinuousBatchScheduler(2)
        scheduler.submit(make_request(0, inputs=64))
        scheduler.submit(make_request(1, inputs=512))
        plan = scheduler.plan_iteration(0.0)
        assert plan.ragged

    def test_uniform_prompts_not_ragged(self):
        scheduler = ContinuousBatchScheduler(2)
        scheduler.submit(make_request(0, inputs=100))
        scheduler.submit(make_request(1, inputs=110))
        plan = scheduler.plan_iteration(0.0)
        assert not plan.ragged

    def test_all_requests_eventually_finish(self):
        scheduler = ContinuousBatchScheduler(3)
        for i in range(7):
            scheduler.submit(make_request(i, outputs=2))
        now = 0.0
        while scheduler.has_work:
            plan = scheduler.plan_iteration(now)
            assert plan is not None
            now += 0.1
            scheduler.complete_iteration(now)
        assert len(scheduler.finished) == 7
        generated = sum(r.generated for r in scheduler.finished)
        assert generated == 14


class TestTraceSimulation:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_trace(get_system("vllm"), ARCH, [], 16)

    def test_unsorted_trace_rejected(self):
        trace = [
            TraceRequest(arrival_s=2.0, input_tokens=64,
                         output_tokens=8),
            TraceRequest(arrival_s=1.0, input_tokens=64,
                         output_tokens=8),
        ]
        with pytest.raises(ValueError) as excinfo:
            simulate_trace(get_system("vllm"), ARCH, trace, 16)
        message = str(excinfo.value)
        assert "sorted by arrival" in message
        assert "request 1" in message  # names the offending index

    def test_equal_arrival_times_accepted(self):
        trace = [
            TraceRequest(arrival_s=1.0, input_tokens=64,
                         output_tokens=8)
            for _ in range(3)
        ]
        report = simulate_trace(get_system("vllm"), ARCH, trace, 16)
        assert report.generated_tokens == 24

    def test_all_tokens_generated(self):
        trace = [
            TraceRequest(arrival_s=0.0, input_tokens=128,
                         output_tokens=16)
            for _ in range(8)
        ]
        report = simulate_trace(get_system("oaken-lpddr"), ARCH, trace, 4)
        assert report.generated_tokens == 8 * 16
        assert report.generation_throughput > 0
        assert report.mean_latency_s > 0

    def test_oom_when_model_does_not_fit(self):
        arch70 = get_model("llama2-70b").arch
        trace = [
            TraceRequest(arrival_s=0.0, input_tokens=64, output_tokens=8)
        ]
        report = simulate_trace(get_system("oaken-hbm"), arch70, trace, 4)
        assert report.oom

    def test_cap_clipped_to_capacity(self):
        trace = [
            TraceRequest(arrival_s=0.0, input_tokens=2048,
                         output_tokens=2048)
            for _ in range(4)
        ]
        report = simulate_trace(get_system("lpu"), ARCH, trace, 1000)
        assert report.effective_batch < 1000

    def test_latency_percentile_ordering(self):
        trace = generate_trace("conversation", num_requests=24, seed=0,
                               max_tokens=512)
        report = simulate_trace(get_system("vllm"), ARCH, trace, 8)
        assert report.p95_latency_s >= report.mean_latency_s


class TestSynthesizedBatches:
    def test_throughput_positive(self):
        trace = generate_trace("burstgpt", num_requests=64, seed=1,
                               max_tokens=1024)
        report = simulate_synthesized_batches(
            get_system("oaken-lpddr"), ARCH, trace, 16
        )
        assert report.generation_throughput > 0
        assert not report.oom

    def test_oaken_beats_lpu_on_burstgpt(self):
        """KV quantization pays off on long-output traces (Fig 14)."""
        trace = generate_trace("burstgpt", num_requests=64, seed=1,
                               max_tokens=2048)
        lpu = simulate_synthesized_batches(
            get_system("lpu"), ARCH, trace, 64
        )
        oaken = simulate_synthesized_batches(
            get_system("oaken-lpddr"), ARCH, trace, 64
        )
        assert oaken.generation_throughput > (
            1.2 * lpu.generation_throughput
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_synthesized_batches(
                get_system("vllm"), ARCH, [], 8
            )
