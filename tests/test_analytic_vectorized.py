"""Element-identity of the vectorized analytic sweeps vs the scalar path.

The contract mirrors ``tests/test_datapath_vectorized.py``: the batched
sweep (:mod:`repro.hardware.sweep`, :func:`repro.hardware.area.area_grid`,
``*.time_s_batch``) must agree with the scalar golden models **exactly**
— ``==``, not ``allclose`` — over the full Table 4 / Figure 11 config
grids, in both ComputeModes.
"""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.modes import DEPLOY_F32, EXACT_F64
from repro.experiments.fig11 import (
    FIG11_BATCHES,
    FIG11_MODELS,
    FIG11_SYSTEMS,
    run_fig11,
    systems_for_model,
)
from repro.experiments.table4 import run_table4
from repro.hardware.area import AreaModel, area_grid
from repro.hardware.engines import DequantEngine, QuantEngine
from repro.hardware.overheads import SERVING_SYSTEMS, get_system
from repro.hardware.perf import (
    generation_iteration,
    max_supported_batch,
    prefill_time,
    simulate_generation_run,
)
from repro.hardware.sweep import (
    GridPoint,
    capacity_grid,
    grid_points,
    iteration_grid,
    simulate_generation_grid,
)
from repro.models.config import get_model

#: The full Figure 11 grid: 6 models x 5 batches x per-model systems.
FIG11_POINTS = [
    GridPoint(model=model, system=system, batch=batch)
    for model in FIG11_MODELS
    for batch in FIG11_BATCHES
    for system in systems_for_model(model, FIG11_SYSTEMS)
]

#: Table 4 config sweep: paper default + the ablation knobs that scale
#: the engines (band count, outlier bitwidth).
TABLE4_CONFIGS = [
    OakenConfig(),
    OakenConfig.from_ratio_string("2/94/4"),
    OakenConfig.from_ratio_string("6/88/6"),
    OakenConfig.from_ratio_string("4/90/6", outlier_bits=4),
    OakenConfig.from_ratio_string("4/90/6", outlier_bits=6),
    OakenConfig.from_ratio_string("1/98/1", outlier_bits=3),
]

MODES = (EXACT_F64, DEPLOY_F32)

RUN_FIELDS = (
    "system", "batch", "effective_batch", "oom",
    "tokens_per_s", "prefill_s", "generation_s",
)
BREAKDOWN_FIELDS = (
    "nonattn_s", "attn_s", "quant_s", "dequant_s",
    "exposed_overhead_s", "compute_util",
)


def _assert_runs_identical(ref, got, label):
    for name in RUN_FIELDS:
        assert getattr(ref, name) == getattr(got, name), (
            label, name, getattr(ref, name), getattr(got, name)
        )
    assert (ref.breakdown is None) == (got.breakdown is None), label
    if ref.breakdown is not None:
        for name in BREAKDOWN_FIELDS:
            assert getattr(ref.breakdown, name) == getattr(
                got.breakdown, name
            ), (label, name)


class TestGenerationGrid:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name)
    def test_full_fig11_grid_element_identical(self, mode):
        grid = simulate_generation_grid(FIG11_POINTS, mode=mode)
        for i, point in enumerate(FIG11_POINTS):
            ref = simulate_generation_run(
                get_system(point.system),
                get_model(point.model).arch,
                point.batch,
                mode=mode,
            )
            _assert_runs_identical(ref, grid.run(i), point)

    def test_exact_mode_matches_frozen_scalar_default(self):
        # mode=None is the frozen scalar float64 path; the grid's
        # exact_f64 must land on it bit for bit.
        grid = simulate_generation_grid(FIG11_POINTS)
        assert grid.mode == "exact_f64"
        for i, point in enumerate(FIG11_POINTS):
            ref = simulate_generation_run(
                get_system(point.system),
                get_model(point.model).arch,
                point.batch,
            )
            _assert_runs_identical(ref, grid.run(i), point)

    def test_deploy_f32_tracks_exact_within_tolerance(self):
        exact = simulate_generation_grid(FIG11_POINTS, mode=EXACT_F64)
        deploy = simulate_generation_grid(FIG11_POINTS, mode=DEPLOY_F32)
        assert np.array_equal(exact.oom, deploy.oom)
        live = ~exact.oom
        np.testing.assert_allclose(
            deploy.tokens_per_s[live],
            exact.tokens_per_s[live],
            rtol=1e-5,
        )

    def test_ragged_grid_matches_scalar(self):
        points = grid_points(
            ("llama2-7b", "mistral-7b"),
            ("vllm", "tender", "oaken-lpddr"),
            (8, 64),
        )
        grid = simulate_generation_grid(points, ragged=True)
        for i, point in enumerate(points):
            ref = simulate_generation_run(
                get_system(point.system),
                get_model(point.model).arch,
                point.batch,
                ragged=True,
            )
            _assert_runs_identical(ref, grid.run(i), point)

    def test_runs_materializes_all_points(self):
        points = FIG11_POINTS[:10]
        grid = simulate_generation_grid(points)
        runs = grid.runs()
        assert len(runs) == len(points)
        assert [r.batch for r in runs] == [p.batch for p in points]


class TestIterationGrid:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name)
    @pytest.mark.parametrize("context", (64, 1024, 4096, 40000))
    def test_iteration_grid_element_identical(self, context, mode):
        arrays = iteration_grid(FIG11_POINTS, context, mode=mode)
        for i, point in enumerate(FIG11_POINTS):
            ref = generation_iteration(
                get_system(point.system),
                get_model(point.model).arch,
                point.batch,
                context,
                mode=mode,
            )
            for name in BREAKDOWN_FIELDS:
                assert arrays[name][i] == getattr(ref, name), (
                    point, context, name
                )
            assert arrays["total_s"][i] == ref.total_s

    def test_prefill_lowp_matches_grid(self):
        # The scalar deploy_f32 prefill is the one-point grid; pin the
        # delegation end to end.
        system = get_system("oaken-lpddr")
        arch = get_model("llama2-13b").arch
        exact = prefill_time(system, arch, 16, 1024)
        lowp = prefill_time(system, arch, 16, 1024, mode="deploy_f32")
        assert lowp == pytest.approx(exact, rel=1e-5)
        assert isinstance(lowp, float)


class TestCapacityGrid:
    @pytest.mark.parametrize(
        "model", ("llama2-7b", "llama2-13b", "mistral-7b", "llama2-70b")
    )
    def test_capacity_grid_matches_scalar_planner(self, model):
        systems = list(SERVING_SYSTEMS)
        contexts = (128, 512, 1024, 2048, 8192, 32768, 131072)
        grid = capacity_grid(systems, model, contexts)
        arch = get_model(model).arch
        assert grid.shape == (len(systems), len(contexts))
        for i, name in enumerate(systems):
            for j, context in enumerate(contexts):
                ref = max_supported_batch(get_system(name), arch, context)
                assert int(grid[i, j]) == ref, (name, model, context)


class TestAreaGrid:
    def test_area_grid_element_identical_to_scalar(self):
        grid = area_grid(TABLE4_CONFIGS)
        for i, config in enumerate(TABLE4_CONFIGS):
            model = AreaModel(config)
            report = model.core_report()
            assert grid["quant_engine_mm2"][i] == (
                report.areas_mm2["quant_engine"]
            )
            assert grid["dequant_engine_mm2"][i] == (
                report.areas_mm2["dequant_engine"]
            )
            assert grid["core_area_mm2"][i] == report.core_area_mm2
            assert grid["oaken_overhead_percent"][i] == (
                report.oaken_overhead_percent
            )
            assert grid["accelerator_power_w"][i] == (
                model.accelerator_power_w()
            )
            assert grid["power_saving_vs_gpu_percent"][i] == (
                model.power_saving_vs_gpu()
            )

    def test_run_table4_unchanged_by_vectorization(self):
        labels = [f"cfg{i}" for i in range(len(TABLE4_CONFIGS))]
        results = run_table4(TABLE4_CONFIGS, labels)
        for config, result in zip(TABLE4_CONFIGS, results):
            model = AreaModel(config)
            ref = model.core_report()
            assert result.report.areas_mm2 == ref.areas_mm2
            assert result.oaken_overhead_percent == (
                ref.oaken_overhead_percent
            )
            assert result.accelerator_power_w == model.accelerator_power_w()
            assert result.power_saving_vs_a100_percent == (
                model.power_saving_vs_gpu()
            )


class TestFig11Rewire:
    def test_run_fig11_matches_scalar_loop(self):
        cells = run_fig11()
        index = 0
        for model in FIG11_MODELS:
            arch = get_model(model).arch
            for batch in FIG11_BATCHES:
                for name in systems_for_model(model, FIG11_SYSTEMS):
                    ref = simulate_generation_run(
                        get_system(name), arch, batch
                    )
                    cell = cells[index]
                    index += 1
                    assert (cell.model, cell.system, cell.batch) == (
                        model, name, batch
                    )
                    assert cell.oom == ref.oom
                    expected = 0.0 if ref.oom else ref.tokens_per_s
                    assert cell.tokens_per_s == expected
        assert index == len(cells)


class TestEngineBatch:
    @pytest.mark.parametrize(
        "engine", (QuantEngine(), DequantEngine()),
        ids=("quant", "dequant"),
    )
    def test_time_s_batch_element_identical(self, engine):
        counts = np.array(
            [-16, 0, 1, 31, 32, 4096, 10**7, 3 * 10**9], dtype=np.int64
        )
        batched = engine.time_s_batch(counts)
        for count, got in zip(counts, batched):
            assert got == engine.time_s(int(count))
