"""Unit tests for offline threshold profiling."""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.thresholds import (
    OfflineProfiler,
    extract_run_thresholds,
    profile_thresholds,
)


class TestExtractRunThresholds:
    def test_outer_quantiles(self):
        x = np.linspace(-1, 1, 10001)
        thr = extract_run_thresholds(x, OakenConfig())
        # 4% outer split two-sided: 2% tails.
        assert thr.outer_lo[0] == pytest.approx(-0.96, abs=0.01)
        assert thr.outer_hi[0] == pytest.approx(0.96, abs=0.01)

    def test_inner_magnitude_quantile(self):
        x = np.linspace(-1, 1, 10001)
        thr = extract_run_thresholds(x, OakenConfig())
        # 6% inner by magnitude on a uniform distribution.
        assert thr.inner_mag[0] == pytest.approx(0.06, abs=0.01)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            extract_run_thresholds(np.array([]), OakenConfig())

    def test_multiband_ordering(self):
        config = OakenConfig.from_ratio_string("2/2/90/3/3")
        rng = np.random.default_rng(0)
        thr = extract_run_thresholds(
            rng.standard_normal(20000), config
        )
        # Outer boundaries widen outward; inner magnitudes shrink.
        assert thr.outer_lo[0] < thr.outer_lo[1] < 0
        assert thr.outer_hi[0] > thr.outer_hi[1] > 0
        assert thr.inner_mag[0] > thr.inner_mag[1] > 0


class TestOfflineProfiler:
    def test_averages_runs(self):
        config = OakenConfig()
        profiler = OfflineProfiler(config)
        profiler.observe(np.linspace(-1, 1, 1001))
        profiler.observe(np.linspace(-3, 3, 1001))
        thr = profiler.finalize()
        single_a = extract_run_thresholds(
            np.linspace(-1, 1, 1001), config
        )
        single_b = extract_run_thresholds(
            np.linspace(-3, 3, 1001), config
        )
        expected = (single_a.outer_hi[0] + single_b.outer_hi[0]) / 2
        assert thr.outer_hi[0] == pytest.approx(expected)

    def test_finalize_without_runs_rejected(self):
        with pytest.raises(RuntimeError):
            OfflineProfiler(OakenConfig()).finalize()

    def test_run_count(self):
        profiler = OfflineProfiler(OakenConfig())
        for seed in range(3):
            rng = np.random.default_rng(seed)
            profiler.observe(rng.standard_normal(512))
        assert profiler.num_runs == 3

    def test_spread_small_for_iid_runs(self):
        profiler = OfflineProfiler(OakenConfig())
        for seed in range(8):
            rng = np.random.default_rng(seed)
            profiler.observe(rng.standard_normal(8192))
        # Observation 2: same distribution -> stable thresholds.
        assert profiler.run_to_run_spread() < 0.25

    def test_spread_large_for_shifting_runs(self):
        profiler = OfflineProfiler(OakenConfig())
        for scale in (1.0, 4.0, 16.0):
            rng = np.random.default_rng(0)
            profiler.observe(scale * rng.standard_normal(4096))
        assert profiler.run_to_run_spread() > 0.5

    def test_spread_zero_for_single_run(self):
        profiler = OfflineProfiler(OakenConfig())
        profiler.observe(np.linspace(-1, 1, 100))
        assert profiler.run_to_run_spread() == 0.0


class TestProfileThresholds:
    def test_one_shot_equivalence(self):
        config = OakenConfig()
        samples = [
            np.random.default_rng(s).standard_normal(2048)
            for s in range(4)
        ]
        direct = profile_thresholds(samples, config)
        profiler = OfflineProfiler(config)
        for sample in samples:
            profiler.observe(sample)
        via_profiler = profiler.finalize()
        assert direct.outer_hi == via_profiler.outer_hi
        assert direct.inner_mag == via_profiler.inner_mag
