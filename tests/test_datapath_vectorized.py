"""Element-for-element equivalence of the two datapath tiers.

The vectorized whole-tensor twins in
:mod:`repro.hardware.datapath.vectorized` must reproduce the scalar
Figure 9 golden pipeline exactly — same bits, same COO stream, same
FP16 scale bounds, same modeled cycle reports — in **both**
:class:`~repro.core.modes.ComputeMode`\\ s, across the paper's whole
configuration registry (the Table 3 ratio sweep plus the feature
ablations).  ``exact_f64`` additionally anchors to the vectorized
reference quantizer; ``deploy_f32`` must stay within the mode's
documented one-code-level tolerance of the ``exact_f64`` output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TABLE3_CONFIGURATIONS, OakenConfig
from repro.core.modes import COMPUTE_MODES, DEPLOY_F32, EXACT_F64
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.hardware.datapath import (
    EngineBackedQuantizer,
    StreamingDequantEngine,
    StreamingQuantEngine,
    VectorizedDequantEngine,
    VectorizedQuantEngine,
)

MODES = sorted(COMPUTE_MODES)

#: (config, label) pairs spanning the registry: every Table 3 ratio /
#: bitwidth row plus the feature-toggle ablations.
CONFIG_REGISTRY = [
    (
        OakenConfig.from_ratio_string(spec, outlier_bits=bits),
        f"{spec}@{bits}b",
    )
    for spec, bits in TABLE3_CONFIGURATIONS
] + [
    (OakenConfig(group_shift=False), "no-group-shift"),
    (OakenConfig(fused_encoding=False), "naive-encoding"),
    (
        OakenConfig(group_shift=False, fused_encoding=False),
        "no-shift-naive",
    ),
]

CONFIGS = [c for c, _ in CONFIG_REGISTRY]
CONFIG_IDS = [label for _, label in CONFIG_REGISTRY]


def build(config, mode, dim=96, seed=0):
    """Thresholds plus all four engines for one (config, mode) pair."""
    rng = np.random.default_rng(seed)
    samples = [rng.standard_normal((24, dim)) * 3.0 for _ in range(4)]
    thresholds = profile_thresholds(samples, config)
    matrix = rng.standard_normal((19, dim)) * 2.5
    return {
        "thresholds": thresholds,
        "matrix": matrix,
        "scalar_q": StreamingQuantEngine(config, thresholds, mode=mode),
        "scalar_d": StreamingDequantEngine(
            config, thresholds, mode=mode
        ),
        "vec_q": VectorizedQuantEngine(config, thresholds, mode=mode),
        "vec_d": VectorizedDequantEngine(config, thresholds, mode=mode),
    }


def assert_encoded_equal(expected, actual) -> None:
    """Field-by-field bit equality of two EncodedKV layouts."""
    np.testing.assert_array_equal(actual.dense_codes, expected.dense_codes)
    np.testing.assert_array_equal(actual.middle_lo, expected.middle_lo)
    np.testing.assert_array_equal(actual.middle_hi, expected.middle_hi)
    np.testing.assert_array_equal(actual.band_lo, expected.band_lo)
    np.testing.assert_array_equal(actual.band_hi, expected.band_hi)
    np.testing.assert_array_equal(actual.sparse_token, expected.sparse_token)
    np.testing.assert_array_equal(actual.sparse_pos, expected.sparse_pos)
    np.testing.assert_array_equal(actual.sparse_band, expected.sparse_band)
    np.testing.assert_array_equal(actual.sparse_side, expected.sparse_side)
    np.testing.assert_array_equal(
        actual.sparse_mag_code, expected.sparse_mag_code
    )
    if expected.sparse_fp16 is None:
        assert actual.sparse_fp16 is None
    else:
        np.testing.assert_array_equal(
            actual.sparse_fp16, expected.sparse_fp16
        )


def assert_reports_equal(expected, actual) -> None:
    """Cycle-for-cycle equality of two CycleReports."""
    assert actual.total_cycles == expected.total_cycles
    assert actual.tokens == expected.tokens
    assert actual.elements == expected.elements
    assert set(actual.stages) == set(expected.stages)
    for name, stage in expected.stages.items():
        assert actual.stages[name].busy_cycles == stage.busy_cycles, name
        assert actual.stages[name].elements == stage.elements, name


class TestScalarVectorizedEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
    def test_quantize_bits_and_cycles_identical(self, config, mode):
        """Both tiers emit the same encoded bits and modeled cycles."""
        setup = build(config, mode)
        encoded_s, report_s = setup["scalar_q"].quantize_matrix(
            setup["matrix"]
        )
        encoded_v, report_v = setup["vec_q"].quantize_matrix(
            setup["matrix"]
        )
        assert_encoded_equal(encoded_s, encoded_v)
        assert_reports_equal(report_s, report_v)

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
    def test_dequantize_rows_and_cycles_identical(self, config, mode):
        """Both tiers reconstruct identical float32 rows."""
        setup = build(config, mode)
        encoded, _ = setup["scalar_q"].quantize_matrix(setup["matrix"])
        rows_s, report_s = setup["scalar_d"].dequantize_matrix(encoded)
        rows_v, report_v = setup["vec_d"].dequantize_matrix(encoded)
        np.testing.assert_array_equal(rows_s, rows_v)
        assert rows_v.dtype == np.float32
        assert_reports_equal(report_s, report_v)

    def test_exact_f64_matches_reference_quantizer(self):
        """The f64 vectorized tier inherits the golden anchor."""
        config = OakenConfig()
        setup = build(config, EXACT_F64)
        reference = OakenQuantizer(config, setup["thresholds"])
        encoded_v, _ = setup["vec_q"].quantize_matrix(setup["matrix"])
        assert_encoded_equal(reference.quantize(setup["matrix"]), encoded_v)
        rows_v, _ = setup["vec_d"].dequantize_matrix(encoded_v)
        np.testing.assert_array_equal(
            reference.dequantize(encoded_v), rows_v
        )

    @pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
    def test_deploy_f32_within_one_code_level(self, config):
        """float32 stage mode honours the mode's tolerance contract."""
        setup64 = build(config, EXACT_F64)
        setup32 = build(config, DEPLOY_F32)
        encoded64, _ = setup64["vec_q"].quantize_matrix(
            setup64["matrix"]
        )
        encoded32, _ = setup32["vec_q"].quantize_matrix(
            setup32["matrix"]
        )
        # Outlier selection may move a borderline element between
        # groups; when it does not, dense codes drift by at most
        # DEPLOY_F32.code_tolerance levels.
        if np.array_equal(encoded64.sparse_pos, encoded32.sparse_pos):
            drift = np.abs(
                encoded64.dense_codes.astype(np.int32)
                - encoded32.dense_codes.astype(np.int32)
            )
            outliers = np.zeros(encoded64.dense_codes.shape, dtype=bool)
            outliers[encoded64.sparse_token, encoded64.sparse_pos] = True
            assert drift[~outliers].max(initial=0) <= (
                DEPLOY_F32.code_tolerance
            )

    def test_empty_and_single_token_edges(self):
        """Degenerate shapes stream through both tiers identically."""
        config = OakenConfig()
        setup = build(config, EXACT_F64)
        for matrix in (
            np.zeros((0, 96)),
            setup["matrix"][:1],
            np.full((3, 96), 0.5),
        ):
            encoded_s, report_s = setup["scalar_q"].quantize_matrix(
                matrix
            )
            encoded_v, report_v = setup["vec_q"].quantize_matrix(matrix)
            assert_encoded_equal(encoded_s, encoded_v)
            assert_reports_equal(report_s, report_v)

    def test_vectorized_detects_corrupted_nibble(self):
        """The vectorized zero-insert shifter keeps the scalar check."""
        config = OakenConfig()
        setup = build(config, EXACT_F64)
        encoded, _ = setup["vec_q"].quantize_matrix(setup["matrix"])
        assert encoded.sparse_token.size > 0
        token = int(encoded.sparse_token[0])
        pos = int(encoded.sparse_pos[0])
        encoded.dense_codes[token, pos] ^= 0x3
        with pytest.raises(ValueError, match="fused nibble mismatch"):
            setup["vec_d"].dequantize_matrix(encoded)


class TestEngineBackedTiers:
    def test_vectorized_default_matches_scalar_tier(self):
        """The adapter's tiers agree bit-for-bit and cycle-for-cycle."""
        config = OakenConfig()
        rng = np.random.default_rng(3)
        samples = [rng.standard_normal((24, 64)) * 2.0]
        thresholds = profile_thresholds(samples, config)
        matrix = rng.standard_normal((9, 64))
        fast = EngineBackedQuantizer(config, thresholds)
        golden = EngineBackedQuantizer(
            config, thresholds, engine="scalar"
        )
        assert fast.engine == "vectorized"
        np.testing.assert_array_equal(
            fast.roundtrip(matrix), golden.roundtrip(matrix)
        )
        assert fast.quant_cycles == golden.quant_cycles
        assert fast.dequant_cycles == golden.dequant_cycles

    def test_engine_modes_thread_through(self):
        """The adapter resolves and forwards its ComputeMode."""
        config = OakenConfig()
        rng = np.random.default_rng(4)
        thresholds = profile_thresholds(
            [rng.standard_normal((24, 64))], config
        )
        adapter = EngineBackedQuantizer(
            config, thresholds, mode="deploy_f32"
        )
        assert adapter.mode is DEPLOY_F32
        assert adapter.compute_dtype == np.float32
        assert adapter._quant.mode is DEPLOY_F32
        assert adapter._dequant.mode is DEPLOY_F32

    def test_unknown_engine_tier_rejected(self):
        config = OakenConfig()
        rng = np.random.default_rng(5)
        thresholds = profile_thresholds(
            [rng.standard_normal((24, 64))], config
        )
        with pytest.raises(ValueError):
            EngineBackedQuantizer(config, thresholds, engine="rtl")


class TestDegenerateConfigs:
    def test_middle_only_config_matches_scalar(self):
        """A zero-sparse-band ablation streams through both tiers."""
        config = OakenConfig(
            outer_ratios=(), middle_ratio=1.0, inner_ratios=()
        )
        for mode in MODES:
            setup = build(config, mode)
            encoded_s, report_s = setup["scalar_q"].quantize_matrix(
                setup["matrix"]
            )
            encoded_v, report_v = setup["vec_q"].quantize_matrix(
                setup["matrix"]
            )
            assert_encoded_equal(encoded_s, encoded_v)
            assert_reports_equal(report_s, report_v)
            assert encoded_v.sparse_token.size == 0
            rows_s, _ = setup["scalar_d"].dequantize_matrix(encoded_s)
            rows_v, _ = setup["vec_d"].dequantize_matrix(encoded_v)
            np.testing.assert_array_equal(rows_s, rows_v)
