"""Tiered paged KV hierarchy: eviction policies, spill/promotion
accounting, and the cross-tier bit-exactness gate.

The contract under test is structural (the store is a placement model;
payloads never leave the backend caches) but the gate is empirical: for
every registry method, every pool read must be bit-identical between a
tiered pool under forced eviction and an untiered twin, through both
the looped and batched paths.
"""

import numpy as np
import pytest

from repro.baselines.registry import BASELINE_NAMES
from repro.engine import (
    CacheCapacityError,
    EVICTION_POLICIES,
    KVCachePool,
    LRUPolicy,
    MemoryCapacityError,
    PLRUPolicy,
    PageKey,
    TieredKVStore,
    create_eviction_policy,
    default_transfer_model,
    shared_backend_factory,
)

from conftest import make_kv_matrix

pytestmark = pytest.mark.tiering

LAYERS = 2
DIM = 64


def _keys(n, layer=0, seq=0):
    return [PageKey(seq, layer, i) for i in range(n)]


# ----------------------------------------------------------------------
# eviction policies
# ----------------------------------------------------------------------


class TestLRUPolicy:
    def test_victim_is_insertion_order_without_touches(self):
        policy = LRUPolicy(4)
        keys = _keys(4)
        for key in keys:
            policy.insert(key)
        evicted = []
        while len(policy):
            victim = policy.victim()
            policy.remove(victim)
            evicted.append(victim)
        assert evicted == keys

    def test_touch_protects_a_page(self):
        policy = LRUPolicy(4)
        keys = _keys(4)
        for key in keys:
            policy.insert(key)
        policy.touch(keys[0])
        assert policy.victim() == keys[1]

    def test_duplicate_insert_raises(self):
        policy = LRUPolicy(2)
        policy.insert(PageKey(0, 0, 0))
        with pytest.raises(KeyError):
            policy.insert(PageKey(0, 0, 0))

    def test_victim_on_empty_raises(self):
        with pytest.raises(LookupError):
            LRUPolicy(2).victim()


class TestPLRUPolicy:
    def test_rounds_ways_to_power_of_two(self):
        policy = PLRUPolicy(5)
        assert policy._ways == 8

    def test_victim_is_always_occupied(self):
        # Non-power-of-two fill: padding leaves must never be chosen.
        policy = PLRUPolicy(5)
        keys = _keys(5)
        for key in keys:
            policy.insert(key)
        for _ in range(20):
            victim = policy.victim()
            assert victim in keys
            policy.touch(victim)

    def test_touch_steers_victim_away(self):
        policy = PLRUPolicy(4)
        keys = _keys(4)
        for key in keys:
            policy.insert(key)
        policy.touch(keys[0])
        assert policy.victim() != keys[0]

    def test_deterministic_victim_sequence(self):
        def run():
            policy = PLRUPolicy(6)
            keys = _keys(6)
            for key in keys:
                policy.insert(key)
            for i in (0, 3, 1, 4, 0):
                policy.touch(keys[i])
            evicted = []
            while len(policy):
                victim = policy.victim()
                policy.remove(victim)
                evicted.append(victim)
            return evicted

        assert run() == run()

    def test_remove_frees_the_slot(self):
        policy = PLRUPolicy(2)
        a, b = _keys(2)
        policy.insert(a)
        policy.insert(b)
        with pytest.raises(LookupError):
            policy.insert(PageKey(9, 9, 9))
        policy.remove(a)
        policy.insert(PageKey(9, 9, 9))
        assert len(policy) == 2

    def test_capacity_one(self):
        policy = PLRUPolicy(1)
        key = PageKey(0, 0, 0)
        policy.insert(key)
        assert policy.victim() == key


class TestCreatePolicy:
    @pytest.mark.parametrize("name", EVICTION_POLICIES)
    def test_known_names(self, name):
        policy = create_eviction_policy(name, 4)
        assert policy.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            create_eviction_policy("mru", 4)


# ----------------------------------------------------------------------
# transfer pricing
# ----------------------------------------------------------------------


class TestTransferModel:
    def test_zero_bytes_is_free(self):
        assert default_transfer_model().transfer_cycles(0, 4096) == 0.0

    def test_merged_run_beats_per_page_transfers(self):
        # The prefetcher's whole value proposition: one 2-page transfer
        # rides the burst curve better than two 1-page transfers.
        model = default_transfer_model()
        merged = model.transfer_cycles(2 * 4096, 2 * 4096)
        split = 2 * model.transfer_cycles(4096, 4096)
        assert merged < split

    def test_monotone_in_bytes(self):
        model = default_transfer_model()
        assert model.transfer_cycles(8192, 4096) > model.transfer_cycles(
            4096, 4096
        )


# ----------------------------------------------------------------------
# the tiered store (placement model alone)
# ----------------------------------------------------------------------


def make_store(pages=2, page_bytes=512, policy="lru", prefetch=1):
    return TieredKVStore(
        device_budget_bytes=pages * page_bytes,
        page_bytes=page_bytes,
        policy=policy,
        prefetch_pages=prefetch,
    )


class TestTieredKVStore:
    def test_within_budget_never_evicts(self):
        store = make_store(pages=4)
        store.record_append(0, 0, 2 * 512)
        store.record_read(0, 0)
        assert store.evictions == 0
        assert store.misses == 0
        assert store.hits == 2
        assert store.device_bytes == 2 * 512

    @pytest.mark.parametrize("policy", EVICTION_POLICIES)
    def test_forced_eviction_spills_to_host(self, policy):
        store = make_store(pages=2, policy=policy)
        store.record_append(0, 0, 5 * 512)
        assert store.evictions >= 3
        assert store.host_bytes > 0
        assert store.spilled_bytes > 0
        assert store.transfer_cycles > 0
        assert store.device_bytes <= store.device_capacity_bytes

    @pytest.mark.parametrize("policy", EVICTION_POLICIES)
    def test_budget_invariant_under_churn(self, policy):
        store = make_store(pages=3, policy=policy)
        for step in range(40):
            seq = step % 4
            store.record_append(seq, step % LAYERS, 300)
            store.record_read(seq, step % LAYERS)
            assert store.device_bytes <= store.device_capacity_bytes
            if step % 7 == 6:
                store.release(seq)

    def test_read_promotes_spilled_pages(self):
        store = make_store(pages=2, prefetch=0)
        store.record_append(0, 0, 5 * 512)
        assert store.host_bytes > 0
        store.record_read(0, 0)
        assert store.misses > 0
        assert store.promotions > 0
        assert store.promoted_bytes > 0

    def test_prefetch_merges_transfers(self):
        # Identical workloads; the prefetching store must pay fewer
        # transfer cycles on the read-back (merged runs) and record
        # the pages it pulled ahead of demand.
        stores = {
            p: make_store(pages=2, prefetch=p) for p in (0, 4)
        }
        for store in stores.values():
            store.record_append(0, 0, 6 * 512)
            read_cycles = store.record_read(0, 0)
            assert read_cycles > 0
        assert stores[4].prefetched_pages > 0
        assert stores[0].prefetched_pages == 0
        assert stores[4].promoted_bytes == stores[0].promoted_bytes
        assert stores[4].transfer_cycles < stores[0].transfer_cycles
        assert stores[4].misses < stores[0].misses

    def test_pressure_raises_transfer_cycles(self):
        def cycles_at(pages):
            store = make_store(pages=pages)
            for seq in range(3):
                store.record_append(seq, 0, 4 * 512)
            for seq in range(3):
                store.record_read(seq, 0)
            return store.transfer_cycles

        relaxed, tight = cycles_at(32), cycles_at(2)
        assert relaxed == 0.0
        assert tight > relaxed

    def test_release_frees_every_tier(self):
        store = make_store(pages=2)
        store.record_append(0, 0, 5 * 512)
        store.record_append(0, 1, 3 * 512)
        store.record_append(1, 0, 512)
        freed = store.release(0)
        assert freed == 8
        assert store.total_pages() == 1
        store.release(1)
        assert store.total_pages() == 0
        assert store.device_bytes == 0
        assert store.host_bytes == 0

    def test_sub_page_budget_degrades_to_one_page(self):
        store = TieredKVStore(device_budget_bytes=100, page_bytes=512)
        assert store.capacity_pages == 1
        store.record_append(0, 0, 3 * 512)
        assert store.device_bytes <= 512

    @pytest.mark.parametrize("policy", EVICTION_POLICIES)
    def test_identical_histories_identical_summaries(self, policy):
        def run():
            store = make_store(pages=3, policy=policy)
            for step in range(30):
                store.record_append(step % 3, 0, 400)
                store.record_read((step + 1) % 3, 0)
            return store.summary()

        assert run() == run()


# ----------------------------------------------------------------------
# capacity error hierarchy
# ----------------------------------------------------------------------


class TestErrorHierarchy:
    def test_cache_capacity_error_is_memory_capacity_error(self):
        err = CacheCapacityError(7, 1024.0, 4096.0, 2048.0)
        assert isinstance(err, MemoryCapacityError)
        assert err.seq_id == 7
        assert err.requested_bytes == 1024.0
        assert err.measured_bytes == 4096.0
        assert err.capacity_bytes == 2048.0

    def test_out_of_pages_error_is_memory_capacity_error(self):
        from repro.hardware.mmu import (
            MemoryManagementUnit,
            OutOfPagesError,
            PageTableKind,
        )

        mmu = MemoryManagementUnit(capacity_bytes=2 * 4096, page_bytes=4096)
        with pytest.raises(MemoryCapacityError) as excinfo:
            for token in range(64):
                mmu.write_entry(
                    sequence=3, layer=0, head=0,
                    kind=PageTableKind.DENSE, token=token, nbytes=512,
                )
        err = excinfo.value
        assert isinstance(err, OutOfPagesError)
        assert err.seq_id == 3
        assert err.requested_bytes == 4096.0
        assert err.capacity_bytes == 2 * 4096.0


# ----------------------------------------------------------------------
# cross-tier bit-exactness (the pinned gate)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def calibration():
    return [
        (make_kv_matrix(seed=70 + layer), make_kv_matrix(seed=80 + layer))
        for layer in range(LAYERS)
    ]


@pytest.fixture(scope="module")
def factories(calibration):
    """One shared fitted factory per registry method."""
    return {
        method: shared_backend_factory(method, calibration=calibration)
        for method in BASELINE_NAMES
    }


def drive_pools(tiered, untiered, seq_ids):
    """Interleaved single + batched appends and reads on twin pools."""
    for pool in (tiered, untiered):
        for seq_id in seq_ids:
            pool.allocate(seq_id)
    for step in range(6):
        for layer in range(LAYERS):
            entries = [
                (
                    seq_id,
                    make_kv_matrix(tokens=4, seed=100 * step + seq_id),
                    make_kv_matrix(tokens=4, seed=500 + 100 * step + seq_id),
                )
                for seq_id in seq_ids
            ]
            if step % 2 == 0:
                for pool in (tiered, untiered):
                    pool.append_batch(layer, entries)
            else:
                for seq_id, keys, values in entries:
                    for pool in (tiered, untiered):
                        pool.append(seq_id, layer, keys, values)
        # Read the coldest sequence first so promotions interleave
        # with appends rather than clustering at the end.
        reader = seq_ids[step % len(seq_ids)]
        for layer in range(LAYERS):
            tk, tv = tiered.read(reader, layer)
            uk, uv = untiered.read(reader, layer)
            np.testing.assert_array_equal(tk, uk)
            np.testing.assert_array_equal(tv, uv)


class TestCrossTierBitExactness:
    @pytest.mark.parametrize("method", BASELINE_NAMES)
    @pytest.mark.parametrize("policy", EVICTION_POLICIES)
    def test_reads_identical_under_forced_eviction(
        self, method, policy, factories
    ):
        factory = factories[method]
        store = TieredKVStore(
            device_budget_bytes=4 * 512,
            page_bytes=512,
            policy=policy,
        )
        tiered = KVCachePool(factory, tiering=store)
        untiered = KVCachePool(factory)
        seq_ids = [0, 1, 2]
        drive_pools(tiered, untiered, seq_ids)
        # The run must actually have exercised the hierarchy.
        assert store.evictions > 0
        assert store.misses > 0
        assert store.device_bytes <= store.device_capacity_bytes
        # Final sweep: every stream, batched against looped.
        for layer in range(LAYERS):
            batch = tiered.read_batch(layer, seq_ids)
            for seq_id, (bk, bv) in zip(seq_ids, batch):
                uk, uv = untiered.read(seq_id, layer)
                np.testing.assert_array_equal(bk, uk)
                np.testing.assert_array_equal(bv, uv)

    def test_free_releases_tier_pages(self, factories):
        store = TieredKVStore(
            device_budget_bytes=2 * 512, page_bytes=512
        )
        pool = KVCachePool(factories["oaken"], tiering=store)
        seq_ids = [0, 1]
        for seq_id in seq_ids:
            pool.allocate(seq_id)
        for layer in range(LAYERS):
            for seq_id in seq_ids:
                pool.append(
                    seq_id, layer,
                    make_kv_matrix(tokens=8, seed=seq_id),
                    make_kv_matrix(tokens=8, seed=10 + seq_id),
                )
        assert store.total_pages() > 0
        for seq_id in seq_ids:
            pool.free(seq_id)
        assert store.total_pages() == 0

    def test_pool_summary_carries_tier_counters(self, factories):
        store = TieredKVStore(
            device_budget_bytes=2 * 512, page_bytes=512
        )
        pool = KVCachePool(factories["oaken"], tiering=store)
        pool.allocate(0)
        pool.append(
            0, 0,
            make_kv_matrix(tokens=16, seed=1),
            make_kv_matrix(tokens=16, seed=2),
        )
        pool.read(0, 0)
        summary = pool.summary()
        assert summary["tier_pages_allocated"] > 0
        assert "tier_transfer_cycles" in summary
        assert "tier_evictions" in summary
