"""Unit tests for the elementary transformer operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.ops import (
    apply_rope,
    causal_mask,
    layernorm,
    log_softmax,
    relu,
    rmsnorm,
    rope_angles,
    silu,
    softmax,
)


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 7))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_large_values_stable(self):
        x = np.array([1e9, 1e9 + 1.0])
        result = softmax(x)
        assert np.isfinite(result).all()

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(1).standard_normal(16)
        np.testing.assert_allclose(
            np.exp(log_softmax(x)), softmax(x), atol=1e-12
        )

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_property_distribution(self, seed):
        x = np.random.default_rng(seed).standard_normal((3, 9)) * 10
        p = softmax(x)
        assert (p >= 0).all()
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)


class TestNorms:
    def test_rmsnorm_unit_rms(self):
        x = np.random.default_rng(2).standard_normal((5, 32)) * 7
        normed = rmsnorm(x, np.ones(32))
        rms = np.sqrt(np.mean(normed**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_layernorm_zero_mean_unit_var(self):
        x = np.random.default_rng(3).standard_normal((5, 32)) * 3 + 5
        normed = layernorm(x, np.ones(32), np.zeros(32))
        np.testing.assert_allclose(normed.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(normed.var(axis=-1), 1.0, atol=1e-3)

    def test_gain_and_bias_applied(self):
        x = np.random.default_rng(4).standard_normal((2, 8))
        gained = layernorm(x, 2.0 * np.ones(8), 3.0 * np.ones(8))
        plain = layernorm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(gained, 2.0 * plain + 3.0)


class TestActivations:
    def test_silu_known_points(self):
        assert silu(np.array([0.0]))[0] == 0.0
        assert silu(np.array([100.0]))[0] == pytest.approx(100.0)

    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )


class TestRope:
    def test_rotation_preserves_norm(self):
        cos, sin = rope_angles(16, np.arange(10))
        x = np.random.default_rng(5).standard_normal((2, 10, 4, 16))
        rotated = apply_rope(x, cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=-1),
            np.linalg.norm(x, axis=-1),
            rtol=1e-10,
        )

    def test_position_zero_is_identity(self):
        cos, sin = rope_angles(8, np.array([0]))
        x = np.random.default_rng(6).standard_normal((1, 1, 2, 8))
        np.testing.assert_allclose(apply_rope(x, cos, sin), x)

    def test_relative_position_property(self):
        # <rope(q, m), rope(k, n)> depends only on m - n.
        dim = 16
        rng = np.random.default_rng(7)
        q = rng.standard_normal(dim)
        k = rng.standard_normal(dim)

        def dot_at(m, n):
            cos_m, sin_m = rope_angles(dim, np.array([m]))
            cos_n, sin_n = rope_angles(dim, np.array([n]))
            qm = apply_rope(q.reshape(1, 1, 1, dim), cos_m, sin_m)
            kn = apply_rope(k.reshape(1, 1, 1, dim), cos_n, sin_n)
            return float((qm * kn).sum())

        assert dot_at(5, 3) == pytest.approx(dot_at(12, 10), rel=1e-9)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_angles(7, np.arange(3))


class TestCausalMask:
    def test_lower_triangular(self):
        mask = causal_mask(4)
        expected = np.tril(np.ones((4, 4), dtype=bool))
        np.testing.assert_array_equal(mask, expected)

    def test_sliding_window_limits_lookback(self):
        mask = causal_mask(6, sliding_window=2)
        # Query 5 sees keys 4, 5 only.
        np.testing.assert_array_equal(
            mask[5], [False, False, False, False, True, True]
        )

    def test_window_larger_than_length_is_causal(self):
        np.testing.assert_array_equal(
            causal_mask(4, sliding_window=100), causal_mask(4)
        )

    def test_diagonal_always_visible(self):
        mask = causal_mask(8, sliding_window=1)
        assert np.diag(mask).all()
