"""Bit-exact equivalence of the streaming dequantization datapath.

Reconstruction through the zero-insert shifter (fused nibble + record
bits) must match the vectorized golden dequantizer exactly — this also
proves the fused dense-and-sparse encoding is lossless with respect to
the quantized codes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.hardware.datapath import (
    COORecord,
    DequantTiming,
    OutlierIndexBuffer,
    StreamingDequantEngine,
    ZeroInsertShifter,
)


def make_trio(config: OakenConfig, rng: np.random.Generator, dim: int = 96):
    """Reference quantizer plus the streaming dequant engine."""
    samples = [rng.standard_normal((24, dim)) * 3.0 for _ in range(4)]
    thresholds = profile_thresholds(samples, config)
    reference = OakenQuantizer(config, thresholds)
    dequant = StreamingDequantEngine(config, thresholds)
    return reference, dequant


class TestOutlierIndexBuffer:
    def test_lookup_by_position(self):
        buffer = OutlierIndexBuffer()
        record = COORecord(
            position=5, chunk=0, index=5, band=0, side=True, mag_code=3
        )
        buffer.load([record])
        assert buffer.lookup(5) is record
        assert buffer.lookup(4) is None
        assert len(buffer) == 1

    def test_load_replaces_previous_token(self):
        buffer = OutlierIndexBuffer()
        buffer.load(
            [COORecord(position=1, chunk=0, index=1, band=0,
                       side=False, mag_code=0)]
        )
        buffer.load([])
        assert buffer.lookup(1) is None


class TestZeroInsertShifter:
    def test_reassembles_paper_default_code(self):
        """5-bit code in a 4-bit slot: side bit rides in the record."""
        cfg = OakenConfig()
        shifter = ZeroInsertShifter(cfg)
        record = COORecord(
            position=0, chunk=0, index=0, band=0, side=True,
            mag_code=0b1011, fused_nibble=0b1011,
        )
        mag, side = shifter.reassemble_code(record, 0b1011)
        assert mag == 0b1011
        assert side is True

    def test_record_high_bits_is_side_bit(self):
        cfg = OakenConfig()
        shifter = ZeroInsertShifter(cfg)
        positive = COORecord(
            position=0, chunk=0, index=0, band=0, side=True,
            mag_code=0b0011, fused_nibble=0b0011,
        )
        negative = COORecord(
            position=0, chunk=0, index=0, band=0, side=False,
            mag_code=0b0011, fused_nibble=0b0011,
        )
        assert shifter.record_high_bits(positive) == 1
        assert shifter.record_high_bits(negative) == 0

    def test_corrupted_nibble_detected(self):
        cfg = OakenConfig()
        shifter = ZeroInsertShifter(cfg)
        record = COORecord(
            position=7, chunk=0, index=7, band=0, side=False,
            mag_code=0b0101, fused_nibble=0b0101,
        )
        with pytest.raises(ValueError, match="mismatch"):
            shifter.reassemble_code(record, 0b0100)

    def test_narrow_slot_wide_code(self):
        """2-bit slots with 5-bit codes: three high bits in the record."""
        cfg = OakenConfig(inlier_bits=2, outlier_bits=5)
        shifter = ZeroInsertShifter(cfg)
        # full code = side(1) << 4 | mag(0b1101) = 0b11101
        record = COORecord(
            position=0, chunk=0, index=0, band=0, side=True,
            mag_code=0b1101, fused_nibble=0b01,
        )
        assert shifter.record_high_bits(record) == 0b111
        mag, side = shifter.reassemble_code(record, 0b01)
        assert mag == 0b1101
        assert side is True


class TestStreamingDequantEquivalence:
    def test_paper_default_config(self):
        rng = np.random.default_rng(41)
        reference, dequant = make_trio(OakenConfig(), rng)
        x = rng.standard_normal((16, 96)) * 3.0
        encoded = reference.quantize(x)
        expected = reference.dequantize(encoded)
        actual, _ = dequant.dequantize_matrix(encoded)
        np.testing.assert_array_equal(actual, expected)

    def test_no_group_shift_ablation(self):
        cfg = OakenConfig(group_shift=False)
        rng = np.random.default_rng(43)
        reference, dequant = make_trio(cfg, rng)
        encoded = reference.quantize(rng.standard_normal((8, 96)) * 2.0)
        expected = reference.dequantize(encoded)
        actual, _ = dequant.dequantize_matrix(encoded)
        np.testing.assert_array_equal(actual, expected)

    def test_naive_encoding_ablation(self):
        cfg = OakenConfig(fused_encoding=False)
        rng = np.random.default_rng(47)
        reference, dequant = make_trio(cfg, rng)
        encoded = reference.quantize(rng.standard_normal((8, 96)) * 2.0)
        expected = reference.dequantize(encoded)
        actual, _ = dequant.dequantize_matrix(encoded)
        np.testing.assert_array_equal(actual, expected)

    def test_five_group_config(self):
        cfg = OakenConfig.from_ratio_string("2/2/90/3/3")
        rng = np.random.default_rng(53)
        reference, dequant = make_trio(cfg, rng)
        encoded = reference.quantize(rng.standard_normal((8, 96)) * 2.5)
        expected = reference.dequantize(encoded)
        actual, _ = dequant.dequantize_matrix(encoded)
        np.testing.assert_array_equal(actual, expected)

    def test_end_to_end_streaming_roundtrip(self):
        """Quantize with the streaming engine, dequantize streaming."""
        from repro.hardware.datapath import StreamingQuantEngine

        rng = np.random.default_rng(59)
        cfg = OakenConfig()
        samples = [rng.standard_normal((24, 96)) * 3.0 for _ in range(4)]
        thresholds = profile_thresholds(samples, cfg)
        reference = OakenQuantizer(cfg, thresholds)
        quant = StreamingQuantEngine(cfg, thresholds)
        dequant = StreamingDequantEngine(cfg, thresholds)
        x = rng.standard_normal((12, 96)) * 3.0
        encoded, _ = quant.quantize_matrix(x)
        actual, _ = dequant.dequantize_matrix(encoded)
        np.testing.assert_array_equal(actual, reference.roundtrip(x))

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        tokens=st.integers(1, 8),
        scale=st.floats(0.1, 20.0),
    )
    def test_property_equivalence(self, seed, tokens, scale):
        rng = np.random.default_rng(seed)
        reference, dequant = make_trio(OakenConfig(), rng, dim=64)
        encoded = reference.quantize(
            rng.standard_normal((tokens, 64)) * scale
        )
        expected = reference.dequantize(encoded)
        actual, _ = dequant.dequantize_matrix(encoded)
        np.testing.assert_array_equal(actual, expected)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        fused=st.booleans(),
        shift=st.booleans(),
    )
    def test_property_equivalence_across_feature_toggles(
        self, seed, fused, shift
    ):
        cfg = OakenConfig(fused_encoding=fused, group_shift=shift)
        rng = np.random.default_rng(seed)
        reference, dequant = make_trio(cfg, rng, dim=64)
        encoded = reference.quantize(rng.standard_normal((4, 64)) * 3.0)
        expected = reference.dequantize(encoded)
        actual, _ = dequant.dequantize_matrix(encoded)
        np.testing.assert_array_equal(actual, expected)


class TestDequantTiming:
    def test_pass_cycles_ceiling(self):
        timing = DequantTiming(lanes=128)
        assert timing.pass_cycles(128) == 1
        assert timing.pass_cycles(129) == 2
        assert timing.pass_cycles(1) == 1

    def test_matrix_cycles_one_pass_per_token(self):
        rng = np.random.default_rng(61)
        reference, dequant = make_trio(OakenConfig(), rng, dim=128)
        encoded = reference.quantize(rng.standard_normal((10, 128)))
        _, report = dequant.dequantize_matrix(encoded)
        timing = dequant.timing
        assert report.total_cycles == (
            timing.fill_cycles + 10 * timing.pass_cycles(128)
        )
        assert report.tokens == 10
