"""Cluster replay contracts: equivalence, exactly-once, determinism.

The three correctness contracts from the module docstring, plus the
robustness machinery (failover, retry budget, backpressure, capacity
requeue) and the router policies.  Everything runs in simulation time
on small traces, so the whole file is fast and fully deterministic.
"""

import pytest

from repro.data.traces import (
    TraceRequest,
    generate_burst_trace,
    generate_multiturn_trace,
    generate_trace,
)
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.serving.cluster import (
    ClusterConfig,
    ROUTER_POLICIES,
    simulate_cluster,
)
from repro.serving.faults import (
    FaultPlan,
    admission_blackout,
    brownout,
    crash_and_recover,
    crash_forever,
    generate_fault_plan,
)
from repro.serving.simulator import CacheReplayConfig, simulate_trace

pytestmark = pytest.mark.cluster

ARCH = get_model("llama2-13b").arch
SYSTEM = get_system("oaken-hbm")
TRACE = generate_trace("conversation", 32, seed=3)


def run_cluster(trace=TRACE, faults=None, **kwargs):
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("max_batch", 8)
    return simulate_cluster(
        SYSTEM, ARCH, trace, ClusterConfig(**kwargs), faults
    )


class TestSingleReplicaEquivalence:
    """Contract 1: one replica, no faults == simulate_trace, exactly."""

    def test_analytic_totals_identical(self):
        base = simulate_trace(SYSTEM, ARCH, TRACE, max_batch=8)
        rep = run_cluster(replicas=1)
        assert rep.generated_tokens == base.generated_tokens
        assert rep.total_time_s == base.total_time_s
        assert rep.generation_throughput == base.generation_throughput
        assert rep.busy_s == pytest.approx(
            base.generated_tokens / base.generation_throughput
        )

    def test_analytic_latencies_identical(self):
        base = simulate_trace(SYSTEM, ARCH, TRACE, max_batch=8)
        rep = run_cluster(replicas=1)
        assert rep.mean_latency_s == base.mean_latency_s
        assert rep.p95_latency_s == base.p95_latency_s
        assert rep.mean_ttft_s == base.mean_ttft_s
        assert rep.p95_ttft_s == base.p95_ttft_s
        assert rep.mean_tpot_s == base.mean_tpot_s

    def test_chunked_prefill_equivalence(self):
        base = simulate_trace(
            SYSTEM, ARCH, TRACE, max_batch=8, prefill_chunk=256
        )
        rep = run_cluster(replicas=1, prefill_chunk=256)
        assert rep.generated_tokens == base.generated_tokens
        assert rep.total_time_s == base.total_time_s

    def test_cache_replay_equivalence(self):
        trace = generate_trace("conversation", 12, seed=9)
        replay = CacheReplayConfig(num_layers=1, dim=16, prompt_rows=2)
        base = simulate_trace(
            SYSTEM, ARCH, trace, max_batch=4, replay=replay
        )
        rep = run_cluster(
            trace, replicas=1, max_batch=4, replay=replay
        )
        assert rep.generated_tokens == base.generated_tokens
        assert rep.total_time_s == base.total_time_s
        assert rep.generation_throughput == base.generation_throughput

    def test_every_request_completes(self):
        rep = run_cluster(replicas=1)
        assert rep.completed == len(TRACE)
        assert rep.failed == 0
        assert rep.lost == 0
        assert rep.generated_tokens == sum(
            r.output_tokens for r in TRACE
        )


class TestExactlyOnce:
    """Contract 2: completed exactly once or explicitly failed."""

    def test_mid_trace_crash_recovers_everything(self):
        faults = FaultPlan(crash_and_recover(0, at_s=0.4, down_s=2.0))
        rep = run_cluster(faults=faults)
        assert rep.completed == len(TRACE)
        assert rep.failed == 0
        assert rep.lost == 0
        assert rep.duplicate_completions == 0
        assert rep.failovers > 0
        assert rep.detected_failures == 1
        assert rep.downtime_s > 0.0

    def test_crash_without_recovery_fails_over(self):
        faults = FaultPlan(crash_forever(0, at_s=0.4))
        rep = run_cluster(faults=faults)
        assert rep.completed == len(TRACE)
        assert rep.lost == 0
        assert rep.failovers > 0
        # the survivor did all remaining work
        assert rep.per_replica[1]["generated_tokens"] > 0

    def test_all_replicas_dead_fails_explicitly(self):
        faults = FaultPlan(
            crash_forever(0, at_s=0.2) + crash_forever(1, at_s=0.2)
        )
        rep = run_cluster(faults=faults, retry_budget=3)
        assert rep.completed + rep.failed == len(TRACE)
        assert rep.failed > 0
        assert rep.lost == 0
        assert rep.duplicate_completions == 0

    def test_random_fault_plan_never_loses(self):
        faults = generate_fault_plan(
            3, 12.0, seed=7, crash_rate=0.1, brownout_rate=0.1,
            reject_rate=0.1,
        )
        rep = run_cluster(replicas=3, faults=faults)
        assert rep.completed + rep.failed == len(TRACE)
        assert rep.lost == 0
        assert rep.duplicate_completions == 0


class TestDeterminism:
    """Contract 3: identical seeds -> bit-identical reports."""

    def test_fault_free_reports_identical(self):
        assert run_cluster().as_dict() == run_cluster().as_dict()

    def test_faulted_reports_identical(self):
        plan = generate_fault_plan(2, 10.0, seed=13, crash_rate=0.1)
        a = run_cluster(faults=plan)
        b = run_cluster(
            faults=generate_fault_plan(2, 10.0, seed=13, crash_rate=0.1)
        )
        assert a.as_dict() == b.as_dict()

    @pytest.mark.parametrize("policy", ROUTER_POLICIES)
    def test_every_policy_deterministic(self, policy):
        a = run_cluster(replicas=3, policy=policy)
        b = run_cluster(replicas=3, policy=policy)
        assert a.as_dict() == b.as_dict()


class TestFaultBehaviors:
    def test_brownout_stretches_makespan(self):
        clean = run_cluster(replicas=1)
        slowed = run_cluster(
            replicas=1,
            faults=FaultPlan(
                brownout(0, 0.0, clean.total_time_s * 2, factor=4.0)
            ),
        )
        assert slowed.completed == len(TRACE)
        assert slowed.total_time_s > clean.total_time_s

    def test_admission_blackout_diverts_work(self):
        faults = FaultPlan(admission_blackout(0, 0.0, 5.0))
        rep = run_cluster(faults=faults)
        assert rep.completed == len(TRACE)
        assert rep.lost == 0
        # replica 1 shoulders the blackout window's arrivals
        assert (
            rep.per_replica[1]["generated_tokens"]
            > rep.per_replica[0]["generated_tokens"]
        )

    def test_recovered_replica_takes_new_work(self):
        faults = FaultPlan(crash_and_recover(0, at_s=0.1, down_s=1.0))
        rep = run_cluster(faults=faults)
        assert rep.completed == len(TRACE)
        assert rep.per_replica[0]["generated_tokens"] > 0
        assert rep.per_replica[0]["crashes"] == 1


class TestRouterPolicies:
    def test_least_loaded_spreads_work(self):
        rep = run_cluster(replicas=2)
        for row in rep.per_replica:
            assert row["generated_tokens"] > 0

    def test_prefix_affinity_homes_groups(self):
        # Every request in one prefix group -> exactly one replica
        # ever works (no faults to divert it).
        trace = [
            TraceRequest(
                arrival_s=0.1 * i, input_tokens=64, output_tokens=8,
                prefix_group=7,
            )
            for i in range(8)
        ]
        rep = run_cluster(
            trace, replicas=3, policy="prefix_affinity"
        )
        busy = [
            row for row in rep.per_replica
            if row["generated_tokens"] > 0
        ]
        assert len(busy) == 1
        assert rep.completed == len(trace)

    def test_prefix_affinity_on_multiturn_trace(self):
        trace = generate_multiturn_trace(
            "conversation", num_sessions=6, seed=2
        )
        rep = run_cluster(trace, replicas=3, policy="prefix_affinity")
        assert rep.completed == len(trace)
        assert rep.lost == 0

    def test_consistent_hash_completes_bursts(self):
        trace = generate_burst_trace(
            "burstgpt", num_bursts=3, burst_size=8, seed=4
        )
        rep = run_cluster(trace, replicas=3, policy="consistent_hash")
        assert rep.completed == len(trace)
        assert rep.lost == 0


def _shared_group_trace(count=10, group=7, shared=48):
    """One prefix group whose members can fork a 48-token prefix."""
    return [
        TraceRequest(
            arrival_s=0.05 * i, input_tokens=64, output_tokens=8,
            prefix_group=group, shared_tokens=shared,
        )
        for i in range(count)
    ]


@pytest.mark.sharing
class TestForkedSessionRouting:
    """Prefix-affinity routing composed with copy-on-write forking:
    a group's shared chunks live on its home replica, and failover
    re-forks on the takeover replica without breaking exactly-once."""

    REPLAY = CacheReplayConfig(num_layers=1, dim=16, prompt_rows=8)

    def test_forked_sessions_land_on_the_home_replica(self):
        rep = run_cluster(
            _shared_group_trace(), replicas=3,
            policy="prefix_affinity", replay=self.REPLAY,
        )
        assert rep.completed == 10 and rep.lost == 0
        busy = [
            row for row in rep.per_replica
            if row["generated_tokens"] > 0
        ]
        # The whole group homes to one replica, and that replica is
        # where every fork (and all the shared bytes) happened.
        assert len(busy) == 1
        assert busy[0]["forks"] > 0
        assert busy[0]["shared_bytes_saved"] > 0.0
        assert rep.forks == busy[0]["forks"]
        for row in rep.per_replica:
            if row["replica"] != busy[0]["replica"]:
                assert row["forks"] == 0.0

    def test_failover_reforks_on_the_takeover_replica(self):
        trace = _shared_group_trace(count=12)
        clean = run_cluster(
            trace, replicas=2, policy="prefix_affinity",
            replay=self.REPLAY,
        )
        home = max(
            clean.per_replica, key=lambda row: row["generated_tokens"]
        )["replica"]
        rep = run_cluster(
            trace, replicas=2, policy="prefix_affinity",
            replay=self.REPLAY,
            faults=FaultPlan(events=crash_forever(int(home), at_s=0.2)),
        )
        # Exactly-once survives the failover: orphans requeue on the
        # surviving replica, which re-forks the group there (its own
        # first arrival becomes the new anchor).
        assert rep.completed + rep.failed == len(trace)
        assert rep.lost == 0
        assert rep.duplicate_completions == 0
        survivor = [
            row for row in rep.per_replica if row["replica"] != home
        ][0]
        assert survivor["forks"] > 0
        assert survivor["shared_bytes_saved"] > 0.0

    def test_rerun_determinism_with_forking(self):
        trace = generate_multiturn_trace(
            "conversation", num_sessions=6, seed=11
        )
        kwargs = dict(
            replicas=2, policy="prefix_affinity", replay=self.REPLAY
        )
        a = run_cluster(trace, **kwargs)
        b = run_cluster(trace, **kwargs)
        assert a.forks == b.forks > 0
        assert a.as_dict() == b.as_dict()


class TestBackpressure:
    def test_queue_limit_sheds_to_retry_queue(self):
        trace = generate_burst_trace(
            "conversation", num_bursts=2, burst_size=12, seed=1
        )
        rep = run_cluster(
            trace, replicas=2, max_batch=2, queue_limit=2,
            retry_budget=8, backoff_cap_s=0.5,
        )
        assert rep.rejections > 0
        assert rep.retries > 0
        assert rep.completed + rep.failed == len(trace)
        assert rep.lost == 0

    def test_capacity_error_requeues_not_loses(self):
        trace = generate_trace("conversation", 8, seed=6)
        rep = run_cluster(
            trace, replicas=2, max_batch=4,
            replay=CacheReplayConfig(
                num_layers=1, dim=16, prompt_rows=2
            ),
            pool_capacity_bytes=3000.0,
        )
        assert rep.capacity_rejections > 0
        assert rep.completed + rep.failed == len(trace)
        assert rep.lost == 0
        assert rep.duplicate_completions == 0


class TestValidation:
    def test_unsorted_trace_rejected(self):
        trace = [
            TraceRequest(arrival_s=1.0, input_tokens=64, output_tokens=8),
            TraceRequest(arrival_s=0.5, input_tokens=64, output_tokens=8),
        ]
        with pytest.raises(ValueError, match="sorted by arrival"):
            run_cluster(trace)

    def test_fault_plan_validated_against_replicas(self):
        with pytest.raises(ValueError, match="replica 5"):
            run_cluster(faults=FaultPlan(crash_forever(5, 1.0)))

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="replicas"):
            ClusterConfig(replicas=0)
        with pytest.raises(ValueError, match="policy"):
            ClusterConfig(policy="round_robin")
        with pytest.raises(ValueError, match="retry_budget"):
            ClusterConfig(retry_budget=0)
        with pytest.raises(ValueError, match="queue_limit"):
            ClusterConfig(queue_limit=0)

    def test_analytic_oom_mirrors_simulate_trace(self, monkeypatch):
        import repro.serving.cluster as cluster_mod

        monkeypatch.setattr(
            cluster_mod, "max_supported_batch",
            lambda *args, **kwargs: 0,
        )
        rep = run_cluster()
        assert rep.oom
        assert rep.completed == 0


class TestScaling:
    def test_more_replicas_raise_token_rate(self):
        one = run_cluster(replicas=1, max_batch=4)
        four = run_cluster(replicas=4, max_batch=4)
        assert four.completed == one.completed == len(TRACE)
        assert four.tokens_per_s > one.tokens_per_s

    def test_report_serializes(self):
        import json

        payload = run_cluster().as_dict()
        assert json.loads(json.dumps(payload)) == payload
