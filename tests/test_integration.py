"""End-to-end integration tests across subsystem boundaries.

These tie together the flows a downstream user would run: model ->
calibration -> quantizer -> forward-pass accuracy; model -> cache ->
serialization -> MMU placement; trace -> scheduler -> hardware model.
"""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.kvcache import QuantizedKVCache
from repro.core.quantizer import OakenQuantizer
from repro.core.serialization import deserialize, serialize
from repro.core.thresholds import profile_thresholds
from repro.data.corpus import build_corpus, calibration_corpus
from repro.data.traces import generate_trace
from repro.eval.harness import build_method_bundle
from repro.hardware.cache_layout import OakenCacheLayout
from repro.hardware.mmu import MemoryManagementUnit
from repro.hardware.overheads import get_system
from repro.models.config import get_model
from repro.models.transformer import DecoderModel
from repro.serving.simulator import simulate_synthesized_batches


class TestModelToQuantizerFlow:
    """Calibrate on real model KV, evaluate on held-out text."""

    @pytest.fixture(scope="class")
    def fitted(self, small_model):
        calibration = calibration_corpus(small_model, batch=3,
                                         length=48)
        return build_method_bundle(small_model, "oaken", calibration)

    def test_quantized_ppl_close_to_fp(self, small_model, small_tokens,
                                       fitted):
        clean = small_model.perplexity(small_tokens)
        quantized = small_model.perplexity(
            small_tokens, kv_transforms=fitted.bundle()
        )
        # Oaken's loss on held-out text stays within ~15% perplexity.
        assert clean < quantized < clean * 1.15

    def test_thresholds_transfer_across_datasets(self, small_model,
                                                 fitted):
        """Observation 2 end to end: calibrate once, eval anywhere."""
        bundle = fitted.bundle()
        for dataset in ("piqa", "hellaswag"):
            tokens = build_corpus(small_model, dataset, batch=2,
                                  length=48)
            clean = small_model.perplexity(tokens)
            quantized = small_model.perplexity(
                tokens, kv_transforms=bundle
            )
            assert quantized < clean * 1.25

    def test_effective_bits_stable_across_inputs(self, small_model,
                                                 fitted):
        bits = []
        for seed_dataset in ("wikitext2", "piqa"):
            tokens = build_corpus(small_model, seed_dataset, batch=2,
                                  length=48)
            kv = small_model.collect_layer_kv(tokens)
            bits.append(fitted.measured_bitwidth(kv))
        assert abs(bits[0] - bits[1]) < 0.1


class TestCacheToHardwareFlow:
    """Real model KV -> quantized cache -> bytes -> MMU pages."""

    def test_cache_serialize_place_roundtrip(self, small_model):
        tokens = build_corpus(small_model, "wikitext2", batch=1,
                              length=48)
        kv = small_model.collect_layer_kv(tokens)
        config = OakenConfig()
        layers = len(kv)
        key_q = [
            OakenQuantizer(config, profile_thresholds([k], config))
            for k, _ in kv
        ]
        value_q = [
            OakenQuantizer(config, profile_thresholds([v], config))
            for _, v in kv
        ]
        cache = QuantizedKVCache(key_q, value_q)
        for layer, (keys, values) in enumerate(kv):
            cache.append(layer, keys, values)

        assert cache.length == tokens.size
        assert 4.0 < cache.effective_bitwidth() < 7.0

        # Serialize every encoded chunk and place it through the MMU.
        # Short streams (48 tokens x 6 heads) want small pages; real
        # deployments amortize 4 KiB pages over thousands of tokens.
        mmu = MemoryManagementUnit(capacity_bytes=1 << 24,
                                   page_bytes=256)
        layout = OakenCacheLayout(
            mmu, num_heads=small_model.shape.n_kv_heads
        )
        placed_bytes = 0
        for layer_index, layer in enumerate(cache.layers):
            for chunk in layer._key_chunks:
                blob = serialize(chunk)
                restored = deserialize(
                    blob, chunk.config, chunk.thresholds
                )
                np.testing.assert_array_equal(
                    chunk.dense_codes, restored.dense_codes
                )
                report = layout.place(0, layer_index, chunk)
                placed_bytes += report.dense_bytes + report.sparse_bytes
        assert placed_bytes > 0
        assert mmu.fragmentation() < 0.9

        # Freeing the sequence returns every page.
        mmu.free_sequence(0)
        assert mmu.pages_in_use == 0


class TestServingFlow:
    """Trace through scheduler through the hardware model."""

    def test_all_systems_complete_the_trace(self):
        arch = get_model("llama2-13b").arch
        trace = generate_trace("conversation", num_requests=48, seed=7,
                               max_tokens=1024)
        expected_tokens = None
        for name in ("vllm", "lpu", "oaken-lpddr"):
            report = simulate_synthesized_batches(
                get_system(name), arch, trace, 16
            )
            assert not report.oom
            assert report.generation_throughput > 0
            if expected_tokens is None:
                expected_tokens = report.generated_tokens
            else:
                # Same workload => same token count on every platform.
                assert report.generated_tokens == expected_tokens

    def test_quantization_extends_reachable_batch(self):
        arch = get_model("opt-30b").arch
        trace = generate_trace("burstgpt", num_requests=64, seed=1,
                               max_tokens=2048)
        fp16 = simulate_synthesized_batches(
            get_system("lpu"), arch, trace, 128
        )
        oaken = simulate_synthesized_batches(
            get_system("oaken-lpddr"), arch, trace, 128
        )
        assert oaken.effective_batch > fp16.effective_batch
