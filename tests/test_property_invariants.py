"""Cross-module property-based invariants of the Oaken algorithm.

These tie the algorithm's pieces together under randomized inputs:
reconstruction error bounds implied by the group structure, storage
accounting consistency between the analytic and materialized paths,
and monotonicity of the accuracy/compression trade-off.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OakenConfig
from repro.core.encoding import sparse_record_bits
from repro.core.grouping import MIDDLE_GROUP, assign_groups
from repro.core.quantizer import (
    OakenQuantizer,
    expected_effective_bitwidth,
)
from repro.core.thresholds import profile_thresholds
from repro.quant.metrics import signal_to_quantization_noise


def build_quantizer(seed: int, config: OakenConfig, dim: int = 64):
    rng = np.random.default_rng(seed)
    samples = [rng.standard_normal((48, dim)) * 3.0 for _ in range(4)]
    return OakenQuantizer(config, profile_thresholds(samples, config)), rng


class TestReconstructionBounds:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), scale=st.floats(0.2, 10.0))
    def test_outlier_error_bounded_by_band_quantile_step(
        self, seed, scale
    ):
        """Every sparse-band element reconstructs within one
        quantization step of its band's (FP16-rounded) magnitude
        span."""
        config = OakenConfig()
        quantizer, rng = build_quantizer(seed, config)
        x = rng.standard_normal((8, 64)) * scale
        encoded = quantizer.quantize(x)
        restored = quantizer.dequantize(encoded).astype(np.float64)
        partition = assign_groups(x, quantizer.thresholds)
        steps = 2 ** (config.outlier_bits - 1) - 1
        for band in range(config.num_sparse_bands):
            mask = partition.band_mask(band)
            if not mask.any():
                continue
            for token in range(x.shape[0]):
                row = mask[token]
                if not row.any():
                    continue
                lo = float(encoded.band_lo[token, band])
                hi = float(encoded.band_hi[token, band])
                span = hi - lo
                # One code step plus FP16 rounding slack on the stored
                # bounds (relative to their magnitude, which is what
                # survives when a band holds a single element and the
                # span collapses to zero).
                budget = (
                    span / steps / 2
                    + 1e-3 * max(abs(lo), abs(hi))
                    + 1e-6
                )
                error = np.abs(restored[token, row] - x[token, row])
                assert float(error.max()) <= budget + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), scale=st.floats(0.2, 10.0))
    def test_middle_error_bounded_by_step_plus_inner_threshold(
        self, seed, scale
    ):
        """Dense inliers reconstruct within one 4-bit step of the
        shifted span plus the sign-recovery slack, which is bounded by
        the inner threshold magnitude (module docstring of the
        quantizer)."""
        config = OakenConfig()
        quantizer, rng = build_quantizer(seed, config)
        x = rng.standard_normal((8, 64)) * scale
        encoded = quantizer.quantize(x)
        restored = quantizer.dequantize(encoded).astype(np.float64)
        partition = assign_groups(x, quantizer.thresholds)
        mask = partition.middle_mask
        steps = 2**config.inlier_bits - 1
        inner_slack = float(quantizer.thresholds.inner_mag[0])
        for token in range(x.shape[0]):
            row = mask[token]
            if not row.any():
                continue
            lo = float(encoded.middle_lo[token])
            hi = float(encoded.middle_hi[token])
            span = hi - lo
            budget = (
                span / steps / 2 + 2 * inner_slack
                + 1e-3 * max(abs(lo), abs(hi)) + 1e-6
            )
            error = np.abs(restored[token, row] - x[token, row])
            assert float(error.max()) <= budget + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_roundtrip_is_idempotent(self, seed):
        """Quantizing an already-roundtripped tensor changes little:
        the second pass re-reads values that already sit on code
        points of nearly identical scales.  The bound is not tight:
        a decoded value can land on the other side of a group
        threshold and requantize under a different band's scale
        (e.g. hypothesis seed 14849 reaches 0.099 on the seed
        encoder), so allow up to a small band-step excursion."""
        quantizer, rng = build_quantizer(seed, OakenConfig())
        x = rng.standard_normal((8, 64)) * 3.0
        once = quantizer.roundtrip(x).astype(np.float64)
        twice = quantizer.roundtrip(once).astype(np.float64)
        denom = max(1e-9, float(np.abs(once).max()))
        assert float(np.abs(twice - once).max()) / denom < 0.15


class TestStorageAccounting:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        ratio=st.sampled_from(["4/90/6", "90/10", "10/90", "2/2/90/6"]),
        fused=st.booleans(),
    )
    def test_materialized_bits_match_analytic_at_observed_ratio(
        self, seed, ratio, fused
    ):
        """EncodedKV.effective_bitwidth agrees with the closed-form
        accounting once the *observed* outlier fraction is plugged
        in."""
        config = OakenConfig.from_ratio_string(
            ratio, fused_encoding=fused
        )
        quantizer, rng = build_quantizer(seed, config)
        x = rng.standard_normal((16, 64)) * 3.0
        encoded = quantizer.quantize(x)
        observed = encoded.num_outliers / x.size
        record = sparse_record_bits(config)
        scalars = 2 + 2 * config.num_sparse_bands
        analytic = (
            config.inlier_bits
            + observed * record
            + scalars * config.scale_bits / 64
        )
        assert encoded.effective_bitwidth() == pytest.approx(
            analytic, rel=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_expected_bitwidth_tracks_materialized(self, seed):
        """The configured-ratio estimate lands near the materialized
        value when the data matches the profiled distribution."""
        config = OakenConfig()
        quantizer, rng = build_quantizer(seed, config)
        x = rng.standard_normal((64, 64)) * 3.0
        encoded = quantizer.quantize(x)
        assert encoded.effective_bitwidth() == pytest.approx(
            expected_effective_bitwidth(config, 64), rel=0.15
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_fused_encoding_never_larger(self, seed):
        """Fusion strictly reduces stored bits whenever any outlier
        exists (8-bit vs 23-bit records)."""
        fused_cfg = OakenConfig(fused_encoding=True)
        naive_cfg = OakenConfig(fused_encoding=False)
        fused_q, rng = build_quantizer(seed, fused_cfg)
        naive_q, _ = build_quantizer(seed, naive_cfg)
        x = rng.standard_normal((16, 64)) * 3.0
        fused = fused_q.quantize(x)
        naive = naive_q.quantize(x)
        if fused.num_outliers:
            assert fused.nbytes() < naive.nbytes()
        else:
            assert fused.nbytes() == naive.nbytes()


class TestTradeoffMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_wider_inlier_codes_do_not_hurt(self, seed):
        """More inlier bits at the same grouping: SQNR must not drop
        (beyond FP16 rounding noise)."""
        rng = np.random.default_rng(seed)
        samples = [rng.standard_normal((48, 64)) * 3.0 for _ in range(4)]
        x = rng.standard_normal((16, 64)) * 3.0
        sqnrs = []
        for bits in (3, 4, 6):
            config = OakenConfig(inlier_bits=bits)
            quantizer = OakenQuantizer(
                config, profile_thresholds(samples, config)
            )
            sqnrs.append(
                signal_to_quantization_noise(x, quantizer.roundtrip(x))
            )
        assert sqnrs[1] >= sqnrs[0] - 0.5
        assert sqnrs[2] >= sqnrs[1] - 0.5

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_group_labels_partition_every_element(self, seed):
        config = OakenConfig.from_ratio_string("2/2/90/3/3")
        quantizer, rng = build_quantizer(seed, config)
        x = rng.standard_normal((8, 64)) * 3.0
        partition = assign_groups(x, quantizer.thresholds)
        labels = partition.labels
        valid = (labels == MIDDLE_GROUP) | (
            (labels >= 0) & (labels < config.num_sparse_bands)
        )
        assert valid.all()
        assert (
            partition.middle_mask.sum() + partition.outlier_mask.sum()
            == x.size
        )
