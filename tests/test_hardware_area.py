"""Unit tests for the Table 4 area/power model."""

import pytest

from repro.core.config import OakenConfig
from repro.hardware.area import (
    AreaModel,
    CORE_AREA_MM2,
    DEQUANT_ENGINE_AREA_MM2,
    MPU_AREA_MM2,
    QUANT_ENGINE_AREA_MM2,
    VPU_AREA_MM2,
)


class TestTable4Constants:
    def test_module_areas(self):
        report = AreaModel().core_report()
        assert report.areas_mm2["matrix_processing_unit"] == (
            pytest.approx(MPU_AREA_MM2)
        )
        assert report.areas_mm2["vector_processing_unit"] == (
            pytest.approx(VPU_AREA_MM2)
        )
        assert report.areas_mm2["quant_engine"] == pytest.approx(
            QUANT_ENGINE_AREA_MM2
        )
        assert report.areas_mm2["dequant_engine"] == pytest.approx(
            DEQUANT_ENGINE_AREA_MM2
        )

    def test_core_total(self):
        report = AreaModel().core_report()
        assert report.core_area_mm2 == pytest.approx(CORE_AREA_MM2)

    def test_paper_shares(self):
        report = AreaModel().core_report()
        assert report.share("matrix_processing_unit") == (
            pytest.approx(22.86, abs=0.05)
        )
        assert report.share("quant_engine") == pytest.approx(
            1.86, abs=0.05
        )
        assert report.share("dequant_engine") == pytest.approx(
            6.35, abs=0.05
        )

    def test_oaken_overhead_8_21_percent(self):
        report = AreaModel().core_report()
        assert report.oaken_overhead_percent == pytest.approx(
            8.21, abs=0.05
        )


class TestPower:
    def test_paper_power(self):
        model = AreaModel()
        assert model.accelerator_power_w() == pytest.approx(222.7)

    def test_saving_vs_a100(self):
        # Paper: 44.3% below the 400 W TDP.
        assert AreaModel().power_saving_vs_gpu(400.0) == pytest.approx(
            44.3, abs=0.1
        )


class TestScaling:
    def test_more_bands_more_engine_area(self):
        default = AreaModel(OakenConfig()).core_report()
        five_group = AreaModel(
            OakenConfig.from_ratio_string("2/2/90/3/3")
        ).core_report()
        assert five_group.areas_mm2["quant_engine"] > (
            default.areas_mm2["quant_engine"]
        )

    def test_narrower_codes_less_area(self):
        wide = AreaModel(OakenConfig()).core_report()
        narrow = AreaModel(OakenConfig(outlier_bits=4)).core_report()
        assert narrow.areas_mm2["dequant_engine"] < (
            wide.areas_mm2["dequant_engine"]
        )

    def test_power_tracks_area(self):
        default = AreaModel(OakenConfig())
        bigger = AreaModel(OakenConfig.from_ratio_string("2/2/90/3/3"))
        assert bigger.accelerator_power_w() > (
            default.accelerator_power_w()
        )
