"""Unit tests for group thresholds and online group assignment."""

import numpy as np
import pytest

from repro.core.config import OakenConfig
from repro.core.grouping import (
    MIDDLE_GROUP,
    GroupThresholds,
    assign_groups,
)
from repro.core.thresholds import extract_run_thresholds


def three_group_thresholds() -> GroupThresholds:
    return GroupThresholds(
        outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.5,)
    )


class TestGroupThresholds:
    def test_eq1_tuple(self):
        thr = three_group_thresholds()
        assert thr.as_eq1_tuple() == (-8.0, -0.5, 0.5, 8.0)

    def test_eq1_tuple_requires_three_groups(self):
        thr = GroupThresholds(
            outer_lo=(-8.0, -4.0), outer_hi=(8.0, 4.0), inner_mag=(0.5,)
        )
        with pytest.raises(ValueError):
            thr.as_eq1_tuple()

    def test_misordered_outer_rejected(self):
        with pytest.raises(ValueError):
            GroupThresholds(
                outer_lo=(-4.0, -8.0), outer_hi=(8.0, 4.0),
                inner_mag=(),
            )

    def test_misordered_inner_rejected(self):
        with pytest.raises(ValueError):
            GroupThresholds(
                outer_lo=(), outer_hi=(), inner_mag=(0.1, 0.5)
            )

    def test_band_shift_edges_outer(self):
        thr = three_group_thresholds()
        assert thr.band_shift_edges(0) == (-8.0, 8.0)

    def test_band_shift_edges_innermost_is_zero(self):
        thr = three_group_thresholds()
        assert thr.band_shift_edges(1) == (0.0, 0.0)

    def test_nested_inner_band_edges(self):
        thr = GroupThresholds(
            outer_lo=(-8.0,), outer_hi=(8.0,), inner_mag=(0.5, 0.2)
        )
        # Band 1 (adjacent to middle) shifts by the next shell's edge.
        assert thr.band_shift_edges(1) == (-0.2, 0.2)
        assert thr.band_shift_edges(2) == (0.0, 0.0)

    def test_middle_shift_edges(self):
        thr = three_group_thresholds()
        assert thr.middle_shift_edges() == (-0.5, 0.5)

    def test_middle_shift_without_inner_bands(self):
        thr = GroupThresholds(outer_lo=(-8.0,), outer_hi=(8.0,),
                              inner_mag=())
        assert thr.middle_shift_edges() == (0.0, 0.0)

    def test_band_index_out_of_range(self):
        with pytest.raises(IndexError):
            three_group_thresholds().band_shift_edges(5)


class TestAssignGroups:
    def test_three_way_split(self):
        thr = three_group_thresholds()
        x = np.array([[10.0, -9.0, 1.0, -1.0, 0.1, -0.3]])
        partition = assign_groups(x, thr)
        np.testing.assert_array_equal(
            partition.labels[0],
            [0, 0, MIDDLE_GROUP, MIDDLE_GROUP, 1, 1],
        )

    def test_every_element_labelled(self):
        thr = three_group_thresholds()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((50, 32)) * 4
        partition = assign_groups(x, thr)
        middle = partition.middle_mask.sum()
        sparse = partition.outlier_mask.sum()
        assert middle + sparse == x.size

    def test_boundary_values(self):
        thr = three_group_thresholds()
        # Exactly at thresholds: inner boundary inclusive, outer
        # boundary exclusive (x > hi strictly).
        x = np.array([[0.5, -0.5, 8.0, -8.0]])
        labels = assign_groups(x, thr).labels[0]
        assert labels[0] == 1 and labels[1] == 1
        assert labels[2] == MIDDLE_GROUP and labels[3] == MIDDLE_GROUP

    def test_observed_fractions_match_quantiles(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((400, 64))
        config = OakenConfig()
        thr = extract_run_thresholds(x, config)
        partition = assign_groups(x, thr)
        assert partition.outlier_fraction() == pytest.approx(0.10, abs=0.02)
        counts = partition.band_counts()
        assert counts[0] / x.size == pytest.approx(0.04, abs=0.01)
        assert counts[1] / x.size == pytest.approx(0.06, abs=0.01)

    def test_five_band_nesting(self):
        config = OakenConfig.from_ratio_string("2/2/90/3/3")
        rng = np.random.default_rng(2)
        x = rng.standard_normal((300, 64))
        thr = extract_run_thresholds(x, config)
        partition = assign_groups(x, thr)
        counts = partition.band_counts() / x.size
        np.testing.assert_allclose(
            counts, [0.02, 0.02, 0.03, 0.03], atol=0.01
        )

    def test_band_mask_matches_labels(self):
        thr = three_group_thresholds()
        x = np.array([[10.0, 0.1, 1.0]])
        partition = assign_groups(x, thr)
        assert partition.band_mask(0)[0, 0]
        assert partition.band_mask(1)[0, 1]
        assert not partition.band_mask(0)[0, 2]
