"""Datapath verification bench: structural engines vs golden model.

Not a paper table — this is the functional-verification step between
the Figure 9 engine datapaths and the algorithm.  The bench streams a
realistic KV slab through the structural engines, asserts bit-exact
agreement with the vectorized quantizer, reports per-stage occupancy,
and times the structural model (pytest-benchmark) so regressions in the
scalar path show up.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_result

from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.experiments.common import TextTable
from repro.hardware.datapath import (
    StreamingDequantEngine,
    StreamingQuantEngine,
)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2025)
    cfg = OakenConfig()
    dim = 128
    samples = [rng.standard_normal((64, dim)) * 3.0 for _ in range(8)]
    thresholds = profile_thresholds(samples, cfg)
    slab = rng.standard_normal((64, dim)) * 3.0
    return cfg, thresholds, slab


def test_datapath_verification_report(benchmark, workload, results_dir):
    cfg, thresholds, slab = workload
    golden = OakenQuantizer(cfg, thresholds)
    quant = StreamingQuantEngine(cfg, thresholds)
    dequant = StreamingDequantEngine(cfg, thresholds)

    encoded, quant_cycles = benchmark.pedantic(
        quant.quantize_matrix, args=(slab,), iterations=1, rounds=1
    )
    reference = golden.quantize(slab)
    np.testing.assert_array_equal(
        encoded.dense_codes, reference.dense_codes
    )
    restored, dequant_cycles = dequant.dequantize_matrix(encoded)
    np.testing.assert_array_equal(restored, golden.dequantize(reference))

    table = TextTable(
        ["engine", "tokens", "cycles", "ns @1GHz",
         "busiest stage", "occupancy"],
        title="Datapath verification: streaming engines vs golden model",
    )
    for name, report in (
        ("quantization", quant_cycles),
        ("dequantization", dequant_cycles),
    ):
        occupancy = report.occupancy()
        busiest = max(occupancy, key=occupancy.get)
        table.add_row(
            [
                name,
                report.tokens,
                report.total_cycles,
                f"{report.time_s(1.0) * 1e9:.0f}",
                busiest,
                f"{occupancy[busiest]:.2f}",
            ]
        )
    table.add_note(
        "bit-exact vs vectorized OakenQuantizer on a 64x128 KV slab "
        f"({encoded.num_outliers} outliers, "
        f"{encoded.effective_bitwidth():.2f} effective bits)"
    )
    save_result(results_dir, "datapath_verification", table.render())


def test_streaming_quant_benchmark(benchmark, workload):
    cfg, thresholds, slab = workload
    engine = StreamingQuantEngine(cfg, thresholds)
    token = slab[0]

    def run():
        return engine.quantize_token(token)

    result = benchmark(run)
    assert result.dense_codes.shape == (slab.shape[1],)


def test_streaming_dequant_benchmark(benchmark, workload):
    cfg, thresholds, slab = workload
    golden = OakenQuantizer(cfg, thresholds)
    encoded = golden.quantize(slab[:4])
    engine = StreamingDequantEngine(cfg, thresholds)

    def run():
        return engine.dequantize_token(encoded, 0)

    row = benchmark(run)
    assert row.shape == (slab.shape[1],)
