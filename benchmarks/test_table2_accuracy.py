"""Benchmark regenerating Table 2 (accuracy grid).

The full eight-model grid takes minutes on the numpy substrate, so the
benchmark covers a representative subset (one model per family); the
``examples/accuracy_table.py`` script runs the complete grid.
"""

from conftest import save_result

from repro.experiments.table2 import (
    format_table2,
    run_table2,
    summarize_table2,
)

BENCH_MODELS = ("llama2-7b", "opt-6.7b", "mistral-7b", "mixtral-8x7b")


def test_table2_accuracy(benchmark, results_dir):
    results = benchmark.pedantic(
        run_table2,
        kwargs={
            "models": BENCH_MODELS,
            "eval_batch": 5,
            "qa_items": 32,
        },
        iterations=1,
        rounds=1,
    )
    save_result(results_dir, "table2_accuracy", format_table2(results))

    summary = {s.method: s for s in summarize_table2(results)}
    # FP16 is the reference: zero deltas.
    assert abs(summary["fp16"].mean_perplexity_increase_percent) < 1e-9
    # Every quantizer costs some perplexity; Tender costs the most
    # (the paper's coarse-grained loser).
    quantized = [m for m in summary if m != "fp16"]
    for method in quantized:
        assert summary[method].mean_perplexity_increase_percent > 0
    assert summary["tender"].mean_perplexity_increase_percent == max(
        summary[m].mean_perplexity_increase_percent for m in quantized
    )
    # Oaken sits with the outlier-aware group, well below the coarse
    # methods, at ~4.8 effective bits (paper bottom rows).
    assert summary["oaken"].mean_perplexity_increase_percent < (
        summary["qserve"].mean_perplexity_increase_percent
    )
    assert 4.6 < summary["oaken"].mean_effective_bits < 5.1
