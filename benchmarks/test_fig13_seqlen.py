"""Benchmark regenerating Figure 13 (sequence-length sensitivity)."""

from conftest import save_result

from repro.experiments.fig13 import format_fig13, run_fig13


def test_fig13_sequence_length(benchmark, results_dir):
    cells = benchmark(run_fig13)
    save_result(results_dir, "fig13_seqlen", format_fig13(cells))
    by_key = {(c.system, c.total_length): c for c in cells}
    # Short sequences: GPU systems lead on compute.
    assert by_key[("qserve-gpu", 1024)].tokens_per_s > (
        by_key[("oaken-lpddr", 1024)].tokens_per_s
    )
    # Long sequences: only Oaken-LPDDR completes 32K.
    assert not by_key[("oaken-lpddr", 32768)].oom
    assert by_key[("qserve-gpu", 32768)].oom
    assert by_key[("tender", 32768)].oom
    assert by_key[("lpu", 32768)].oom
