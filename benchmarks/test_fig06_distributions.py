"""Benchmark regenerating Figure 6 (KV distribution observations)."""

from conftest import save_result

from repro.experiments.fig06 import format_fig06, run_fig06


def test_fig06_distributions(benchmark, results_dir):
    results = benchmark.pedantic(
        run_fig06, kwargs={"batch": 4, "length": 96},
        iterations=1, rounds=1,
    )
    save_result(results_dir, "fig06_distributions",
                format_fig06(results))
    for result in results:
        # Observation 1: ranges vary across layers.
        spans = [
            r.key_max - r.key_min for r in result.layer_ranges
        ]
        assert max(spans) > 1.2 * min(spans)
        # Observation 2: ranges are dataset-insensitive.
        assert result.dataset_spread < 1.0
        # Observation 3: top values concentrate in few channels.
        assert result.key_channel_concentration > 0.6
