"""Benchmark: MMU page layout vs naive interleaving (Section 5.2).

Not a paper figure, but a direct check of the MMU design claims: the
per-head sequential page layout keeps KV reads in long bursts near peak
bandwidth, while an interleaved layout degenerates to one transaction
per token.
"""

import numpy as np
from conftest import save_result

from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.experiments.common import TextTable
from repro.hardware.cache_layout import (
    OakenCacheLayout,
    naive_interleaved_schedule,
    read_bandwidth_efficiency,
)
from repro.hardware.memory import HBM_80GB, LPDDR_256GB
from repro.hardware.mmu import MemoryManagementUnit


def _place(tokens: int, dim: int, heads: int):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((tokens, dim))
    x[:, ::17] *= 10.0
    quantizer = OakenQuantizer.from_samples([x], OakenConfig())
    mmu = MemoryManagementUnit(capacity_bytes=1 << 26, page_bytes=4096)
    layout = OakenCacheLayout(mmu, num_heads=heads)
    layout.place(0, 0, quantizer.quantize(x))
    return layout


def test_mmu_burst_layout(benchmark, results_dir):
    layout = benchmark.pedantic(
        _place, kwargs={"tokens": 512, "dim": 256, "heads": 8},
        iterations=1, rounds=1,
    )
    schedule = layout.read_schedule(0, 0, 0)
    naive = naive_interleaved_schedule(
        tokens=512, entry_bytes=16, num_heads=8
    )
    table = TextTable(
        ["layout", "bursts", "eff_HBM", "eff_LPDDR"]
    )
    table.add_row(
        [
            "mmu page-sequential (paper)",
            len(schedule),
            read_bandwidth_efficiency(schedule, HBM_80GB),
            read_bandwidth_efficiency(schedule, LPDDR_256GB),
        ]
    )
    table.add_row(
        [
            "naive token-interleaved",
            len(naive),
            read_bandwidth_efficiency(naive, HBM_80GB),
            read_bandwidth_efficiency(naive, LPDDR_256GB),
        ]
    )
    table.add_row(
        [
            "fragmentation",
            f"{layout.mmu.fragmentation():.3f}",
            "-",
            "-",
        ]
    )
    save_result(results_dir, "mmu_layout", table.render())

    assert len(schedule) < len(naive) / 20
    assert read_bandwidth_efficiency(schedule, LPDDR_256GB) > (
        4 * read_bandwidth_efficiency(naive, LPDDR_256GB)
    )
    assert layout.mmu.fragmentation() < 0.25
