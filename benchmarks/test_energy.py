"""Benchmark: tokens/joule extension experiment.

Quantifies the paper's cost-efficiency argument (222.7 W accelerator vs
400 W GPU) as energy per generated token at the Figure 11 operating
points.
"""

from conftest import save_result

from repro.experiments.energy import format_energy, run_energy


def test_energy_efficiency(benchmark, results_dir):
    rows = benchmark(run_energy)
    save_result(results_dir, "energy", format_energy(rows))
    at_256 = {r.system: r for r in rows if r.batch == 256}
    # Oaken-LPDDR: best tokens/joule among systems that survive 256.
    alive = {
        name: row for name, row in at_256.items() if not row.oom
    }
    best = max(alive.values(), key=lambda r: r.tokens_per_joule)
    assert best.system == "oaken-lpddr"
    # And the efficiency gap over vLLM exceeds the throughput gap
    # (lower power multiplies the win).
    vllm = alive["vllm"]
    oaken = alive["oaken-lpddr"]
    assert (
        oaken.tokens_per_joule / vllm.tokens_per_joule
        > oaken.tokens_per_s / vllm.tokens_per_s
    )
