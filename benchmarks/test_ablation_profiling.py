"""Profiling-budget ablation bench (Section 6.1's ~100-run choice).

Regenerates the threshold-quality sweep and validates it end to end on
the decoder substrate: perplexity with 1-run, 10-run, and 100-run
thresholds must be indistinguishable by ~10 runs — the basis for the
paper's claim that offline profiling is a negligible one-time cost.
"""

from __future__ import annotations

import pytest
from conftest import save_result

from repro.baselines.oaken_adapter import OakenKVQuantizer
from repro.core.config import OakenConfig
from repro.data.corpus import build_corpus, calibration_corpus
from repro.experiments.ablation_profiling import (
    format_profiling_ablation,
    run_profiling_ablation,
)
from repro.experiments.common import TextTable
from repro.models.config import get_model
from repro.models.transformer import DecoderModel, KVTransformBundle


def test_profiling_budget_sweep(benchmark, results_dir):
    points = benchmark(run_profiling_ablation)
    save_result(
        results_dir, "ablation_profiling",
        format_profiling_ablation(points),
    )
    by_budget = {p.num_runs: p for p in points}
    assert by_budget[100].threshold_deviation < (
        by_budget[1].threshold_deviation
    )
    assert by_budget[200].sqnr_db == pytest.approx(
        by_budget[100].sqnr_db, abs=0.25
    )


def test_profiling_budget_perplexity(benchmark, results_dir):
    decoder = DecoderModel(get_model("llama2-7b"))
    eval_tokens = build_corpus(decoder, "wikitext2", batch=4, length=96)
    calibration = calibration_corpus(decoder, batch=12, length=96)
    layer_kv = decoder.collect_layer_kv(calibration)
    config = OakenConfig()

    def bundle_with_budget(budget: int) -> KVTransformBundle:
        """Fit per-layer quantizers on only `budget` calibration rows.

        Each calibration "run" is one batch slice of the collected
        layer KV, mirroring the paper's per-inference observations.
        """
        key_fns, value_fns = [], []
        for keys, values in layer_kv:
            rows = max(8, (keys.shape[0] * budget) // 100)
            kq = OakenKVQuantizer("key", config).fit([keys[:rows]])
            vq = OakenKVQuantizer("value", config).fit([values[:rows]])
            key_fns.append(kq.roundtrip)
            value_fns.append(vq.roundtrip)
        return KVTransformBundle(key_fns=key_fns, value_fns=value_fns)

    budgets = (1, 10, 100)
    bundles = {b: bundle_with_budget(b) for b in budgets}
    perplexities = {}
    for budget in budgets:
        if budget == 100:
            perplexities[budget] = benchmark.pedantic(
                decoder.perplexity, args=(eval_tokens,),
                kwargs={"kv_transforms": bundles[budget]},
                iterations=1, rounds=1,
            )
        else:
            perplexities[budget] = decoder.perplexity(
                eval_tokens, kv_transforms=bundles[budget]
            )

    table = TextTable(
        ["budget (% of calibration)", "perplexity"],
        title="Decoder perplexity vs offline profiling budget",
    )
    for budget in budgets:
        table.add_row([budget, perplexities[budget]])
    save_result(
        results_dir, "ablation_profiling_perplexity", table.render()
    )
    # By a 10% calibration slice the perplexity is already within 2%
    # of the full budget (Observation 2's input-insensitivity).
    assert perplexities[10] == pytest.approx(
        perplexities[100], rel=0.02
    )
    assert perplexities[1] < perplexities[100] * 1.10
