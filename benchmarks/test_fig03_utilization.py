"""Benchmark regenerating Figure 3 (utilization characterization)."""

from conftest import save_result

from repro.experiments.common import TextTable
from repro.experiments.fig03 import (
    format_fig03,
    run_fig03,
    run_fig03_phases,
)


def test_fig03_op_utilization(benchmark, results_dir):
    rows = benchmark(run_fig03)
    phases = run_fig03_phases()
    phase_table = TextTable(["phase", "batch", "utilization_%"])
    for p in phases:
        phase_table.add_row([p.phase, p.batch, p.utilization_percent])
    save_result(
        results_dir,
        "fig03_utilization",
        format_fig03(rows) + "\n\nphases (a/b)\n" + phase_table.render(),
    )
    by_op = {r.op: r for r in rows}
    # The paper's point: underutilization comes from MHA.
    assert by_op["mha"].utilization_percent < 1.0
    assert by_op["ffn"].utilization_percent > 10.0
