"""Hot-path perf benchmark: fused datapath vs. the frozen seed kernels.

Not collected by the default ``test_*`` glob (perf numbers are noisy on
shared CI boxes); run it explicitly::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q \
        --bench-out BENCH_quant.json

or, without pytest, ``PYTHONPATH=src python -m repro.bench`` for the
full-size run.  The assertions here use reduced sizes and conservative
floors — they catch order-of-magnitude regressions, not percent-level
drift; the JSON trajectory in ``BENCH_quant.json`` tracks the latter.
"""

from __future__ import annotations

import time

from repro.bench.hotpath import run_benchmarks


def test_hotpath_speedups(bench_out):
    """Reduced-size harness run: floors on every tracked speedup."""
    start = time.perf_counter()
    report = run_benchmarks(quick=True, out_path=bench_out)
    elapsed = time.perf_counter() - start

    bench = report["benchmarks"]
    enc = bench["encode_roundtrip"]
    gen = bench["generation"]
    # Full-size targets are >=5x (encode roundtrip) and >=10x
    # (512-step generation); at smoke sizes fixed overheads bite, so
    # assert well below them.
    assert enc["speedup_roundtrip"] > 2.0
    assert enc["speedup_roundtrip_f32"] > 2.0
    assert gen["speedup"] > 3.0
    assert gen["tokens_identical"]
    assert bench["bitpack"]["width4"]["speedup_pack"] > 1.0
    # Multi-sequence pool reads: one fused decode across the batch
    # must beat per-sequence looped reads (target >=2x at batch >= 8;
    # asserted conservatively at 1.5x for noisy CI boxes).
    pool = bench["pool_read"]
    assert pool["batch"] >= 8
    assert pool["reads_identical"]
    assert pool["speedup_batched"] > 1.5
    # Batched pool appends: one [B, D] fused encode per tensor must
    # beat B tiny [1, D] encodes (target >=2x at batch 16; asserted
    # conservatively for noisy CI boxes).
    appends = bench["pool_append"]
    assert appends["batch"] >= 8
    assert appends["caches_identical"]
    assert appends["speedup_batched"] > 1.5
    # Adapter write path: one merged row-local roundtrip per tensor
    # must beat per-sequence roundtrips (target >=2x at batch 16;
    # asserted conservatively at smoke batch sizes).
    assert appends["adapter_caches_identical"]
    assert appends["speedup_adapter_batched"] > 1.0
    # Amortized sliding-window reads must beat the full O(T) per-step
    # re-quantization even at smoke sizes.
    baseline = bench["baseline_read"]
    assert baseline["reads_identical"]
    assert baseline["speedup_amortized"] > 1.0
    # The vectorized datapath twins must stay bit- and cycle-identical
    # to the scalar golden model while clearing 10x (full-size target
    # is far higher; the scalar tier is a python loop).
    datapath = bench["datapath"]
    assert datapath["bits_identical"]
    assert datapath["cycles_identical"]
    assert datapath["speedup_vectorized"] > 10.0
    # Engine-backed serving replay: modeled cycles accumulated end to
    # end (deterministic — the cycle model prices the hardware).
    replay = bench["replay"]
    assert replay["engine_cycles"] > 0
    assert replay["tokens_per_mcycle"] > 0
    # Vectorized analytic sweep: element-identical to the scalar loop
    # (bench_analytic raises on any divergence) and clearly faster
    # even at the quick grid size.
    analytic = bench["analytic"]
    assert analytic["runs_identical"] == 1.0
    assert analytic["speedup_vectorized"] > 2.0
    assert elapsed < 60.0
