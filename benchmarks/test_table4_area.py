"""Benchmark regenerating Table 4 (area/power) plus its ablation."""

from conftest import save_result

from repro.core.config import OakenConfig
from repro.experiments.table4 import format_table4, run_table4


def test_table4_area(benchmark, results_dir):
    configs = (
        OakenConfig(),
        OakenConfig.from_ratio_string("2/2/90/3/3"),
        OakenConfig(outlier_bits=4),
    )
    labels = ("4/90/6 (paper default)", "2/2/90/3/3", "4-bit outliers")
    results = benchmark.pedantic(
        run_table4, kwargs={"configs": configs, "labels": labels},
        iterations=1, rounds=1,
    )
    save_result(results_dir, "table4_area", format_table4(results))

    default = results[0]
    assert abs(default.oaken_overhead_percent - 8.21) < 0.05
    assert abs(default.accelerator_power_w - 222.7) < 0.1
    assert abs(default.power_saving_vs_a100_percent - 44.3) < 0.1
    # More groups cost more engine area; narrower codes cost less.
    assert results[1].oaken_overhead_percent > (
        default.oaken_overhead_percent
    )
    assert results[2].oaken_overhead_percent < (
        default.oaken_overhead_percent
    )
