"""Overlap-scheduling bench (Section 5.3 / Figure 12(b)'s mechanism).

Schedules one generation iteration at several batch sizes with (a)
Oaken's hardware engine rates and (b) GPU-software-like rates, and
reports how much (de)quantization time lands on the critical path —
the measured counterpart of the perf model's overlap heuristic and of
Figure 12(b)'s observation that Oaken's engines cost single-digit
percent while the GPU port pays heavily.
"""

from __future__ import annotations

import pytest
from conftest import save_result

from repro.experiments.common import TextTable
from repro.hardware.overlap import OverlapConfig, simulate_overlap

MB = 1024.0 * 1024.0
KB = 1024.0

#: Llama2-7B-ish per-request iteration at 1K context.
KV_READ = 158 * MB
NEW_KV = 512 * KB
ATTN_S = 30e-6

#: GPU-software-like rates: (de)quantization as warp-divergent kernels
#: far below the DMA stream rate.
GPU_LIKE = OverlapConfig(dequant_gbps=8.0, quant_gbps=1.0)


def test_overlap_schedule_table(benchmark, results_dir):
    def sweep():
        rows = []
        for batch in (1, 4, 16, 64):
            hw = simulate_overlap(batch, KV_READ, NEW_KV, ATTN_S)
            sw = simulate_overlap(
                batch, KV_READ, NEW_KV, ATTN_S, config=GPU_LIKE
            )
            rows.append((batch, hw, sw))
        return rows

    rows = benchmark(sweep)
    table = TextTable(
        ["batch", "engines", "makespan_ms", "exposed_ms", "exposed_%",
         "hidden"],
        title="Engine exposure under Section 5.3 overlap scheduling",
    )
    for batch, hw, sw in rows:
        for label, report in (("oaken-hw", hw), ("gpu-sw", sw)):
            table.add_row(
                [
                    batch,
                    label,
                    f"{report.makespan_s * 1e3:.2f}",
                    f"{report.exposed_s * 1e3:.3f}",
                    f"{100 * report.exposed_s / report.makespan_s:.1f}",
                    f"{report.hidden_fraction:.2f}",
                ]
            )
    table.add_note(
        "hardware engines ride the shared DMA window (exposure "
        "single-digit % past small batches); software-rate engines "
        "stay on the critical path at every batch"
    )
    save_result(results_dir, "overlap_schedule", table.render())

    by_batch = {batch: (hw, sw) for batch, hw, sw in rows}
    hw64, sw64 = by_batch[64]
    assert hw64.exposed_s / hw64.makespan_s < 0.05
    assert sw64.exposed_s / sw64.makespan_s > 0.25
    assert hw64.hidden_fraction > sw64.hidden_fraction
