"""Benchmark regenerating Figure 4 (HBM-NPU vs LPDDR-NPU)."""

from conftest import save_result

from repro.experiments.fig04 import format_fig04, run_fig04


def test_fig04_memory_tradeoff(benchmark, results_dir):
    rows = benchmark(run_fig04)
    save_result(results_dir, "fig04_memory_tradeoff", format_fig04(rows))
    opt = [r for r in rows if r.model == "opt-30b"]
    llama = [r for r in rows if r.model == "llama2-13b"]
    # OPT-30B overflows the HBM NPU at larger batches; LPDDR scales.
    assert any(r.hbm_oom for r in opt)
    assert not any(r.lpddr_oom for r in opt)
    # Where HBM fits, its bandwidth wins.
    assert all(
        r.hbm_tokens_per_s > r.lpddr_tokens_per_s
        for r in llama if not r.hbm_oom
    )
