"""Benchmark regenerating Figure 5 (memory breakdown + quant compare)."""

from conftest import save_result

from repro.experiments.fig05 import (
    format_fig05,
    run_fig05_memory,
    run_fig05_quant,
)


def test_fig05_memory_and_quant(benchmark, results_dir):
    quant_rows = benchmark(run_fig05_quant)
    memory_rows = run_fig05_memory()
    save_result(
        results_dir, "fig05_quant_comparison",
        format_fig05(memory_rows, quant_rows),
    )
    # (a) the KV cache grows to dominate memory (paper: 94% at 256).
    assert memory_rows[-1].kv_share_percent > 85.0
    # (b) KV quantization out-scales weight-only quantization.
    final = {r.batch: r for r in quant_rows}[128]
    assert final.kv_quant_tokens_per_s > (
        1.5 * final.weight_quant_tokens_per_s
    )
