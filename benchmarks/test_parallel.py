"""Pipeline-parallelism ablation bench (Section 6.1's 2-GPU baselines).

Validates the device catalog's monolithic ``a100x2`` approximation
against the explicit 2-stage pipeline, and sweeps the microbatch count
to expose the GPipe bubble vs weight-restreaming trade-off — the
utilization cost of scaling out that the paper's introduction argues
makes capacity-starved systems expensive.
"""

from __future__ import annotations

import pytest
from conftest import save_result

from repro.experiments.common import TextTable
from repro.hardware.overheads import get_system
from repro.hardware.parallel import (
    PipelinePlan,
    pipeline_generation_iteration,
    pipeline_max_batch,
)
from repro.hardware.perf import generation_iteration, max_supported_batch
from repro.models.config import get_model

ARCH = get_model("llama2-70b").arch


def test_pipeline_parallel_table(benchmark, results_dir):
    system = get_system("vllm")

    def sweep():
        rows = []
        for microbatches in (1, 2, 4, 8):
            plan = PipelinePlan.balanced(
                ARCH, 2, microbatches=microbatches
            )
            pipe = pipeline_generation_iteration(
                system, ARCH, batch=32, context=1024, plan=plan
            )
            rows.append((microbatches, pipe))
        return rows

    rows = benchmark(sweep)

    mono = generation_iteration(system, ARCH, 32, 1024)
    table = TextTable(
        ["config", "iter_ms", "bubble", "tok/s", "max_batch@2K"],
        title=(
            "Llama2-70B on 2xA100 (vLLM): explicit pipeline vs "
            "monolithic approximation"
        ),
    )
    table.add_row(
        [
            "monolithic a100x2",
            f"{mono.total_s * 1e3:.1f}",
            "-",
            f"{32 / mono.total_s:.0f}",
            max_supported_batch(system, ARCH, 2048),
        ]
    )
    for microbatches, pipe in rows:
        plan = pipe.plan
        table.add_row(
            [
                f"2-stage, M={microbatches}",
                f"{pipe.iteration_s * 1e3:.1f}",
                f"{pipe.bubble_fraction:.2f}",
                f"{pipe.throughput_tokens_per_s:.0f}",
                pipeline_max_batch(system, ARCH, 2048, plan),
            ]
        )
    table.add_note(
        "microbatching trades GPipe bubble against weight restreaming; "
        "capacity matches the monolithic approximation at any M"
    )
    save_result(results_dir, "ablation_pipeline_parallel", table.render())

    # Shape assertions: the monolithic approximation is optimistic but
    # in the same regime as the best explicit schedule; capacity agrees.
    best = min(pipe.iteration_s for _, pipe in rows)
    assert mono.total_s <= best
    assert best < 2.5 * mono.total_s
    plan = PipelinePlan.balanced(ARCH, 2)
    assert pipeline_max_batch(system, ARCH, 2048, plan) == pytest.approx(
        max_supported_batch(system, ARCH, 2048), abs=2
    )
