"""Benchmark regenerating Figure 1 (bandwidth/capacity trade-off)."""

from conftest import save_result

from repro.experiments.fig01 import format_fig01, run_fig01


def test_fig01_tradeoff(benchmark, results_dir):
    points = benchmark(run_fig01)
    save_result(results_dir, "fig01_tradeoff", format_fig01(points))
    by_system = {p.system: p for p in points}
    # Oaken-LPDDR occupies the high-capacity, high-effective-bandwidth
    # corner the paper's scatter highlights.
    assert by_system["oaken-lpddr"].effective_capacity_gb == max(
        p.effective_capacity_gb for p in points
    )
    assert by_system["oaken-lpddr"].throughput_tokens_per_s > (
        by_system["vllm"].throughput_tokens_per_s
    )
