"""Benchmark regenerating Figure 12 (trade-off + latency breakdown)."""

from conftest import save_result

from repro.experiments.fig12 import (
    format_fig12,
    run_fig12a,
    run_fig12b,
)


def test_fig12a_accuracy_tradeoff(benchmark, results_dir):
    tradeoff = benchmark.pedantic(
        run_fig12a, kwargs={"eval_batch": 4}, iterations=1, rounds=1
    )
    breakdown = run_fig12b()
    save_result(
        results_dir, "fig12_tradeoff", format_fig12(tradeoff, breakdown)
    )
    by_ratio = {
        (r.outer_percent, r.middle_percent, r.inner_percent): r
        for r in tradeoff
    }
    # The paper default (4/90/6) sits near 4.8 effective bits.
    default = by_ratio[(4, 90, 6)]
    assert 4.7 < default.effective_bits < 5.0
    # More outlier budget (higher bits) never hurts much: the largest
    # budget must be at least as accurate as the smallest.
    smallest = min(tradeoff, key=lambda r: r.effective_bits)
    assert default.perplexity <= smallest.perplexity * 1.02


def test_fig12b_latency_breakdown(benchmark, results_dir):
    rows = benchmark(run_fig12b)
    by_key = {(r.system, r.batch): r for r in rows}
    oaken = by_key[("oaken-lpddr", 64)]
    # Paper: quantization 1.29% / dequantization 3.23% of latency at
    # batch 64, both overlapped; Oaken-GPU pays a large exposed cost.
    assert oaken.quant_share_percent < 3.0
    assert oaken.dequant_share_percent < 8.0
    assert by_key[("oaken-gpu", 64)].dequant_share_percent > 15.0
    # Oaken's attention runs much faster than LPU's FP16 attention.
    assert oaken.attn_s < 0.5 * by_key[("lpu", 64)].attn_s
