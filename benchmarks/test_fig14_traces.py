"""Benchmark regenerating Figure 14 (real-world trace throughput)."""

from conftest import save_result

from repro.experiments.fig14 import format_fig14, run_fig14


def test_fig14_trace_throughput(benchmark, results_dir):
    cells = benchmark.pedantic(
        run_fig14, kwargs={"num_requests": 192}, iterations=1, rounds=1
    )
    save_result(results_dir, "fig14_traces", format_fig14(cells))
    by_key = {
        (c.trace, c.model, c.system, c.batch): c for c in cells
    }

    # KV quantization gain over the FP16 NPU grows with batch and is
    # present on both traces (paper Section 6.2).
    for trace in ("conversation", "burstgpt"):
        oaken = by_key[(trace, "llama2-13b", "oaken-lpddr", 128)]
        lpu = by_key[(trace, "llama2-13b", "lpu", 128)]
        assert oaken.tokens_per_s > 1.15 * lpu.tokens_per_s

    # Tender's systolic padding hurts it on ragged trace batches.
    tender = by_key[("conversation", "llama2-13b", "tender", 64)]
    vllm = by_key[("conversation", "llama2-13b", "vllm", 64)]
    assert tender.tokens_per_s < vllm.tokens_per_s

    # Mixtral rows exclude Oaken-HBM and QServe, as in the paper.
    mixtral_systems = {
        c.system for c in cells if c.model == "mixtral-8x7b"
    }
    assert "oaken-hbm" not in mixtral_systems
    assert "qserve-gpu" not in mixtral_systems
