"""Interconnect ablation bench: why the MMU stripes pages (Section 5.1/5.2).

Not a paper figure per se — this bench quantifies the two design
claims behind the paper's MMU and interconnect: page-striped KV
placement reaches aggregate bandwidth at any batch size, and
burst-sized transfers amortize per-transaction overhead that scattered
(un-paged) reads pay in full.
"""

from __future__ import annotations

import pytest
from conftest import save_result

from repro.experiments.common import TextTable
from repro.hardware.interconnect import generation_fabric_report
from repro.hardware.memory import LPDDR_256GB

MB = 1024.0 * 1024.0

#: One Llama2-13B-scale generation iteration: ~26 GB of weights is
#: unrealistic per iteration at bench speed, so the bench scales the
#: traffic down 64x — ratios, not absolutes, carry the claim.
WEIGHT_BYTES = 400 * MB
KV_BYTES_PER_REQUEST = 25 * MB


def test_interconnect_placement_table(benchmark, results_dir):
    table = TextTable(
        [
            "batch", "placement", "burst", "utilization", "GB/s",
            "fairness",
        ],
        title=(
            "Effective bandwidth through the memory fabric "
            "(LPDDR, 8 controllers)"
        ),
    )
    for batch in (1, 4, 16, 64):
        for striped, burst, label in (
            (True, None, "striped/paged"),
            (False, None, "skewed"),
            (True, 64.0, "striped/scattered-64B"),
        ):
            report = generation_fabric_report(
                LPDDR_256GB,
                batch=batch,
                kv_bytes_per_request=KV_BYTES_PER_REQUEST,
                weight_bytes=WEIGHT_BYTES,
                striped=striped,
                burst_bytes=burst,
            )
            table.add_row(
                [
                    batch,
                    label,
                    "full" if burst is None else f"{int(burst)}B",
                    f"{report.bandwidth_utilization:.2f}",
                    f"{report.effective_bandwidth_gbps:.0f}",
                    f"{report.fairness_spread():.2f}",
                ]
            )
    table.add_note(
        "striped/paged placement holds ~peak at every batch; skewed "
        "placement starves below one core per controller; 64B "
        "scattered reads halve efficiency (64B overhead/transaction)"
    )
    save_result(results_dir, "interconnect_placement", table.render())

    # The claim itself, asserted on the benchmarked configuration.
    def contrast():
        striped = generation_fabric_report(
            LPDDR_256GB, batch=1,
            kv_bytes_per_request=KV_BYTES_PER_REQUEST,
            weight_bytes=0.0, striped=True,
        )
        skewed = generation_fabric_report(
            LPDDR_256GB, batch=1,
            kv_bytes_per_request=KV_BYTES_PER_REQUEST,
            weight_bytes=0.0, striped=False,
        )
        return striped, skewed

    striped_small, skewed_small = benchmark(contrast)
    assert striped_small.effective_bandwidth_gbps > (
        4 * skewed_small.effective_bandwidth_gbps
    )


def test_fabric_drain_benchmark(benchmark):
    def run():
        return generation_fabric_report(
            LPDDR_256GB, batch=16,
            kv_bytes_per_request=KV_BYTES_PER_REQUEST,
            weight_bytes=WEIGHT_BYTES,
        )

    report = benchmark(run)
    assert report.payload_bytes > 0
