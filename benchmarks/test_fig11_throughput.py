"""Benchmark regenerating Figure 11 (the main throughput grid)."""

from conftest import save_result

from repro.experiments.fig11 import (
    format_fig11,
    run_fig11,
    speedup_at_batch,
)


def test_fig11_throughput_grid(benchmark, results_dir):
    cells = benchmark(run_fig11)
    save_result(results_dir, "fig11_throughput", format_fig11(cells))

    vllm_speedups = speedup_at_batch(cells, "oaken-lpddr", "vllm", 256)
    qserve_speedups = speedup_at_batch(
        cells, "oaken-lpddr", "qserve-gpu", 256
    )
    # Paper headline: 1.79x over vLLM, 1.58x over QServe at batch 256
    # (averages).  The reproduction must show Oaken-LPDDR clearly ahead
    # of vLLM and ahead of QServe on the models that reach 256.  The
    # one paper-documented exception is Mixtral, whose GQA+MoE shape
    # mutes KV-quantization gains ("little to no performance gain").
    assert vllm_speedups and qserve_speedups
    dense = {
        m: s for m, s in vllm_speedups.items() if m != "mixtral-8x7b"
    }
    mean_vllm = sum(dense.values()) / len(dense)
    assert mean_vllm > 1.4
    assert all(s >= 1.0 for s in qserve_speedups.values())
    if "mixtral-8x7b" in vllm_speedups:
        assert vllm_speedups["mixtral-8x7b"] > 0.85

    # HBM platforms cannot reach batch 256 on non-GQA models.
    oom_at_256 = {
        (c.model, c.system)
        for c in cells if c.batch == 256 and c.oom
    }
    assert ("llama2-7b", "oaken-hbm") in oom_at_256
    assert ("llama2-7b", "tender") in oom_at_256
