"""Ablation benches for the design choices DESIGN.md calls out.

* group-shift on/off,
* fused dense-and-sparse encoding vs naive 23-bit records,
* offline thresholds vs online topK (accuracy and cost),
* per-layer vs global thresholds (Observation 1's justification).
"""

import numpy as np
import pytest
from conftest import save_result

from repro.baselines.oaken_adapter import OakenKVQuantizer
from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer
from repro.core.thresholds import profile_thresholds
from repro.data.corpus import build_corpus, calibration_corpus
from repro.experiments.common import TextTable
from repro.models.config import get_model
from repro.models.transformer import DecoderModel, KVTransformBundle


@pytest.fixture(scope="module")
def decoder():
    return DecoderModel(get_model("llama2-7b"))


@pytest.fixture(scope="module")
def eval_tokens(decoder):
    return build_corpus(decoder, "wikitext2", batch=4, length=96)


@pytest.fixture(scope="module")
def layer_kv(decoder):
    calibration = calibration_corpus(decoder, batch=4, length=96)
    return decoder.collect_layer_kv(calibration)


def _bundle_for(config, layer_kv):
    key_fns, value_fns = [], []
    for keys, values in layer_kv:
        kq = OakenKVQuantizer("key", config).fit([keys])
        vq = OakenKVQuantizer("value", config).fit([values])
        key_fns.append(kq.roundtrip)
        value_fns.append(vq.roundtrip)
    return KVTransformBundle(key_fns=key_fns, value_fns=value_fns)


def test_ablation_groupshift(benchmark, results_dir, decoder,
                             eval_tokens, layer_kv):
    """Group-shift: the outlier-compression enabler (Section 4.4)."""
    shifted = _bundle_for(OakenConfig(group_shift=True), layer_kv)
    plain = _bundle_for(OakenConfig(group_shift=False), layer_kv)
    ppl_shifted = benchmark.pedantic(
        decoder.perplexity, args=(eval_tokens,),
        kwargs={"kv_transforms": shifted}, iterations=1, rounds=1,
    )
    ppl_plain = decoder.perplexity(eval_tokens, kv_transforms=plain)
    table = TextTable(["variant", "perplexity"])
    table.add_row(["group-shift on (paper)", ppl_shifted])
    table.add_row(["group-shift off", ppl_plain])
    save_result(results_dir, "ablation_groupshift", table.render())
    # Both must stay close to each other at the same storage cost; the
    # shift's payoff is enabling low-bit outliers at all (vs FP16).
    assert ppl_shifted < ppl_plain * 1.10


def test_ablation_encoding(benchmark, results_dir, decoder,
                           eval_tokens, layer_kv):
    """Fused 8-bit records vs prior work's 23-bit records."""
    fused_cfg = OakenConfig(fused_encoding=True)
    naive_cfg = OakenConfig(fused_encoding=False)
    fused = _bundle_for(fused_cfg, layer_kv)
    naive = _bundle_for(naive_cfg, layer_kv)
    ppl_fused = benchmark.pedantic(
        decoder.perplexity, args=(eval_tokens,),
        kwargs={"kv_transforms": fused}, iterations=1, rounds=1,
    )
    ppl_naive = decoder.perplexity(eval_tokens, kv_transforms=naive)

    keys = layer_kv[0][0]
    bits_fused = (
        OakenKVQuantizer("key", fused_cfg).fit([keys])
        .effective_bitwidth(keys)
    )
    bits_naive = (
        OakenKVQuantizer("key", naive_cfg).fit([keys])
        .effective_bitwidth(keys)
    )
    table = TextTable(["variant", "perplexity", "eff_bits"])
    table.add_row(["fused 8-bit records (paper)", ppl_fused, bits_fused])
    table.add_row(["naive 23-bit FP16 records", ppl_naive, bits_naive])
    save_result(results_dir, "ablation_encoding", table.render())
    # Fused encoding saves > 1 bit/element for a tiny accuracy cost.
    assert bits_fused < bits_naive - 1.0
    assert ppl_fused < ppl_naive * 1.10


def test_ablation_online_topk(benchmark, results_dir, decoder,
                              eval_tokens, layer_kv):
    """Offline thresholds track online per-matrix topK accuracy.

    The whole point of the hybrid scheme: thresholds profiled offline
    lose almost nothing vs recomputing exact topK boundaries online,
    while removing the O(n log n) sort from the serving path.
    """
    config = OakenConfig()
    offline = _bundle_for(config, layer_kv)

    def online_roundtrip_factory():
        key_fns, value_fns = [], []
        for _ in layer_kv:
            def roundtrip(x):
                # Online: refit thresholds on the tensor being
                # quantized (exact topK boundaries every call).
                thresholds = profile_thresholds([x], config)
                return OakenQuantizer(config, thresholds).roundtrip(x)

            key_fns.append(roundtrip)
            value_fns.append(roundtrip)
        return KVTransformBundle(key_fns=key_fns, value_fns=value_fns)

    online = online_roundtrip_factory()
    ppl_offline = benchmark.pedantic(
        decoder.perplexity, args=(eval_tokens,),
        kwargs={"kv_transforms": offline}, iterations=1, rounds=1,
    )
    ppl_online = decoder.perplexity(eval_tokens, kv_transforms=online)
    table = TextTable(["variant", "perplexity"])
    table.add_row(["offline thresholds (paper)", ppl_offline])
    table.add_row(["online exact topK", ppl_online])
    save_result(results_dir, "ablation_online_topk", table.render())
    # Offline profiling loses < 5% perplexity vs exact online topK.
    assert ppl_offline < ppl_online * 1.05


def test_ablation_global_vs_perlayer_thresholds(
    benchmark, results_dir, decoder, eval_tokens, layer_kv
):
    """Observation 1: per-layer per-tensor thresholds beat one global set.

    The global variant pools every layer's keys AND values into a
    single threshold fit — exactly what Observation 1 says not to do
    (key and value magnitudes differ by an order of magnitude, and
    layers differ among themselves).
    """
    config = OakenConfig()
    per_layer = _bundle_for(config, layer_kv)

    pooled = np.concatenate(
        [
            np.concatenate([keys.ravel(), values.ravel()])
            for keys, values in layer_kv
        ]
    )
    shared = OakenQuantizer(
        config, profile_thresholds([pooled], config)
    )
    global_bundle = KVTransformBundle(
        key_fns=[shared.roundtrip] * len(layer_kv),
        value_fns=[shared.roundtrip] * len(layer_kv),
    )
    ppl_per_layer = benchmark.pedantic(
        decoder.perplexity, args=(eval_tokens,),
        kwargs={"kv_transforms": per_layer}, iterations=1, rounds=1,
    )
    ppl_global = decoder.perplexity(
        eval_tokens, kv_transforms=global_bundle
    )
    table = TextTable(["variant", "perplexity"])
    table.add_row(["per-layer per-tensor thresholds (paper)",
                   ppl_per_layer])
    table.add_row(["single pooled thresholds", ppl_global])
    save_result(
        results_dir, "ablation_global_thresholds", table.render()
    )
    assert ppl_per_layer <= ppl_global * 1.02
