"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper table/figure: it runs the
experiment, saves the rendered text table under ``results/`` (so the
rows survive pytest's output capture), and times a representative
kernel with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser) -> None:
    """Register ``--bench-out`` for machine-readable perf reports.

    ``pytest benchmarks/bench_hotpath.py --bench-out BENCH_quant.json``
    makes the hot-path benchmark write its JSON report there in
    addition to asserting the speedup floors.
    """
    parser.addoption(
        "--bench-out",
        action="store",
        default=None,
        help="path to write the hot-path benchmark JSON report",
    )


@pytest.fixture
def bench_out(request):
    """The ``--bench-out`` path, or None when not requested."""
    return request.config.getoption("--bench-out")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated figure/table text files."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write one experiment's rendered table to results/<name>.txt."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] saved to {path}\n{text}")
