"""Benchmark regenerating Table 3 (group-count ablation)."""

from conftest import save_result

from repro.experiments.table3 import format_table3, run_table3


def test_table3_group_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(
        run_table3, kwargs={"eval_batch": 4}, iterations=1, rounds=1
    )
    save_result(results_dir, "table3_groups", format_table3(rows))
    by_key = {(r.ratio_spec, r.outlier_bits): r for r in rows}

    default = by_key[("4/90/6", 5)]
    # The paper's sweet spot: ~4.8 effective bits.
    assert 4.7 < default.effective_bits < 5.0
    # Two-group configs keep the same storage cost.
    assert abs(by_key[("90/10", 5)].effective_bits
               - default.effective_bits) < 0.05
    # 4..5-group configs at 5-bit outliers pad records to 16 bits
    # (~5.6 effective), while 4-bit outliers restore ~4.8.
    assert by_key[("4/90/3/3", 5)].effective_bits > 5.4
    assert by_key[("4/90/3/3", 4)].effective_bits < 5.0
    # Dropping the outer group (inner-only "90/10") hurts accuracy
    # badly: large-magnitude outliers skew the middle-group scale.
    assert by_key[("90/10", 5)].perplexity > (
        1.1 * default.perplexity
    )
    # Extra groups buy little accuracy relative to their storage cost.
    assert by_key[("2/2/90/3/3", 5)].perplexity > (
        0.95 * default.perplexity
    )
