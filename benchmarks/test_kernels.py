"""Micro-benchmarks of the quantization kernels themselves.

These time the software implementation of Oaken's online path (the
hardware does this in streaming engines; the numbers here document the
numpy substrate's own throughput and catch performance regressions).
"""

import numpy as np
import pytest

from repro.baselines.registry import create_method
from repro.core.config import OakenConfig
from repro.core.quantizer import OakenQuantizer

from conftest import save_result
from repro.experiments.common import TextTable


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((512, 512))
    x[:, ::37] *= 10.0
    return x


@pytest.fixture(scope="module")
def quantizer(matrix):
    return OakenQuantizer.from_samples([matrix], OakenConfig())


def test_kernel_oaken_quantize(benchmark, matrix, quantizer):
    encoded = benchmark(quantizer.quantize, matrix)
    assert encoded.num_tokens == matrix.shape[0]


def test_kernel_oaken_dequantize(benchmark, matrix, quantizer):
    encoded = quantizer.quantize(matrix)
    restored = benchmark(quantizer.dequantize, encoded)
    assert restored.shape == matrix.shape


def test_kernel_oaken_roundtrip(benchmark, matrix, quantizer):
    restored = benchmark(quantizer.roundtrip, matrix)
    assert np.isfinite(restored).all()


@pytest.mark.parametrize(
    "method", ["kvquant", "kivi", "qserve", "atom", "tender"]
)
def test_kernel_baseline_roundtrip(benchmark, matrix, method):
    fitted = create_method(method, "key").fit([matrix])
    restored = benchmark(fitted.roundtrip, matrix)
    assert restored.shape == matrix.shape


def test_kernel_throughput_summary(results_dir, matrix, quantizer):
    """Record elements/second of each method's software round-trip."""
    import time

    table = TextTable(["method", "Melem/s"])
    methods = ["oaken", "kvquant", "kivi", "qserve", "atom", "tender"]
    for name in methods:
        fitted = create_method(name, "key").fit([matrix])
        start = time.perf_counter()
        rounds = 3
        for _ in range(rounds):
            fitted.roundtrip(matrix)
        elapsed = time.perf_counter() - start
        rate = rounds * matrix.size / elapsed / 1e6
        table.add_row([name, rate])
    save_result(results_dir, "kernel_throughput", table.render())
