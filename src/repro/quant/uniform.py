"""Uniform (affine, min-max) quantization primitives.

The paper's Eq. 2 defines the scaling factor

    sigma = (2^m - 1) / (Max - Min)

and Eq. 3 the quantization function

    Q(x) = round((x - Min) * sigma)

where ``m`` is the target bitwidth.  Dequantization inverts the mapping:

    D(q) = q / sigma + Min

Oaken deliberately uses this *simple* uniform scheme ("calculated using
only simple statistics to minimize hardware complexity") and recovers
accuracy through grouping and group-shift instead of a more elaborate
per-value codec.  All baselines in :mod:`repro.baselines` reuse these
primitives with their own grouping strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Smallest range we are willing to divide by.  Degenerate groups (all
#: values identical) would otherwise produce an infinite scale.
_EPS = 1e-12


def scaling_factor(lo: float, hi: float, bits: int) -> float:
    """Return the uniform quantization scale for range ``[lo, hi]``.

    Implements Eq. 2 of the paper.  ``bits`` is the bitwidth ``m`` of the
    quantized code.  A degenerate range (``hi == lo``) yields a scale of
    1.0 so that round-tripping maps every value back to ``lo``.

    Args:
        lo: minimum of the values to be quantized.
        hi: maximum of the values to be quantized.
        bits: target bitwidth, must be >= 1.

    Returns:
        The scale ``sigma`` such that ``round((x - lo) * sigma)`` lies in
        ``[0, 2**bits - 1]`` for ``x`` in ``[lo, hi]``.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    span = float(hi) - float(lo)
    if span <= _EPS:
        return 1.0
    return (2.0**bits - 1.0) / span


def quantize_uniform(
    values: np.ndarray, lo: float, hi: float, bits: int
) -> np.ndarray:
    """Quantize ``values`` uniformly into ``bits``-bit unsigned codes.

    Implements Eq. 3 of the paper.  Values outside ``[lo, hi]`` are
    clipped to the representable code range, mirroring the saturating
    behaviour of the hardware quantizer datapath.

    Args:
        values: array of floating point values.
        lo: group minimum (from the online min/max finder).
        hi: group maximum.
        bits: target bitwidth.

    Returns:
        ``uint16`` array of codes in ``[0, 2**bits - 1]`` with the same
        shape as ``values``.
    """
    sigma = scaling_factor(lo, hi, bits)
    codes = np.round((np.asarray(values, dtype=np.float64) - lo) * sigma)
    codes = np.clip(codes, 0, 2**bits - 1)
    return codes.astype(np.uint16)


def dequantize_uniform(
    codes: np.ndarray, lo: float, hi: float, bits: int
) -> np.ndarray:
    """Invert :func:`quantize_uniform` back to floating point.

    Args:
        codes: unsigned integer codes produced by :func:`quantize_uniform`.
        lo: the group minimum used at quantization time.
        hi: the group maximum used at quantization time.
        bits: the bitwidth used at quantization time.

    Returns:
        ``float32`` array of reconstructed values.
    """
    sigma = scaling_factor(lo, hi, bits)
    values = np.asarray(codes, dtype=np.float64) / sigma + lo
    return values.astype(np.float32)


@dataclass(frozen=True)
class UniformCodec:
    """A reusable (lo, hi, bits) uniform codec.

    Bundles the three parameters of a uniform quantization group so they
    can be stored alongside the codes (the "scaling factor" metadata the
    hardware keeps per token per group).

    Attributes:
        lo: group minimum.
        hi: group maximum.
        bits: code bitwidth.
    """

    lo: float
    hi: float
    bits: int

    @classmethod
    def from_values(cls, values: np.ndarray, bits: int) -> "UniformCodec":
        """Build a codec from the observed min/max of ``values``.

        An empty array yields the degenerate codec ``(0, 0, bits)`` which
        round-trips nothing (there is nothing to encode).
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return cls(lo=0.0, hi=0.0, bits=bits)
        return cls(lo=float(arr.min()), hi=float(arr.max()), bits=bits)

    @property
    def sigma(self) -> float:
        """The Eq. 2 scaling factor of this codec."""
        return scaling_factor(self.lo, self.hi, self.bits)

    @property
    def num_levels(self) -> int:
        """Number of representable codes (``2**bits``)."""
        return 2**self.bits

    @property
    def step(self) -> float:
        """Reconstruction step size (distance between adjacent levels)."""
        return 1.0 / self.sigma

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Quantize ``values`` with this codec (see Eq. 3)."""
        return quantize_uniform(values, self.lo, self.hi, self.bits)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Dequantize ``codes`` with this codec."""
        return dequantize_uniform(codes, self.lo, self.hi, self.bits)

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Encode then decode ``values`` — the effective lossy transform."""
        return self.decode(self.encode(values))

    def max_roundtrip_error(self) -> float:
        """Worst-case absolute reconstruction error for in-range values.

        Uniform quantization with rounding has a worst case of half the
        step size; this bound is exercised by property-based tests.
        """
        if self.hi - self.lo <= _EPS:
            return 0.0
        return 0.5 * self.step
