"""Quantization quality and storage-cost metrics.

Two families of metrics are shared by the evaluation harness and the
benchmarks:

*Error metrics* compare a reconstructed tensor against its original
(MSE, max-abs, SQNR).  They are used by unit tests, by the accuracy
harness, and by the Figure 12(a) trade-off sweep.

*Effective bitwidth* is the paper's storage metric (Table 2 bottom
rows): total bits stored per original KV element, including dense codes,
sparse records, and per-token scale metadata, divided by the element
count.  Each quantizer reports its own breakdown through
:class:`StorageFootprint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


def mean_squared_error(original: np.ndarray, restored: np.ndarray) -> float:
    """Mean squared reconstruction error between two equal-shape arrays."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(restored, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.mean((a - b) ** 2))


def max_abs_error(original: np.ndarray, restored: np.ndarray) -> float:
    """Maximum absolute reconstruction error."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(restored, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def signal_to_quantization_noise(
    original: np.ndarray, restored: np.ndarray
) -> float:
    """SQNR in dB; ``inf`` for a perfect reconstruction.

    Defined as ``10 * log10(signal_power / noise_power)``.  A silent
    (all-zero) original with nonzero noise returns ``-inf``.
    """
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(restored, dtype=np.float64)
    noise = float(np.mean((a - b) ** 2)) if a.size else 0.0
    signal = float(np.mean(a**2)) if a.size else 0.0
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal / noise)


@dataclass
class StorageFootprint:
    """Bit-level storage accounting for a quantized KV tensor.

    Attributes:
        element_count: number of original KV elements represented.
        dense_bits: bits spent on the dense (inlier) matrix.
        sparse_bits: bits spent on sparse outlier records (COO payload).
        metadata_bits: bits spent on per-token/per-group scales, mins,
            thresholds and any other side-band information.
        breakdown: optional named sub-totals for reporting.
    """

    element_count: int
    dense_bits: float = 0.0
    sparse_bits: float = 0.0
    metadata_bits: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def total_bits(self) -> float:
        """All bits stored for this tensor."""
        return self.dense_bits + self.sparse_bits + self.metadata_bits

    @property
    def effective_bitwidth(self) -> float:
        """Bits per original element — the paper's Table 2 metric."""
        if self.element_count == 0:
            return 0.0
        return self.total_bits / self.element_count

    @property
    def total_bytes(self) -> float:
        """Total storage in bytes (fractional bits allowed)."""
        return self.total_bits / 8.0

    def compression_ratio(self, baseline_bits: float = 16.0) -> float:
        """Compression vs. a ``baseline_bits`` (default FP16) layout."""
        if self.total_bits == 0.0:
            return float("inf")
        return (self.element_count * baseline_bits) / self.total_bits

    def merged_with(self, other: "StorageFootprint") -> "StorageFootprint":
        """Combine two footprints (e.g. keys + values)."""
        merged = StorageFootprint(
            element_count=self.element_count + other.element_count,
            dense_bits=self.dense_bits + other.dense_bits,
            sparse_bits=self.sparse_bits + other.sparse_bits,
            metadata_bits=self.metadata_bits + other.metadata_bits,
        )
        for source in (self.breakdown, other.breakdown):
            for key, bits in source.items():
                merged.breakdown[key] = merged.breakdown.get(key, 0.0) + bits
        return merged


def effective_bitwidth(
    element_count: int,
    dense_bits: float,
    sparse_bits: float = 0.0,
    metadata_bits: float = 0.0,
) -> float:
    """Convenience wrapper computing bits-per-element directly."""
    footprint = StorageFootprint(
        element_count=element_count,
        dense_bits=dense_bits,
        sparse_bits=sparse_bits,
        metadata_bits=metadata_bits,
    )
    return footprint.effective_bitwidth
