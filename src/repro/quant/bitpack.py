"""Dense bit-packing of sub-byte integer codes.

Oaken's fused dense-and-sparse encoding stores inlier codes as 4-bit
nibbles, with outlier positions re-using the nibble for the low 4 bits of
the 5-bit outlier code.  The hardware writes these nibbles back-to-back
into memory pages; this module provides the equivalent software packing
so that (a) capacity accounting in the simulator is bit-accurate and
(b) the encoding round-trip can be tested end to end.

The packing layout is little-endian within bytes: code ``i`` occupies
bits ``[i * width, (i + 1) * width)`` of the flattened bit stream, and
bit ``b`` of the stream lives at byte ``b // 8``, bit position ``b % 8``.
This matches how a zero-remove shifter would lay codes out in a burst
write and keeps the layout independent of host endianness.

The widths the encoding actually uses — 4 (inlier nibbles) and 8
(aligned sparse records) — take byte-arithmetic fast paths that never
expand codes into an (n, width) bit matrix; every other width falls
back to the generic bit-matrix routine.  Both produce identical
buffers.
"""

from __future__ import annotations

import numpy as np


def packed_nbytes(count: int, width: int) -> int:
    """Number of bytes needed to pack ``count`` codes of ``width`` bits.

    Args:
        count: number of codes.
        width: bits per code (1..16).

    Returns:
        Byte count, rounded up to the next whole byte.
    """
    if width < 1 or width > 16:
        raise ValueError(f"width must be in [1, 16], got {width}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return (count * width + 7) // 8


def _pack_bits_generic(arr: np.ndarray, width: int, nbytes: int) -> np.ndarray:
    """Bit-matrix packing for arbitrary widths (the seed path)."""
    # Expand each code into its `width` bits (LSB first), then reshape
    # the flat bit stream into bytes.  Vectorized: build an
    # (n, width) bit matrix, flatten, pad to a byte boundary, and fold.
    bit_idx = np.arange(width, dtype=np.uint32)
    bits = ((arr[:, None] >> bit_idx[None, :]) & 1).astype(np.uint8)
    flat = bits.ravel()
    padded = np.zeros(nbytes * 8, dtype=np.uint8)
    padded[: flat.size] = flat
    weights = (1 << np.arange(8, dtype=np.uint32)).astype(np.uint32)
    out = (padded.reshape(nbytes, 8).astype(np.uint32) @ weights).astype(
        np.uint8
    )
    return out


def pack_bits(codes: np.ndarray, width: int) -> np.ndarray:
    """Pack unsigned integer ``codes`` into a dense ``uint8`` buffer.

    Args:
        codes: 1-D array of unsigned integers, each ``< 2**width``.
        width: bits per code.

    Returns:
        ``uint8`` array of length ``packed_nbytes(len(codes), width)``.

    Raises:
        ValueError: if any code does not fit in ``width`` bits.
    """
    arr = np.asarray(codes, dtype=np.uint32).ravel()
    if arr.size and int(arr.max()) >= (1 << width):
        raise ValueError(
            f"code {int(arr.max())} does not fit in {width} bits"
        )
    nbytes = packed_nbytes(arr.size, width)
    if arr.size == 0:
        return np.zeros(nbytes, dtype=np.uint8)
    if width == 8:
        # One code per byte: the cast is the whole layout.
        return arr.astype(np.uint8)
    if width == 4:
        # Two codes per byte, even index in the low nibble.  Pad odd
        # counts with a zero nibble, exactly like the bit-stream path.
        nibbles = arr.astype(np.uint8)
        if nibbles.size % 2:
            nibbles = np.concatenate(
                [nibbles, np.zeros(1, dtype=np.uint8)]
            )
        return nibbles[0::2] | (nibbles[1::2] << np.uint8(4))
    return _pack_bits_generic(arr, width, nbytes)


def _unpack_bits_generic(
    buf: np.ndarray, width: int, count: int
) -> np.ndarray:
    """Bit-matrix unpacking for arbitrary widths (the seed path)."""
    bit_positions = np.arange(8, dtype=np.uint32)
    bits = ((buf[:, None] >> bit_positions[None, :]) & 1).astype(np.uint8)
    flat = bits.ravel()[: count * width]
    codes_bits = flat.reshape(count, width).astype(np.uint32)
    weights = (1 << np.arange(width, dtype=np.uint32)).astype(np.uint32)
    codes = codes_bits @ weights
    return codes.astype(np.uint16)


def unpack_bits(buffer: np.ndarray, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Args:
        buffer: ``uint8`` array produced by :func:`pack_bits`.
        width: bits per code used at pack time.
        count: number of codes to recover.

    Returns:
        ``uint16`` array of length ``count``.
    """
    buf = np.asarray(buffer, dtype=np.uint8).ravel()
    needed = packed_nbytes(count, width)
    if buf.size < needed:
        raise ValueError(
            f"buffer has {buf.size} bytes, need {needed} for "
            f"{count} codes of {width} bits"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint16)
    if width == 8:
        return buf[:count].astype(np.uint16)
    if width == 4:
        used = buf[:needed]
        codes = np.empty(count, dtype=np.uint16)
        low = (used & np.uint8(0x0F)).astype(np.uint16)
        high = (used >> np.uint8(4)).astype(np.uint16)
        codes[0::2] = low[: (count + 1) // 2]
        codes[1::2] = high[: count // 2]
        return codes
    return _unpack_bits_generic(buf, width, count)
