"""Shared quantization primitives used by Oaken and all baselines.

This package holds the building blocks that every KV-cache quantizer in
the repository is made of:

``uniform``
    Scalar/vector uniform (affine) quantization following Eq. 2-3 of the
    paper: ``sigma = (2^m - 1) / (max - min)`` and
    ``Q(x) = round((x - min) * sigma)``.
``bitpack``
    Dense bit-packing of sub-byte integer codes into ``uint8`` buffers,
    used by the fused dense-and-sparse encoding and by capacity
    accounting.
``metrics``
    Quantization error metrics (MSE, SQNR, max-abs) and effective
    bitwidth accounting shared across methods.
"""

from repro.quant.bitpack import (
    pack_bits,
    packed_nbytes,
    unpack_bits,
)
from repro.quant.metrics import (
    effective_bitwidth,
    max_abs_error,
    mean_squared_error,
    signal_to_quantization_noise,
)
from repro.quant.uniform import (
    UniformCodec,
    dequantize_uniform,
    quantize_uniform,
    scaling_factor,
)

__all__ = [
    "UniformCodec",
    "dequantize_uniform",
    "effective_bitwidth",
    "max_abs_error",
    "mean_squared_error",
    "pack_bits",
    "packed_nbytes",
    "quantize_uniform",
    "scaling_factor",
    "signal_to_quantization_noise",
    "unpack_bits",
]
