"""Trace-driven serving simulation (Figure 14's methodology).

Follows the paper's setup: requests sampled from a trace are replayed
through the continuous-batching scheduler; each iteration is priced by
the hardware model at the batch's mean context length; admissions pay a
prefill pass.  The reported metric is **generation throughput** —
generated tokens divided by the busy makespan — matching Figure 14's
y-axis.

Two capacity regimes:

* **Analytic mode** (default, unchanged): the residency cap is clipped
  by :func:`~repro.hardware.perf.max_supported_batch`, which prices KV
  storage at the system's *analytic* ``kv_bits`` estimate.
* **Cache-replay mode** (opt-in via :class:`CacheReplayConfig`): the
  scheduler drives a real :class:`~repro.engine.KVCachePool` holding a
  miniature quantized cache per resident request — any registry method,
  through the unified :mod:`repro.engine` API.  Admission control uses
  the pool's *measured* effective bitwidth, batched multi-sequence
  appends and reads run every generation iteration (one fused encode
  and decode across the resident set), and per-request KV rows stream
  through the actual quantization kernels.  Iteration pricing stays
  analytic (the hardware model), so throughput numbers remain
  comparable across modes.  With ``engine_cycles=True`` the replay's
  caches run on the Figure 9 datapath engine models instead of the
  plain fused kernels, and the replay report carries accumulated
  end-to-end engine cycles for the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.traces import TraceRequest
from repro.hardware.overheads import ServingSystem
from repro.hardware.perf import (
    generation_iteration,
    max_supported_batch,
    prefill_time,
    weight_bytes,
)
from repro.models.config import ArchShape
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchScheduler


@dataclass
class CacheReplayConfig:
    """Opt-in token-level cache replay for trace simulation.

    The replay holds a miniature per-request quantized cache (real
    kernels, scaled-down dimensions) in a
    :class:`~repro.engine.KVCachePool` and lets its measured footprint
    drive admission control.

    Attributes:
        method: registry method name (``oaken`` or any baseline).
        kind: backend kind for :func:`repro.engine.create_backend`.
        num_layers: miniature cache decoder layers.
        dim: miniature KV width per layer.
        calibration_tokens: synthetic calibration rows for methods
            with an offline phase.
        prompt_rows: KV rows actually appended per admitted request (a
            bounded stand-in for its prompt; footprint estimates scale
            per token, so a sample suffices).
        seed: synthetic KV stream seed.
        mode: :class:`~repro.core.modes.ComputeMode` name for the
            replay's cache kernels.  Serving replays ``deploy_f32`` by
            default — the float32 deployment policy anchored to the
            datapath's float32 golden model; ``"exact_f64"`` restores
            the bit-exact bench configuration.
        engine_cycles: route the replay's caches through
            :class:`~repro.hardware.datapath.adapter.EngineBackedQuantizer`
            instead of the plain fused kernels, so every KV row the
            trace streams through the pool is priced by the Figure 9
            datapath models and the replay report carries accumulated
            end-to-end engine cycles (``engine_*`` keys).  Requires
            ``method="oaken"`` (the engines model the paper datapath).
        engine: engine tier for ``engine_cycles`` replays —
            ``"vectorized"`` (default, the whole-tensor twins: same
            bits, same modeled cycles) or ``"scalar"`` (the frozen
            element-streaming golden model; orders of magnitude slower
            on the host).
        device_budget_mb: enable the tiered KV memory hierarchy with
            this device-tier budget (MiB) for the miniature pool.  The
            pool then runs behind a
            :class:`~repro.engine.tiering.TieredKVStore`: cold pages
            spill to the modeled host tier instead of admissions being
            refused (evict-and-spill), unlocking
            longer-than-device-budget contexts, and the replay report
            carries ``tier_*`` hit/miss/evict/transfer-cycle counters.
            ``None`` (default) keeps the flat reject/queue admission.
        eviction: tiered-mode eviction policy, ``"lru"`` or ``"plru"``.
        page_bytes: tiered-mode page size.  Defaults to 1 KiB — the
            miniature caches are a few KiB per sequence, so 4 KiB
            hardware pages would be a single-page-per-stream
            degenerate case at replay scale.
        prefetch_pages: sequential spilled pages promoted alongside a
            missed page (tiered mode; 0 disables prefetch).
        arena: back the replay pool's resident set with the
            structure-of-arrays arena
            (:class:`~repro.engine.KVCachePool` with ``arena=True``):
            every sequence lives as a row-slice in flat per-layer
            buffers, removing per-chunk Python objects from the
            append/read hot path.  Reads are bit-identical either way;
            the report gains ``arena_*`` occupancy counters.  Only
            fused pools adopt the arena, so this composes with
            ``method="oaken"`` (including ``engine_cycles``) and is a
            structural no-op for adapter baselines.
        charge_transfer_cycles: charge the tiered hierarchy's modeled
            transfer time (``tier_transfer_cycles`` at the transfer
            model's clock) into scheduler iteration time, so spill
            pressure slows the replayed makespan instead of being
            reported-but-free.  Off by default: the historical replay
            treats transfers as fully overlapped, and every committed
            number keeps meaning that unless the flag is raised.  A
            no-op without ``device_budget_mb``.
    """

    method: str = "oaken"
    kind: str = "auto"
    num_layers: int = 2
    dim: int = 32
    calibration_tokens: int = 64
    prompt_rows: int = 8
    seed: int = 0
    mode: str = "deploy_f32"
    engine_cycles: bool = False
    engine: str = "vectorized"
    device_budget_mb: Optional[float] = None
    eviction: str = "lru"
    page_bytes: int = 1024
    prefetch_pages: int = 1
    arena: bool = False
    charge_transfer_cycles: bool = False


class _CacheReplay:
    """Drives a real :class:`KVCachePool` under the scheduler.

    One miniature cache per resident request: admissions append a
    sample of prompt KV rows; every generation iteration streams one
    row per resident per layer through ``append_batch`` (one fused
    encode across the batch) and ``read_batch`` (one fused decode);
    retirement frees the sequence.  Admission control
    projects the device's KV budget (capacity minus weights) against
    per-request KV priced at the **measured** pool bitwidth — the
    analytic ``system.kv_bits`` estimate is never consulted.
    """

    def __init__(
        self,
        config: CacheReplayConfig,
        system: ServingSystem,
        arch: ArchShape,
    ):
        from repro.engine import (
            KVCachePool,
            SyntheticKVStream,
            shared_backend_factory,
        )

        self.config = config
        self.arch = arch
        # Synthetic KV with the paper's channel-concentrated outlier
        # structure, so measured bitwidths reflect realistic outlier
        # rates.
        self._stream = SyntheticKVStream(config.dim, seed=config.seed)
        calibration = self._stream.calibration(
            config.num_layers, config.calibration_tokens
        )
        self._engine_quantizers: List = []
        if config.engine_cycles:
            factory = self._engine_backed_factory(calibration)
        else:
            factory = shared_backend_factory(
                config.method,
                config.kind,
                calibration=calibration,
                mode=config.mode,
            )
        self.tiering = None
        if config.device_budget_mb is not None:
            from repro.engine import TieredKVStore

            self.tiering = TieredKVStore(
                device_budget_bytes=config.device_budget_mb * 2.0**20,
                page_bytes=config.page_bytes,
                policy=config.eviction,
                prefetch_pages=config.prefetch_pages,
            )
        self.pool = KVCachePool(
            factory, tiering=self.tiering, arena=config.arena
        )
        device = system.device_for(arch)
        budget = device.memory.capacity_bytes * (
            1.0 - device.reserved_fraction
        )
        budget -= weight_bytes(arch, system.weight_bits)
        self.budget_bytes = max(0.0, budget)
        self._contexts: Dict[int, int] = {}
        # Prefix sharing: one live *anchor* request per prefix group,
        # whose committed prompt rows later group members fork instead
        # of re-encoding.  ``_groups`` remembers membership (insertion
        # order = admission order, which makes anchor promotion on
        # retire deterministic); ``_prompt_rows_of`` bounds how deep a
        # fork may reach (only the prompt sample is shared content —
        # decode rows are per-request).
        self._anchors: Dict[int, int] = {}
        self._groups: Dict[int, int] = {}
        self._prompt_rows_of: Dict[int, int] = {}
        self.batched_reads = 0
        self.batched_appends = 0
        self.replayed_tokens = 0
        self._charged_transfer_cycles = 0.0
        # Prime the measurement by quantizing a calibration probe
        # through a throwaway backend, so the very first arrival wave
        # is already projected at a *measured* bitwidth rather than
        # admitted blind.
        probe = factory()
        probe.append(0, calibration[0][0], calibration[0][1])
        self._last_kv_bits = probe.effective_bitwidth()
        # The probe streamed rows through the shared engine-backed
        # quantizers; snapshot its cycles so the report counts only
        # cycles the replayed trace itself spent.
        self._probe_quant_cycles = sum(
            q.quant_cycles for q in self._engine_quantizers
        )
        self._probe_dequant_cycles = sum(
            q.dequant_cycles for q in self._engine_quantizers
        )

    def _engine_backed_factory(self, calibration):
        """A shared-quantizer factory over the hardware datapath models.

        Mirrors :func:`~repro.engine.shared_backend_factory` for the
        fused oaken cache, but the per-layer quantizers are
        :class:`~repro.hardware.datapath.adapter.EngineBackedQuantizer`
        instances: every quantize/dequantize the pool issues (including
        the batched multi-sequence paths) runs through the Figure 9
        engine models and accumulates modeled cycle reports, which
        :meth:`report` sums into end-to-end engine cycles.
        """
        from repro.core.config import OakenConfig
        from repro.core.thresholds import profile_thresholds
        from repro.engine.backend import FusedCacheBackend
        from repro.hardware.datapath.adapter import EngineBackedQuantizer

        if self.config.method != "oaken":
            raise ValueError(
                "engine_cycles replays model the paper datapath and "
                f"require method='oaken', got {self.config.method!r}"
            )
        cfg = OakenConfig()
        key_quantizers = []
        value_quantizers = []
        for keys, values in calibration:
            key_quantizers.append(
                EngineBackedQuantizer(
                    cfg,
                    profile_thresholds([keys], cfg),
                    mode=self.config.mode,
                    engine=self.config.engine,
                )
            )
            value_quantizers.append(
                EngineBackedQuantizer(
                    cfg,
                    profile_thresholds([values], cfg),
                    mode=self.config.mode,
                    engine=self.config.engine,
                )
            )
        self._engine_quantizers = key_quantizers + value_quantizers

        def factory():
            return FusedCacheBackend(key_quantizers, value_quantizers)

        return factory

    def _draw_rows(self, n: int) -> np.ndarray:
        return self._stream.draw(n)

    # -- admission -----------------------------------------------------

    def measured_kv_bits(self) -> float:
        """Pool-measured bits/element.

        Refreshed by :meth:`step` once per iteration (and primed from
        the calibration probe), so admission-gate calls read the
        cached measurement instead of rescanning the pool per queued
        request.
        """
        return self._last_kv_bits

    def _refresh_measurement(self) -> None:
        """One footprint scan: peak bytes + measured bitwidth."""
        _, bits = self.pool.measure()
        if bits > 0.0:
            self._last_kv_bits = bits

    def _live_anchor(self, request: Request) -> Optional[int]:
        """The group anchor ``request`` could fork from, if any.

        Liveness is judged by the reservation table rather than the
        pool, so an anchor approved earlier in the *same* arrival wave
        (reserved but not yet admitted) already counts — the wave is
        exactly where charging the shared prompt once matters most.
        """
        if request.prefix_group < 0 or request.shared_tokens <= 0:
            return None
        anchor = self._anchors.get(request.prefix_group)
        if anchor is None or anchor == request.request_id:
            return None
        if anchor not in self._contexts:
            return None
        return anchor

    def admission_gate(self, request: Request) -> bool:
        """Admit while measured-footprint projections fit the budget.

        Approval *reserves* the request's projected context in
        ``_contexts`` immediately: the scheduler admits every approved
        request in the same iteration, so later gate calls within one
        arrival wave must already see the earlier approvals — the pool
        itself is only populated after the iteration plan returns.
        An empty reservation table always admits (refusing the sole
        request would deadlock the replay).

        When the request can fork a live group anchor, its shared
        prompt tokens are already charged under the anchor's
        reservation, so the projection counts only the unshared
        remainder — the admission-capacity face of the pool's
        charge-shared-bytes-once accounting.

        With the tiered store enabled (``device_budget_mb``) the gate
        never refuses: memory pressure is absorbed by evict-and-spill
        rather than backpressure, so residency is bounded only by the
        scheduler's batch cap and the cost of pressure shows up as
        ``tier_*`` transfer counters instead of queueing delay.
        """
        incoming = request.input_tokens + request.output_tokens
        if self._live_anchor(request) is not None:
            shared = min(request.shared_tokens, request.input_tokens)
            incoming = max(1, incoming - shared)
        if self.tiering is not None:
            self._contexts[request.request_id] = incoming
            return True
        if not self._contexts:
            self._contexts[request.request_id] = incoming
            return True
        kv_bits = self.measured_kv_bits()
        if kv_bits <= 0.0:
            self._contexts[request.request_id] = incoming
            return True
        per_token = self.arch.kv_bytes_per_token(kv_bits)
        projected = 0.0
        for context in self._contexts.values():
            projected += per_token * self.arch.attended_length(context)
        projected += per_token * self.arch.attended_length(incoming)
        if projected > self.budget_bytes:
            return False
        self._contexts[request.request_id] = incoming
        return True

    # -- lifecycle -----------------------------------------------------

    def admit(self, request: Request) -> None:
        """Allocate a cache and stream a prompt sample through it.

        When the request names a prefix group with a live anchor, the
        shared fraction of its prompt sample is **forked** from the
        anchor's committed rows (copy-on-write aliasing, no re-encode)
        and only the unshared remainder is streamed through the
        kernels; otherwise the whole sample is encoded fresh and the
        request becomes its group's anchor for later arrivals.
        """
        rid = request.request_id
        rows = min(self.config.prompt_rows, max(1, request.input_tokens))
        shared_rows = 0
        anchor = self._live_anchor(request)
        if anchor is not None and anchor in self.pool:
            frac = request.shared_tokens / max(1, request.input_tokens)
            shared_rows = min(
                int(rows * frac), self._prompt_rows_of.get(anchor, 0)
            )
        if shared_rows > 0:
            self.pool.fork(anchor, rid, shared_rows)
        else:
            self.pool.allocate(rid)
        fresh = rows - shared_rows
        if fresh > 0:
            for layer in range(self.config.num_layers):
                self.pool.append(
                    rid,
                    layer,
                    self._draw_rows(fresh),
                    self._draw_rows(fresh),
                )
        incoming = request.input_tokens + request.output_tokens
        if shared_rows > 0:
            incoming = max(
                1,
                incoming - min(request.shared_tokens,
                               request.input_tokens),
            )
        self._contexts[rid] = incoming
        self._prompt_rows_of[rid] = rows
        if request.prefix_group >= 0:
            self._groups[rid] = request.prefix_group
            if self._anchors.get(request.prefix_group) not in self.pool:
                self._anchors[request.prefix_group] = rid
        # Only freshly encoded rows count as replayed: forked rows are
        # aliased, never re-streamed — that is the feature.
        self.replayed_tokens += fresh

    def step(
        self,
        resident: Sequence[Request],
        resident_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """One generation iteration: batched append, batched read.

        Exactly one ``append_batch`` / ``read_batch`` pair per layer:
        the iteration's fresh rows are drawn as one [B, D] block per
        tensor and handed to the pool as per-sequence row views, so
        the per-sequence Python loop (and its per-row RNG calls) never
        runs here.  ``resident_ids``, when the scheduler's
        :class:`~repro.serving.scheduler.IterationPlan` provides it,
        skips rebuilding the id list from the request objects.
        """
        if not resident:
            return
        seq_ids = (
            list(resident_ids)
            if resident_ids is not None
            else [r.request_id for r in resident]
        )
        batch = len(seq_ids)
        for layer in range(self.config.num_layers):
            # One fused encode across the whole resident batch per
            # tensor, mirroring the fused decode on the read side.
            keys = self._draw_rows(batch)
            values = self._draw_rows(batch)
            self.pool.append_batch(
                layer,
                [
                    (seq_id, keys[i : i + 1], values[i : i + 1])
                    for i, seq_id in enumerate(seq_ids)
                ],
            )
            self.batched_appends += 1
            self.pool.read_batch(layer, seq_ids)
            self.batched_reads += 1
        self.replayed_tokens += batch
        # Refresh the measured footprint (peak bytes, effective
        # bitwidth) while the pool is populated; admission gating and
        # the final report both consume these measurements.
        self._refresh_measurement()

    def _forget(self, rid: int) -> None:
        """Drop ``rid``'s sharing bookkeeping; promote anchors.

        If ``rid`` anchored a prefix group, the earliest-admitted
        surviving member takes over (its forked chunks keep the shared
        storage alive in the pool, so later arrivals can still fork);
        a group with no survivors loses its anchor entirely.
        """
        self._contexts.pop(rid, None)
        self._prompt_rows_of.pop(rid, None)
        group = self._groups.pop(rid, None)
        if group is None or self._anchors.get(group) != rid:
            return
        for member, member_group in self._groups.items():
            if member_group == group and member in self.pool:
                self._anchors[group] = member
                return
        self._anchors.pop(group, None)

    def transfer_penalty_s(self) -> float:
        """Tier-transfer seconds accrued since the last call.

        Converts the :class:`~repro.engine.tiering.TieredKVStore`'s
        cumulative modeled ``transfer_cycles`` delta to seconds at the
        transfer model's clock.  The delta covers everything since the
        previous charge — admissions and the iteration's own
        spill/promote traffic alike — so the scheduler can fold it into
        one iteration's step time without double counting.  Zero unless
        ``charge_transfer_cycles`` is set and the replay is tiered.
        """
        if self.tiering is None or not self.config.charge_transfer_cycles:
            return 0.0
        total = self.tiering.transfer_cycles
        delta = total - self._charged_transfer_cycles
        self._charged_transfer_cycles = total
        return max(0.0, delta) / self.tiering.transfer.clock_hz

    def retire(self, requests: Sequence[Request]) -> None:
        """Free retired sequences' caches."""
        for request in requests:
            self.pool.free(request.request_id)
            self._forget(request.request_id)

    def abort(self, request: Request) -> None:
        """Back out a partially admitted request.

        The cluster replay calls this when :meth:`admit` raises a
        retryable :class:`~repro.engine.CacheCapacityError` partway
        through streaming the prompt sample: whatever state the
        admission left behind (an allocated cache, a context
        reservation) is released so the request can be requeued on
        another replica with no residue here.
        """
        if request.request_id in self.pool:
            self.pool.free(request.request_id)
        self._forget(request.request_id)

    def report(self) -> Dict[str, float]:
        """Replay measurements attached to the serving report."""
        summary = self.pool.summary()
        out = {
            "method": self.config.method,
            "mode": self.config.mode,
            "measured_kv_bits": self.measured_kv_bits(),
            "peak_pool_bytes": self.pool.peak_bytes,
            "batched_reads": float(self.batched_reads),
            "batched_appends": float(self.batched_appends),
            "batched_decodes": float(self.pool.batched_decodes),
            "batched_encodes": float(self.pool.batched_encodes),
            "batched_roundtrips": float(self.pool.batched_roundtrips),
            "batched_append_roundtrips": float(
                self.pool.batched_append_roundtrips
            ),
            "replayed_tokens": float(self.replayed_tokens),
            "forks": float(self.pool.forks),
            "shared_bytes_saved": summary["shared_bytes_saved"],
        }
        if self.pool.arena_enabled:
            out["arena"] = 1.0
            for key in (
                "arena_rows_live",
                "arena_rows_dead",
                "arena_compactions",
                "arena_capacity_bytes",
            ):
                out[key] = summary[key]
        if self._engine_quantizers:
            quant = sum(
                q.quant_cycles for q in self._engine_quantizers
            ) - self._probe_quant_cycles
            dequant = sum(
                q.dequant_cycles for q in self._engine_quantizers
            ) - self._probe_dequant_cycles
            out["engine"] = self.config.engine
            out["engine_quant_cycles"] = float(quant)
            out["engine_dequant_cycles"] = float(dequant)
            out["engine_cycles"] = float(quant + dequant)
            out["engine_cycles_per_token"] = (
                (quant + dequant) / self.replayed_tokens
                if self.replayed_tokens
                else 0.0
            )
        if self.tiering is not None:
            out["eviction"] = self.tiering.policy_name
            out["device_budget_mb"] = float(
                self.config.device_budget_mb or 0.0
            )
            for key, value in self.tiering.summary().items():
                out[f"tier_{key}"] = value
            out["tier_transfer_cycles_per_token"] = (
                self.tiering.transfer_cycles / self.replayed_tokens
                if self.replayed_tokens
                else 0.0
            )
        return out


def validate_trace(trace: Sequence[TraceRequest]) -> None:
    """Reject empty or arrival-unsorted traces.

    The replay's queueing-delay accounting assumes arrival order: an
    unsorted trace silently mis-attributes waiting time (a late
    arrival at the FIFO head stalls earlier ones).  Generators in
    :mod:`repro.data.traces` always emit sorted traces; hand-built
    ones must too.
    """
    if not trace:
        raise ValueError("empty trace")
    previous = trace[0].arrival_s
    for index, item in enumerate(trace[1:], start=1):
        if item.arrival_s < previous:
            raise ValueError(
                "trace must be sorted by arrival time: request "
                f"{index} arrives at {item.arrival_s:.6f}s after "
                f"request {index - 1} at {previous:.6f}s; sort the "
                "trace by arrival_s before replaying"
            )
        previous = item.arrival_s


def iteration_time_s(
    system: ServingSystem,
    arch: ArchShape,
    plan,
    prefill_chunk: Optional[int] = None,
) -> float:
    """Price one scheduler iteration with the hardware model.

    The single costing rule shared by :func:`simulate_trace` and the
    cluster replay (:mod:`repro.serving.cluster`), so the two can
    never drift: admissions pay a prefill pass (chunked or
    monolithic, with the systolic ragged-batch padding penalty), and
    the generation iteration is priced at the resident batch's mean
    context length.
    """
    step_time = 0.0
    if prefill_chunk is not None:
        # Chunked prefill: this iteration's prompt-token slice is
        # fused with the generation batch; only its incremental
        # compute is added (weights already stream once).
        if plan.prefill_tokens:
            device = system.device_for(arch)
            chunk_flops = plan.prefill_tokens * (
                arch.flops_per_token_nonattn()
                + arch.flops_per_token_attn(
                    max(1, plan.prefill_tokens)
                )
            )
            step_time += chunk_flops / device.effective_flops
    elif plan.admitted:
        # Monolithic admission prefill.  Systolic platforms
        # (ragged_batch_efficiency < 1) pad every prompt in the
        # admission batch to the longest one (Figure 14's Tender
        # penalty); others process at the mean length.
        prompts = [r.input_tokens for r in plan.admitted]
        if system.profile.ragged_batch_efficiency < 1.0:
            prompt = max(prompts)
            scale = 1.0 / system.profile.ragged_batch_efficiency
        else:
            prompt = int(np.mean(prompts))
            scale = 1.0
        step_time += scale * prefill_time(
            system, arch, len(plan.admitted), max(1, prompt)
        )
    if plan.resident:
        breakdown = generation_iteration(
            system,
            arch,
            batch=len(plan.resident),
            context=max(1, int(plan.mean_context)),
            ragged=plan.ragged,
        )
        step_time += breakdown.total_s
    return step_time


@dataclass
class ServingReport:
    """Outcome of one trace replay.

    Attributes:
        system: serving-system name.
        batch: scheduler residency cap requested.
        effective_batch: cap after capacity clipping.
        oom: True when even a single request cannot fit.
        generation_throughput: generated tokens / busy time (Figure
            14's metric).
        total_time_s: makespan of the replay.
        generated_tokens: total tokens produced.
        mean_latency_s: mean end-to-end request latency.
        p95_latency_s: 95th-percentile request latency.
        mean_ttft_s: mean time-to-first-token.
        p95_ttft_s: 95th-percentile time-to-first-token.
        mean_tpot_s: mean per-output-token time after the first.
        replay: cache-replay measurements (measured_kv_bits,
            peak_pool_bytes, batched_reads, ...) when token-level
            replay was enabled; None in analytic mode.
    """

    system: str
    batch: int
    effective_batch: int
    oom: bool
    generation_throughput: float
    total_time_s: float = 0.0
    generated_tokens: int = 0
    mean_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    mean_ttft_s: float = 0.0
    p95_ttft_s: float = 0.0
    mean_tpot_s: float = 0.0
    replay: Optional[Dict[str, float]] = None


def simulate_trace(
    system: ServingSystem,
    arch: ArchShape,
    trace: Sequence[TraceRequest],
    max_batch: int,
    prefill_chunk: Optional[int] = None,
    replay: Optional[CacheReplayConfig] = None,
) -> ServingReport:
    """Replay ``trace`` on ``system`` with residency cap ``max_batch``.

    Capacity semantics mirror the figure sweeps: in analytic mode the
    residency cap is clipped to what the device can hold at the
    trace's worst-case context length (a cap below 1 is an OOM); in
    cache-replay mode the cap stays at ``max_batch`` and admissions
    are gated by the measured footprint of a real
    :class:`~repro.engine.KVCachePool` instead.

    Args:
        system: the (device, method) pairing.
        arch: model architecture (paper dimensions).
        trace: arrival-sorted requests.
        max_batch: requested scheduler residency cap.
        prefill_chunk: enable Sarathi-style chunked prefill with this
            per-iteration prompt-token budget; admissions then share
            iterations with generation instead of stalling the batch
            (improves tail latency at equal total work).
        replay: enable token-level cache replay — per-request
            miniature quantized caches (any registry method via
            :mod:`repro.engine`), batched multi-sequence appends and
            reads each iteration, measured-footprint admission
            control.

    Returns:
        A :class:`ServingReport`.
    """
    validate_trace(trace)
    worst_context = max(r.input_tokens + r.output_tokens for r in trace)
    cache_replay: Optional[_CacheReplay] = None
    if replay is None:
        fit = max_supported_batch(system, arch, worst_context)
        if fit < 1:
            return ServingReport(
                system=system.name, batch=max_batch, effective_batch=0,
                oom=True, generation_throughput=0.0,
            )
        effective_cap = min(max_batch, fit)
    else:
        cache_replay = _CacheReplay(replay, system, arch)
        if cache_replay.budget_bytes <= 0.0:
            return ServingReport(
                system=system.name, batch=max_batch, effective_batch=0,
                oom=True, generation_throughput=0.0,
                replay=cache_replay.report(),
            )
        effective_cap = max_batch

    scheduler = ContinuousBatchScheduler(
        effective_cap,
        prefill_chunk=prefill_chunk,
        admission_gate=(
            cache_replay.admission_gate if cache_replay else None
        ),
    )
    for index, item in enumerate(trace):
        scheduler.submit(
            Request(
                request_id=index,
                arrival_s=item.arrival_s,
                input_tokens=item.input_tokens,
                output_tokens=item.output_tokens,
                prefix_group=item.prefix_group,
                shared_tokens=item.shared_tokens,
            )
        )

    now = 0.0
    busy = 0.0
    generated = 0
    while scheduler.has_work:
        plan = scheduler.plan_iteration(now)
        if plan is None:
            upcoming = scheduler.next_arrival()
            if upcoming is None:
                break
            now = max(now, upcoming)
            continue
        if cache_replay is not None:
            for request in plan.admitted:
                cache_replay.admit(request)
        step_time = iteration_time_s(system, arch, plan, prefill_chunk)
        if cache_replay is not None:
            # Token-level replay: stream one KV row per resident
            # through the real quantized caches and exercise the
            # batched multi-sequence append and read paths, as the
            # accelerator's MMU would every iteration.
            cache_replay.step(plan.resident, plan.resident_ids)
            step_time += cache_replay.transfer_penalty_s()
        now += step_time
        busy += step_time
        retired = scheduler.complete_iteration(now)
        generated += len(plan.resident)
        if cache_replay is not None:
            cache_replay.retire(retired)

    finished = scheduler.finished
    latencies = [r.latency_s() for r in finished]
    ttfts = [r.ttft_s() for r in finished if r.first_token_s >= 0]
    tpots = [r.tpot_s() for r in finished if r.generated > 1]
    throughput = generated / busy if busy > 0 else 0.0
    return ServingReport(
        system=system.name,
        batch=max_batch,
        effective_batch=effective_cap,
        oom=False,
        generation_throughput=throughput,
        total_time_s=now,
        generated_tokens=generated,
        mean_latency_s=float(np.mean(latencies)) if latencies else 0.0,
        p95_latency_s=(
            float(np.percentile(latencies, 95)) if latencies else 0.0
        ),
        mean_ttft_s=float(np.mean(ttfts)) if ttfts else 0.0,
        p95_ttft_s=(
            float(np.percentile(ttfts, 95)) if ttfts else 0.0
        ),
        mean_tpot_s=float(np.mean(tpots)) if tpots else 0.0,
        replay=(
            dict(
                cache_replay.report(),
                gate_refusals=float(scheduler.gate_refusals),
            )
            if cache_replay is not None
            else None
        ),
    )


def simulate_synthesized_batches(
    system: ServingSystem,
    arch: ArchShape,
    trace: Sequence[TraceRequest],
    batch: int,
    replay: Optional[CacheReplayConfig] = None,
) -> ServingReport:
    """The paper's Figure 14 methodology: closed synthesized batches.

    Requests sampled from the trace are grouped into batches of
    ``batch`` (all arriving together); each batch runs to completion
    with continuous batching inside the group, and the metric is the
    average generation throughput across batches ("We repeat this
    process across multiple batches, measuring the average
    performance").  Output lengths are clipped to the trace's 90th
    percentile within each batch, mirroring the bounded generation
    windows the methodology samples.

    Args:
        system: the (device, method) pairing.
        arch: model architecture.
        trace: sampled requests (length statistics are what matters).
        batch: synthesized batch size.
        replay: optional token-level cache replay, forwarded to each
            batch's :func:`simulate_trace`.

    Returns:
        A :class:`ServingReport` aggregated over all batches.
    """
    if not trace:
        raise ValueError("empty trace")
    outputs = np.array([r.output_tokens for r in trace])
    clip = int(np.percentile(outputs, 90))
    groups = [
        trace[start : start + batch]
        for start in range(0, len(trace) - batch + 1, batch)
    ]
    if not groups:
        groups = [trace]
    total_tokens = 0
    total_busy = 0.0
    effective = 0
    for group in groups:
        closed = [
            TraceRequest(
                arrival_s=0.0,
                input_tokens=item.input_tokens,
                output_tokens=min(item.output_tokens, clip),
                prefix_group=item.prefix_group,
                shared_tokens=item.shared_tokens,
            )
            for item in group
        ]
        report = simulate_trace(system, arch, closed, batch,
                                replay=replay)
        if report.oom:
            return ServingReport(
                system=system.name, batch=batch, effective_batch=0,
                oom=True, generation_throughput=0.0,
            )
        total_tokens += report.generated_tokens
        total_busy += report.total_time_s
        effective = report.effective_batch
    throughput = total_tokens / total_busy if total_busy > 0 else 0.0
    return ServingReport(
        system=system.name,
        batch=batch,
        effective_batch=effective,
        oom=False,
        generation_throughput=throughput,
        total_time_s=total_busy,
        generated_tokens=total_tokens,
    )
