"""Trace-driven serving simulation (Figure 14's methodology).

Follows the paper's setup: requests sampled from a trace are replayed
through the continuous-batching scheduler; each iteration is priced by
the hardware model at the batch's mean context length; admissions pay a
prefill pass.  The reported metric is **generation throughput** —
generated tokens divided by the busy makespan — matching Figure 14's
y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.traces import TraceRequest
from repro.hardware.overheads import ServingSystem
from repro.hardware.perf import (
    generation_iteration,
    max_supported_batch,
    prefill_time,
)
from repro.models.config import ArchShape
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchScheduler


@dataclass
class ServingReport:
    """Outcome of one trace replay.

    Attributes:
        system: serving-system name.
        batch: scheduler residency cap requested.
        effective_batch: cap after capacity clipping.
        oom: True when even a single request cannot fit.
        generation_throughput: generated tokens / busy time (Figure
            14's metric).
        total_time_s: makespan of the replay.
        generated_tokens: total tokens produced.
        mean_latency_s: mean end-to-end request latency.
        p95_latency_s: 95th-percentile request latency.
        mean_ttft_s: mean time-to-first-token.
        p95_ttft_s: 95th-percentile time-to-first-token.
        mean_tpot_s: mean per-output-token time after the first.
    """

    system: str
    batch: int
    effective_batch: int
    oom: bool
    generation_throughput: float
    total_time_s: float = 0.0
    generated_tokens: int = 0
    mean_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    mean_ttft_s: float = 0.0
    p95_ttft_s: float = 0.0
    mean_tpot_s: float = 0.0


def simulate_trace(
    system: ServingSystem,
    arch: ArchShape,
    trace: Sequence[TraceRequest],
    max_batch: int,
    prefill_chunk: Optional[int] = None,
) -> ServingReport:
    """Replay ``trace`` on ``system`` with residency cap ``max_batch``.

    Capacity semantics mirror the figure sweeps: the residency cap is
    clipped to what the device can hold at the trace's worst-case
    context length; a cap below 1 is an OOM.

    Args:
        system: the (device, method) pairing.
        arch: model architecture (paper dimensions).
        trace: arrival-sorted requests.
        max_batch: requested scheduler residency cap.
        prefill_chunk: enable Sarathi-style chunked prefill with this
            per-iteration prompt-token budget; admissions then share
            iterations with generation instead of stalling the batch
            (improves tail latency at equal total work).

    Returns:
        A :class:`ServingReport`.
    """
    if not trace:
        raise ValueError("empty trace")
    worst_context = max(r.input_tokens + r.output_tokens for r in trace)
    fit = max_supported_batch(system, arch, worst_context)
    if fit < 1:
        return ServingReport(
            system=system.name, batch=max_batch, effective_batch=0,
            oom=True, generation_throughput=0.0,
        )
    effective_cap = min(max_batch, fit)

    scheduler = ContinuousBatchScheduler(
        effective_cap, prefill_chunk=prefill_chunk
    )
    for index, item in enumerate(trace):
        scheduler.submit(
            Request(
                request_id=index,
                arrival_s=item.arrival_s,
                input_tokens=item.input_tokens,
                output_tokens=item.output_tokens,
            )
        )

    now = 0.0
    busy = 0.0
    generated = 0
    while scheduler.has_work:
        plan = scheduler.plan_iteration(now)
        if plan is None:
            upcoming = scheduler.next_arrival()
            if upcoming is None:
                break
            now = max(now, upcoming)
            continue
        step_time = 0.0
        if prefill_chunk is not None:
            # Chunked prefill: this iteration's prompt-token slice is
            # fused with the generation batch; only its incremental
            # compute is added (weights already stream once).
            if plan.prefill_tokens:
                device = system.device_for(arch)
                chunk_flops = plan.prefill_tokens * (
                    arch.flops_per_token_nonattn()
                    + arch.flops_per_token_attn(
                        max(1, plan.prefill_tokens)
                    )
                )
                step_time += chunk_flops / device.effective_flops
        elif plan.admitted:
            # Monolithic admission prefill.  Systolic platforms
            # (ragged_batch_efficiency < 1) pad every prompt in the
            # admission batch to the longest one (Figure 14's Tender
            # penalty); others process at the mean length.
            prompts = [r.input_tokens for r in plan.admitted]
            if system.profile.ragged_batch_efficiency < 1.0:
                prompt = max(prompts)
                scale = 1.0 / system.profile.ragged_batch_efficiency
            else:
                prompt = int(np.mean(prompts))
                scale = 1.0
            step_time += scale * prefill_time(
                system, arch, len(plan.admitted), max(1, prompt)
            )
        if plan.resident:
            breakdown = generation_iteration(
                system,
                arch,
                batch=len(plan.resident),
                context=max(1, int(plan.mean_context)),
                ragged=plan.ragged,
            )
            step_time += breakdown.total_s
        now += step_time
        busy += step_time
        retired = scheduler.complete_iteration(now)
        generated += len(plan.resident)
        del retired  # latencies recorded on the request objects

    finished = scheduler.finished
    latencies = [r.latency_s() for r in finished]
    ttfts = [r.ttft_s() for r in finished if r.first_token_s >= 0]
    tpots = [r.tpot_s() for r in finished if r.generated > 1]
    throughput = generated / busy if busy > 0 else 0.0
    return ServingReport(
        system=system.name,
        batch=max_batch,
        effective_batch=effective_cap,
        oom=False,
        generation_throughput=throughput,
        total_time_s=now,
        generated_tokens=generated,
        mean_latency_s=float(np.mean(latencies)) if latencies else 0.0,
        p95_latency_s=(
            float(np.percentile(latencies, 95)) if latencies else 0.0
        ),
        mean_ttft_s=float(np.mean(ttfts)) if ttfts else 0.0,
        p95_ttft_s=(
            float(np.percentile(ttfts, 95)) if ttfts else 0.0
        ),
        mean_tpot_s=float(np.mean(tpots)) if tpots else 0.0,
    )


def simulate_synthesized_batches(
    system: ServingSystem,
    arch: ArchShape,
    trace: Sequence[TraceRequest],
    batch: int,
) -> ServingReport:
    """The paper's Figure 14 methodology: closed synthesized batches.

    Requests sampled from the trace are grouped into batches of
    ``batch`` (all arriving together); each batch runs to completion
    with continuous batching inside the group, and the metric is the
    average generation throughput across batches ("We repeat this
    process across multiple batches, measuring the average
    performance").  Output lengths are clipped to the trace's 90th
    percentile within each batch, mirroring the bounded generation
    windows the methodology samples.

    Args:
        system: the (device, method) pairing.
        arch: model architecture.
        trace: sampled requests (length statistics are what matters).
        batch: synthesized batch size.

    Returns:
        A :class:`ServingReport` aggregated over all batches.
    """
    if not trace:
        raise ValueError("empty trace")
    outputs = np.array([r.output_tokens for r in trace])
    clip = int(np.percentile(outputs, 90))
    groups = [
        trace[start : start + batch]
        for start in range(0, len(trace) - batch + 1, batch)
    ]
    if not groups:
        groups = [trace]
    total_tokens = 0
    total_busy = 0.0
    effective = 0
    for group in groups:
        closed = [
            TraceRequest(
                arrival_s=0.0,
                input_tokens=item.input_tokens,
                output_tokens=min(item.output_tokens, clip),
            )
            for item in group
        ]
        report = simulate_trace(system, arch, closed, batch)
        if report.oom:
            return ServingReport(
                system=system.name, batch=batch, effective_batch=0,
                oom=True, generation_throughput=0.0,
            )
        total_tokens += report.generated_tokens
        total_busy += report.total_time_s
        effective = report.effective_batch
    throughput = total_tokens / total_busy if total_busy > 0 else 0.0
    return ServingReport(
        system=system.name,
        batch=batch,
        effective_batch=effective,
        oom=False,
        generation_throughput=throughput,
        total_time_s=total_busy,
        generated_tokens=total_tokens,
    )
