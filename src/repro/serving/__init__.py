"""Request-level serving simulation on top of the hardware model.

* :mod:`repro.serving.request` — request lifecycle states.
* :mod:`repro.serving.scheduler` — token-level continuous batching
  (Section 5.3): prefill admission, per-iteration generation, slot
  recycling when requests finish.
* :mod:`repro.serving.simulator` — trace-driven end-to-end simulation
  producing the Figure 14 generation-throughput metric.
"""

from repro.serving.request import Request, RequestPhase
from repro.serving.scheduler import ContinuousBatchScheduler
from repro.serving.simulator import (
    ServingReport,
    simulate_synthesized_batches,
    simulate_trace,
)

__all__ = [
    "ContinuousBatchScheduler",
    "Request",
    "RequestPhase",
    "ServingReport",
    "simulate_synthesized_batches",
    "simulate_trace",
]
