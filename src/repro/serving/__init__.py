"""Request-level serving simulation on top of the hardware model.

* :mod:`repro.serving.request` — request lifecycle states.
* :mod:`repro.serving.scheduler` — token-level continuous batching
  (Section 5.3): prefill admission, per-iteration generation, slot
  recycling when requests finish.
* :mod:`repro.serving.simulator` — trace-driven end-to-end simulation
  producing the Figure 14 generation-throughput metric.
* :mod:`repro.serving.faults` — seeded fault-injection plans (crashes,
  brownouts, admission blackouts) for resilience replays.
* :mod:`repro.serving.cluster` — the fault-tolerant N-replica cluster
  replay: routing policies, heartbeat failure detection, retry/backoff
  requeue, exactly-once completion accounting.
"""

from repro.serving.cluster import (
    ClusterConfig,
    ClusterReport,
    ROUTER_POLICIES,
    simulate_cluster,
)
from repro.serving.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    admission_blackout,
    brownout,
    crash_and_recover,
    crash_forever,
    generate_fault_plan,
)
from repro.serving.request import Request, RequestPhase
from repro.serving.scheduler import ContinuousBatchScheduler
from repro.serving.simulator import (
    CacheReplayConfig,
    ServingReport,
    simulate_synthesized_batches,
    simulate_trace,
    validate_trace,
)

__all__ = [
    "CacheReplayConfig",
    "ClusterConfig",
    "ClusterReport",
    "ContinuousBatchScheduler",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "ROUTER_POLICIES",
    "Request",
    "RequestPhase",
    "ServingReport",
    "admission_blackout",
    "brownout",
    "crash_and_recover",
    "crash_forever",
    "generate_fault_plan",
    "simulate_cluster",
    "simulate_synthesized_batches",
    "simulate_trace",
    "validate_trace",
]
