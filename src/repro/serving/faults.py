"""Seeded fault-injection plans for the cluster replay.

A :class:`FaultPlan` is a time-sorted list of :class:`FaultEvent`\\ s
scheduled against simulation time — the event-driven discipline of a
heap-scheduled clock (Simu3-style) makes replica crashes, brownouts
and admission blackouts **deterministic and replayable**: the same
plan against the same trace yields a bit-identical cluster report, so
resilience is a regression-gated property instead of an anecdote.

Fault kinds:

* ``CRASH`` / ``RECOVER`` — the replica stops mid-flight (its resident
  and queued requests are orphaned until heartbeat detection requeues
  them) and later rejoins empty.
* ``BROWNOUT`` / ``BROWNOUT_END`` — degraded throughput: every
  iteration the replica prices while the window is open is multiplied
  by ``factor`` (> 1).
* ``REJECT`` / ``REJECT_END`` — a transient admission-failure window:
  the replica refuses new placements (and admits nothing from its own
  queue), so the router fails requests over to surviving replicas or
  sheds them to the retry queue with backoff.

Plans come from the paired-window helpers (:func:`crash_and_recover`,
:func:`brownout`, :func:`admission_blackout`) or from the seeded
random generator :func:`generate_fault_plan`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np


class FaultKind(enum.Enum):
    """What happens to a replica at a fault event's scheduled time."""

    CRASH = "crash"
    RECOVER = "recover"
    BROWNOUT = "brownout"
    BROWNOUT_END = "brownout_end"
    REJECT = "reject"
    REJECT_END = "reject_end"


#: Window-opening kinds and the kind that closes each.
_WINDOW_CLOSERS: Dict[FaultKind, FaultKind] = {
    FaultKind.CRASH: FaultKind.RECOVER,
    FaultKind.BROWNOUT: FaultKind.BROWNOUT_END,
    FaultKind.REJECT: FaultKind.REJECT_END,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault against one replica.

    Attributes:
        time_s: simulation time the fault fires.
        replica: target replica index.
        kind: what happens (see :class:`FaultKind`).
        factor: brownout slowdown multiplier (> 1); ignored by every
            other kind.
    """

    time_s: float
    replica: int
    kind: FaultKind
    factor: float = 1.0

    def __post_init__(self):
        if self.time_s < 0.0:
            raise ValueError(
                f"fault time must be >= 0, got {self.time_s}"
            )
        if self.replica < 0:
            raise ValueError(
                f"replica index must be >= 0, got {self.replica}"
            )
        if self.kind is FaultKind.BROWNOUT and self.factor <= 1.0:
            raise ValueError(
                "brownout factor must be > 1 (a slowdown), got "
                f"{self.factor}"
            )


@dataclass
class FaultPlan:
    """A deterministic, time-sorted schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self):
        self.events = sorted(
            self.events, key=lambda e: (e.time_s, e.replica, e.kind.value)
        )

    @property
    def enabled(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(self.events)

    def validate(self, replicas: int) -> None:
        """Check the plan is coherent against a cluster size.

        Every event must target a real replica, and each replica's
        windows of one kind must alternate open/close (no recover
        before a crash, no double crash while down, and so on).
        """
        open_windows: Dict[tuple, FaultKind] = {}
        for event in self.events:
            if event.replica >= replicas:
                raise ValueError(
                    f"fault targets replica {event.replica} but the "
                    f"cluster has {replicas}"
                )
            if event.kind in _WINDOW_CLOSERS:
                key = (event.replica, event.kind)
                if key in open_windows:
                    raise ValueError(
                        f"replica {event.replica}: {event.kind.value} "
                        f"at {event.time_s:.3f}s while a previous "
                        f"{event.kind.value} window is still open"
                    )
                open_windows[key] = _WINDOW_CLOSERS[event.kind]
            else:
                opener = next(
                    (
                        kind
                        for kind, closer in _WINDOW_CLOSERS.items()
                        if closer is event.kind
                    ),
                )
                key = (event.replica, opener)
                if key not in open_windows:
                    raise ValueError(
                        f"replica {event.replica}: {event.kind.value} "
                        f"at {event.time_s:.3f}s without a matching "
                        f"{opener.value}"
                    )
                del open_windows[key]

    def for_replica(self, replica: int) -> List[FaultEvent]:
        """This plan's events targeting one replica, time-sorted."""
        return [e for e in self.events if e.replica == replica]


def crash_and_recover(
    replica: int, at_s: float, down_s: float
) -> List[FaultEvent]:
    """A crash at ``at_s`` and recovery ``down_s`` later."""
    if down_s <= 0.0:
        raise ValueError(f"down_s must be > 0, got {down_s}")
    return [
        FaultEvent(at_s, replica, FaultKind.CRASH),
        FaultEvent(at_s + down_s, replica, FaultKind.RECOVER),
    ]


def crash_forever(replica: int, at_s: float) -> List[FaultEvent]:
    """A crash with no scheduled recovery (permanent loss)."""
    return [FaultEvent(at_s, replica, FaultKind.CRASH)]


def brownout(
    replica: int, at_s: float, duration_s: float, factor: float = 3.0
) -> List[FaultEvent]:
    """A degraded-throughput window: iterations ``factor`` x slower."""
    if duration_s <= 0.0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    return [
        FaultEvent(at_s, replica, FaultKind.BROWNOUT, factor=factor),
        FaultEvent(at_s + duration_s, replica, FaultKind.BROWNOUT_END),
    ]


def admission_blackout(
    replica: int, at_s: float, duration_s: float
) -> List[FaultEvent]:
    """A transient admission-failure window: placements bounce."""
    if duration_s <= 0.0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    return [
        FaultEvent(at_s, replica, FaultKind.REJECT),
        FaultEvent(at_s + duration_s, replica, FaultKind.REJECT_END),
    ]


def generate_fault_plan(
    replicas: int,
    duration_s: float,
    seed: int = 0,
    crash_rate: float = 0.05,
    brownout_rate: float = 0.05,
    reject_rate: float = 0.05,
    mean_down_s: float = 2.0,
    brownout_factor: float = 3.0,
) -> FaultPlan:
    """Sample a seeded random fault plan over ``duration_s`` seconds.

    Per replica and fault family, the number of windows is Poisson at
    ``rate * duration_s``, window starts are uniform over the horizon
    and window lengths exponential at ``mean_down_s``; overlapping
    windows of the same family on the same replica are dropped (the
    plan stays valid by construction).  Everything derives from one
    :func:`numpy.random.default_rng` stream, so a seed pins the whole
    plan — the property the cluster's bit-identical-rerun contract
    rests on.

    Args:
        replicas: cluster size the plan targets.
        duration_s: horizon to scatter faults over (usually the
            no-fault replay's makespan, or an estimate of it).
        seed: RNG seed.
        crash_rate: expected crashes per replica-second.
        brownout_rate: expected brownouts per replica-second.
        reject_rate: expected admission blackouts per replica-second.
        mean_down_s: mean window length for every family.
        brownout_factor: slowdown during brownout windows.

    Returns:
        A valid :class:`FaultPlan` (possibly empty at low rates).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if duration_s <= 0.0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    rng = np.random.default_rng(seed)
    events: List[FaultEvent] = []
    families = (
        (crash_rate, crash_and_recover, ()),
        (brownout_rate, brownout, (brownout_factor,)),
        (reject_rate, admission_blackout, ()),
    )
    for replica in range(replicas):
        for rate, make_window, extra in families:
            count = int(rng.poisson(rate * duration_s))
            starts = np.sort(rng.uniform(0.0, duration_s, size=count))
            lengths = rng.exponential(mean_down_s, size=count)
            horizon = 0.0
            for start, length in zip(starts, lengths):
                if start < horizon:
                    continue  # overlapping same-family window: drop
                length = max(1e-3, float(length))
                events.extend(
                    make_window(replica, float(start), length, *extra)
                )
                horizon = start + length
    plan = FaultPlan(events)
    plan.validate(replicas)
    return plan
