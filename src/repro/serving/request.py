"""Request lifecycle for the serving simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RequestPhase(enum.Enum):
    """Where a request is in its lifecycle."""

    QUEUED = "queued"
    PREFILL = "prefill"
    GENERATION = "generation"
    FINISHED = "finished"


@dataclass
class Request:
    """One inference request moving through the simulator.

    Attributes:
        request_id: unique id.
        arrival_s: arrival time (seconds from trace start).
        input_tokens: prompt length.
        output_tokens: tokens to generate.
        generated: tokens generated so far.
        phase: lifecycle phase.
        start_s: when prefill began (-1 until scheduled).
        first_token_s: when the first output token landed (-1 until
            then) — the numerator of time-to-first-token.
        finish_s: when the last token was generated (-1 until done).
        prefix_group: shared-prompt affinity group carried over from
            the trace (-1 when the request shares nothing); the
            prefix-sharing replay forks within a live group instead of
            re-encoding.
        shared_tokens: leading prompt tokens identical to the group's
            committed prefix (always ``<= input_tokens``).
    """

    request_id: int
    arrival_s: float
    input_tokens: int
    output_tokens: int
    generated: int = 0
    phase: RequestPhase = RequestPhase.QUEUED
    start_s: float = -1.0
    first_token_s: float = -1.0
    finish_s: float = -1.0
    prefix_group: int = -1
    shared_tokens: int = 0

    @property
    def context_length(self) -> int:
        """Tokens currently in this request's KV cache."""
        return self.input_tokens + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.output_tokens

    def latency_s(self) -> float:
        """End-to-end latency (valid once finished)."""
        if self.finish_s < 0:
            raise RuntimeError("request not finished")
        return self.finish_s - self.arrival_s

    def ttft_s(self) -> float:
        """Time to first token (valid once the first token landed)."""
        if self.first_token_s < 0:
            raise RuntimeError("no token generated yet")
        return self.first_token_s - self.arrival_s

    def tpot_s(self) -> float:
        """Mean time per output token after the first (valid once
        finished; 0 for single-token outputs)."""
        if self.finish_s < 0:
            raise RuntimeError("request not finished")
        if self.generated <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (
            self.generated - 1
        )
