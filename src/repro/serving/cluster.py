"""Fault-tolerant multi-replica serving replay.

An event-driven cluster of N serving replicas, each wrapping its own
:class:`~repro.serving.scheduler.ContinuousBatchScheduler` (and, in
cache-replay mode, its own :class:`~repro.engine.KVCachePool` behind
the measured-footprint admission gate).  A router places arrivals by
policy; a seeded :class:`~repro.serving.faults.FaultPlan` drives
replica crashes, brownouts, transient admission-failure windows and
recoveries at scheduled simulation times.

The robustness machinery the plan exercises:

* **Heartbeat failure detection** — a monitor beats every
  ``heartbeat_interval_s``; a replica that misses
  ``heartbeat_misses`` consecutive beats is marked dead and its
  orphaned requests (queued *and* resident — their KV state died with
  the replica) are requeued onto survivors.
* **Retry/backoff requeue** — a request that cannot be placed (every
  replica dead, rejecting, or over its queue limit) backs off
  exponentially (``backoff_base_s`` doubling up to ``backoff_cap_s``)
  and retries; after ``retry_budget`` failed placements it terminates
  in the explicit ``failed`` state.  **Nothing is ever silently
  dropped**: every request ends completed-exactly-once or failed, and
  the report carries ``lost`` / ``duplicate_completions`` counters
  (both must be zero) so the contract is checkable, not assumed.
* **Graceful degradation** — backpressure sheds placements to the
  retry queue instead of hot-looping rejects, and brownouts stretch
  iteration times rather than dropping work.

Correctness contracts (regression-tested):

1. One replica, no faults → the cluster report's token, timing and
   latency totals reduce **exactly** (float-identical) to
   :func:`~repro.serving.simulator.simulate_trace`: both price steps
   through the shared
   :func:`~repro.serving.simulator.iteration_time_s` rule and
   accumulate the same floats in the same order.
2. Under any fault plan, every request terminates completed exactly
   once or explicitly failed.
3. Identical seeds (trace, fault plan, replay) → bit-identical
   reports.  All hashing uses :func:`zlib.crc32` (never ``hash()``,
   which is salted per process) and all time is simulation time.

Event ordering at equal timestamps is fixed — ARRIVAL < FAULT <
HEARTBEAT < RETRY < STEP_DONE, then insertion order — so an arrival
at time *t* is visible to a step planned at *t*, matching the
single-replica simulator's inclusive admission check.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.traces import TraceRequest
from repro.engine.errors import CacheCapacityError
from repro.hardware.overheads import ServingSystem
from repro.hardware.perf import max_supported_batch
from repro.models.config import ArchShape
from repro.serving.faults import FaultKind, FaultPlan
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchScheduler
from repro.serving.simulator import (
    CacheReplayConfig,
    _CacheReplay,
    iteration_time_s,
    validate_trace,
)

ROUTER_POLICIES = ("least_loaded", "prefix_affinity", "consistent_hash")

# Heap event priorities at equal timestamps; see module docstring.
_ARRIVAL, _FAULT, _HEARTBEAT, _RETRY, _STEP_DONE = range(5)


@dataclass
class ClusterConfig:
    """Cluster replay knobs.

    Attributes:
        replicas: number of serving replicas.
        max_batch: per-replica scheduler residency cap.
        policy: router policy — ``least_loaded`` (fewest in-flight
            requests, index tie-break), ``prefix_affinity`` (requests
            sharing a ``prefix_group`` home to the same replica so
            shared-prompt KV locality survives routing), or
            ``consistent_hash`` (crc32 virtual-node ring keyed by
            request id; placement is stable under membership churn).
        heartbeat_interval_s: monitor beat period.
        heartbeat_misses: consecutive missed beats before a replica is
            declared dead and its orphans requeued.
        retry_budget: placement attempts before a request fails
            terminally.
        backoff_base_s: first retry delay; doubles per attempt.
        backoff_cap_s: exponential-backoff ceiling.
        queue_limit: per-replica queued-request cap for backpressure;
            a replica at the limit is ineligible for placement and the
            request sheds to the retry queue.  None disables.
        replay: opt-in token-level cache replay per replica (replica
            ``i`` runs at ``replay.seed + i`` so replica 0 matches the
            single-replica simulator bit-for-bit).
        pool_capacity_bytes: when set (with ``replay``), bounds each
            replica's :class:`~repro.engine.KVCachePool` so oversized
            admissions raise
            :class:`~repro.engine.CacheCapacityError` and exercise the
            typed capacity-requeue path.  With the tiered hierarchy
            also enabled (``replay.device_budget_mb``) this bounds the
            *total* device+host footprint; device-tier pressure alone
            spills instead of rejecting.
        prefill_chunk: Sarathi-style chunked prefill budget, forwarded
            to every replica's scheduler.
    """

    replicas: int = 2
    max_batch: int = 8
    policy: str = "least_loaded"
    heartbeat_interval_s: float = 0.25
    heartbeat_misses: int = 3
    retry_budget: int = 4
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    queue_limit: Optional[int] = None
    replay: Optional[CacheReplayConfig] = None
    pool_capacity_bytes: Optional[float] = None
    prefill_chunk: Optional[int] = None

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.policy not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {self.policy!r}; choose from "
                f"{ROUTER_POLICIES}"
            )
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be >= 1")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 when set")


class _ClusterRequest:
    """Cluster-level bookkeeping for one trace request.

    Tracks the exactly-once contract (``completions`` must end at 1
    for completed requests, 0 for failed ones) and the retry budget.
    The per-placement :class:`~repro.serving.request.Request` object
    is recreated on every placement — a failover restarts prefill from
    scratch, because the crashed replica's KV state is gone.
    """

    __slots__ = (
        "index", "trace", "state", "attempts", "completions",
        "replica", "live", "finished", "terminal_s",
    )

    def __init__(self, index: int, trace: TraceRequest):
        self.index = index
        self.trace = trace
        self.state = "pending"  # pending | placed | completed | failed
        self.attempts = 0
        self.completions = 0
        self.replica: Optional[int] = None
        self.live: Optional[Request] = None
        self.finished: Optional[Request] = None
        self.terminal_s = 0.0

    @property
    def terminal(self) -> bool:
        return self.state in ("completed", "failed")

    def fresh_request(self) -> Request:
        self.live = Request(
            request_id=self.index,
            arrival_s=self.trace.arrival_s,
            input_tokens=self.trace.input_tokens,
            output_tokens=self.trace.output_tokens,
            prefix_group=getattr(self.trace, "prefix_group", -1),
            shared_tokens=getattr(self.trace, "shared_tokens", 0),
        )
        return self.live


class _Replica:
    """One serving replica: scheduler, optional cache pool, telemetry."""

    def __init__(self, rid: int, config: ClusterConfig,
                 system: ServingSystem, arch: ArchShape,
                 effective_cap: int):
        self.rid = rid
        self.config = config
        self.system = system
        self.arch = arch
        self.effective_cap = effective_cap
        self.alive = True
        self.detected_dead = False
        self.rejecting = False
        self.brownout_factor = 1.0
        self.stepping = False
        self.epoch = 0  # bumped per crash; stale STEP_DONEs are dropped
        self.misses = 0
        self.crashed_at: Optional[float] = None
        # telemetry
        self.busy_s = 0.0
        self.generated = 0
        self.steps = 0
        self.completed = 0
        self.crashes = 0
        self.downtime_s = 0.0
        self.scheduler: ContinuousBatchScheduler = None  # set below
        self.cache: Optional[_CacheReplay] = None
        self._boot()

    def _boot(self) -> None:
        """Fresh scheduler + cache pool (initial boot and recovery)."""
        if self.config.replay is not None:
            replay = dataclasses.replace(
                self.config.replay, seed=self.config.replay.seed + self.rid
            )
            self.cache = _CacheReplay(replay, self.system, self.arch)
            if self.config.pool_capacity_bytes is not None:
                self.cache.pool.capacity_bytes = (
                    self.config.pool_capacity_bytes
                )
        self.scheduler = ContinuousBatchScheduler(
            self.effective_cap,
            prefill_chunk=self.config.prefill_chunk,
            admission_gate=self._admission_gate,
        )

    def _admission_gate(self, request: Request) -> bool:
        """Admission-window block composed with the cache-replay gate."""
        if self.rejecting:
            return False
        if self.cache is not None:
            return self.cache.admission_gate(request)
        return True

    @property
    def load(self) -> int:
        """In-flight requests (resident + queued) — routing weight."""
        return len(self.scheduler.resident) + self.scheduler.pending

    def accepting(self, queue_limit: Optional[int]) -> bool:
        """Whether the router may place new work here.

        A crashed-but-undetected replica still *accepts* placements —
        that is the point of heartbeat detection: the router cannot
        know yet, and those requests become the orphans the detector
        later requeues.
        """
        if self.detected_dead or self.rejecting:
            return False
        if queue_limit is not None and (
            self.scheduler.pending >= queue_limit
        ):
            return False
        return True

    def crash(self, now: float) -> None:
        self.alive = False
        self.stepping = False
        self.epoch += 1
        self.crashes += 1
        self.crashed_at = now

    def recover(self, now: float) -> None:
        if self.crashed_at is not None:
            self.downtime_s += now - self.crashed_at
            self.crashed_at = None
        self.alive = True
        self.detected_dead = False
        self.misses = 0
        self.brownout_factor = 1.0
        self._boot()  # rejoins empty: schedulers and KV do not survive

    def harvest_orphans(self) -> List[Request]:
        """Pull every queued/resident request out of a dead replica."""
        orphans = list(self.scheduler.queued) + list(
            self.scheduler.resident
        )
        for request in orphans:
            self.scheduler.evict(request.request_id)
            if self.cache is not None:
                self.cache.abort(request)
        return orphans

    def telemetry(self) -> Dict[str, float]:
        out = {
            "replica": self.rid,
            "generated_tokens": float(self.generated),
            "busy_s": self.busy_s,
            "steps": float(self.steps),
            "completed": float(self.completed),
            "tokens_per_s": (
                self.generated / self.busy_s if self.busy_s > 0 else 0.0
            ),
            "crashes": float(self.crashes),
            "downtime_s": self.downtime_s,
        }
        if self.cache is not None:
            out["measured_kv_bits"] = self.cache.measured_kv_bits()
            out["replayed_tokens"] = float(self.cache.replayed_tokens)
            out["forks"] = float(self.cache.pool.forks)
            out["shared_bytes_saved"] = self.cache.pool.summary()[
                "shared_bytes_saved"
            ]
            if self.cache.tiering is not None:
                # Final incarnation only: a crash reboots the replica's
                # pool and store (KV does not survive), so these count
                # the pages the surviving incarnation placed.
                out["eviction"] = self.cache.tiering.policy_name
                for key, value in self.cache.tiering.summary().items():
                    out[f"tier_{key}"] = value
        return out


class _Router:
    """Placement policies over the replica set.

    All hashing is :func:`zlib.crc32` so placement is stable across
    processes (``hash()`` is salted and would break the bit-identical
    rerun contract).
    """

    _VNODES = 16

    def __init__(self, policy: str, replicas: List[_Replica]):
        self.policy = policy
        self.replicas = replicas
        # Consistent-hash ring: _VNODES virtual nodes per replica.
        ring: List[Tuple[int, int]] = []
        for replica in replicas:
            for vnode in range(self._VNODES):
                point = zlib.crc32(f"{replica.rid}:{vnode}".encode())
                ring.append((point, replica.rid))
        self.ring = sorted(ring)

    def place(self, creq: _ClusterRequest,
              queue_limit: Optional[int]) -> Optional[_Replica]:
        eligible = [
            r for r in self.replicas if r.accepting(queue_limit)
        ]
        if not eligible:
            return None
        if self.policy == "least_loaded":
            return min(eligible, key=lambda r: (r.load, r.rid))
        if self.policy == "prefix_affinity":
            group = getattr(creq.trace, "prefix_group", -1)
            if group >= 0:
                home = zlib.crc32(
                    f"group:{group}".encode()
                ) % len(self.replicas)
                for replica in eligible:
                    if replica.rid == home:
                        return replica
            # No group (or home ineligible): least-loaded fallback.
            return min(eligible, key=lambda r: (r.load, r.rid))
        # consistent_hash: walk the ring clockwise from the request's
        # point to the first eligible replica.
        key = zlib.crc32(f"req:{creq.index}".encode())
        okay = {r.rid for r in eligible}
        start = 0
        while start < len(self.ring) and self.ring[start][0] < key:
            start += 1
        for offset in range(len(self.ring)):
            _, rid = self.ring[(start + offset) % len(self.ring)]
            if rid in okay:
                return self.replicas[rid]
        return None


@dataclass
class ClusterReport:
    """Aggregated outcome of one cluster replay.

    ``duplicate_completions`` and ``lost`` are contract counters: any
    nonzero value is a bug in the replay, and the fault-injection
    smoke test asserts both are zero under a seeded crash plan.
    """

    system: str
    replicas: int
    policy: str
    oom: bool
    completed: int = 0
    failed: int = 0
    generated_tokens: int = 0
    total_time_s: float = 0.0
    busy_s: float = 0.0
    generation_throughput: float = 0.0
    tokens_per_s: float = 0.0
    mean_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    mean_ttft_s: float = 0.0
    p95_ttft_s: float = 0.0
    mean_tpot_s: float = 0.0
    mean_queue_delay_s: float = 0.0
    p95_queue_delay_s: float = 0.0
    p99_queue_delay_s: float = 0.0
    retries: int = 0
    requeues: int = 0
    failovers: int = 0
    rejections: int = 0
    capacity_rejections: int = 0
    detected_failures: int = 0
    downtime_s: float = 0.0
    duplicate_completions: int = 0
    lost: int = 0
    # Tiered KV hierarchy aggregates, summed across replicas (each
    # replica's final incarnation) when the replay runs with
    # ``device_budget_mb``; all zero otherwise.
    tier_hits: int = 0
    tier_misses: int = 0
    tier_evictions: int = 0
    tier_spilled_bytes: float = 0.0
    tier_promoted_bytes: float = 0.0
    tier_transfer_cycles: float = 0.0
    # Prefix-sharing aggregates, summed across replicas' surviving
    # incarnations in cache-replay mode; zero in analytic mode.
    forks: int = 0
    shared_bytes_saved: float = 0.0
    per_replica: List[Dict[str, float]] = field(default_factory=list)

    def as_dict(self) -> Dict:
        """JSON-ready dict (the seed-identity contract compares these)."""
        return dataclasses.asdict(self)


class _ClusterSim:
    """The event loop behind :func:`simulate_cluster`."""

    def __init__(self, system: ServingSystem, arch: ArchShape,
                 trace: Sequence[TraceRequest], config: ClusterConfig,
                 faults: FaultPlan):
        self.system = system
        self.arch = arch
        self.config = config
        self.faults = faults
        self.requests = [
            _ClusterRequest(i, item) for i, item in enumerate(trace)
        ]
        worst = max(r.input_tokens + r.output_tokens for r in trace)
        if config.replay is None:
            fit = max_supported_batch(system, arch, worst)
            self.oom = fit < 1
            effective_cap = max(1, min(config.max_batch, fit))
        else:
            effective_cap = config.max_batch
            self.oom = False
        self.replicas = [
            _Replica(rid, config, system, arch, effective_cap)
            for rid in range(config.replicas)
        ]
        if config.replay is not None:
            self.oom = all(
                r.cache.budget_bytes <= 0.0 for r in self.replicas
            )
        self.router = _Router(config.policy, self.replicas)
        self.heap: List[tuple] = []
        self._seq = itertools.count()
        self._heartbeat_pending = False
        self.now = 0.0
        # counters
        self.retries = 0
        self.requeues = 0
        self.failovers = 0
        self.rejections = 0
        self.capacity_rejections = 0
        self.detected_failures = 0
        self.duplicate_completions = 0
        # terminal-order metric streams (deterministic given the seed)
        self.latencies: List[float] = []
        self.ttfts: List[float] = []
        self.tpots: List[float] = []
        self.queue_delays: List[float] = []

    # -- event plumbing ------------------------------------------------

    def _push(self, time_s: float, priority: int, payload: tuple) -> None:
        heapq.heappush(
            self.heap, (time_s, priority, next(self._seq), payload)
        )

    def _backoff(self, attempts: int) -> float:
        return min(
            self.config.backoff_base_s * (2.0 ** (attempts - 1)),
            self.config.backoff_cap_s,
        )

    def _outstanding(self) -> bool:
        return any(not creq.terminal for creq in self.requests)

    def _ensure_heartbeat(self, now: float) -> None:
        if (
            self.faults.enabled
            and not self._heartbeat_pending
            and self._outstanding()
        ):
            self._heartbeat_pending = True
            self._push(
                now + self.config.heartbeat_interval_s, _HEARTBEAT, ()
            )

    # -- placement / requeue -------------------------------------------

    def _place(self, creq: _ClusterRequest, now: float) -> None:
        """Route one pending request, or back off toward failure."""
        if creq.terminal:
            return
        target = self.router.place(creq, self.config.queue_limit)
        if target is None:
            self.rejections += 1
            creq.attempts += 1
            if creq.attempts >= self.config.retry_budget:
                creq.state = "failed"
                creq.terminal_s = now
                return
            self._push(
                now + self._backoff(creq.attempts), _RETRY, (creq.index,)
            )
            return
        creq.state = "placed"
        creq.replica = target.rid
        target.scheduler.submit(creq.fresh_request())
        self._try_start_step(target, now)

    def _requeue(self, creq: _ClusterRequest, now: float,
                 failover: bool) -> None:
        """Put an evicted/orphaned request back through placement.

        Failover orphans re-place immediately (their replica died; any
        survivor may take them).  Capacity evictions instead burn an
        attempt and back off through a RETRY event — an immediate
        re-place could land on the same full replica in the same
        instant and livelock with no simulation-time progress, whereas
        backoff both advances the clock and bounds the cycle by the
        retry budget.
        """
        creq.state = "pending"
        creq.replica = None
        creq.live = None
        self.requeues += 1
        if failover:
            self.failovers += 1
            self._place(creq, now)
            return
        creq.attempts += 1
        if creq.attempts >= self.config.retry_budget:
            creq.state = "failed"
            creq.terminal_s = now
            return
        self._push(
            now + self._backoff(creq.attempts), _RETRY, (creq.index,)
        )

    # -- replica stepping ----------------------------------------------

    def _try_start_step(self, replica: _Replica, now: float) -> None:
        """Plan and launch one iteration on an idle, healthy replica.

        Capacity refusals from the cache pool evict the offender for
        requeue elsewhere and re-plan, so one oversized request cannot
        wedge a replica; the re-plan loop is bounded by the queue
        length (every refused request leaves the scheduler).
        """
        if replica.stepping or not replica.alive or replica.detected_dead:
            return
        admitted_all: List[Request] = []
        while True:
            plan = replica.scheduler.plan_iteration(now)
            if plan is None:
                return  # idle: the next event on this replica wakes it
            if replica.cache is None:
                break
            clean = True
            for request in plan.admitted:
                try:
                    replica.cache.admit(request)
                    admitted_all.append(request)
                except CacheCapacityError:
                    self.capacity_rejections += 1
                    replica.scheduler.evict(request.request_id)
                    replica.cache.abort(request)
                    self._requeue(
                        self.requests[request.request_id], now,
                        failover=False,
                    )
                    clean = False
            if clean:
                break
            # Re-plan without the evicted request(s); survivors of this
            # wave are already resident and will not re-admit.
        if replica.cache is not None and admitted_all != plan.admitted:
            # Price prefill for everything admitted across re-plans.
            plan = dataclasses.replace(plan, admitted=admitted_all)
        step_time = iteration_time_s(
            self.system, self.arch, plan, self.config.prefill_chunk
        )
        step_time *= replica.brownout_factor
        generated_now = len(plan.resident)
        if replica.cache is not None:
            try:
                replica.cache.step(plan.resident, plan.resident_ids)
            except CacheCapacityError as error:
                # Mid-step append refusal: the batch append left every
                # sequence untouched; evict the named offender and let
                # the remaining residents finish the (already priced)
                # iteration without further cache work this step.
                self.capacity_rejections += 1
                offender = replica.scheduler.evict(error.seq_id)
                if offender is not None:
                    replica.cache.abort(offender)
                    self._requeue(
                        self.requests[error.seq_id], now, failover=False
                    )
                generated_now = max(0, generated_now - 1)
            # Charge modeled tier-transfer time (admissions + this
            # step's spill traffic) into the iteration when the replay
            # config opted in; brownout already applied — transfers are
            # memory-system time, not compute subject to the slowdown.
            step_time += replica.cache.transfer_penalty_s()
        replica.stepping = True
        self._push(
            now + step_time, _STEP_DONE,
            (replica.rid, replica.epoch, step_time, generated_now),
        )

    def _finish_step(self, replica: _Replica, now: float,
                     step_time: float, generated_now: int) -> None:
        replica.stepping = False
        replica.busy_s += step_time
        replica.generated += generated_now
        replica.steps += 1
        retired = replica.scheduler.complete_iteration(now)
        for request in retired:
            creq = self.requests[request.request_id]
            if creq.state == "completed":
                # Contract violation counter — must stay zero.
                self.duplicate_completions += 1
                continue
            creq.state = "completed"
            creq.completions += 1
            creq.finished = request
            creq.terminal_s = now
            replica.completed += 1
            self.latencies.append(request.latency_s())
            if request.first_token_s >= 0:
                self.ttfts.append(request.ttft_s())
            if request.generated > 1:
                self.tpots.append(request.tpot_s())
            self.queue_delays.append(
                max(0.0, request.start_s - request.arrival_s)
            )
        if replica.cache is not None:
            replica.cache.retire(retired)
        self._try_start_step(replica, now)

    # -- fault handling ------------------------------------------------

    def _detect_dead(self, replica: _Replica, now: float) -> None:
        self.detected_failures += 1
        replica.detected_dead = True
        for request in replica.harvest_orphans():
            self._requeue(
                self.requests[request.request_id], now, failover=True
            )

    def _apply_fault(self, event, now: float) -> None:
        replica = self.replicas[event.replica]
        if event.kind is FaultKind.CRASH:
            replica.crash(now)
        elif event.kind is FaultKind.RECOVER:
            # Recovery may win the race against detection, in which
            # case requests stranded on the dead incarnation must be
            # requeued.  Harvest BEFORE booting the fresh scheduler
            # (the orphans live in the old one) but requeue AFTER —
            # requeuing first could route an orphan straight back to
            # this replica's old scheduler, which the boot then throws
            # away, silently losing the request.
            orphans = (
                replica.harvest_orphans()
                if not replica.detected_dead else []
            )
            replica.recover(now)
            for request in orphans:
                self._requeue(
                    self.requests[request.request_id], now,
                    failover=True,
                )
            self._try_start_step(replica, now)
        elif event.kind is FaultKind.BROWNOUT:
            if replica.alive:
                replica.brownout_factor = event.factor
        elif event.kind is FaultKind.BROWNOUT_END:
            replica.brownout_factor = 1.0
        elif event.kind is FaultKind.REJECT:
            replica.rejecting = True
        elif event.kind is FaultKind.REJECT_END:
            replica.rejecting = False
            if replica.alive:
                self._try_start_step(replica, now)

    def _heartbeat(self, now: float) -> None:
        self._heartbeat_pending = False
        for replica in self.replicas:
            if replica.alive:
                replica.misses = 0
                continue
            replica.misses += 1
            if (
                replica.misses >= self.config.heartbeat_misses
                and not replica.detected_dead
            ):
                self._detect_dead(replica, now)
        self._ensure_heartbeat(now)

    # -- main loop -----------------------------------------------------

    def run(self) -> ClusterReport:
        if self.oom:
            return ClusterReport(
                system=self.system.name, replicas=self.config.replicas,
                policy=self.config.policy, oom=True,
            )
        for creq in self.requests:
            self._push(creq.trace.arrival_s, _ARRIVAL, (creq.index,))
        for event in self.faults.events:
            self._push(event.time_s, _FAULT, (event,))
        self._ensure_heartbeat(0.0)

        while self.heap:
            time_s, priority, _, payload = heapq.heappop(self.heap)
            self.now = time_s
            if priority == _ARRIVAL:
                self._place(self.requests[payload[0]], time_s)
                self._ensure_heartbeat(time_s)
            elif priority == _FAULT:
                self._apply_fault(payload[0], time_s)
            elif priority == _HEARTBEAT:
                self._heartbeat(time_s)
            elif priority == _RETRY:
                creq = self.requests[payload[0]]
                if not creq.terminal:
                    self.retries += 1
                    self._place(creq, time_s)
            else:  # _STEP_DONE
                rid, epoch, step_time, generated_now = payload
                replica = self.replicas[rid]
                if epoch != replica.epoch:
                    continue  # stale: the replica crashed mid-step
                self._finish_step(
                    replica, time_s, step_time, generated_now
                )
        return self._report()

    def _report(self) -> ClusterReport:
        completed = sum(
            1 for c in self.requests if c.state == "completed"
        )
        failed = sum(1 for c in self.requests if c.state == "failed")
        lost = len(self.requests) - completed - failed
        # Close downtime books for replicas still dead at the end.
        end = max(
            [c.terminal_s for c in self.requests if c.terminal],
            default=self.now,
        )
        downtime = 0.0
        for replica in self.replicas:
            if replica.crashed_at is not None:
                replica.downtime_s += max(0.0, end - replica.crashed_at)
                replica.crashed_at = None
            downtime += replica.downtime_s
        busy = 0.0
        generated = 0
        tier_hits = tier_misses = tier_evictions = 0
        tier_spilled = tier_promoted = tier_cycles = 0.0
        forks = 0
        shared_saved = 0.0
        for replica in self.replicas:
            busy += replica.busy_s
            generated += replica.generated
            if replica.cache is not None:
                forks += replica.cache.pool.forks
                shared_saved += replica.cache.pool.summary()[
                    "shared_bytes_saved"
                ]
            if (
                replica.cache is not None
                and replica.cache.tiering is not None
            ):
                store = replica.cache.tiering
                tier_hits += store.hits
                tier_misses += store.misses
                tier_evictions += store.evictions
                tier_spilled += store.spilled_bytes
                tier_promoted += store.promoted_bytes
                tier_cycles += store.transfer_cycles
        return ClusterReport(
            system=self.system.name,
            replicas=self.config.replicas,
            policy=self.config.policy,
            oom=False,
            completed=completed,
            failed=failed,
            generated_tokens=generated,
            total_time_s=end,
            busy_s=busy,
            generation_throughput=(
                generated / busy if busy > 0 else 0.0
            ),
            tokens_per_s=generated / end if end > 0 else 0.0,
            mean_latency_s=(
                float(np.mean(self.latencies)) if self.latencies else 0.0
            ),
            p95_latency_s=(
                float(np.percentile(self.latencies, 95))
                if self.latencies else 0.0
            ),
            mean_ttft_s=(
                float(np.mean(self.ttfts)) if self.ttfts else 0.0
            ),
            p95_ttft_s=(
                float(np.percentile(self.ttfts, 95))
                if self.ttfts else 0.0
            ),
            mean_tpot_s=(
                float(np.mean(self.tpots)) if self.tpots else 0.0
            ),
            mean_queue_delay_s=(
                float(np.mean(self.queue_delays))
                if self.queue_delays else 0.0
            ),
            p95_queue_delay_s=(
                float(np.percentile(self.queue_delays, 95))
                if self.queue_delays else 0.0
            ),
            p99_queue_delay_s=(
                float(np.percentile(self.queue_delays, 99))
                if self.queue_delays else 0.0
            ),
            retries=self.retries,
            requeues=self.requeues,
            failovers=self.failovers,
            rejections=self.rejections,
            capacity_rejections=self.capacity_rejections,
            detected_failures=self.detected_failures,
            downtime_s=downtime,
            duplicate_completions=self.duplicate_completions,
            lost=lost,
            tier_hits=tier_hits,
            tier_misses=tier_misses,
            tier_evictions=tier_evictions,
            tier_spilled_bytes=tier_spilled,
            tier_promoted_bytes=tier_promoted,
            tier_transfer_cycles=tier_cycles,
            forks=forks,
            shared_bytes_saved=shared_saved,
            per_replica=[r.telemetry() for r in self.replicas],
        )


def simulate_cluster(
    system: ServingSystem,
    arch: ArchShape,
    trace: Sequence[TraceRequest],
    config: Optional[ClusterConfig] = None,
    faults: Optional[FaultPlan] = None,
) -> ClusterReport:
    """Replay ``trace`` through an N-replica cluster under ``faults``.

    Args:
        system: the (device, method) pairing every replica runs.
        arch: model architecture (paper dimensions).
        trace: arrival-sorted requests (validated, like
            :func:`~repro.serving.simulator.simulate_trace`).
        config: cluster knobs; defaults to a 2-replica least-loaded
            cluster.
        faults: a fault plan (validated against the replica count);
            None replays fault-free — with one replica that reduces
            exactly to :func:`~repro.serving.simulator.simulate_trace`.

    Returns:
        A :class:`ClusterReport`; ``report.as_dict()`` is the JSON
        payload the bench harness and CLI emit.
    """
    validate_trace(trace)
    if config is None:
        config = ClusterConfig()
    if faults is None:
        faults = FaultPlan([])
    faults.validate(config.replicas)
    return _ClusterSim(system, arch, trace, config, faults).run()
