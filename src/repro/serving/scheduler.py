"""Token-level continuous batching (the paper's Section 5.3 policy).

The scheduler keeps at most ``max_batch`` requests resident.  Arrivals
queue; whenever a slot frees (or at trace start), the oldest queued
arrival is admitted and pays a prefill pass.  Every generation
iteration advances all resident requests by one token — Oaken's
compute cores each handle one token of one request, so resident batch
size maps directly to core occupancy.

The scheduler is deliberately platform-agnostic: it produces iteration
descriptions (batch size, per-request context lengths, prompt
admissions) and the simulator prices them with the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.serving.request import Request, RequestPhase


@dataclass
class IterationPlan:
    """One scheduler step: admissions then a generation iteration.

    Attributes:
        admitted: requests entering prefill this step.
        resident: requests participating in the generation iteration
            (after admissions).
        mean_context: average context length across residents.
        ragged: True when resident prompt lengths differ enough to
            trigger padding penalties on systolic platforms.
        prefill_tokens: prompt tokens processed this iteration (only
            nonzero in chunked-prefill mode, where admissions prefill
            incrementally instead of stalling the batch — the
            Sarathi-style scheduling the paper's serving layer cites).
        resident_ids: the resident requests' ids, in ``resident``
            order, computed once here so per-iteration consumers (the
            cache replay's batched append/read pair per layer) never
            rebuild the id list per layer inside the hot loop.
    """

    admitted: List[Request]
    resident: List[Request]
    mean_context: float
    ragged: bool
    prefill_tokens: int = 0
    resident_ids: Tuple[int, ...] = ()


class ContinuousBatchScheduler:
    """Iteration-level batching with bounded residency.

    Args:
        max_batch: resident request cap (figure sweeps set this).
        prefill_chunk: when set, admissions do not stall the batch with
            a monolithic prefill; instead up to ``prefill_chunk``
            prompt tokens are processed per iteration alongside the
            resident generation work, and a request starts generating
            once its prompt is fully consumed.
        admission_gate: optional predicate consulted before each
            admission; returning False leaves the request (and, FIFO,
            everything behind it) queued for a later iteration.  The
            serving simulator's cache-replay mode uses this to drive
            admission from the measured pool footprint instead of the
            residency cap alone; with the tiered KV hierarchy enabled
            the gate never refuses (memory pressure spills to the host
            tier instead of queueing), so :attr:`gate_refusals` staying
            zero is how replay reports distinguish the evict-and-spill
            admission mode from reject/queue backpressure.

    Attributes:
        gate_refusals: times the admission gate blocked the FIFO head
            (and, transitively, everything behind it).  A direct
            measure of admission backpressure, complementing queueing
            delay: it counts the *iterations* lost to a full pool, not
            just the seconds.
    """

    def __init__(self, max_batch: int,
                 prefill_chunk: Optional[int] = None,
                 admission_gate: Optional[
                     Callable[[Request], bool]
                 ] = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if prefill_chunk is not None and prefill_chunk < 1:
            raise ValueError("prefill_chunk must be >= 1 when set")
        self.max_batch = max_batch
        self.prefill_chunk = prefill_chunk
        self.admission_gate = admission_gate
        self.gate_refusals = 0
        self._queue: List[Request] = []
        self._resident: List[Request] = []
        self._prefilling: dict = {}
        self._finished: List[Request] = []

    # ------------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Enqueue an arrived request (FIFO)."""
        request.phase = RequestPhase.QUEUED
        self._queue.append(request)

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def resident(self) -> List[Request]:
        return list(self._resident)

    @property
    def queued(self) -> List[Request]:
        """Arrived-but-unadmitted requests, FIFO order."""
        return list(self._queue)

    def evict(self, request_id: int) -> Optional[Request]:
        """Remove one request from the scheduler, wherever it lives.

        Used by the cluster replay's requeue layer: a request whose
        cache admission failed (or whose replica is being drained) is
        pulled out of the queue / resident set / prefill tracking and
        handed back for placement elsewhere.  Returns the request, or
        None when the scheduler does not hold it (already finished or
        never submitted).  Finished requests are never evicted.
        """
        for bucket in (self._queue, self._resident):
            for index, request in enumerate(bucket):
                if request.request_id == request_id:
                    del bucket[index]
                    self._prefilling.pop(request_id, None)
                    return request
        return None

    @property
    def finished(self) -> List[Request]:
        return list(self._finished)

    @property
    def has_work(self) -> bool:
        return bool(self._queue or self._resident)

    # ------------------------------------------------------------------

    def plan_iteration(self, now_s: float) -> Optional[IterationPlan]:
        """Admit queued requests into free slots and plan one iteration.

        Args:
            now_s: current simulation time; only requests that have
                arrived are admissible.

        Returns:
            The iteration plan, or None when nothing can run yet.
        """
        admitted: List[Request] = []
        while (
            len(self._resident) < self.max_batch
            and self._queue
            and self._queue[0].arrival_s <= now_s
        ):
            if (
                self.admission_gate is not None
                and not self.admission_gate(self._queue[0])
            ):
                self.gate_refusals += 1
                break
            request = self._queue.pop(0)
            request.phase = RequestPhase.PREFILL
            request.start_s = now_s
            admitted.append(request)
            self._resident.append(request)
            if self.prefill_chunk is not None:
                self._prefilling[request.request_id] = (
                    request.input_tokens
                )
        if not self._resident:
            return None

        prefill_tokens = 0
        if self.prefill_chunk is not None and self._prefilling:
            # FCFS chunk budget across prefilling requests.
            budget = self.prefill_chunk
            for request in self._resident:
                remaining = self._prefilling.get(request.request_id)
                if remaining is None or budget <= 0:
                    continue
                consumed = min(remaining, budget)
                budget -= consumed
                prefill_tokens += consumed
                if remaining - consumed <= 0:
                    del self._prefilling[request.request_id]
                    request.phase = RequestPhase.GENERATION
                else:
                    self._prefilling[request.request_id] = (
                        remaining - consumed
                    )

        generating = [
            r for r in self._resident
            if r.request_id not in self._prefilling
        ]
        contexts = [r.context_length for r in generating] or [1]
        prompts = [r.input_tokens for r in self._resident]
        ragged = (
            len(prompts) > 1
            and (max(prompts) - min(prompts)) > 0.25 * max(prompts)
        )
        return IterationPlan(
            admitted=admitted,
            resident=generating,
            mean_context=float(sum(contexts)) / len(contexts),
            ragged=ragged,
            prefill_tokens=prefill_tokens,
            resident_ids=tuple(r.request_id for r in generating),
        )

    def complete_iteration(self, now_s: float) -> List[Request]:
        """Advance every resident request one token; retire finished ones.

        Returns:
            Requests that finished in this iteration.
        """
        retired: List[Request] = []
        still_resident: List[Request] = []
        for request in self._resident:
            if request.request_id in self._prefilling:
                # Still consuming its prompt (chunked prefill mode);
                # no token generated this iteration.
                still_resident.append(request)
                continue
            request.phase = RequestPhase.GENERATION
            request.generated += 1
            if request.generated == 1:
                request.first_token_s = now_s
            if request.done:
                request.phase = RequestPhase.FINISHED
                request.finish_s = now_s
                retired.append(request)
                self._finished.append(request)
            else:
                still_resident.append(request)
        self._resident = still_resident
        return retired

    def next_arrival(self) -> Optional[float]:
        """Arrival time of the oldest queued request, if any."""
        if not self._queue:
            return None
        return self._queue[0].arrival_s
