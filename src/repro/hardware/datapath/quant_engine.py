"""The streaming quantization engine (Figure 9a, end to end).

:class:`StreamingQuantEngine` wires the stage models of
:mod:`repro.hardware.datapath.quant_stages` into the two-pass,
double-buffered token pipeline the paper describes, and produces both:

* the **bits** — an :class:`~repro.core.encoding.EncodedKV` that the
  unit tests assert is identical to what the vectorized
  :class:`~repro.core.quantizer.OakenQuantizer` emits, and
* the **cycles** — a :class:`~repro.hardware.datapath.records.CycleReport`
  with per-stage occupancy, the structural counterpart of the analytic
  :class:`~repro.hardware.engines.QuantEngine` throughput model.

Timing semantics: each token makes two passes over its ``D`` elements
(range discovery, then quantization) with a fixed σ-calculator
turnaround in between; tokens pipeline three deep (pass 1 of token
*t+2* overlaps the σ-calculation of *t+1* and pass 2 of *t*), so the
steady-state initiation interval is
``max(ceil(D / lanes), scale_latency_cycles)`` — the lanes-per-cycle
rate the analytic :class:`~repro.hardware.engines.QuantEngine` assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import OakenConfig
from repro.core.encoding import EncodedKV
from repro.core.grouping import MIDDLE_GROUP, GroupThresholds
from repro.core.modes import EXACT_F64, ComputeModeLike, resolve_compute_mode
from repro.hardware.datapath.quant_stages import (
    Decomposer,
    FusedConcatenator,
    GroupScale,
    MinMaxFinder,
    OutlierExtractor,
    ScaleCalculator,
)
from repro.hardware.datapath.records import (
    CycleReport,
    TokenQuantResult,
)


@dataclass(frozen=True)
class DatapathTiming:
    """Physical parameters of the streaming engine.

    Attributes:
        lanes: elements processed per cycle in each streaming pass.
        freq_ghz: engine clock.
        scale_latency_cycles: turnaround of the σ-calculator for one
            token — every group has its own subtract/divide unit, so
            this is a fixed latency, not per-group.
    """

    lanes: int = 32
    freq_ghz: float = 1.0
    scale_latency_cycles: int = 4

    def pass_cycles(self, dim: int) -> int:
        """Cycles for one streaming pass over a ``dim``-element token."""
        return max(1, math.ceil(dim / self.lanes))


class StreamingQuantEngine:
    """Element-streaming quantization engine for one (layer, tensor) pair.

    Args:
        config: quantizer hyper-parameters.
        thresholds: offline-profiled thresholds held in the engine's
            control registers.
        timing: lane width and clock of the datapath.
        mode: the :class:`~repro.core.modes.ComputeMode` stage mode.
            The default ``exact_f64`` is the frozen structural golden
            model; ``deploy_f32`` runs every stage's arithmetic in
            float32, the scalar anchor for the vectorized engine's
            float32 path.
    """

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        timing: Optional[DatapathTiming] = None,
        mode: ComputeModeLike = None,
    ):
        if thresholds.num_outer_bands != config.num_outer_bands:
            raise ValueError("thresholds/config outer band mismatch")
        if thresholds.num_inner_bands != config.num_inner_bands:
            raise ValueError("thresholds/config inner band mismatch")
        self.config = config
        self.thresholds = thresholds
        self.timing = timing if timing is not None else DatapathTiming()
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        self._decomposer = Decomposer(config, thresholds, self.mode)
        self._scale_calc = ScaleCalculator(config, self.mode)

    # ------------------------------------------------------------------
    # per-token functional path
    # ------------------------------------------------------------------

    def quantize_token(
        self, vector: Sequence[float], report: Optional[CycleReport] = None
    ) -> TokenQuantResult:
        """Stream one token vector through the engine.

        Args:
            vector: the token's key or value vector (length ``D``).
            report: optional cycle report to accumulate stage activity
                into (the engine-level cycle math lives in
                :meth:`quantize_matrix`).

        Returns:
            The fused dense row, COO stream, and per-group scales.
        """
        row = self.mode.cast(np.asarray(vector, dtype=np.float64))
        values = list(row)
        dim = len(values)
        cfg = self.config
        minmax = MinMaxFinder(cfg.num_sparse_bands)
        extractor = OutlierExtractor(cfg)
        concat = FusedConcatenator(dim, cfg)

        # Pass 1: decompose + per-group range discovery.
        routed = []
        for position, value in enumerate(values):
            element = self._decomposer.route(position, value)
            minmax.update(element)
            routed.append(element)

        # Between passes: the sigma calculator prices each group.
        scales = {}
        groups = [MIDDLE_GROUP] + list(range(cfg.num_sparse_bands))
        for group in groups:
            lo, hi = minmax.range_of(group)
            scales[group] = self._scale_calc.scale(group, lo, hi)

        # Pass 2: quantize, extract sparse records, assemble dense row.
        for element in routed:
            scale = scales[element.group]
            code = scale.encode(element.shifted)
            if element.is_outlier:
                record = extractor.emit(element, code)
                if cfg.fused_encoding:
                    concat.write_outlier(
                        element.position, record.fused_nibble
                    )
            else:
                concat.write_inlier(element.position, code)

        if report is not None:
            pass_cycles = self.timing.pass_cycles(dim)
            report.stage("decomposer").record(dim, pass_cycles)
            report.stage("minmax_finder").record(dim, pass_cycles)
            report.stage("scale_calculator").record(
                len(groups), self.timing.scale_latency_cycles
            )
            report.stage("quantizer").record(dim, pass_cycles)
            # The shifter compacts in-line with pass 2: it is busy in
            # every pass cycle whose lane group contains an outlier,
            # bounded by the pass itself.
            report.stage("zero_remove_shifter").record(
                len(extractor.records),
                min(pass_cycles, len(extractor.records)),
            )

        middle = scales[MIDDLE_GROUP]
        return TokenQuantResult(
            dense_codes=concat.merged(),
            records=extractor.records,
            middle_lo=middle.lo,
            middle_hi=middle.hi,
            band_lo=[scales[b].lo for b in range(cfg.num_sparse_bands)],
            band_hi=[scales[b].hi for b in range(cfg.num_sparse_bands)],
        )

    # ------------------------------------------------------------------
    # matrix-level drive + cycle math
    # ------------------------------------------------------------------

    def quantize_matrix(
        self, values: np.ndarray
    ) -> "tuple[EncodedKV, CycleReport]":
        """Stream a [T, D] matrix token by token.

        Returns:
            ``(encoded, cycles)`` where ``encoded`` is bit-identical to
            the vectorized quantizer's output and ``cycles`` carries the
            double-buffered pipeline timing.
        """
        x = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if x.ndim != 2:
            raise ValueError(f"expected a [T, D] matrix, got {x.shape}")
        tokens, dim = x.shape
        report = CycleReport(tokens=tokens, elements=tokens * dim)
        results = [
            self.quantize_token(x[t], report=report) for t in range(tokens)
        ]
        report.total_cycles = self._pipeline_cycles(tokens, dim)
        return self._assemble(x.shape, results), report

    def _pipeline_cycles(self, tokens: int, dim: int) -> int:
        """Token-level three-stage pipeline timing.

        Tokens are buffered three deep: while token *t* streams through
        the quantize/emit pass, token *t+1* sits in the σ-calculator
        and token *t+2* streams through decompose/min-max.  The
        steady-state initiation interval is therefore the slowest of
        the three stages, which for any realistic vector width is the
        element pass itself — matching the analytic engine's
        lanes-per-cycle rate.
        """
        if tokens <= 0:
            return 0
        timing = self.timing
        pass_cycles = timing.pass_cycles(dim)
        scale_cycles = timing.scale_latency_cycles
        interval = max(pass_cycles, scale_cycles)
        fill = pass_cycles + scale_cycles + pass_cycles
        return fill + (tokens - 1) * interval

    def _assemble(
        self, shape: "tuple[int, int]", results: List[TokenQuantResult]
    ) -> EncodedKV:
        """Pack per-token results into the EncodedKV storage layout."""
        cfg = self.config
        tokens, dim = shape
        bands = cfg.num_sparse_bands
        dense = np.zeros((tokens, dim), dtype=np.uint8)
        middle_lo = np.zeros(tokens, dtype=np.float64)
        middle_hi = np.zeros(tokens, dtype=np.float64)
        band_lo = np.zeros((tokens, bands), dtype=np.float64)
        band_hi = np.zeros((tokens, bands), dtype=np.float64)
        sparse_token: List[int] = []
        sparse_pos: List[int] = []
        sparse_band: List[int] = []
        sparse_side: List[bool] = []
        sparse_mag: List[int] = []
        sparse_fp16: List[float] = []
        for t, result in enumerate(results):
            dense[t] = result.dense_codes
            middle_lo[t] = result.middle_lo
            middle_hi[t] = result.middle_hi
            band_lo[t] = result.band_lo
            band_hi[t] = result.band_hi
            for record in result.records:
                sparse_token.append(t)
                sparse_pos.append(record.position)
                sparse_band.append(record.band)
                sparse_side.append(record.side)
                sparse_mag.append(record.mag_code)
                if record.fp16_value is not None:
                    sparse_fp16.append(record.fp16_value)
        fp16 = None
        if not cfg.fused_encoding:
            fp16 = np.array(sparse_fp16, dtype=np.float16)
        return EncodedKV(
            config=cfg,
            thresholds=self.thresholds,
            shape=(tokens, dim),
            dense_codes=dense,
            middle_lo=middle_lo.astype(np.float32),
            middle_hi=middle_hi.astype(np.float32),
            band_lo=band_lo.astype(np.float32),
            band_hi=band_hi.astype(np.float32),
            sparse_token=np.array(sparse_token, dtype=np.int64),
            sparse_pos=np.array(sparse_pos, dtype=np.int64),
            sparse_band=np.array(sparse_band, dtype=np.int16),
            sparse_side=np.array(sparse_side, dtype=bool),
            sparse_mag_code=np.array(sparse_mag, dtype=np.uint8),
            sparse_fp16=fp16,
        )
