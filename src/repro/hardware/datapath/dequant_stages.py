"""Stages of the dequantization engine datapath (Figure 9b).

The dequantization engine sits between device memory and the matrix
unit and restores streamed KV history:

* the **OutlierIndexBuffer** holds the sparse COO records of the token
  currently streaming, keyed by position, so the zero-insert shifter
  can realign them with the dense stream;
* the **ZeroInsertShifter** walks the dense row and, at each position
  owned by an outlier, re-expands the fused nibble + record bits into
  the full outlier code (the inverse of the zero-remove compaction);
* the **InlierDequantizer** and **OutlierDequantizer** undo Eq. 3 and
  the group shift for their respective paths;
* the final OR-merge forwards the reconstructed row to the matrix
  unit.

Bit-exactness with :meth:`repro.core.quantizer.OakenQuantizer.dequantize`
is asserted by the unit tests; the scalar arithmetic here deliberately
mirrors the vectorized reference operation for operation (same FP16
scale domain, same degenerate-range guard).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.config import OakenConfig
from repro.core.grouping import GroupThresholds
from repro.core.modes import EXACT_F64, ComputeModeLike, resolve_compute_mode
from repro.hardware.datapath.records import COORecord, scale_sigma


class OutlierIndexBuffer:
    """Per-token staging of sparse records, keyed by dense position.

    Models the "Outlier Index Buffer" in Figure 9b: sparse pages of the
    streaming token are fetched alongside the dense pages, and the
    records wait here until the dense stream reaches their position.
    """

    def __init__(self):
        self._by_position: Dict[int, COORecord] = {}

    def load(self, records: Iterable[COORecord]) -> None:
        """Stage one token's sparse records."""
        self._by_position = {r.position: r for r in records}

    def lookup(self, position: int) -> Optional[COORecord]:
        """Record owning ``position``, if any."""
        return self._by_position.get(position)

    def __len__(self) -> int:
        return len(self._by_position)


@dataclass(frozen=True)
class DequantScales:
    """One token's decode-side scale set.

    Attributes:
        middle_lo / middle_hi: FP16 middle-group bounds as read back
            from memory (float32 storage).
        band_lo / band_hi: per-band magnitude bounds.
    """

    middle_lo: float
    middle_hi: float
    band_lo: Tuple[float, ...]
    band_hi: Tuple[float, ...]


class InlierDequantizer:
    """Dense-path decode: Eq. 3 inverse plus the middle group un-shift.

    The un-shift edges live in stage registers at the
    :class:`~repro.core.modes.ComputeMode` working precision, and the
    divide/add arithmetic runs in that dtype (float32 under the
    deploy_f32 stage mode).
    """

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        mode: ComputeModeLike = None,
    ):
        self.config = config
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        w = self.mode.compute_dtype.type
        mid_lo, mid_hi = thresholds.middle_shift_edges()
        self._mid_lo_edge = w(mid_lo)
        self._mid_hi_edge = w(mid_hi)

    def decode(self, code: int, scales: DequantScales) -> float:
        """Reconstruct one dense slot's value from its stored code.

        Matches the vectorized reference: every slot decodes through the
        middle-group scale (outlier slots are later overwritten by the
        sparse path), and the un-shift direction follows the sign of the
        decoded shifted value.
        """
        w = self.mode.compute_dtype.type
        lo = scales.middle_lo
        hi = scales.middle_hi
        sigma = scale_sigma(lo, hi, self.config.inlier_bits)
        shifted = w(code) / sigma + lo
        if not self.config.group_shift:
            return shifted
        if shifted >= 0:
            return shifted + self._mid_hi_edge
        return shifted + self._mid_lo_edge


class OutlierDequantizer:
    """Sparse-path decode: magnitude un-scale plus band un-shift."""

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        mode: ComputeModeLike = None,
    ):
        self.config = config
        self.thresholds = thresholds
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        w = self.mode.compute_dtype.type
        self._band_edges = tuple(
            (w(lo), w(hi))
            for lo, hi in (
                thresholds.band_shift_edges(b)
                for b in range(thresholds.num_sparse_bands)
            )
        )

    def decode(
        self,
        band: int,
        side: bool,
        mag_code: int,
        scales: DequantScales,
        fp16_value: Optional[float] = None,
    ) -> float:
        """Reconstruct one outlier's value.

        ``mag_code`` and ``side`` come from the zero-insert shifter's
        reassembly (fused nibble + record bits), so a decode through
        this path also proves the fused encoding lost nothing.
        """
        cfg = self.config
        w = self.mode.compute_dtype.type
        if fp16_value is not None:
            # Naive 23-bit layout: the record carries the exact value.
            return w(fp16_value)
        lo = scales.band_lo[band]
        hi = scales.band_hi[band]
        bits = cfg.outlier_bits - 1 if cfg.group_shift else cfg.outlier_bits
        sigma = scale_sigma(lo, hi, bits)
        magnitude = w(mag_code) / sigma + lo
        if not cfg.group_shift:
            return magnitude
        lo_edge, hi_edge = self._band_edges[band]
        if side:
            return hi_edge + magnitude
        return lo_edge - magnitude


class ZeroInsertShifter:
    """Re-expansion of the compacted sparse stream (Figure 9b).

    Walks the dense row position by position; when the index buffer
    owns the position, the fused nibble in the dense slot plus the
    record's code bit(s) are reassembled into the full outlier code and
    routed to the outlier dequantizer — the structural inverse of the
    zero-remove shifter on the quantization side.
    """

    def __init__(self, config: OakenConfig):
        self.config = config

    def record_high_bits(self, record: COORecord) -> int:
        """The code bits that travel in the COO record, not the slot.

        With the paper's 4-bit slots and 5-bit codes this is exactly
        the one side bit; narrower slots would carry more.
        """
        cfg = self.config
        if cfg.group_shift:
            mag_bits = cfg.outlier_bits - 1
            full_code = (int(record.side) << mag_bits) | record.mag_code
        else:
            full_code = record.mag_code
        return full_code >> cfg.inlier_bits

    def reassemble_code(
        self, record: COORecord, dense_slot: int
    ) -> "tuple[int, bool]":
        """Rebuild the full outlier code from nibble + record bits.

        Returns ``(mag_code, side)``.  Raises ValueError when the fused
        nibble read back from the dense slot disagrees with the record —
        a corruption check the tests exercise.
        """
        cfg = self.config
        if not cfg.fused_encoding:
            return record.mag_code, record.side
        if record.fused_nibble is not None and (
            dense_slot != record.fused_nibble
        ):
            raise ValueError(
                f"fused nibble mismatch at position {record.position}: "
                f"dense slot holds {dense_slot}, record says "
                f"{record.fused_nibble}"
            )
        high = self.record_high_bits(record)
        full_code = (high << cfg.inlier_bits) | (
            dense_slot & ((1 << cfg.inlier_bits) - 1)
        )
        if cfg.group_shift:
            mag_bits = cfg.outlier_bits - 1
            return full_code & ((1 << mag_bits) - 1), bool(
                full_code >> mag_bits
            )
        return full_code & ((1 << cfg.outlier_bits) - 1), False
