"""Vectorized whole-tensor twins of the Figure 9 streaming stages.

The scalar classes in :mod:`repro.hardware.datapath.quant_stages` /
:mod:`~repro.hardware.datapath.dequant_stages` walk one
:class:`~repro.hardware.datapath.records.RoutedElement` at a time —
they are the frozen *structural* golden model, cheap to audit against
the paper's block diagram but O(T·D) python-loop slow.  Each class in
this module is the whole-tensor twin of one of those stages: the same
arithmetic, in the same order, in the same
:class:`~repro.core.modes.ComputeMode` working dtype, applied to
``[T, D]`` arrays in one numpy pass.

Equivalence contract (asserted by ``tests/test_datapath_vectorized``):

* ``exact_f64`` stage mode — every emitted bit (dense codes, COO
  stream, FP16 scale bounds, reconstructed rows) is identical to the
  scalar engines', which are themselves bit-identical to the
  vectorized reference quantizer and the frozen seed kernels.
* ``deploy_f32`` stage mode — bit-identical to the scalar engines run
  in the same float32 stage mode (both sides do float32 arithmetic on
  float32 registers), and within the mode's one-code-level tolerance
  of the ``exact_f64`` output.

Cycle accounting is also twinned: :class:`VectorizedQuantEngine` and
:class:`VectorizedDequantEngine` return a
:class:`~repro.hardware.datapath.records.CycleReport` with exactly the
per-stage busy counters and end-to-end cycle count the scalar engines
would have produced — the timing model describes the hardware, not the
host implementation, so vectorizing the functional model must not move
a single modeled cycle.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import OakenConfig
from repro.core.encoding import EncodedKV
from repro.core.grouping import MIDDLE_GROUP, GroupThresholds
from repro.core.modes import (
    EXACT_F64,
    ComputeMode,
    ComputeModeLike,
    resolve_compute_mode,
)
from repro.hardware.datapath.dequant_engine import DequantTiming
from repro.hardware.datapath.quant_engine import DatapathTiming
from repro.hardware.datapath.records import CycleReport

#: Degenerate-range guard, matching ``scale_sigma`` / ``_sigma``.
_EPS = 1e-12


def _fp16_round_array(values: np.ndarray, wdtype: np.dtype) -> np.ndarray:
    """FP16-round an array, result in the stage-mode working dtype."""
    return np.asarray(values, dtype=np.float16).astype(wdtype)


def _sigma_array(
    lo: np.ndarray, hi: np.ndarray, bits: int, wdtype: np.dtype
) -> np.ndarray:
    """Vectorized twin of :func:`~..records.scale_sigma` in ``wdtype``."""
    w = wdtype.type
    span = hi - lo
    return np.where(
        span > w(_EPS),
        w(2.0**bits - 1.0) / np.maximum(span, w(_EPS)),
        w(1.0),
    )


def _full_outlier_codes(
    config: OakenConfig, side: np.ndarray, mag_code: np.ndarray
) -> np.ndarray:
    """Every outlier's full code: side bit (when group-shifted) over
    the magnitude bits — the one packing rule the zero-remove shifter
    (nibble embed) and zero-insert shifter (corruption check) share."""
    if config.group_shift:
        mag_bits = config.outlier_bits - 1
        return (
            side.astype(np.uint16) << mag_bits
        ) | mag_code.astype(np.uint16)
    return mag_code.astype(np.uint16)


def _fused_nibbles(
    config: OakenConfig, side: np.ndarray, mag_code: np.ndarray
) -> np.ndarray:
    """Low ``inlier_bits`` of each full outlier code (uint8)."""
    full_code = _full_outlier_codes(config, side, mag_code)
    return (full_code & ((1 << config.inlier_bits) - 1)).astype(np.uint8)


class VectorizedDecomposer:
    """Whole-tensor twin of :class:`~..quant_stages.Decomposer`.

    One pass of vectorized threshold compares assigns every element
    its group (outer bands claim outermost-first, inner shells
    innermost-first, exactly like the scalar ``classify`` loop), and
    the group-shift subtraction runs on the full matrix at once.  The
    control registers hold the thresholds at the stage-mode precision.
    """

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        mode: ComputeModeLike = None,
    ):
        self.config = config
        self.thresholds = thresholds
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        wdtype = self.mode.compute_dtype
        w = wdtype.type
        self._outer_lo = np.array(thresholds.outer_lo, dtype=wdtype)
        self._outer_hi = np.array(thresholds.outer_hi, dtype=wdtype)
        self._inner_mag = np.array(thresholds.inner_mag, dtype=wdtype)
        mid_lo, mid_hi = thresholds.middle_shift_edges()
        self._mid_lo_edge = w(mid_lo)
        self._mid_hi_edge = w(mid_hi)
        bands = [
            thresholds.band_shift_edges(b)
            for b in range(thresholds.num_sparse_bands)
        ]
        self._band_lo_edge = np.array(
            [lo for lo, _ in bands], dtype=wdtype
        )
        self._band_hi_edge = np.array(
            [hi for _, hi in bands], dtype=wdtype
        )

    def classify(self, x: np.ndarray) -> np.ndarray:
        """[T, D] group ids — the vectorized scalar ``classify`` loop."""
        thr = self.thresholds
        group = np.full(x.shape, MIDDLE_GROUP, dtype=np.int64)
        unclaimed = np.ones(x.shape, dtype=bool)
        for band in range(thr.num_outer_bands):
            claim = unclaimed & (
                (x > self._outer_hi[band]) | (x < self._outer_lo[band])
            )
            group[claim] = band
            unclaimed &= ~claim
        if thr.num_inner_bands:
            magnitude = np.abs(x)
            for j in range(thr.num_inner_bands - 1, -1, -1):
                claim = unclaimed & (magnitude <= self._inner_mag[j])
                group[claim] = thr.num_outer_bands + j
                unclaimed &= ~claim
        return group

    def route(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Classify and group-shift a whole [T, D] matrix.

        Returns ``(xw, group, shifted, side)``: the stage-dtype input,
        per-element group ids, group-shifted values, and side bits —
        the same wire contents every scalar ``RoutedElement`` carries.
        """
        wdtype = self.mode.compute_dtype
        xw = self.mode.cast(np.asarray(values, dtype=np.float64))
        group = self.classify(xw)
        cfg = self.config
        is_middle = group == MIDDLE_GROUP
        if not cfg.group_shift:
            side = np.zeros(xw.shape, dtype=bool)
            return xw, group, xw.copy(), side
        positive = xw > 0
        # Middle path: subtract the signed middle edge.
        mid_edges = np.where(
            positive, self._mid_hi_edge, self._mid_lo_edge
        ).astype(wdtype, copy=False)
        shifted = xw - mid_edges
        if self._band_hi_edge.size:
            # Sparse paths: band magnitude relative to the claimed edge
            # (a middle-only config has no band edges to gather).
            band = np.where(is_middle, 0, group)
            hi_e = self._band_hi_edge[band]
            lo_e = self._band_lo_edge[band]
            sparse_shift = np.where(positive, xw - hi_e, lo_e - xw)
            shifted = np.where(is_middle, shifted, sparse_shift)
        side = positive & ~is_middle
        return xw, group, shifted.astype(wdtype, copy=False), side


class VectorizedMinMaxFinder:
    """Whole-tensor twin of :class:`~..quant_stages.MinMaxFinder`.

    Per-(token, group) ranges via masked reductions; groups a token
    never routed to report the scalar registers' ``(0, 0)``.
    """

    def __init__(self, num_sparse_bands: int, mode: ComputeModeLike = None):
        self.num_sparse_bands = num_sparse_bands
        self.mode = resolve_compute_mode(mode, EXACT_F64)

    def _masked_range(
        self, shifted: np.ndarray, mask: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        wdtype = self.mode.compute_dtype
        w = wdtype.type
        if shifted.shape[1] == 0:
            zeros = np.zeros(shifted.shape[0], dtype=wdtype)
            return zeros, zeros.copy()
        occupied = mask.any(axis=1)
        lo = np.where(mask, shifted, w(np.inf)).min(axis=1)
        hi = np.where(mask, shifted, w(-np.inf)).max(axis=1)
        zero = w(0.0)
        return (
            np.where(occupied, lo, zero),
            np.where(occupied, hi, zero),
        )

    def ranges(
        self, group: np.ndarray, shifted: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(middle_lo, middle_hi, band_lo, band_hi)`` per token.

        ``middle_*`` are [T]; ``band_*`` are [T, num_sparse_bands].
        """
        wdtype = self.mode.compute_dtype
        tokens = group.shape[0]
        middle_lo, middle_hi = self._masked_range(
            shifted, group == MIDDLE_GROUP
        )
        band_lo = np.zeros((tokens, self.num_sparse_bands), dtype=wdtype)
        band_hi = np.zeros((tokens, self.num_sparse_bands), dtype=wdtype)
        for b in range(self.num_sparse_bands):
            band_lo[:, b], band_hi[:, b] = self._masked_range(
                shifted, group == b
            )
        return middle_lo, middle_hi, band_lo, band_hi


class VectorizedScaleCalculator:
    """Whole-tensor twin of :class:`~..quant_stages.ScaleCalculator`.

    FP16-rounds every group range and derives sigma from the rounded
    bounds — one vectorized pass over all tokens and groups at once.
    """

    def __init__(self, config: OakenConfig, mode: ComputeModeLike = None):
        self.config = config
        self.mode = resolve_compute_mode(mode, EXACT_F64)

    def group_bits(self, middle: bool) -> int:
        """Code width of the inlier vs outlier path."""
        cfg = self.config
        if middle:
            return cfg.inlier_bits
        if cfg.group_shift:
            return cfg.outlier_bits - 1
        return cfg.outlier_bits

    def scales(
        self, lo: np.ndarray, hi: np.ndarray, middle: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lo16, hi16, sigma)`` for one group family's raw ranges."""
        wdtype = self.mode.compute_dtype
        lo16 = _fp16_round_array(lo, wdtype)
        hi16 = _fp16_round_array(hi, wdtype)
        sigma = _sigma_array(lo16, hi16, self.group_bits(middle), wdtype)
        return lo16, hi16, sigma


class VectorizedOutlierExtractor:
    """Whole-tensor twin of :class:`~..quant_stages.OutlierExtractor`.

    One ``nonzero`` compacts the sparse stream in exactly the scalar
    emission order (row-major: token by token, positions ascending) —
    the zero-remove shifter over the whole tensor at once.
    """

    def __init__(self, config: OakenConfig):
        self.config = config

    def extract(
        self, group: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(token, pos, band)`` of every sparse element, stream order."""
        token, pos = np.nonzero(group != MIDDLE_GROUP)
        return (
            token.astype(np.int64),
            pos.astype(np.int64),
            group[token, pos],
        )

    def fused_nibbles(
        self, side: np.ndarray, mag_code: np.ndarray
    ) -> np.ndarray:
        """Low ``inlier_bits`` of each full outlier code (uint8)."""
        return _fused_nibbles(self.config, side, mag_code)


class VectorizedFusedConcatenator:
    """Whole-tensor twin of :class:`~..quant_stages.FusedConcatenator`.

    The inlier and outlier paths never write the same slot, so the
    scalar OR-merge reduces to one scatter of the outlier nibbles into
    the dense code matrix (zeros under the naive non-fused layout).
    """

    def __init__(self, config: OakenConfig):
        self.config = config

    def merge(
        self,
        dense_codes: np.ndarray,
        token: np.ndarray,
        pos: np.ndarray,
        nibbles: Optional[np.ndarray],
    ) -> np.ndarray:
        """Scatter nibbles (or zeros) into the outlier slots, in place."""
        if nibbles is None:
            dense_codes[token, pos] = 0
        else:
            dense_codes[token, pos] = nibbles
        return dense_codes


class VectorizedQuantEngine:
    """Whole-tensor quantization engine (the fast functional twin).

    Same constructor contract, same ``(EncodedKV, CycleReport)``
    return as :class:`~..quant_engine.StreamingQuantEngine`, with the
    per-element python loop replaced by one vectorized pass per stage.

    Args:
        config: quantizer hyper-parameters.
        thresholds: offline-profiled thresholds.
        timing: lane width and clock of the modeled datapath (the
            cycle report prices the hardware, not the host).
        mode: :class:`~repro.core.modes.ComputeMode` stage mode.
    """

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        timing: Optional[DatapathTiming] = None,
        mode: ComputeModeLike = None,
    ):
        if thresholds.num_outer_bands != config.num_outer_bands:
            raise ValueError("thresholds/config outer band mismatch")
        if thresholds.num_inner_bands != config.num_inner_bands:
            raise ValueError("thresholds/config inner band mismatch")
        self.config = config
        self.thresholds = thresholds
        self.timing = timing if timing is not None else DatapathTiming()
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        self._decomposer = VectorizedDecomposer(
            config, thresholds, self.mode
        )
        self._minmax = VectorizedMinMaxFinder(
            config.num_sparse_bands, self.mode
        )
        self._scale_calc = VectorizedScaleCalculator(config, self.mode)
        self._extractor = VectorizedOutlierExtractor(config)
        self._concat = VectorizedFusedConcatenator(config)

    def quantize_matrix(
        self, values: np.ndarray
    ) -> "tuple[EncodedKV, CycleReport]":
        """Quantize a [T, D] matrix in one vectorized pass per stage."""
        x = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if x.ndim != 2:
            raise ValueError(f"expected a [T, D] matrix, got {x.shape}")
        cfg = self.config
        wdtype = self.mode.compute_dtype
        tokens, dim = x.shape

        # Stage 1+2: decompose/route and per-group range discovery.
        xw, group, shifted, side = self._decomposer.route(x)
        mid_lo_raw, mid_hi_raw, band_lo_raw, band_hi_raw = (
            self._minmax.ranges(group, shifted)
        )

        # Between passes: the sigma calculator prices each group.
        middle_lo, middle_hi, sigma_mid = self._scale_calc.scales(
            mid_lo_raw, mid_hi_raw, middle=True
        )
        band_lo, band_hi, sigma_band = self._scale_calc.scales(
            band_lo_raw, band_hi_raw, middle=False
        )

        # Pass 2, inlier path: every slot through the middle scale
        # (outlier slots are overwritten by the scatter below, exactly
        # like the scalar engine never routing them here).
        inlier_levels = 2**cfg.inlier_bits - 1
        dense = np.clip(
            np.rint(
                (shifted - middle_lo[:, None]) * sigma_mid[:, None]
            ),
            0,
            inlier_levels,
        ).astype(np.uint8)

        # Pass 2, outlier path: gathered encode over the COO stream.
        token, pos, band = self._extractor.extract(group)
        outlier_bits = self._scale_calc.group_bits(middle=False)
        mag_g = shifted[token, pos]
        side_g = side[token, pos]
        lo_g = band_lo[token, band]
        sigma_g = sigma_band[token, band]
        mag_code = np.clip(
            np.rint((mag_g - lo_g) * sigma_g), 0, 2**outlier_bits - 1
        ).astype(np.uint8)

        sparse_fp16 = None
        nibbles = None
        if cfg.fused_encoding:
            nibbles = self._extractor.fused_nibbles(side_g, mag_code)
        else:
            sparse_fp16 = xw[token, pos].astype(np.float16)
        self._concat.merge(dense, token, pos, nibbles)

        report = self._cycle_report(tokens, dim, token)
        encoded = EncodedKV(
            config=cfg,
            thresholds=self.thresholds,
            shape=(tokens, dim),
            dense_codes=dense,
            middle_lo=middle_lo.astype(np.float32),
            middle_hi=middle_hi.astype(np.float32),
            band_lo=band_lo.astype(np.float32),
            band_hi=band_hi.astype(np.float32),
            sparse_token=token,
            sparse_pos=pos,
            sparse_band=band.astype(np.int16),
            sparse_side=side_g,
            sparse_mag_code=mag_code,
            sparse_fp16=sparse_fp16,
        )
        return encoded, report

    def _cycle_report(
        self, tokens: int, dim: int, token: np.ndarray
    ) -> CycleReport:
        """The exact counters the scalar engine would have recorded."""
        report = CycleReport(tokens=tokens, elements=tokens * dim)
        if tokens:
            pass_cycles = self.timing.pass_cycles(dim)
            groups = 1 + self.config.num_sparse_bands
            counts = np.bincount(token, minlength=tokens)
            report.stage("decomposer").record(
                tokens * dim, tokens * pass_cycles
            )
            report.stage("minmax_finder").record(
                tokens * dim, tokens * pass_cycles
            )
            report.stage("scale_calculator").record(
                tokens * groups,
                tokens * self.timing.scale_latency_cycles,
            )
            report.stage("quantizer").record(
                tokens * dim, tokens * pass_cycles
            )
            report.stage("zero_remove_shifter").record(
                int(token.size),
                int(np.minimum(counts, pass_cycles).sum()),
            )
        report.total_cycles = self._pipeline_cycles(tokens, dim)
        return report

    def _pipeline_cycles(self, tokens: int, dim: int) -> int:
        """Identical to the scalar engine's three-deep token pipeline."""
        if tokens <= 0:
            return 0
        timing = self.timing
        pass_cycles = timing.pass_cycles(dim)
        scale_cycles = timing.scale_latency_cycles
        interval = max(pass_cycles, scale_cycles)
        fill = pass_cycles + scale_cycles + pass_cycles
        return fill + (tokens - 1) * interval


class VectorizedZeroInsertShifter:
    """Whole-tensor twin of :class:`~..dequant_stages.ZeroInsertShifter`.

    Validates every fused nibble against its dense slot in one
    comparison (the scalar corruption check, tensor-wide) and hands
    back the record code fields for the gathered outlier decode.
    """

    def __init__(self, config: OakenConfig):
        self.config = config

    def validate(
        self,
        dense_codes: np.ndarray,
        token: np.ndarray,
        pos: np.ndarray,
        side: np.ndarray,
        mag_code: np.ndarray,
    ) -> None:
        """Raise ValueError when any dense slot disagrees with its record."""
        cfg = self.config
        if not cfg.fused_encoding or token.size == 0:
            return
        expected = _fused_nibbles(cfg, side, mag_code)
        slots = dense_codes[token, pos]
        mismatch = slots != expected
        if mismatch.any():
            first = int(np.argmax(mismatch))
            raise ValueError(
                f"fused nibble mismatch at position {int(pos[first])}: "
                f"dense slot holds {int(slots[first])}, record says "
                f"{int(expected[first])}"
            )


class VectorizedInlierDequantizer:
    """Whole-tensor twin of :class:`~..dequant_stages.InlierDequantizer`."""

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        mode: ComputeModeLike = None,
    ):
        self.config = config
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        w = self.mode.compute_dtype.type
        mid_lo, mid_hi = thresholds.middle_shift_edges()
        self._mid_lo_edge = w(mid_lo)
        self._mid_hi_edge = w(mid_hi)

    def decode(
        self,
        dense_codes: np.ndarray,
        middle_lo: np.ndarray,
        middle_hi: np.ndarray,
    ) -> np.ndarray:
        """Every dense slot through the middle scale, whole tensor."""
        wdtype = self.mode.compute_dtype
        sigma = _sigma_array(
            middle_lo, middle_hi, self.config.inlier_bits, wdtype
        )
        out = dense_codes.astype(wdtype)
        out = out / sigma[:, None] + middle_lo[:, None]
        if self.config.group_shift:
            out = out + np.where(
                out >= 0, self._mid_hi_edge, self._mid_lo_edge
            ).astype(wdtype, copy=False)
        return out


class VectorizedOutlierDequantizer:
    """Whole-tensor twin of :class:`~..dequant_stages.OutlierDequantizer`."""

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        mode: ComputeModeLike = None,
    ):
        self.config = config
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        wdtype = self.mode.compute_dtype
        bands = [
            thresholds.band_shift_edges(b)
            for b in range(thresholds.num_sparse_bands)
        ]
        self._band_lo_edge = np.array(
            [lo for lo, _ in bands], dtype=wdtype
        )
        self._band_hi_edge = np.array(
            [hi for _, hi in bands], dtype=wdtype
        )

    def decode(
        self,
        band: np.ndarray,
        side: np.ndarray,
        mag_code: np.ndarray,
        band_lo: np.ndarray,
        band_hi: np.ndarray,
        token: np.ndarray,
        fp16_values: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Every outlier's reconstructed value, gathered COO order."""
        cfg = self.config
        wdtype = self.mode.compute_dtype
        if fp16_values is not None:
            # Naive 23-bit layout: the records carry the exact values.
            return fp16_values.astype(wdtype)
        bits = (
            cfg.outlier_bits - 1 if cfg.group_shift else cfg.outlier_bits
        )
        lo = band_lo[token, band]
        hi = band_hi[token, band]
        sigma = _sigma_array(lo, hi, bits, wdtype)
        magnitude = mag_code.astype(wdtype) / sigma + lo
        if not cfg.group_shift:
            return magnitude
        return np.where(
            side,
            self._band_hi_edge[band] + magnitude,
            self._band_lo_edge[band] - magnitude,
        ).astype(wdtype, copy=False)


class VectorizedDequantEngine:
    """Whole-tensor dequantization engine (the fast functional twin).

    Same constructor contract and ``(matrix, CycleReport)`` return as
    :class:`~..dequant_engine.StreamingDequantEngine`.
    """

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        timing: Optional[DequantTiming] = None,
        mode: ComputeModeLike = None,
    ):
        self.config = config
        self.thresholds = thresholds
        self.timing = timing if timing is not None else DequantTiming()
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        self._shifter = VectorizedZeroInsertShifter(config)
        self._inlier = VectorizedInlierDequantizer(
            config, thresholds, self.mode
        )
        self._outlier = VectorizedOutlierDequantizer(
            config, thresholds, self.mode
        )

    def dequantize_matrix(
        self, encoded: EncodedKV
    ) -> "tuple[np.ndarray, CycleReport]":
        """Reconstruct the full tensor in one vectorized pass per stage."""
        cfg = self.config
        wdtype = self.mode.compute_dtype
        tokens, dim = encoded.shape

        middle_lo = self.mode.cast(encoded.middle_lo)
        middle_hi = self.mode.cast(encoded.middle_hi)
        out = self._inlier.decode(
            encoded.dense_codes, middle_lo, middle_hi
        )

        token = encoded.sparse_token
        pos = encoded.sparse_pos
        if token.size:
            band = encoded.sparse_band.astype(np.int64)
            side = encoded.sparse_side
            mag = encoded.sparse_mag_code
            self._shifter.validate(
                encoded.dense_codes, token, pos, side, mag
            )
            out[token, pos] = self._outlier.decode(
                band,
                side,
                mag,
                self.mode.cast(encoded.band_lo),
                self.mode.cast(encoded.band_hi),
                token,
                fp16_values=encoded.sparse_fp16,
            )

        report = self._cycle_report(tokens, dim, token)
        return out.astype(np.float32), report

    def _cycle_report(
        self, tokens: int, dim: int, token: np.ndarray
    ) -> CycleReport:
        """The exact counters the scalar engine would have recorded."""
        report = CycleReport(tokens=tokens, elements=tokens * dim)
        pass_cycles = self.timing.pass_cycles(dim)
        if tokens:
            counts = np.bincount(token, minlength=tokens)
            busy = int(np.minimum(counts, pass_cycles).sum())
            report.stage("zero_insert_shifter").record(
                int(token.size), busy
            )
            report.stage("inlier_dequantizer").record(
                tokens * dim, tokens * pass_cycles
            )
            report.stage("outlier_dequantizer").record(
                int(token.size), busy
            )
        report.total_cycles = (
            self.timing.fill_cycles + tokens * pass_cycles
        )
        return report


__all__ = [
    "VectorizedDecomposer",
    "VectorizedDequantEngine",
    "VectorizedFusedConcatenator",
    "VectorizedInlierDequantizer",
    "VectorizedMinMaxFinder",
    "VectorizedOutlierDequantizer",
    "VectorizedOutlierExtractor",
    "VectorizedQuantEngine",
    "VectorizedScaleCalculator",
    "VectorizedZeroInsertShifter",
]
