"""Data carried between datapath stages (Figure 9 wire formats).

The streaming engines in this package pass three kinds of payloads
between stages:

* :class:`RoutedElement` — one KV scalar after the decomposer, tagged
  with its group and (for sparse bands) its group-shifted magnitude and
  side.
* :class:`COORecord` — one sparse outlier record exactly as the
  zero-remove shifter emits it: chunk-local index bits, group id bits,
  and the code bit(s) that did not fit in the fused dense nibble.
* :class:`TokenQuantResult` — everything the engine writes back to
  memory for one token: the fused dense nibble row, the COO stream,
  and the per-group FP16 scale bounds.

The cycle side is captured by :class:`StageActivity` /
:class:`CycleReport`: per-stage busy-cycle counters plus the engine's
end-to-end cycle count, which the tests check against the analytic
pipeline model in :mod:`repro.hardware.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.grouping import MIDDLE_GROUP


@dataclass(frozen=True)
class RoutedElement:
    """One scalar leaving the decomposer stage.

    Attributes:
        position: element index within the token vector.
        group: ``MIDDLE_GROUP`` (-1) for the dense path, otherwise the
            sparse band id (outer bands first, outermost = 0).
        shifted: the group-shifted value handed to the quantization
            path — the shifted inlier for the dense path, the band
            magnitude for sparse paths (raw value when group-shift is
            disabled).
        side: True when the original value sat on the positive side of
            its band (always False for the dense path and in the
            no-group-shift ablation).
        raw: the original FP16-domain value (kept for the naive
            non-fused encoding, which stores outliers exactly).
    """

    position: int
    group: int
    shifted: float
    side: bool
    raw: float

    @property
    def is_outlier(self) -> bool:
        """True when this element takes the sparse path."""
        return self.group != MIDDLE_GROUP


@dataclass(frozen=True)
class COORecord:
    """One aligned sparse record as written to the sparse page stream.

    Attributes:
        position: absolute element index within the token vector.
        chunk: which ``2**index_bits``-element chunk the index addresses.
        index: chunk-local index (the paper's 6 index bits).
        band: sparse band id (the paper's group bit(s)).
        side: the side/"sign" bit riding in the record.
        mag_code: quantized magnitude code (full width, before fusion).
        fused_nibble: the low ``inlier_bits`` of the full outlier code,
            as embedded in the zeroed dense slot (None when fused
            encoding is disabled).
        fp16_value: exact FP16 value for the naive 23-bit layout (None
            under fused encoding).
    """

    position: int
    chunk: int
    index: int
    band: int
    side: bool
    mag_code: int
    fused_nibble: Optional[int] = None
    fp16_value: Optional[float] = None


@dataclass
class TokenQuantResult:
    """Everything the quantization engine emits for one token.

    Attributes:
        dense_codes: [D] uint8 fused dense row (middle codes + embedded
            outlier nibbles).
        records: COO records in position stream order.
        middle_lo / middle_hi: FP16-rounded middle-group scale bounds.
        band_lo / band_hi: per-sparse-band FP16-rounded magnitude scale
            bounds (length ``num_sparse_bands``).
    """

    dense_codes: np.ndarray
    records: List[COORecord]
    middle_lo: float
    middle_hi: float
    band_lo: List[float]
    band_hi: List[float]

    @property
    def num_outliers(self) -> int:
        return len(self.records)


@dataclass
class StageActivity:
    """Busy-cycle accounting of one pipeline stage.

    Attributes:
        name: stage name (matches the Figure 9 module names).
        busy_cycles: cycles the stage spent processing elements.
        elements: elements that traversed the stage.
    """

    name: str
    busy_cycles: int = 0
    elements: int = 0

    def record(self, elements: int, cycles: int) -> None:
        """Accumulate one burst of work."""
        self.elements += elements
        self.busy_cycles += cycles


@dataclass
class CycleReport:
    """End-to-end cycle accounting of one engine pass.

    Attributes:
        total_cycles: engine cycles from first element in to last
            element out, including pipeline fill and the per-token
            scale-calculation turnaround.
        tokens: tokens processed.
        elements: total elements processed.
        stages: per-stage busy counters keyed by stage name.
    """

    total_cycles: int = 0
    tokens: int = 0
    elements: int = 0
    stages: Dict[str, StageActivity] = field(default_factory=dict)

    def stage(self, name: str) -> StageActivity:
        """Fetch (or create) the activity counter of a stage."""
        if name not in self.stages:
            self.stages[name] = StageActivity(name)
        return self.stages[name]

    def time_s(self, freq_ghz: float) -> float:
        """Wall-clock seconds at the given engine clock."""
        return self.total_cycles / (freq_ghz * 1e9)

    def occupancy(self) -> Dict[str, float]:
        """Per-stage busy fraction of the total cycle count."""
        if self.total_cycles <= 0:
            return {name: 0.0 for name in self.stages}
        return {
            name: activity.busy_cycles / self.total_cycles
            for name, activity in self.stages.items()
        }


def fp16_round(value: float, dtype=None) -> float:
    """Round one scalar to FP16 precision, as the hardware stores scales.

    ``dtype`` selects the stage-mode working type of the result: the
    default returns a python float (the float64 golden path);
    ``np.float32`` returns a float32 scalar for the deploy_f32 stage
    mode (fp16 values are exactly representable in both).
    """
    if dtype is not None:
        return np.dtype(dtype).type(np.float16(value))
    return float(np.float16(value))


def scale_sigma(lo: float, hi: float, bits: int, eps: float = 1e-12) -> float:
    """The uniform-quantization scale factor of Eq. 2 for one group.

    Mirrors the vectorized kernels' guard (``_sigma`` in
    :mod:`repro.core.quantizer`, and the seed ``_rowwise_encode`` kept
    in :mod:`repro.core.reference`): a degenerate span (empty group or
    constant values) gets sigma 1.0 so codes collapse to zero.

    The arithmetic runs in the dtype of its operands: numpy float32
    scalars under the deploy_f32 stage mode, python/float64 floats on
    the golden path — so one definition serves both ComputeModes.
    """
    span = hi - lo
    if isinstance(span, np.floating):
        w = span.dtype.type
        if span > w(eps):
            return w(2.0**bits - 1.0) / max(span, w(eps))
        return w(1.0)
    if span > eps:
        return (2.0**bits - 1.0) / max(span, eps)
    return 1.0
