"""Stages of the quantization engine datapath (Figure 9a).

Each class models one hardware module from the paper's quantization
engine, operating on scalar element streams rather than whole tensors —
this is the *structural* counterpart of the vectorized algorithm in
:mod:`repro.core.quantizer`, and the unit tests assert the two produce
bit-identical codes.

The engine wires them in two passes per token (the double-buffered
token turnaround the analytic pipeline model assumes):

1. **Decomposer** routes every element to its group and applies the
   group shift, while the **MinMaxFinder** per group tracks the running
   range.
2. After the token has streamed once, the **ScaleCalculator** turns
   each group's range into an FP16 (lo, hi, sigma) triple; the second
   pass sends each element through the **inlier or outlier quantizer**
   and the **OutlierExtractor** (zero-remove shifter) which compacts
   sparse records, and the **FusedConcatenator** assembles the dense
   row with embedded outlier nibbles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import OakenConfig
from repro.core.grouping import MIDDLE_GROUP, GroupThresholds
from repro.core.modes import EXACT_F64, ComputeModeLike, resolve_compute_mode
from repro.hardware.datapath.records import (
    COORecord,
    RoutedElement,
    fp16_round,
    scale_sigma,
)


class Decomposer:
    """Threshold compare + group shift (module 1 in Figure 9a).

    Holds the offline thresholds in its control registers and, per
    element, performs the handful of compares that replace the online
    topK of prior work, then subtracts the band edge (group shift).

    The control registers hold the thresholds at the stage-mode
    precision (the :class:`~repro.core.modes.ComputeMode` working
    dtype), so the float32 stage mode compares and shifts exactly as
    float32 hardware would.
    """

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        mode: ComputeModeLike = None,
    ):
        self.config = config
        self.thresholds = thresholds
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        w = self.mode.compute_dtype.type
        self._outer_lo = tuple(w(v) for v in thresholds.outer_lo)
        self._outer_hi = tuple(w(v) for v in thresholds.outer_hi)
        self._inner_mag = tuple(w(v) for v in thresholds.inner_mag)
        mid_lo, mid_hi = thresholds.middle_shift_edges()
        self._mid_lo_edge = w(mid_lo)
        self._mid_hi_edge = w(mid_hi)
        self._band_edges = tuple(
            (w(lo), w(hi))
            for lo, hi in (
                thresholds.band_shift_edges(b)
                for b in range(thresholds.num_sparse_bands)
            )
        )

    def classify(self, value: float) -> int:
        """Group id of one element (scalar twin of ``assign_groups``)."""
        thr = self.thresholds
        # Outer bands, outermost first: the first band whose edges the
        # value exceeds claims it.
        for band in range(thr.num_outer_bands):
            if value > self._outer_hi[band] or value < self._outer_lo[band]:
                return band
        # Inner shells, innermost first, so nested shells claim from
        # the inside out.
        magnitude = abs(value)
        for j in range(thr.num_inner_bands - 1, -1, -1):
            if magnitude <= self._inner_mag[j]:
                return thr.num_outer_bands + j
        return MIDDLE_GROUP

    def route(self, position: int, value: float) -> RoutedElement:
        """Classify and group-shift one element."""
        group = self.classify(value)
        cfg = self.config
        if group == MIDDLE_GROUP:
            if cfg.group_shift:
                shifted = (
                    value - self._mid_hi_edge
                    if value > 0
                    else value - self._mid_lo_edge
                )
            else:
                shifted = value
            return RoutedElement(
                position=position, group=group, shifted=shifted,
                side=False, raw=value,
            )
        lo_edge, hi_edge = self._band_edges[group]
        if cfg.group_shift:
            side = value > 0
            shifted = value - hi_edge if side else lo_edge - value
        else:
            side = False
            shifted = value
        return RoutedElement(
            position=position, group=group, shifted=shifted,
            side=bool(side), raw=value,
        )


class MinMaxFinder:
    """Running per-group min/max over one token (module 2 in Figure 9a).

    One register pair per quantization group; reset between tokens.
    """

    def __init__(self, num_sparse_bands: int):
        self.num_sparse_bands = num_sparse_bands
        self.reset()

    def reset(self) -> None:
        """Clear the range registers for a new token."""
        self._lo: Dict[int, float] = {}
        self._hi: Dict[int, float] = {}

    def update(self, element: RoutedElement) -> None:
        """Fold one routed element into its group's range."""
        group = element.group
        value = element.shifted
        if group not in self._lo or value < self._lo[group]:
            self._lo[group] = value
        if group not in self._hi or value > self._hi[group]:
            self._hi[group] = value

    def range_of(self, group: int) -> Tuple[float, float]:
        """(min, max) of a group; (0, 0) when the group saw no elements."""
        if group not in self._lo:
            return (0.0, 0.0)
        return (self._lo[group], self._hi[group])


@dataclass(frozen=True)
class GroupScale:
    """One group's quantization scale triple after FP16 rounding."""

    lo: float
    hi: float
    sigma: float
    bits: int

    def encode(self, shifted: float) -> int:
        """Quantize one group-shifted value to its integer code (Eq. 3)."""
        code = float(np.round((shifted - self.lo) * self.sigma))
        return int(np.clip(code, 0, 2**self.bits - 1))


class ScaleCalculator:
    """Per-group sigma computation (the σ-calculator in Figure 9a).

    Runs once per token per group, between the two streaming passes.
    Stores lo/hi at FP16 precision first — exactly what the hardware
    writes alongside the data — then derives sigma from the rounded
    bounds, matching the vectorized reference implementation.  Under
    the deploy_f32 stage mode the subtract/divide runs in float32.
    """

    def __init__(self, config: OakenConfig, mode: ComputeModeLike = None):
        self.config = config
        self.mode = resolve_compute_mode(mode, EXACT_F64)

    def group_bits(self, group: int) -> int:
        """Code width of a group (inlier vs outlier path)."""
        cfg = self.config
        if group == MIDDLE_GROUP:
            return cfg.inlier_bits
        if cfg.group_shift:
            return cfg.outlier_bits - 1
        return cfg.outlier_bits

    def scale(self, group: int, lo: float, hi: float) -> GroupScale:
        """Turn one group's raw range into its FP16 scale triple."""
        wdtype = self.mode.compute_dtype
        lo16 = fp16_round(lo, wdtype)
        hi16 = fp16_round(hi, wdtype)
        bits = self.group_bits(group)
        return GroupScale(
            lo=lo16, hi=hi16, sigma=scale_sigma(lo16, hi16, bits), bits=bits
        )


class OutlierExtractor:
    """COO record assembly + zero-remove shifter (Figure 9a, module 3).

    Consumes quantized outliers in position order and emits the
    compacted sparse stream: the zero-remove shifter's job is exactly
    this compaction — inliers produce no sparse traffic, so record
    ``k`` sits at sparse offset ``k`` regardless of how far apart the
    outliers were in the dense row.
    """

    def __init__(self, config: OakenConfig):
        self.config = config
        self._records: List[COORecord] = []

    def reset(self) -> None:
        """Start a new token's sparse stream."""
        self._records = []

    def emit(self, element: RoutedElement, mag_code: int) -> COORecord:
        """Assemble and append the sparse record of one outlier."""
        cfg = self.config
        chunk = element.position // cfg.chunk_size
        index = element.position % cfg.chunk_size
        fused_nibble: Optional[int] = None
        fp16_value: Optional[float] = None
        if cfg.fused_encoding:
            if cfg.group_shift:
                mag_bits = cfg.outlier_bits - 1
                full_code = (int(element.side) << mag_bits) | mag_code
            else:
                full_code = mag_code
            fused_nibble = full_code & ((1 << cfg.inlier_bits) - 1)
        else:
            fp16_value = float(np.float16(element.raw))
        record = COORecord(
            position=element.position,
            chunk=chunk,
            index=index,
            band=element.group,
            side=element.side,
            mag_code=mag_code,
            fused_nibble=fused_nibble,
            fp16_value=fp16_value,
        )
        self._records.append(record)
        return record

    @property
    def records(self) -> List[COORecord]:
        return list(self._records)


class FusedConcatenator:
    """Dense-row assembly with embedded outlier nibbles (the OR gate).

    The inlier path writes middle-group codes; the outlier path writes
    the fused nibble into the (zeroed) slot of each outlier.  Because
    the two paths never write the same slot, a bitwise OR merges them —
    which is how the hardware joins the streams.
    """

    def __init__(self, dim: int, config: OakenConfig):
        self.config = config
        self._inlier_row = np.zeros(dim, dtype=np.uint8)
        self._outlier_row = np.zeros(dim, dtype=np.uint8)

    def reset(self) -> None:
        self._inlier_row[:] = 0
        self._outlier_row[:] = 0

    def write_inlier(self, position: int, code: int) -> None:
        self._inlier_row[position] = code

    def write_outlier(self, position: int, nibble: int) -> None:
        self._outlier_row[position] = nibble

    def merged(self) -> np.ndarray:
        """OR-merge of the two paths — the fused dense row."""
        return np.bitwise_or(self._inlier_row, self._outlier_row)
