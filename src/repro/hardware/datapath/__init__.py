"""Functional, bit-exact two-tier models of the Figure 9 engines.

Where :mod:`repro.hardware.engines` and :mod:`repro.hardware.pipeline`
price the quantization/dequantization engines analytically, this
package *implements* them structurally, at two tiers:

* the **scalar tier** (:mod:`~repro.hardware.datapath.quant_stages`,
  :mod:`~repro.hardware.datapath.dequant_stages`) — every module in
  the paper's Figure 9 (decomposer, min/max finder, σ-calculator,
  inlier/outlier quantizers, zero-remove/zero-insert shifters,
  outlier index buffer, OR-merge concatenator) is a class processing
  element streams.  This is the frozen *structural golden model*: the
  test suite asserts the streamed bits equal the vectorized reference
  quantizer's output exactly — the same functional-equivalence check
  the authors ran between their RTL and their algorithm.
* the **vectorized tier** (:mod:`~repro.hardware.datapath.vectorized`)
  — a whole-tensor twin of each stage running the same arithmetic
  over ``[T, D]`` arrays in one pass, element-for-element equivalent
  to the scalar tier (bit-exact in ``exact_f64``; float32-register
  identical in ``deploy_f32``) and orders of magnitude faster on the
  host.  This is the tier every system-level consumer drives.

Both tiers honour the :class:`~repro.core.modes.ComputeMode` precision
policy: ``exact_f64`` anchors bit-exactness, ``deploy_f32`` runs every
stage's arithmetic in float32 — the datapath's float32 golden model
that makes ``deploy_f32`` safe as the serving default.

Public API:

* :class:`StreamingQuantEngine` / :class:`StreamingDequantEngine` —
  the scalar engines, returning ``(EncodedKV | matrix, CycleReport)``.
* :class:`VectorizedQuantEngine` / :class:`VectorizedDequantEngine` —
  the whole-tensor twins, same contract, same modeled cycles.
* :class:`DatapathTiming` / :class:`DequantTiming` — lane widths,
  clocks, and turnaround latencies.
* :class:`CycleReport` — per-stage busy-cycle occupancy.
* :class:`EngineBackedQuantizer` — either tier behind the
  ``quantize``/``dequantize`` surface of the software quantizer.
"""

from repro.hardware.datapath.adapter import (
    ENGINE_TIERS,
    EngineBackedQuantizer,
)
from repro.hardware.datapath.dequant_engine import (
    DequantTiming,
    StreamingDequantEngine,
)
from repro.hardware.datapath.dequant_stages import (
    DequantScales,
    InlierDequantizer,
    OutlierDequantizer,
    OutlierIndexBuffer,
    ZeroInsertShifter,
)
from repro.hardware.datapath.quant_engine import (
    DatapathTiming,
    StreamingQuantEngine,
)
from repro.hardware.datapath.quant_stages import (
    Decomposer,
    FusedConcatenator,
    GroupScale,
    MinMaxFinder,
    OutlierExtractor,
    ScaleCalculator,
)
from repro.hardware.datapath.records import (
    COORecord,
    CycleReport,
    RoutedElement,
    StageActivity,
    TokenQuantResult,
)
from repro.hardware.datapath.vectorized import (
    VectorizedDecomposer,
    VectorizedDequantEngine,
    VectorizedFusedConcatenator,
    VectorizedInlierDequantizer,
    VectorizedMinMaxFinder,
    VectorizedOutlierDequantizer,
    VectorizedOutlierExtractor,
    VectorizedQuantEngine,
    VectorizedScaleCalculator,
    VectorizedZeroInsertShifter,
)

__all__ = [
    "COORecord",
    "CycleReport",
    "ENGINE_TIERS",
    "EngineBackedQuantizer",
    "DatapathTiming",
    "Decomposer",
    "DequantScales",
    "DequantTiming",
    "FusedConcatenator",
    "GroupScale",
    "InlierDequantizer",
    "MinMaxFinder",
    "OutlierDequantizer",
    "OutlierExtractor",
    "OutlierIndexBuffer",
    "RoutedElement",
    "ScaleCalculator",
    "StageActivity",
    "StreamingDequantEngine",
    "StreamingQuantEngine",
    "TokenQuantResult",
    "VectorizedDecomposer",
    "VectorizedDequantEngine",
    "VectorizedFusedConcatenator",
    "VectorizedInlierDequantizer",
    "VectorizedMinMaxFinder",
    "VectorizedOutlierDequantizer",
    "VectorizedOutlierExtractor",
    "VectorizedQuantEngine",
    "VectorizedScaleCalculator",
    "VectorizedZeroInsertShifter",
    "ZeroInsertShifter",
]
