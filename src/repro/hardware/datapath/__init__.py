"""Functional, bit-exact streaming models of the Figure 9 engines.

Where :mod:`repro.hardware.engines` and :mod:`repro.hardware.pipeline`
price the quantization/dequantization engines analytically, this
package *implements* them structurally: every module in the paper's
Figure 9 (decomposer, min/max finder, σ-calculator, inlier/outlier
quantizers, zero-remove/zero-insert shifters, outlier index buffer,
OR-merge concatenator) is a class processing element streams, and the
test suite asserts the streamed bits equal the vectorized reference
quantizer's output exactly — the same functional-equivalence check the
authors ran between their RTL and their algorithm.

Public API:

* :class:`StreamingQuantEngine` / :class:`StreamingDequantEngine` —
  the engines, returning ``(EncodedKV | matrix, CycleReport)``.
* :class:`DatapathTiming` / :class:`DequantTiming` — lane widths,
  clocks, and turnaround latencies.
* :class:`CycleReport` — per-stage busy-cycle occupancy.
"""

from repro.hardware.datapath.adapter import EngineBackedQuantizer
from repro.hardware.datapath.dequant_engine import (
    DequantTiming,
    StreamingDequantEngine,
)
from repro.hardware.datapath.dequant_stages import (
    DequantScales,
    InlierDequantizer,
    OutlierDequantizer,
    OutlierIndexBuffer,
    ZeroInsertShifter,
)
from repro.hardware.datapath.quant_engine import (
    DatapathTiming,
    StreamingQuantEngine,
)
from repro.hardware.datapath.quant_stages import (
    Decomposer,
    FusedConcatenator,
    GroupScale,
    MinMaxFinder,
    OutlierExtractor,
    ScaleCalculator,
)
from repro.hardware.datapath.records import (
    COORecord,
    CycleReport,
    RoutedElement,
    StageActivity,
    TokenQuantResult,
)

__all__ = [
    "COORecord",
    "CycleReport",
    "EngineBackedQuantizer",
    "DatapathTiming",
    "Decomposer",
    "DequantScales",
    "DequantTiming",
    "FusedConcatenator",
    "GroupScale",
    "InlierDequantizer",
    "MinMaxFinder",
    "OutlierDequantizer",
    "OutlierExtractor",
    "OutlierIndexBuffer",
    "RoutedElement",
    "ScaleCalculator",
    "StageActivity",
    "StreamingDequantEngine",
    "StreamingQuantEngine",
    "TokenQuantResult",
    "ZeroInsertShifter",
]
