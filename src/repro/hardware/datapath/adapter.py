"""Hardware-in-the-loop adapter: datapath engines behind the KV cache.

:class:`EngineBackedQuantizer` exposes the same ``quantize`` /
``dequantize`` surface as :class:`~repro.core.quantizer.OakenQuantizer`
but routes every call through the Figure 9 engine models,
accumulating their cycle reports.  Dropping it into
:class:`~repro.core.kvcache.QuantizedKVCache` (or the model substrate's
quantized generation) runs the whole software stack on the hardware
datapath — the system-level counterpart of the per-tensor equivalence
tests, and the source of end-to-end engine cycle counts.

Two engine tiers are available (see
:mod:`repro.hardware.datapath.vectorized`): the default
``engine="vectorized"`` runs the whole-tensor twins — same bits, same
modeled cycles, orders of magnitude faster on the host — while
``engine="scalar"`` drives the frozen element-streaming golden model.
Both honour the adapter's :class:`~repro.core.modes.ComputeMode`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import OakenConfig
from repro.core.encoding import EncodedKV
from repro.core.grouping import GroupThresholds
from repro.core.modes import (
    EXACT_F64,
    ComputeMode,
    ComputeModeLike,
    resolve_compute_mode,
)
from repro.hardware.datapath.dequant_engine import (
    DequantTiming,
    StreamingDequantEngine,
)
from repro.hardware.datapath.quant_engine import (
    DatapathTiming,
    StreamingQuantEngine,
)
from repro.hardware.datapath.vectorized import (
    VectorizedDequantEngine,
    VectorizedQuantEngine,
)

#: Engine tiers the adapter can drive.
ENGINE_TIERS = ("vectorized", "scalar")


class EngineBackedQuantizer:
    """Drop-in OakenQuantizer replacement backed by the engines.

    Args:
        config: quantizer hyper-parameters.
        thresholds: offline-profiled thresholds.
        quant_timing / dequant_timing: datapath physical parameters.
        mode: :class:`~repro.core.modes.ComputeMode` precision policy
            (default ``exact_f64``, the golden anchor).
        engine: ``"vectorized"`` (default — the whole-tensor twins) or
            ``"scalar"`` (the frozen element-streaming golden model).

    Attributes:
        quant_cycles: engine cycles spent quantizing so far.
        dequant_cycles: engine cycles spent dequantizing so far.
    """

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        quant_timing: Optional[DatapathTiming] = None,
        dequant_timing: Optional[DequantTiming] = None,
        mode: ComputeModeLike = None,
        engine: str = "vectorized",
    ):
        if engine not in ENGINE_TIERS:
            raise ValueError(
                f"unknown engine tier {engine!r}; expected one of "
                f"{ENGINE_TIERS}"
            )
        self.config = config
        self.thresholds = thresholds
        self.mode: ComputeMode = resolve_compute_mode(mode, EXACT_F64)
        self.engine = engine
        if engine == "scalar":
            self._quant = StreamingQuantEngine(
                config, thresholds, timing=quant_timing, mode=self.mode
            )
            self._dequant = StreamingDequantEngine(
                config, thresholds, timing=dequant_timing, mode=self.mode
            )
        else:
            self._quant = VectorizedQuantEngine(
                config, thresholds, timing=quant_timing, mode=self.mode
            )
            self._dequant = VectorizedDequantEngine(
                config, thresholds, timing=dequant_timing, mode=self.mode
            )
        self.quant_cycles = 0
        self.dequant_cycles = 0

    @property
    def compute_dtype(self) -> np.dtype:
        """Working dtype of the engine stages (from the mode policy)."""
        return self.mode.compute_dtype

    def quantize(self, values: np.ndarray) -> EncodedKV:
        """Stream a [T, D] matrix through the quantization engine."""
        encoded, report = self._quant.quantize_matrix(values)
        self.quant_cycles += report.total_cycles
        return encoded

    def quantize_into(self, values: np.ndarray, scratch=None) -> EncodedKV:
        """Streaming-append entry point (scratch-buffer signature).

        The cache layer and the serving pool prefer ``quantize_into``
        when a quantizer offers it; the engines allocate internally, so
        ``scratch`` is accepted for interface compatibility and
        ignored.  Cycle accounting is identical to :meth:`quantize` —
        this is what lets an engine-backed cache ride the pool's
        batched ``append_batch`` path while still accumulating modeled
        datapath cycles.
        """
        return self.quantize(values)

    def dequantize(self, encoded: EncodedKV) -> np.ndarray:
        """Stream an encoded tensor through the dequantization engine."""
        matrix, report = self._dequant.dequantize_matrix(encoded)
        self.dequant_cycles += report.total_cycles
        return matrix

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize then dequantize through both engines."""
        return self.dequantize(self.quantize(values))

    def engine_time_s(self, freq_ghz: float = 1.0) -> float:
        """Wall-clock engine time accumulated so far."""
        return (self.quant_cycles + self.dequant_cycles) / (
            freq_ghz * 1e9
        )
