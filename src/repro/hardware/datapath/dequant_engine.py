"""The streaming dequantization engine (Figure 9b, end to end).

:class:`StreamingDequantEngine` consumes an
:class:`~repro.core.encoding.EncodedKV` the way the hardware reads it
back from memory — token by token, dense pages alongside the token's
sparse records — and reconstructs float rows that the unit tests assert
are bit-identical to the vectorized
:meth:`~repro.core.quantizer.OakenQuantizer.dequantize`.

Unlike the quantization side, dequantization needs no per-token
turnaround (scales stream in with the data), so the engine is a pure
one-pass pipeline: initiation interval per token is
``ceil(D / lanes)`` and sparse records ride along at one per cycle in
the index buffer, which never becomes the bottleneck at the paper's
outlier ratios (10% of D per token versus a D-element pass).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import OakenConfig
from repro.core.encoding import EncodedKV
from repro.core.grouping import GroupThresholds
from repro.core.modes import EXACT_F64, ComputeModeLike, resolve_compute_mode
from repro.hardware.datapath.dequant_stages import (
    DequantScales,
    InlierDequantizer,
    OutlierDequantizer,
    OutlierIndexBuffer,
    ZeroInsertShifter,
)
from repro.hardware.datapath.records import COORecord, CycleReport


@dataclass(frozen=True)
class DequantTiming:
    """Physical parameters of the streaming dequantization datapath.

    Wider than the quantization engine (it must keep pace with the
    attention read stream), with a short fixed fill.
    """

    lanes: int = 128
    freq_ghz: float = 1.0
    fill_cycles: int = 16

    def pass_cycles(self, dim: int) -> int:
        """Cycles for one pass over a ``dim``-element token row."""
        return max(1, math.ceil(dim / self.lanes))


class StreamingDequantEngine:
    """Element-streaming dequantization engine for one (layer, tensor).

    Args:
        config: quantizer hyper-parameters (must match the encoder's).
        thresholds: offline thresholds (shift edges for reconstruction).
        timing: lane width and clock of the datapath.
        mode: the :class:`~repro.core.modes.ComputeMode` stage mode
            (``exact_f64`` golden default; ``deploy_f32`` runs the
            un-scale/un-shift arithmetic in float32).
    """

    def __init__(
        self,
        config: OakenConfig,
        thresholds: GroupThresholds,
        timing: Optional[DequantTiming] = None,
        mode: ComputeModeLike = None,
    ):
        self.config = config
        self.thresholds = thresholds
        self.timing = timing if timing is not None else DequantTiming()
        self.mode = resolve_compute_mode(mode, EXACT_F64)
        self._index_buffer = OutlierIndexBuffer()
        self._shifter = ZeroInsertShifter(config)
        self._inlier = InlierDequantizer(config, thresholds, self.mode)
        self._outlier = OutlierDequantizer(config, thresholds, self.mode)

    # ------------------------------------------------------------------

    def _records_of_token(
        self, encoded: EncodedKV, token: int
    ) -> List[COORecord]:
        """Materialize the COO records of one token from the layout."""
        cfg = self.config
        indices = encoded.outliers_of_token(token)
        records = []
        for i in indices:
            pos = int(encoded.sparse_pos[i])
            side = bool(encoded.sparse_side[i])
            mag = int(encoded.sparse_mag_code[i])
            fused = None
            fp16 = None
            if cfg.fused_encoding:
                if cfg.group_shift:
                    mag_bits = cfg.outlier_bits - 1
                    full = (int(side) << mag_bits) | mag
                else:
                    full = mag
                fused = full & ((1 << cfg.inlier_bits) - 1)
            else:
                fp16 = float(encoded.sparse_fp16[i])
            records.append(
                COORecord(
                    position=pos,
                    chunk=pos // cfg.chunk_size,
                    index=pos % cfg.chunk_size,
                    band=int(encoded.sparse_band[i]),
                    side=side,
                    mag_code=mag,
                    fused_nibble=fused,
                    fp16_value=fp16,
                )
            )
        return records

    def dequantize_token(
        self,
        encoded: EncodedKV,
        token: int,
        report: Optional[CycleReport] = None,
    ) -> np.ndarray:
        """Reconstruct one token row through the streaming datapath."""
        cfg = self.config
        dim = encoded.dim
        w = self.mode.compute_dtype.type
        scales = DequantScales(
            middle_lo=w(encoded.middle_lo[token]),
            middle_hi=w(encoded.middle_hi[token]),
            band_lo=tuple(w(v) for v in encoded.band_lo[token]),
            band_hi=tuple(w(v) for v in encoded.band_hi[token]),
        )
        records = self._records_of_token(encoded, token)
        self._index_buffer.load(records)

        row = np.zeros(dim, dtype=self.mode.compute_dtype)
        for position in range(dim):
            slot = int(encoded.dense_codes[token, position])
            record = self._index_buffer.lookup(position)
            if record is None:
                row[position] = self._inlier.decode(slot, scales)
                continue
            # Zero-insert path: reassemble the full outlier code from
            # the fused nibble and the record's high bits, then decode.
            if cfg.fused_encoding:
                mag, side = self._shifter.reassemble_code(record, slot)
            else:
                mag, side = record.mag_code, record.side
            row[position] = self._outlier.decode(
                record.band, side, mag, scales,
                fp16_value=record.fp16_value,
            )

        if report is not None:
            pass_cycles = self.timing.pass_cycles(dim)
            report.stage("zero_insert_shifter").record(
                len(records), min(pass_cycles, len(records))
            )
            report.stage("inlier_dequantizer").record(dim, pass_cycles)
            report.stage("outlier_dequantizer").record(
                len(records), min(pass_cycles, len(records))
            )
        return row.astype(np.float32)

    def dequantize_matrix(
        self, encoded: EncodedKV
    ) -> "tuple[np.ndarray, CycleReport]":
        """Stream a whole encoded tensor back to float rows.

        Returns:
            ``(matrix, cycles)`` where ``matrix`` matches the vectorized
            dequantizer bit for bit and ``cycles`` is the one-pass
            pipeline timing.
        """
        tokens, dim = encoded.shape
        report = CycleReport(tokens=tokens, elements=tokens * dim)
        rows = [
            self.dequantize_token(encoded, t, report=report)
            for t in range(tokens)
        ]
        pass_cycles = self.timing.pass_cycles(dim)
        report.total_cycles = (
            self.timing.fill_cycles + tokens * pass_cycles
        )
        out = np.stack(rows, axis=0) if rows else np.zeros(
            (0, dim), dtype=np.float32
        )
        return out, report
