"""Streaming pipeline model of the quantization engine (Figure 9).

The quantization engine is a five-stage streaming pipeline —
decomposer (threshold compare + group shift), min/max finder, scale
calculator, quantizer, and the zero-remove shifter feeding the COO
concatenator.  Because the min/max of a token's group must be known
before its values can be scaled, the engine double-buffers at token
granularity: stage 1-2 process token *t+1* while stages 3-5 drain token
*t*.  This module models that timing and reproduces the paper's claim
that engine latency is hidden: for any realistic token rate the
pipeline's occupancy stays far below the attention window it overlaps.

The model is deliberately simple (elements/cycle per stage, fixed
per-token turnaround) but is *structural*: it exposes per-stage
occupancy so the area ablations in Table 4 can point at the stage a
configuration widens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Stage names of the Figure 9(a) quantization engine, in order.
QUANT_STAGES = (
    "decomposer",
    "minmax_finder",
    "scale_calculator",
    "quantizer",
    "zero_remove_shifter",
)

#: Stage names of the Figure 9(b) dequantization engine.
DEQUANT_STAGES = (
    "zero_insert_shifter",
    "scale_calculator",
    "dequantizer",
    "concatenator",
)


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage.

    Attributes:
        name: stage label.
        elements_per_cycle: throughput of the stage datapath.
        setup_cycles: fixed per-token turnaround (register loads,
            threshold stream, scale broadcast).
    """

    name: str
    elements_per_cycle: int
    setup_cycles: int = 1


@dataclass
class PipelineTiming:
    """Timing result for a stream of tokens through the engine.

    Attributes:
        total_cycles: makespan for the whole stream.
        stage_busy_cycles: per-stage busy time (occupancy numerator).
        tokens: tokens processed.
        elements: total elements processed.
    """

    total_cycles: int
    stage_busy_cycles: Dict[str, int] = field(default_factory=dict)
    tokens: int = 0
    elements: int = 0

    def occupancy(self, stage: str) -> float:
        """Busy fraction of one stage over the makespan."""
        if self.total_cycles == 0:
            return 0.0
        return self.stage_busy_cycles[stage] / self.total_cycles

    def bottleneck(self) -> str:
        """The stage with the highest occupancy."""
        return max(self.stage_busy_cycles, key=self.stage_busy_cycles.get)


class StreamingEnginePipeline:
    """Token-granular double-buffered pipeline.

    Args:
        stages: ordered stage specs.
    """

    def __init__(self, stages: List[StageSpec]):
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = list(stages)

    def token_cycles(self, elements: int) -> Dict[str, int]:
        """Cycles each stage spends on one token of ``elements``."""
        return {
            stage.name: stage.setup_cycles
            + -(-elements // stage.elements_per_cycle)
            for stage in self.stages
        }

    def process(self, tokens: int, elements_per_token: int) -> PipelineTiming:
        """Stream ``tokens`` tokens through the pipeline.

        Classic pipeline timing: with per-token stage times t_i, the
        makespan is ``sum_i t_i + (tokens - 1) * max_i t_i`` (fill once,
        then the slowest stage paces the stream).
        """
        if tokens < 0 or elements_per_token < 0:
            raise ValueError("tokens/elements must be non-negative")
        per_token = self.token_cycles(elements_per_token)
        if tokens == 0:
            return PipelineTiming(
                total_cycles=0,
                stage_busy_cycles={s.name: 0 for s in self.stages},
            )
        slowest = max(per_token.values())
        total = sum(per_token.values()) + (tokens - 1) * slowest
        busy = {name: cycles * tokens for name, cycles in per_token.items()}
        return PipelineTiming(
            total_cycles=total,
            stage_busy_cycles=busy,
            tokens=tokens,
            elements=tokens * elements_per_token,
        )

    def hidden_fraction(
        self,
        tokens: int,
        elements_per_token: int,
        overlap_window_cycles: int,
    ) -> float:
        """Fraction of engine time hidden under an overlap window.

        The scheduler overlaps (de)quantization with DMA reads and
        attention of other requests (Section 5.3); anything fitting in
        the window is free.
        """
        timing = self.process(tokens, elements_per_token)
        if timing.total_cycles == 0:
            return 1.0
        hidden = min(timing.total_cycles, overlap_window_cycles)
        return hidden / timing.total_cycles


def default_quant_pipeline(lanes: int = 32) -> StreamingEnginePipeline:
    """The Figure 9(a) engine at a given datapath width."""
    return StreamingEnginePipeline(
        [
            StageSpec("decomposer", lanes, setup_cycles=2),
            StageSpec("minmax_finder", lanes, setup_cycles=1),
            StageSpec("scale_calculator", lanes * 4, setup_cycles=4),
            StageSpec("quantizer", lanes, setup_cycles=1),
            StageSpec("zero_remove_shifter", lanes, setup_cycles=1),
        ]
    )


def default_dequant_pipeline(lanes: int = 128) -> StreamingEnginePipeline:
    """The Figure 9(b) engine: wider, to keep pace with attention reads."""
    return StreamingEnginePipeline(
        [
            StageSpec("zero_insert_shifter", lanes, setup_cycles=1),
            StageSpec("scale_calculator", lanes * 4, setup_cycles=2),
            StageSpec("dequantizer", lanes, setup_cycles=1),
            StageSpec("concatenator", lanes, setup_cycles=1),
        ]
    )
