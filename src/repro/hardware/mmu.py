"""Functional model of Oaken's memory management unit (Section 5.2).

The MMU manages the quantized KV cache in device memory at page
granularity with **two management tables**:

* the *dense* table maps fixed-size dense-matrix entries (one per
  token per layer per head) to physical addresses with constant
  transfer sizes;
* the *sparse* table maps variable-size COO records with per-entry
  transfer sizes (the outlier count varies per token).

Both tables share a single physical address space.  Key/value vectors
of each (layer, head) stream into distinct page sequences so that the
whole history of a head can later be read in **burst order** — the
sequential write layout is what makes generation-phase reads contiguous
and keeps bandwidth near peak (design challenge 2 in the paper).

This model is *functional*: it tracks real page allocation, address
translation, fragmentation, and produces the burst read schedule that
:mod:`repro.hardware.memory` prices.  Unit tests assert the invariants
(no double allocation, full reclamation, schedule contiguity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.errors import MemoryCapacityError


class PageTableKind(enum.Enum):
    """Which management table an entry belongs to."""

    DENSE = "dense"
    SPARSE = "sparse"


@dataclass(frozen=True)
class StreamKey:
    """Identifies one KV stream: (sequence, layer, head, kind)."""

    sequence: int
    layer: int
    head: int
    kind: PageTableKind


@dataclass
class TableEntry:
    """One management-table row: a token's physical placement.

    Attributes:
        token: token index within the stream.
        physical_addr: byte address in device memory.
        transfer_bytes: bytes to move for this entry (constant for
            dense entries, variable for sparse).
    """

    token: int
    physical_addr: int
    transfer_bytes: int


@dataclass
class _Page:
    """A physical page with a simple bump allocator."""

    index: int
    used: int = 0


class OutOfPagesError(MemoryCapacityError):
    """Raised when the physical page pool is exhausted.

    Member of the :class:`~repro.engine.errors.MemoryCapacityError`
    family: carries ``seq_id`` (the sequence whose stream needed the
    page), ``requested_bytes`` (one page), ``measured_bytes`` (bytes of
    pages in use) and ``capacity_bytes`` (the whole physical pool), so
    MMU exhaustion is inspectable the same way pool admission refusals
    are.
    """

    def __init__(
        self,
        seq_id: Optional[int],
        requested_bytes: float,
        measured_bytes: float,
        capacity_bytes: float,
    ):
        super().__init__(
            seq_id,
            requested_bytes,
            measured_bytes,
            capacity_bytes,
            f"sequence {seq_id!r}: physical page pool exhausted "
            f"({measured_bytes:.0f} of {capacity_bytes:.0f} bytes "
            f"allocated; one more {requested_bytes:.0f} B page needed)",
        )


class MemoryManagementUnit:
    """Page-based allocator with dense and sparse management tables.

    Args:
        capacity_bytes: physical memory under management.
        page_bytes: page size (paper-style 4 KiB default).
    """

    def __init__(self, capacity_bytes: int, page_bytes: int = 4096):
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.page_bytes = page_bytes
        self.num_pages = int(capacity_bytes // page_bytes)
        if self.num_pages < 1:
            raise ValueError("capacity smaller than one page")
        self._free_pages: List[int] = list(range(self.num_pages - 1, -1, -1))
        # Per-stream: open page plus the table of committed entries.
        self._open_page: Dict[StreamKey, _Page] = {}
        self._tables: Dict[StreamKey, List[TableEntry]] = {}
        self._pages_of_stream: Dict[StreamKey, List[int]] = {}

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def _take_page(self, key: StreamKey) -> _Page:
        if not self._free_pages:
            raise OutOfPagesError(
                key.sequence,
                float(self.page_bytes),
                float(self.pages_in_use * self.page_bytes),
                float(self.num_pages * self.page_bytes),
            )
        page = _Page(index=self._free_pages.pop())
        self._open_page[key] = page
        self._pages_of_stream.setdefault(key, []).append(page.index)
        return page

    def write_entry(
        self,
        sequence: int,
        layer: int,
        head: int,
        kind: PageTableKind,
        token: int,
        nbytes: int,
    ) -> TableEntry:
        """Append one token's dense or sparse payload to its stream.

        Entries of a stream are placed sequentially; a new page is
        opened when the current one cannot hold the entry (entries do
        not straddle pages, mirroring the aligned hardware layout).

        Returns:
            The committed :class:`TableEntry`.
        """
        if nbytes <= 0:
            raise ValueError("entry size must be positive")
        if nbytes > self.page_bytes:
            raise ValueError(
                f"entry of {nbytes} B exceeds page size {self.page_bytes}"
            )
        key = StreamKey(sequence, layer, head, kind)
        page = self._open_page.get(key)
        if page is None or page.used + nbytes > self.page_bytes:
            page = self._take_page(key)
        addr = page.index * self.page_bytes + page.used
        page.used += nbytes
        entry = TableEntry(
            token=token, physical_addr=addr, transfer_bytes=nbytes
        )
        self._tables.setdefault(key, []).append(entry)
        return entry

    def append_token(
        self,
        sequence: int,
        layer: int,
        head: int,
        token: int,
        dense_bytes: int,
        sparse_bytes: int,
    ) -> Tuple[TableEntry, Optional[TableEntry]]:
        """Write one token's dense entry and (optional) sparse records."""
        dense = self.write_entry(
            sequence, layer, head, PageTableKind.DENSE, token, dense_bytes
        )
        sparse = None
        if sparse_bytes > 0:
            sparse = self.write_entry(
                sequence, layer, head, PageTableKind.SPARSE, token,
                sparse_bytes,
            )
        return dense, sparse

    def free_sequence(self, sequence: int) -> int:
        """Release every page belonging to ``sequence``.

        Returns:
            Number of pages reclaimed.
        """
        reclaimed = 0
        for key in [k for k in self._pages_of_stream if k.sequence == sequence]:
            for page_index in self._pages_of_stream.pop(key):
                self._free_pages.append(page_index)
                reclaimed += 1
            self._tables.pop(key, None)
            self._open_page.pop(key, None)
        return reclaimed

    # ------------------------------------------------------------------
    # translation and read scheduling
    # ------------------------------------------------------------------

    def lookup(
        self,
        sequence: int,
        layer: int,
        head: int,
        kind: PageTableKind,
        token: int,
    ) -> TableEntry:
        """Virtual-to-physical translation for one token entry."""
        key = StreamKey(sequence, layer, head, kind)
        for entry in self._tables.get(key, ()):
            if entry.token == token:
                return entry
        raise KeyError(f"no entry for token {token} in stream {key}")

    def read_schedule(
        self, sequence: int, layer: int, head: int, kind: PageTableKind
    ) -> List[Tuple[int, int]]:
        """Burst read schedule for a whole stream.

        Adjacent entries are merged into single (address, size) bursts;
        because streams are written sequentially, the schedule
        degenerates to roughly one burst per page — this contiguity is
        what :func:`burst_count` quantifies and the tests assert.

        Returns:
            List of (physical address, transfer size) pairs.
        """
        key = StreamKey(sequence, layer, head, kind)
        entries = self._tables.get(key, [])
        schedule: List[Tuple[int, int]] = []
        for entry in entries:
            if schedule:
                addr, size = schedule[-1]
                if addr + size == entry.physical_addr:
                    schedule[-1] = (addr, size + entry.transfer_bytes)
                    continue
            schedule.append((entry.physical_addr, entry.transfer_bytes))
        return schedule

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    @property
    def pages_in_use(self) -> int:
        return self.num_pages - len(self._free_pages)

    def bytes_stored(self) -> int:
        """Total payload bytes across all tables."""
        return sum(
            entry.transfer_bytes
            for entries in self._tables.values()
            for entry in entries
        )

    def fragmentation(self) -> float:
        """Fraction of allocated page space not holding payload."""
        allocated = self.pages_in_use * self.page_bytes
        if allocated == 0:
            return 0.0
        return 1.0 - self.bytes_stored() / allocated

    def burst_count(
        self, sequence: int, layer: int, head: int, kind: PageTableKind
    ) -> int:
        """Number of memory transactions to read a stream."""
        return len(self.read_schedule(sequence, layer, head, kind))
