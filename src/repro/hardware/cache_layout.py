"""MMU-backed placement of encoded KV tensors (Section 5.2 end to end).

Bridges the algorithm side (:class:`~repro.core.encoding.EncodedKV`)
and the memory side (:class:`~repro.hardware.mmu.MemoryManagementUnit`):
every token's dense nibbles and sparse records are placed through the
MMU's dense/sparse management tables, per attention head, in the
sequential write order that makes generation-phase reads burstable.

The payoff is measurable: :func:`read_bandwidth_efficiency` prices a
stream's burst schedule against the memory model, quantifying the
paper's claim that the page layout keeps reads near peak bandwidth —
and :func:`naive_interleaved_schedule` provides the strawman (token
entries scattered round-robin across heads) for the comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.encoding import EncodedKV, sparse_record_bits
from repro.hardware.memory import MemorySpec
from repro.hardware.mmu import MemoryManagementUnit, PageTableKind


@dataclass
class PlacementReport:
    """Result of placing one encoded tensor through the MMU.

    Attributes:
        sequence: sequence id the tensor belongs to.
        layer: decoder layer.
        heads: number of attention-head streams created.
        tokens: token count placed.
        dense_bytes / sparse_bytes: payload written per table.
        pages_used: MMU pages consumed by this placement.
    """

    sequence: int
    layer: int
    heads: int
    tokens: int
    dense_bytes: int
    sparse_bytes: int
    pages_used: int


class OakenCacheLayout:
    """Places encoded KV tensors into MMU-managed pages per head.

    Args:
        mmu: the page allocator / management tables.
        num_heads: attention heads per layer; each head's stream of a
            sequence gets its own page chain (Section 5.2: "key-value
            vectors generated in the current layer are divided by
            attention head and written to distinct pages").
    """

    def __init__(self, mmu: MemoryManagementUnit, num_heads: int):
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        self.mmu = mmu
        self.num_heads = num_heads

    def place(
        self, sequence: int, layer: int, encoded: EncodedKV
    ) -> PlacementReport:
        """Write an encoded tensor token by token through the MMU.

        Dense entries have a constant per-head transfer size
        (``head_dim x inlier_bits``); sparse entries vary with each
        token's outlier count in that head's slice — exactly the
        variability the sparse management table exists to absorb.
        """
        config = encoded.config
        tokens, dim = encoded.shape
        if dim % self.num_heads:
            raise ValueError(
                f"dim {dim} not divisible by {self.num_heads} heads"
            )
        head_dim = dim // self.num_heads
        dense_entry_bytes = max(
            1, (head_dim * config.inlier_bits + 7) // 8
        )
        record_bytes = max(1, sparse_record_bits(config) // 8)

        # Outlier count per (token, head).
        head_of_outlier = encoded.sparse_pos // head_dim
        counts = np.zeros((tokens, self.num_heads), dtype=np.int64)
        np.add.at(
            counts,
            (encoded.sparse_token, head_of_outlier),
            1,
        )

        pages_before = self.mmu.pages_in_use
        dense_total = 0
        sparse_total = 0
        for token in range(tokens):
            for head in range(self.num_heads):
                self.mmu.write_entry(
                    sequence, layer, head, PageTableKind.DENSE,
                    token, dense_entry_bytes,
                )
                dense_total += dense_entry_bytes
                n_records = int(counts[token, head])
                if n_records:
                    nbytes = n_records * record_bytes
                    self.mmu.write_entry(
                        sequence, layer, head, PageTableKind.SPARSE,
                        token, nbytes,
                    )
                    sparse_total += nbytes
        return PlacementReport(
            sequence=sequence,
            layer=layer,
            heads=self.num_heads,
            tokens=tokens,
            dense_bytes=dense_total,
            sparse_bytes=sparse_total,
            pages_used=self.mmu.pages_in_use - pages_before,
        )

    def read_schedule(
        self, sequence: int, layer: int, head: int
    ) -> List[Tuple[int, int]]:
        """Combined dense+sparse burst schedule for one head's history."""
        schedule = list(
            self.mmu.read_schedule(
                sequence, layer, head, PageTableKind.DENSE
            )
        )
        schedule.extend(
            self.mmu.read_schedule(
                sequence, layer, head, PageTableKind.SPARSE
            )
        )
        return schedule


def read_bandwidth_efficiency(
    schedule: List[Tuple[int, int]], memory: MemorySpec
) -> float:
    """Achieved fraction of peak bandwidth for a burst schedule.

    Each (address, size) burst runs at ``memory.burst_efficiency(size)``;
    the aggregate is the byte-weighted harmonic combination (total bytes
    over total transfer time).
    """
    total_bytes = sum(size for _, size in schedule)
    if total_bytes == 0:
        return 0.0
    total_time = sum(
        memory.read_time_s(size, transfer_bytes=size)
        for _, size in schedule
    )
    peak_time = total_bytes / memory.bandwidth_bytes_per_s
    return peak_time / total_time


def naive_interleaved_schedule(
    tokens: int, entry_bytes: int, num_heads: int
) -> List[Tuple[int, int]]:
    """The strawman layout: token entries interleaved across heads.

    Without per-head page chains, one head's history is strided through
    memory at ``num_heads x entry_bytes`` intervals, so every token is
    its own transaction — this is what the paper's MMU design avoids.
    """
    stride = entry_bytes * num_heads
    return [(token * stride, entry_bytes) for token in range(tokens)]
