"""Iteration-level performance model (prefill + generation phases).

The model follows the paper's characterization (Section 3):

* **Non-attention operations** (QKV generation, projection, FFN) are
  *batchable*: weights stream from memory once per iteration and are
  reused across the batch, so their latency is the max of the weight
  stream time and the batched compute time (a roofline).
* **Attention operations** are *un-batchable*: every request reads its
  own KV cache, so their latency is the total KV bytes moved over the
  attention-path bandwidth — this is the term quantization shrinks.
* **(De)quantization** either rides the DMA stream (Oaken's engines,
  overlapped with attention of other requests, Section 5.3) or sits on
  the critical path (GPU software implementations).

Capacity semantics: a batch's KV cache must fit alongside the weights.
Paged GPU stacks degrade gracefully (the effective concurrent batch
saturates — Figure 11's flat GPU curves); dedicated accelerators
hard-OOM (Figure 4's missing bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.modes import ComputeModeLike, resolve_compute_mode
from repro.hardware.accelerator import DeviceSpec
from repro.hardware.overheads import ServingSystem
from repro.models.config import ArchShape

#: Generation-phase context checkpoints used to integrate iteration
#: latency over a run (latency is affine in context, so sparse
#: checkpoints are exact enough).
_CHECKPOINTS = 16


@dataclass
class IterationBreakdown:
    """Latency components of one generation iteration (seconds).

    Attributes:
        nonattn_s: batchable (weight-streaming/compute) time.
        attn_s: KV-cache read + score/context compute time.
        quant_s: online quantization time (raw, before overlap).
        dequant_s: dequantization time (raw, before overlap).
        exposed_overhead_s: the part of quant+dequant actually added to
            the critical path after overlap.
        compute_util: fraction of peak FLOPs used over the iteration.
    """

    nonattn_s: float
    attn_s: float
    quant_s: float = 0.0
    dequant_s: float = 0.0
    exposed_overhead_s: float = 0.0
    compute_util: float = 0.0

    @property
    def total_s(self) -> float:
        return self.nonattn_s + self.attn_s + self.exposed_overhead_s


def weight_bytes(arch: ArchShape, weight_bits: float = 16.0) -> float:
    """Stored model weight bytes."""
    return arch.weight_bytes(weight_bits)


def kv_bytes_per_token(arch: ArchShape, kv_bits: float) -> float:
    """KV bytes appended per generated token at a given bitwidth."""
    return arch.kv_bytes_per_token(kv_bits)


def max_supported_batch(
    system: ServingSystem,
    arch: ArchShape,
    total_context: int,
) -> int:
    """Largest batch whose full-context KV cache fits in memory."""
    device = system.device_for(arch)
    kv_bits = system.kv_bits(arch)
    budget = device.memory.capacity_bytes * (
        1.0 - device.reserved_fraction
    )
    budget -= weight_bytes(arch, system.weight_bits)
    if budget <= 0:
        return 0
    per_request = kv_bytes_per_token(arch, kv_bits) * arch.attended_length(
        total_context
    )
    return int(budget // per_request)


def generation_iteration(
    system: ServingSystem,
    arch: ArchShape,
    batch: int,
    context: int,
    ragged: bool = False,
    mode: ComputeModeLike = None,
) -> IterationBreakdown:
    """Latency breakdown of one generation iteration.

    Args:
        system: serving system (device + method profile).
        arch: model architecture (paper dimensions).
        batch: concurrent requests.
        context: current per-request context length (tokens in cache).
        ragged: apply the mixed-prompt-length compute penalty
            (trace-driven workloads, Figure 14).
        mode: ComputeMode policy; ``exact_f64`` (default) runs this
            frozen float64 path, ``deploy_f32`` runs the identical
            operation sequence in float32 stage registers (shared
            with the vectorized sweep, so scalar and batched f32
            results are one code path).

    Returns:
        An :class:`IterationBreakdown`.
    """
    resolved = resolve_compute_mode(mode)
    if not resolved.exact:
        from repro.hardware.sweep import iteration_breakdown_lowp

        return iteration_breakdown_lowp(
            system, arch, batch, context, ragged, resolved
        )
    device = system.device_for(arch)
    profile = system.profile
    kv_bits = system.kv_bits(arch)

    efficiency = (
        profile.ragged_batch_efficiency if ragged else 1.0
    )
    # --- batchable path ---------------------------------------------------
    w_bytes = weight_bytes(arch, system.weight_bits)
    t_weight = device.weight_stream_time_s(w_bytes)
    flops_nonattn = arch.flops_per_token_nonattn() * batch
    t_compute = flops_nonattn / (device.effective_flops * efficiency)
    nonattn = max(t_weight, t_compute)

    # --- attention path ---------------------------------------------------
    attended = arch.attended_length(context)
    kv_read = batch * attended * kv_bytes_per_token(arch, kv_bits)
    t_attn_read = device.attention_read_time_s(kv_read)
    flops_attn = arch.flops_per_token_attn(context) * batch
    t_attn_compute = flops_attn / device.effective_flops
    t_attn = max(t_attn_read, t_attn_compute)

    # --- (de)quantization -------------------------------------------------
    new_kv_bytes = batch * kv_bytes_per_token(arch, 16.0)
    if profile.overlapped:
        # Hardware engines stream at fixed rates; both directions
        # overlap with DMA/attention of other requests (Section 5.3),
        # so only work exceeding the attention window is exposed.
        quant_s = (
            new_kv_bytes / (profile.engine_quant_gbps * 1e9)
            if profile.engine_quant_gbps
            else 0.0
        )
        dequant_s = (
            kv_read / (profile.engine_dequant_gbps * 1e9)
            if profile.engine_dequant_gbps
            else 0.0
        )
        exposed = max(0.0, quant_s + dequant_s - 0.9 * t_attn)
    else:
        # Software: dequantization inflates every KV read; online
        # quantization is per-generated-value compute on the critical
        # path.
        dequant_s = (profile.dequant_slowdown - 1.0) * t_attn_read
        quant_values = batch * arch.kv_elements_per_token()
        quant_s = (
            quant_values * profile.quant_flops_per_value
            / device.effective_flops
        )
        exposed = quant_s + dequant_s

    total = nonattn + t_attn + exposed
    util = (
        (flops_nonattn + flops_attn) / (total * device.peak_flops)
        if total > 0
        else 0.0
    )
    return IterationBreakdown(
        nonattn_s=nonattn,
        attn_s=t_attn,
        quant_s=quant_s,
        dequant_s=dequant_s,
        exposed_overhead_s=exposed,
        compute_util=util,
    )


def prefill_time(
    system: ServingSystem,
    arch: ArchShape,
    batch: int,
    prompt_tokens: int,
    mode: ComputeModeLike = None,
) -> float:
    """Prefill-phase latency: compute-bound parallel token processing."""
    resolved = resolve_compute_mode(mode)
    if not resolved.exact:
        from repro.hardware.sweep import prefill_time_lowp

        return prefill_time_lowp(
            system, arch, batch, prompt_tokens, resolved
        )
    device = system.device_for(arch)
    # Causal attention over the prompt sums to roughly
    # prompt * attn_flops(prompt / 2) per request.
    flops = batch * prompt_tokens * (
        arch.flops_per_token_nonattn()
        + arch.flops_per_token_attn(max(1, prompt_tokens // 2))
    )
    t_compute = flops / device.effective_flops
    t_weight = device.weight_stream_time_s(
        weight_bytes(arch, system.weight_bits)
    )
    return max(t_compute, t_weight)


@dataclass
class GenerationRun:
    """Result of simulating a full 1K:1K-style generation run.

    Attributes:
        system: serving-system name.
        batch: requested batch size.
        effective_batch: batch actually resident (paged systems clip).
        oom: True when the platform cannot run the batch at all.
        tokens_per_s: generation throughput (generated tokens / total
            time, the paper's Figure 11 metric).
        prefill_s / generation_s: phase times.
        breakdown: mid-run iteration breakdown (reporting).
    """

    system: str
    batch: int
    effective_batch: int
    oom: bool
    tokens_per_s: float
    prefill_s: float = 0.0
    generation_s: float = 0.0
    breakdown: Optional[IterationBreakdown] = None


def simulate_generation_run(
    system: ServingSystem,
    arch: ArchShape,
    batch: int,
    input_tokens: int = 1024,
    output_tokens: int = 1024,
    ragged: bool = False,
    mode: ComputeModeLike = None,
) -> GenerationRun:
    """Simulate a batched run and return its throughput.

    Paged (GPU) systems clip the resident batch to what fits and keep
    serving — throughput saturates.  Dedicated accelerators OOM when
    the requested batch cannot fit (Figure 4's missing bars).
    """
    resolved = resolve_compute_mode(mode)
    if not resolved.exact:
        from repro.hardware.sweep import generation_run_lowp

        return generation_run_lowp(
            system, arch, batch, input_tokens, output_tokens,
            ragged, resolved,
        )
    total_context = input_tokens + output_tokens
    fit = max_supported_batch(system, arch, total_context)
    device = system.device_for(arch)
    if fit < 1:
        return GenerationRun(
            system=system.name, batch=batch, effective_batch=0,
            oom=True, tokens_per_s=0.0,
        )
    if batch > fit and not device.paged_serving:
        return GenerationRun(
            system=system.name, batch=batch, effective_batch=0,
            oom=True, tokens_per_s=0.0,
        )
    effective = min(batch, fit)

    t_prefill = prefill_time(system, arch, effective, input_tokens)
    step = max(1, output_tokens // _CHECKPOINTS)
    t_generation = 0.0
    steps = 0
    mid_breakdown: Optional[IterationBreakdown] = None
    for offset in range(0, output_tokens, step):
        context = input_tokens + offset
        breakdown = generation_iteration(
            system, arch, effective, context, ragged=ragged
        )
        span = min(step, output_tokens - offset)
        t_generation += breakdown.total_s * span
        steps += span
        if offset <= output_tokens // 2 < offset + span:
            mid_breakdown = breakdown
    total_time = t_prefill + t_generation
    tokens = effective * output_tokens
    return GenerationRun(
        system=system.name,
        batch=batch,
        effective_batch=effective,
        oom=False,
        tokens_per_s=tokens / total_time,
        prefill_s=t_prefill,
        generation_s=t_generation,
        breakdown=mid_breakdown,
    )
