"""Cycle-approximate hardware simulation of Oaken and its baselines.

The paper's performance results are bandwidth/capacity phenomena, so the
simulator is an analytic roofline model with explicit memory semantics
rather than an RTL-level simulator (the substitution is documented in
DESIGN.md):

* :mod:`repro.hardware.memory` — HBM/LPDDR specs with a burst-
  efficiency model (small scattered transfers waste bandwidth; the MMU's
  page layout is what keeps Oaken near peak).
* :mod:`repro.hardware.mmu` — a functional page-based memory management
  unit with separate dense and sparse management tables, reproducing
  Section 5.2's design (virtual-to-physical mapping, per-entry transfer
  sizes, burst-order reads).
* :mod:`repro.hardware.engines` — throughput/latency models of the
  quantization and dequantization engines in the DMA unit.
* :mod:`repro.hardware.datapath` — functional, bit-exact streaming
  models of the Figure 9 engine datapaths (decomposer, min/max finder,
  σ-calculator, zero-remove/zero-insert shifters, OR-merge), verified
  against the vectorized algorithm — the RTL-vs-golden-model check.
* :mod:`repro.hardware.interconnect` — transaction-level model of the
  cores/controllers fabric (Section 5.1): round-robin arbitration,
  broadcast weight reads vs private KV streams, burst overheads.
* :mod:`repro.hardware.accelerator` — device catalog: NVIDIA A100 (x1
  and x2), Oaken-HBM, Oaken-LPDDR, LPU, Tender (Table 1 and Section 6.1
  configurations).
* :mod:`repro.hardware.overheads` — per-method software/hardware
  overhead profiles (online sorting, mixed-precision gather, channel
  reordering, GPU warp divergence) and effective KV bitwidths.
* :mod:`repro.hardware.overlap` — list-scheduled model of Section
  5.3's overlap policy: measures how much (de)quantization time lands
  on the critical path instead of assuming it.
* :mod:`repro.hardware.parallel` — explicit pipeline-parallel model of
  the 2-GPU baselines (stage partitioning, GPipe bubbles, microbatch
  weight-restream trade-off, per-stage capacity).
* :mod:`repro.hardware.perf` — the iteration-level timing model:
  prefill and generation phase latencies, OOM/paging capacity
  semantics, throughput integration over a generation run.
* :mod:`repro.hardware.area` — the TSMC-28nm area/power accounting of
  Table 4.
"""

from repro.hardware.accelerator import (
    DEVICES,
    DeviceSpec,
    get_device,
)
from repro.hardware.area import AreaModel, AreaReport, area_grid
from repro.hardware.cache_layout import (
    OakenCacheLayout,
    naive_interleaved_schedule,
    read_bandwidth_efficiency,
)
from repro.hardware.datapath import (
    StreamingDequantEngine,
    StreamingQuantEngine,
)
from repro.hardware.engines import DequantEngine, QuantEngine
from repro.hardware.interconnect import (
    FabricReport,
    MemoryFabric,
    TrafficClass,
    generation_fabric_report,
)
from repro.hardware.memory import HBM_80GB, HOST_DDR, LPDDR_256GB, MemorySpec
from repro.hardware.mmu import MemoryManagementUnit, PageTableKind
from repro.hardware.pipeline import (
    StreamingEnginePipeline,
    default_dequant_pipeline,
    default_quant_pipeline,
)
from repro.hardware.overlap import (
    OverlapConfig,
    OverlapReport,
    simulate_overlap,
)
from repro.hardware.parallel import (
    PipelineBreakdown,
    PipelinePlan,
    partition_layers,
    pipeline_generation_iteration,
    pipeline_max_batch,
)
from repro.hardware.overheads import (
    SERVING_SYSTEMS,
    MethodProfile,
    ServingSystem,
    get_system,
)
from repro.hardware.perf import (
    GenerationRun,
    IterationBreakdown,
    generation_iteration,
    max_supported_batch,
    prefill_time,
    simulate_generation_run,
)
from repro.hardware.sweep import (
    GenerationGrid,
    GridPoint,
    capacity_grid,
    grid_points,
    iteration_grid,
    simulate_generation_grid,
)

__all__ = [
    "AreaModel",
    "AreaReport",
    "DEVICES",
    "DequantEngine",
    "DeviceSpec",
    "FabricReport",
    "GenerationRun",
    "HBM_80GB",
    "HOST_DDR",
    "MemoryFabric",
    "TrafficClass",
    "generation_fabric_report",
    "IterationBreakdown",
    "LPDDR_256GB",
    "MemoryManagementUnit",
    "MemorySpec",
    "OakenCacheLayout",
    "MethodProfile",
    "OverlapConfig",
    "OverlapReport",
    "simulate_overlap",
    "PageTableKind",
    "PipelineBreakdown",
    "PipelinePlan",
    "partition_layers",
    "pipeline_generation_iteration",
    "pipeline_max_batch",
    "QuantEngine",
    "SERVING_SYSTEMS",
    "ServingSystem",
    "StreamingDequantEngine",
    "StreamingEnginePipeline",
    "StreamingQuantEngine",
    "default_dequant_pipeline",
    "default_quant_pipeline",
    "generation_iteration",
    "naive_interleaved_schedule",
    "read_bandwidth_efficiency",
    "get_device",
    "get_system",
    "max_supported_batch",
    "prefill_time",
    "simulate_generation_run",
    "GenerationGrid",
    "GridPoint",
    "area_grid",
    "capacity_grid",
    "grid_points",
    "iteration_grid",
    "simulate_generation_grid",
]
