"""Device catalog: the accelerators of Table 1 and Section 6.1.

Each :class:`DeviceSpec` couples compute capability with a memory spec
and a pair of efficiency knobs (how much of peak compute / bandwidth
real kernels achieve).  GPUs support paging-based serving (vLLM-style
waves: an over-large batch saturates instead of crashing), dedicated
accelerators do not (an over-large batch is an OOM, as in Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.hardware.memory import (
    HBM_80GB,
    HBM_160GB,
    LPDDR_256GB,
    MemorySpec,
)


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator platform.

    Attributes:
        name: catalog key.
        peak_fp16_tflops: peak dense FP16 throughput.
        memory: attached :class:`MemorySpec`.
        freq_ghz: core clock (reporting only).
        num_cores: compute core count (utilization accounting).
        compute_efficiency: fraction of peak FLOPs dense kernels reach.
        weight_bw_efficiency: fraction of peak bandwidth for streaming
            weight reads (long bursts, near peak).
        attn_bw_efficiency: fraction of peak bandwidth for KV-cache
            reads (gather-ish on GPUs; page-burst on Oaken's MMU).
        paged_serving: True for GPU serving stacks (batch waves), False
            for dedicated accelerators (hard OOM).
        tdp_watts: board power (energy reporting).
        reserved_fraction: memory held back for activations/runtime
            (GPU serving stacks reserve considerably more than lean
            accelerator firmware).
    """

    name: str
    peak_fp16_tflops: float
    memory: MemorySpec
    freq_ghz: float
    num_cores: int
    compute_efficiency: float = 0.75
    weight_bw_efficiency: float = 0.92
    attn_bw_efficiency: float = 0.75
    paged_serving: bool = False
    tdp_watts: float = 300.0
    reserved_fraction: float = 0.05

    @property
    def peak_flops(self) -> float:
        return self.peak_fp16_tflops * 1e12

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.compute_efficiency

    def weight_stream_time_s(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` of weights from memory."""
        return nbytes / (
            self.memory.bandwidth_bytes_per_s * self.weight_bw_efficiency
        )

    def attention_read_time_s(self, nbytes: float) -> float:
        """Seconds to read ``nbytes`` of KV cache for attention."""
        return nbytes / (
            self.memory.bandwidth_bytes_per_s * self.attn_bw_efficiency
        )


def _a100() -> DeviceSpec:
    return DeviceSpec(
        name="a100",
        peak_fp16_tflops=312.0,
        memory=HBM_80GB,
        freq_ghz=1.4,
        num_cores=108,  # SMs
        compute_efficiency=0.70,
        attn_bw_efficiency=0.70,
        paged_serving=True,
        tdp_watts=400.0,
        reserved_fraction=0.15,
    )


#: All platforms used across the evaluation figures.
DEVICES: Dict[str, DeviceSpec] = {
    "a100": _a100(),
    # Two pipeline-parallel A100s (larger models): capacity doubles,
    # bandwidth/compute per stage unchanged.
    "a100x2": replace(_a100(), name="a100x2", memory=HBM_160GB),
    # Oaken accelerator (Table 1): LPU-derived cores + Oaken DMA units.
    "oaken-hbm": DeviceSpec(
        name="oaken-hbm",
        peak_fp16_tflops=270.0,
        memory=HBM_80GB,
        freq_ghz=1.0,
        num_cores=256,
        compute_efficiency=0.80,
        attn_bw_efficiency=0.90,  # page-burst MMU reads
        paged_serving=False,
        tdp_watts=222.7,
    ),
    "oaken-lpddr": DeviceSpec(
        name="oaken-lpddr",
        peak_fp16_tflops=270.0,
        memory=LPDDR_256GB,
        freq_ghz=1.0,
        num_cores=256,
        compute_efficiency=0.80,
        attn_bw_efficiency=0.90,
        paged_serving=False,
        tdp_watts=222.7,
    ),
    # The LPU baseline (same cores, no quantization hardware); the
    # paper's Figure 4 also evaluates an HBM variant of this NPU.
    "lpu-lpddr": DeviceSpec(
        name="lpu-lpddr",
        peak_fp16_tflops=270.0,
        memory=LPDDR_256GB,
        freq_ghz=1.0,
        num_cores=256,
        compute_efficiency=0.80,
        attn_bw_efficiency=0.90,
        paged_serving=False,
        tdp_watts=215.0,
    ),
    "lpu-hbm": DeviceSpec(
        name="lpu-hbm",
        peak_fp16_tflops=270.0,
        memory=HBM_80GB,
        freq_ghz=1.0,
        num_cores=256,
        compute_efficiency=0.80,
        attn_bw_efficiency=0.90,
        paged_serving=False,
        tdp_watts=215.0,
    ),
    # Tender: quantization ASIC aligned to A100 memory/compute
    # (Section 6.1: "we align Tender's memory specifications and
    # compute capabilities with those of the A100").  Systolic arrays
    # suffer padding underutilization for ragged batches (Figure 14).
    "tender": DeviceSpec(
        name="tender",
        peak_fp16_tflops=312.0,
        memory=HBM_80GB,
        freq_ghz=1.0,
        num_cores=128,
        compute_efficiency=0.50,
        attn_bw_efficiency=0.60,
        paged_serving=False,
        tdp_watts=300.0,
    ),
    "tender-x2": DeviceSpec(
        name="tender-x2",
        peak_fp16_tflops=312.0,
        memory=HBM_160GB,
        freq_ghz=1.0,
        num_cores=128,
        compute_efficiency=0.50,
        attn_bw_efficiency=0.60,
        paged_serving=False,
        tdp_watts=300.0,
    ),
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by catalog name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; available: {list(DEVICES)}"
        ) from None
