"""Device memory models: HBM vs LPDDR, bandwidth, capacity, bursts.

Section 3.2 of the paper frames the whole design space as a trade-off
between bandwidth (HBM: 2 TB/s, 80 GB) and capacity (LPDDR: 1.1 TB/s,
256 GB).  This module carries those specs plus a simple burst-
efficiency model: DRAM delivers peak bandwidth only for long contiguous
transfers, and scattered small transfers pay per-transaction overhead —
the cost the MMU's page layout exists to avoid (Section 5.2, challenge
2: "burst access should be leveraged whenever possible").
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1024.0**3


@dataclass(frozen=True)
class MemorySpec:
    """One device-memory configuration.

    Attributes:
        name: ``"HBM"`` or ``"LPDDR"``.
        capacity_gb: usable capacity in GiB.
        bandwidth_gbps: peak bandwidth in GB/s.
        burst_bytes: transfer size achieving full efficiency.
        transaction_overhead_bytes: fixed per-transaction cost expressed
            as equivalent wasted bytes (row activation, protocol).
    """

    name: str
    capacity_gb: float
    bandwidth_gbps: float
    burst_bytes: int = 1024
    transaction_overhead_bytes: int = 64

    @property
    def capacity_bytes(self) -> float:
        return self.capacity_gb * GB

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9

    def burst_efficiency(self, transfer_bytes: float) -> float:
        """Fraction of peak bandwidth achieved at a given transfer size.

        Follows the standard transaction-overhead model:
        ``size / (size + overhead)``, saturating at 1.0 for transfers
        at or beyond the full burst size.
        """
        if transfer_bytes <= 0:
            return 0.0
        if transfer_bytes >= self.burst_bytes:
            return float(
                self.burst_bytes
                / (self.burst_bytes + self.transaction_overhead_bytes)
            )
        return float(
            transfer_bytes
            / (transfer_bytes + self.transaction_overhead_bytes)
        )

    def read_time_s(
        self, nbytes: float, transfer_bytes: float = 0.0
    ) -> float:
        """Seconds to move ``nbytes`` at the given access granularity.

        ``transfer_bytes = 0`` means ideal long bursts.
        """
        if nbytes <= 0:
            return 0.0
        efficiency = (
            self.burst_efficiency(transfer_bytes)
            if transfer_bytes > 0
            else self.burst_efficiency(self.burst_bytes)
        )
        return nbytes / (self.bandwidth_bytes_per_s * efficiency)

    def fits(self, nbytes: float) -> bool:
        """Whether ``nbytes`` fits in capacity."""
        return nbytes <= self.capacity_bytes


#: The paper's two memory configurations (Table 1 / Figure 4c).
HBM_80GB = MemorySpec(name="HBM", capacity_gb=80.0, bandwidth_gbps=2000.0)
LPDDR_256GB = MemorySpec(
    name="LPDDR", capacity_gb=256.0, bandwidth_gbps=1100.0
)
#: Two pipeline-parallel A100s: doubled capacity, same per-stage
#: bandwidth/compute (Section 6.1: "keep computation capability and
#: memory bandwidth consistent, while scaling capacity to 160 GB").
HBM_160GB = MemorySpec(name="HBM", capacity_gb=160.0, bandwidth_gbps=2000.0)
#: Host-side DDR spill target behind a PCIe-class link: the effective
#: bandwidth a device sees when demoting/promoting KV pages to host
#: memory.  The large burst size with a heavy per-transaction overhead
#: models DMA setup cost — single 4 KiB pages move at ~50% efficiency
#: while multi-page prefetched bursts approach peak, which is exactly
#: the contiguity the tiered KV store's sequential page streams and
#: prefetch-on-read exist to exploit.
HOST_DDR = MemorySpec(
    name="HOST_DDR",
    capacity_gb=512.0,
    bandwidth_gbps=64.0,
    burst_bytes=65536,
    transaction_overhead_bytes=4096,
)
