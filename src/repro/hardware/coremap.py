"""Core-level occupancy model (Figure 3(a)/(b) at core granularity).

The paper's Figure 3 sketches which compute cores are busy over time:
prefill parallelizes one request's prompt tokens across many cores;
generation gives each request's single token to one core, so occupancy
equals min(batch, cores) and everything else idles.  Oaken's token-
level batch scheduling (Section 5.3) is precisely the policy that
raises generation occupancy by packing many requests' tokens.

This module computes those occupancy timelines from first principles —
tokens-to-cores assignment plus per-token work — and produces the
utilization summaries the Figure 3 experiment renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.models.config import ArchShape


@dataclass(frozen=True)
class PhaseOccupancy:
    """Core occupancy of one inference phase.

    Attributes:
        phase: ``"prefill"`` or ``"generation"``.
        batch: concurrent requests.
        busy_cores: cores doing useful work.
        total_cores: cores available.
        occupancy: busy fraction.
        tokens_in_flight: tokens processed concurrently.
    """

    phase: str
    batch: int
    busy_cores: int
    total_cores: int
    occupancy: float
    tokens_in_flight: int


def prefill_occupancy(
    arch: ArchShape,
    batch: int,
    prompt_tokens: int,
    total_cores: int = 256,
) -> PhaseOccupancy:
    """Occupancy during prefill: prompt tokens fan out across cores."""
    if batch < 1 or prompt_tokens < 1 or total_cores < 1:
        raise ValueError("batch/prompt/cores must be positive")
    tokens = batch * prompt_tokens
    busy = min(total_cores, tokens)
    return PhaseOccupancy(
        phase="prefill",
        batch=batch,
        busy_cores=busy,
        total_cores=total_cores,
        occupancy=busy / total_cores,
        tokens_in_flight=tokens,
    )


def generation_occupancy(
    arch: ArchShape,
    batch: int,
    total_cores: int = 256,
) -> PhaseOccupancy:
    """Occupancy during generation: one token per request per core.

    This is the paper's Figure 3(b) underutilization: without batching,
    one request keeps exactly one core busy; Oaken's scheduler fills
    cores with other requests' tokens.
    """
    if batch < 1 or total_cores < 1:
        raise ValueError("batch/cores must be positive")
    busy = min(total_cores, batch)
    return PhaseOccupancy(
        phase="generation",
        batch=batch,
        busy_cores=busy,
        total_cores=total_cores,
        occupancy=busy / total_cores,
        tokens_in_flight=batch,
    )


def occupancy_timeline(
    arch: ArchShape,
    batch: int,
    prompt_tokens: int,
    output_tokens: int,
    total_cores: int = 256,
) -> List[PhaseOccupancy]:
    """The Figure 3(a)/(b) timeline: prefill burst, generation tail.

    Returns one entry per phase segment; durations are proportional to
    token counts (the hardware-timing model in :mod:`perf` prices
    them — this view is about *which cores* are busy, not how long).
    """
    timeline = [
        prefill_occupancy(arch, batch, prompt_tokens, total_cores)
    ]
    if output_tokens > 0:
        timeline.append(
            generation_occupancy(arch, batch, total_cores)
        )
    return timeline


def batching_occupancy_gain(
    arch: ArchShape,
    batch: int,
    total_cores: int = 256,
) -> float:
    """Generation occupancy gain of batching vs a single request."""
    single = generation_occupancy(arch, 1, total_cores).occupancy
    batched = generation_occupancy(arch, batch, total_cores).occupancy
    return batched / single
