"""Vectorized analytic serving sweeps (batched twin of :mod:`perf`).

Table 4 / Figure 11 style experiments evaluate whole grids of
(model x system x batch x context) points; the scalar models in
:mod:`repro.hardware.perf` price one point per call, so serving-size
grids pay a Python-loop tax per cell.  This module evaluates a flat
list of grid points as array operations over the point axis, pinned
**element-identical** to the scalar path the same way
:mod:`repro.hardware.datapath.vectorized` twins the scalar engine
stages:

* all per-(model, system) pair constants are extracted once in float64
  by calling the same scalar helpers the golden path calls (weight
  stream time, effective FLOPs, KV bytes/token, engine rates, ...);
* every per-point operation mirrors the scalar expression's operand
  order exactly (integer products stay integer until the same cast
  point, float multiplies associate identically, ``np.maximum``
  stands in for ``max``);
* the generation run integrates the same 16 context checkpoints
  **sequentially** — vectorization happens across grid points, never
  across the accumulation order, so float sums associate exactly as
  the scalar loop's.

Both :class:`~repro.core.modes.ComputeMode` policies are supported:
``exact_f64`` reproduces the frozen scalar path bit for bit, and
``deploy_f32`` runs the identical operation sequence in float32 stage
registers.  The scalar low-precision path in :mod:`perf` delegates to
this module with a one-point grid, so scalar-vs-vectorized identity in
f32 mode holds by construction and is still pinned by
``tests/test_analytic_vectorized.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.modes import (
    ComputeMode,
    ComputeModeLike,
    EXACT_F64,
    resolve_compute_mode,
)
from repro.hardware.overheads import SERVING_SYSTEMS, ServingSystem, get_system
from repro.hardware.perf import (
    GenerationRun,
    IterationBreakdown,
    _CHECKPOINTS,
    kv_bytes_per_token,
    max_supported_batch,
    weight_bytes,
)
from repro.models.config import ArchShape, get_model

#: Stand-in window length for "no sliding window" (never binds: far
#: larger than any context the analytic sweeps price).
_NO_WINDOW = np.int64(2) ** 62


@dataclass(frozen=True)
class GridPoint:
    """One (model, system, batch) cell of an analytic sweep."""

    model: str
    system: str
    batch: int


def grid_points(
    models: Sequence[str],
    systems: Sequence[str],
    batches: Sequence[int],
) -> List[GridPoint]:
    """Dense model x batch x system point list (Figure 11 loop order)."""
    return [
        GridPoint(model=model, system=system, batch=batch)
        for model in models
        for batch in batches
        for system in systems
    ]


class _PairParams:
    """Per-(system, arch) scalar constants, extracted once in float64.

    Every value is produced by the *same* scalar helper expression the
    golden path evaluates, so downstream array math can mirror the
    scalar operand order exactly.
    """

    __slots__ = (
        "t_weight", "eff_flops", "peak_flops", "ragged_eff",
        "fnon", "attn_coeff", "kv_bytes_q", "kv_bytes_16",
        "attn_denom", "kv_elems", "window", "overlapped",
        "quant_rate", "dequant_rate", "slowdown_m1", "quant_fpv",
        "paged",
    )

    def __init__(self, system: ServingSystem, arch: ArchShape):
        device = system.device_for(arch)
        profile = system.profile
        kv_bits = system.kv_bits(arch)
        self.t_weight = device.weight_stream_time_s(
            weight_bytes(arch, system.weight_bits)
        )
        self.eff_flops = device.effective_flops
        self.peak_flops = device.peak_flops
        self.ragged_eff = profile.ragged_batch_efficiency
        self.fnon = arch.flops_per_token_nonattn()
        # flops_per_token_attn(ctx) == attn_coeff * attended(ctx); the
        # product of exactly representable integers re-associates
        # without rounding, so hoisting the coefficient is exact.
        self.attn_coeff = 2.0 * 2.0 * arch.n_heads * arch.head_dim
        self.kv_bytes_q = kv_bytes_per_token(arch, kv_bits)
        self.kv_bytes_16 = kv_bytes_per_token(arch, 16.0)
        self.attn_denom = (
            device.memory.bandwidth_bytes_per_s * device.attn_bw_efficiency
        )
        self.kv_elems = arch.kv_elements_per_token()
        self.window = (
            _NO_WINDOW if arch.sliding_window is None
            else np.int64(arch.sliding_window)
        )
        self.overlapped = bool(profile.overlapped)
        self.quant_rate = (
            profile.engine_quant_gbps * 1e9
            if profile.engine_quant_gbps else 0.0
        )
        self.dequant_rate = (
            profile.engine_dequant_gbps * 1e9
            if profile.engine_dequant_gbps else 0.0
        )
        self.slowdown_m1 = profile.dequant_slowdown - 1.0
        self.quant_fpv = profile.quant_flops_per_value
        self.paged = bool(device.paged_serving)


class _GridParams:
    """Column arrays of :class:`_PairParams` over a flat point list."""

    _FLOAT_FIELDS = (
        "t_weight", "eff_flops", "peak_flops", "ragged_eff", "fnon",
        "attn_coeff", "kv_bytes_q", "kv_bytes_16", "attn_denom",
        "quant_rate", "dequant_rate", "slowdown_m1", "quant_fpv",
    )

    def __init__(self, points: Sequence[GridPoint]):
        self.points = list(points)
        pairs: Dict[Tuple[str, str], _PairParams] = {}
        self.archs: Dict[str, ArchShape] = {}
        self.systems: Dict[str, ServingSystem] = {}
        for p in self.points:
            key = (p.model, p.system)
            if key not in pairs:
                arch = self.archs.setdefault(
                    p.model, get_model(p.model).arch
                )
                system = self.systems.setdefault(
                    p.system, get_system(p.system)
                )
                pairs[key] = _PairParams(system, arch)
        self.pairs = pairs
        rows = [pairs[(p.model, p.system)] for p in self.points]
        for name in self._FLOAT_FIELDS:
            setattr(
                self,
                name,
                np.array([getattr(r, name) for r in rows], dtype=np.float64),
            )
        self.kv_elems = np.array(
            [r.kv_elems for r in rows], dtype=np.int64
        )
        self.window = np.array([r.window for r in rows], dtype=np.int64)
        self.overlapped = np.array(
            [r.overlapped for r in rows], dtype=bool
        )
        self.paged = np.array([r.paged for r in rows], dtype=bool)
        self.batch = np.array([p.batch for p in self.points], dtype=np.int64)
        self._cast_cache: Dict[str, "_GridParams"] = {}

    def cast(self, mode: ComputeMode) -> "_GridParams":
        """This parameter set with float columns in the mode's dtype.

        The f64 -> f32 cast happens *here*, once per column — the
        deploy_f32 "stage register" rule: constants are derived at full
        precision, then rounded once, then all per-point math runs in
        the working dtype.
        """
        if mode.compute_dtype == np.float64:
            return self
        cached = self._cast_cache.get(mode.name)
        if cached is not None:
            return cached
        clone = object.__new__(_GridParams)
        clone.points = self.points
        clone.pairs = self.pairs
        clone.archs = self.archs
        clone.systems = self.systems
        for name in self._FLOAT_FIELDS:
            setattr(
                clone, name, getattr(self, name).astype(mode.compute_dtype)
            )
        clone.kv_elems = self.kv_elems
        clone.window = self.window
        clone.overlapped = self.overlapped
        clone.paged = self.paged
        clone.batch = self.batch
        clone._cast_cache = {}
        self._cast_cache[mode.name] = clone
        return clone


def _iteration_arrays(
    p: "_GridParams",
    batch: np.ndarray,
    context: int,
    ragged: bool,
    dt: np.dtype,
) -> Dict[str, np.ndarray]:
    """One generation iteration over every point (mirror of the scalar
    :func:`repro.hardware.perf.generation_iteration`, op for op)."""
    one = dt.type(1.0)
    zero = dt.type(0.0)
    b = batch.astype(dt)
    efficiency = p.ragged_eff if ragged else one
    # --- batchable path (roofline) ---------------------------------
    flops_nonattn = p.fnon * b
    t_compute = flops_nonattn / (p.eff_flops * efficiency)
    nonattn = np.maximum(p.t_weight, t_compute)
    # --- attention path --------------------------------------------
    attended = np.minimum(np.int64(context), p.window)
    kv_read = (batch * attended).astype(dt) * p.kv_bytes_q
    t_attn_read = kv_read / p.attn_denom
    flops_attn = (p.attn_coeff * attended.astype(dt)) * b
    t_attn_compute = flops_attn / p.eff_flops
    t_attn = np.maximum(t_attn_read, t_attn_compute)
    # --- (de)quantization ------------------------------------------
    new_kv_bytes = b * p.kv_bytes_16
    with np.errstate(divide="ignore", invalid="ignore"):
        quant_ov = np.where(
            p.quant_rate > 0.0, new_kv_bytes / p.quant_rate, zero
        )
        dequant_ov = np.where(
            p.dequant_rate > 0.0, kv_read / p.dequant_rate, zero
        )
    exposed_ov = np.maximum(
        zero, quant_ov + dequant_ov - dt.type(0.9) * t_attn
    )
    dequant_sw = p.slowdown_m1 * t_attn_read
    quant_values = (batch * p.kv_elems).astype(dt)
    quant_sw = quant_values * p.quant_fpv / p.eff_flops
    exposed_sw = quant_sw + dequant_sw
    quant_s = np.where(p.overlapped, quant_ov, quant_sw)
    dequant_s = np.where(p.overlapped, dequant_ov, dequant_sw)
    exposed = np.where(p.overlapped, exposed_ov, exposed_sw)
    total = nonattn + t_attn + exposed
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(
            total > 0,
            (flops_nonattn + flops_attn) / (total * p.peak_flops),
            zero,
        )
    # IterationBreakdown.total_s sums its (Python float) components in
    # float64 regardless of mode; the exported total mirrors that so
    # grid cells equal the scalar property exactly.  The dt-precision
    # ``total`` above still feeds util, matching the scalar kernel.
    total_f64 = (
        nonattn.astype(np.float64)
        + t_attn.astype(np.float64)
        + exposed.astype(np.float64)
    )
    return {
        "nonattn_s": nonattn,
        "attn_s": t_attn,
        "quant_s": quant_s,
        "dequant_s": dequant_s,
        "exposed_overhead_s": exposed,
        "compute_util": util,
        "total_s": total_f64,
    }


def _prefill_arrays(
    p: "_GridParams",
    batch: np.ndarray,
    prompt_tokens: int,
    dt: np.dtype,
) -> np.ndarray:
    """Prefill latency per point (mirror of :func:`perf.prefill_time`)."""
    half = max(1, prompt_tokens // 2)
    attended = np.minimum(np.int64(half), p.window)
    flops = (batch * prompt_tokens).astype(dt) * (
        p.fnon + p.attn_coeff * attended.astype(dt)
    )
    t_compute = flops / p.eff_flops
    return np.maximum(t_compute, p.t_weight)


def iteration_grid(
    points: Sequence[GridPoint],
    context: int,
    ragged: bool = False,
    mode: ComputeModeLike = None,
    params: Optional[_GridParams] = None,
) -> Dict[str, np.ndarray]:
    """Batched :func:`perf.generation_iteration` over a point list.

    Returns the :class:`~repro.hardware.perf.IterationBreakdown`
    fields (plus ``total_s``) as arrays over the point axis.
    """
    mode = resolve_compute_mode(mode, default=EXACT_F64)
    params = _GridParams(points) if params is None else params
    p = params.cast(mode)
    return _iteration_arrays(
        p, params.batch, context, ragged, mode.compute_dtype
    )


@dataclass
class GenerationGrid:
    """Batched result of :func:`simulate_generation_grid`.

    Column arrays over the flat point axis; :meth:`run` materializes
    any point as the scalar :class:`~repro.hardware.perf.GenerationRun`
    it is pinned element-identical to.
    """

    points: List[GridPoint]
    mode: str
    input_tokens: int
    output_tokens: int
    oom: np.ndarray
    effective_batch: np.ndarray
    tokens_per_s: np.ndarray
    prefill_s: np.ndarray
    generation_s: np.ndarray
    breakdown: Dict[str, np.ndarray] = field(default_factory=dict)

    def run(self, i: int) -> GenerationRun:
        """The scalar GenerationRun for point ``i``."""
        point = self.points[i]
        if self.oom[i]:
            return GenerationRun(
                system=point.system, batch=point.batch,
                effective_batch=0, oom=True, tokens_per_s=0.0,
            )
        return GenerationRun(
            system=point.system,
            batch=point.batch,
            effective_batch=int(self.effective_batch[i]),
            oom=False,
            tokens_per_s=float(self.tokens_per_s[i]),
            prefill_s=float(self.prefill_s[i]),
            generation_s=float(self.generation_s[i]),
            breakdown=IterationBreakdown(
                nonattn_s=float(self.breakdown["nonattn_s"][i]),
                attn_s=float(self.breakdown["attn_s"][i]),
                quant_s=float(self.breakdown["quant_s"][i]),
                dequant_s=float(self.breakdown["dequant_s"][i]),
                exposed_overhead_s=float(
                    self.breakdown["exposed_overhead_s"][i]
                ),
                compute_util=float(self.breakdown["compute_util"][i]),
            ),
        )

    def runs(self) -> List[GenerationRun]:
        """Every point, materialized in order."""
        return [self.run(i) for i in range(len(self.points))]


def simulate_generation_grid(
    points: Sequence[GridPoint],
    input_tokens: int = 1024,
    output_tokens: int = 1024,
    ragged: bool = False,
    mode: ComputeModeLike = None,
    params: Optional[_GridParams] = None,
) -> GenerationGrid:
    """Batched :func:`perf.simulate_generation_run` over a point list.

    The capacity gate (``max_supported_batch``) is evaluated by the
    scalar helper once per (model, system) pair — it is integer and
    pair-static — while all per-point float math runs as array ops.
    """
    mode = resolve_compute_mode(mode, default=EXACT_F64)
    dt = mode.compute_dtype
    params = _GridParams(points) if params is None else params
    p = params.cast(mode)
    points = params.points
    n = len(points)
    total_context = input_tokens + output_tokens

    fit_by_pair = {
        key: max_supported_batch(
            params.systems[key[1]], params.archs[key[0]], total_context
        )
        for key in params.pairs
    }
    fit = np.array(
        [fit_by_pair[(pt.model, pt.system)] for pt in points],
        dtype=np.int64,
    )
    oom = (fit < 1) | ((params.batch > fit) & ~params.paged)
    effective = np.minimum(params.batch, fit)

    prefill = _prefill_arrays(p, effective, input_tokens, dt)
    step = max(1, output_tokens // _CHECKPOINTS)
    t_generation = np.zeros(n, dtype=dt)
    mid: Dict[str, np.ndarray] = {}
    half_point = output_tokens // 2
    for offset in range(0, output_tokens, step):
        context = input_tokens + offset
        arrays = _iteration_arrays(p, effective, context, ragged, dt)
        span = min(step, output_tokens - offset)
        t_generation += arrays["total_s"] * span
        if offset <= half_point < offset + span:
            mid = arrays
    tokens = effective * output_tokens
    with np.errstate(divide="ignore", invalid="ignore"):
        tokens_per_s = tokens.astype(dt) / (prefill + t_generation)
    return GenerationGrid(
        points=points,
        mode=mode.name,
        input_tokens=input_tokens,
        output_tokens=output_tokens,
        oom=oom,
        effective_batch=effective,
        tokens_per_s=tokens_per_s,
        prefill_s=prefill,
        generation_s=t_generation,
        breakdown=mid,
    )


def capacity_grid(
    systems: Sequence[str],
    model: str,
    contexts: Sequence[int],
) -> np.ndarray:
    """Batched :func:`perf.max_supported_batch`: systems x contexts.

    Returns an int array of shape ``(len(systems), len(contexts))``,
    pinned element-identical to the scalar planner.
    """
    arch = get_model(model).arch
    ctx = np.asarray(contexts, dtype=np.int64).reshape(1, -1)
    budgets = np.empty((len(systems), 1), dtype=np.float64)
    kv_q = np.empty((len(systems), 1), dtype=np.float64)
    windows = np.empty((len(systems), 1), dtype=np.int64)
    for i, name in enumerate(systems):
        system = get_system(name)
        device = system.device_for(arch)
        budget = device.memory.capacity_bytes * (
            1.0 - device.reserved_fraction
        )
        budget -= weight_bytes(arch, system.weight_bits)
        budgets[i, 0] = budget
        kv_q[i, 0] = kv_bytes_per_token(arch, system.kv_bits(arch))
        windows[i, 0] = (
            _NO_WINDOW if arch.sliding_window is None
            else arch.sliding_window
        )
    attended = np.minimum(ctx, windows)
    per_request = kv_q * attended.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        # np.floor_divide on floats matches Python's // semantics,
        # which the scalar planner truncates through int().
        batches = np.floor_divide(budgets, per_request)
    return np.where(budgets <= 0, 0, batches.astype(np.int64))


def iteration_breakdown_lowp(
    system: ServingSystem,
    arch: ArchShape,
    batch: int,
    context: int,
    ragged: bool,
    mode: ComputeMode,
) -> IterationBreakdown:
    """Low-precision scalar iteration via a one-point grid.

    :func:`perf.generation_iteration` delegates here for non-exact
    modes, so the scalar and vectorized f32 paths are one code path.
    """
    point = _point_for(system, arch, batch)
    params = _grid_params_for(system, arch, [point])
    arrays = iteration_grid(
        [point], context, ragged=ragged, mode=mode, params=params
    )
    return IterationBreakdown(
        nonattn_s=float(arrays["nonattn_s"][0]),
        attn_s=float(arrays["attn_s"][0]),
        quant_s=float(arrays["quant_s"][0]),
        dequant_s=float(arrays["dequant_s"][0]),
        exposed_overhead_s=float(arrays["exposed_overhead_s"][0]),
        compute_util=float(arrays["compute_util"][0]),
    )


def prefill_time_lowp(
    system: ServingSystem,
    arch: ArchShape,
    batch: int,
    prompt_tokens: int,
    mode: ComputeMode,
) -> float:
    """Low-precision scalar prefill via a one-point grid."""
    point = _point_for(system, arch, batch)
    params = _grid_params_for(system, arch, [point])
    p = params.cast(mode)
    return float(
        _prefill_arrays(
            p, params.batch, prompt_tokens, mode.compute_dtype
        )[0]
    )


def generation_run_lowp(
    system: ServingSystem,
    arch: ArchShape,
    batch: int,
    input_tokens: int,
    output_tokens: int,
    ragged: bool,
    mode: ComputeMode,
) -> GenerationRun:
    """Low-precision scalar generation run via a one-point grid."""
    point = _point_for(system, arch, batch)
    params = _grid_params_for(system, arch, [point])
    grid = simulate_generation_grid(
        [point], input_tokens, output_tokens,
        ragged=ragged, mode=mode, params=params,
    )
    return grid.run(0)


def _point_for(
    system: ServingSystem, arch: ArchShape, batch: int
) -> GridPoint:
    """GridPoint labelling a (system, arch) pair.

    The low-precision scalar wrappers accept the same objects the
    scalar golden path takes and pass explicitly built parameters, so
    the names are labels, not registry keys.
    """
    return GridPoint(model=_model_name(arch), system=system.name, batch=batch)


def _model_name(arch: ArchShape) -> str:
    from repro.models.config import MODEL_ZOO

    for name, spec in MODEL_ZOO.items():
        if spec.arch == arch:
            return name
    # Ad-hoc architectures never hit the registry: the low-precision
    # wrappers pass explicitly constructed _GridParams, so the name is
    # only a label.
    return "custom-arch"


def _grid_params_for(
    system: ServingSystem, arch: ArchShape, points: List[GridPoint]
) -> _GridParams:
    """_GridParams built directly from the given objects (no registry
    round-trip, so ad-hoc ServingSystem instances also work)."""
    params = object.__new__(_GridParams)
    params.points = points
    pair = _PairParams(system, arch)
    params.pairs = {(points[0].model, points[0].system): pair}
    params.archs = {points[0].model: arch}
    params.systems = {points[0].system: system}
    for name in _GridParams._FLOAT_FIELDS:
        setattr(
            params,
            name,
            np.array(
                [getattr(pair, name)] * len(points), dtype=np.float64
            ),
        )
    params.kv_elems = np.array(
        [pair.kv_elems] * len(points), dtype=np.int64
    )
    params.window = np.array([pair.window] * len(points), dtype=np.int64)
    params.overlapped = np.array(
        [pair.overlapped] * len(points), dtype=bool
    )
    params.paged = np.array([pair.paged] * len(points), dtype=bool)
    params.batch = np.array([p.batch for p in points], dtype=np.int64)
    params._cast_cache = {}
    return params


__all__ = [
    "GenerationGrid",
    "GridPoint",
    "capacity_grid",
    "grid_points",
    "iteration_grid",
    "simulate_generation_grid",
]
