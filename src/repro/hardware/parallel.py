"""Explicit pipeline-parallel execution model (Section 6.1's 2-GPU setup).

The paper runs OPT-30B, Mixtral-8x7B, and Llama2-70B on *two* A100s
"employing pipeline parallelism to keep computation capability and
memory bandwidth consistent, while scaling capacity to 160 GB".  The
device catalog approximates that with a monolithic double-capacity
device (``a100x2``); this module models the pipeline explicitly so the
approximation can be validated and its costs quantified:

* decoder layers partition into balanced stages, one device each;
* each generation iteration sends every microbatch through every stage
  in order — with ``M`` microbatches and ``S`` stages the iteration
  takes ``sum_s(t_s) + (M - 1) * max_s(t_s)``, the classic GPipe
  schedule with its ``(S-1)/(S+M-1)`` bubble;
* microbatching is not free on weight-streaming hardware: each stage
  re-streams its weight slice once per microbatch pass, so more
  microbatches shrink the bubble but inflate weight traffic — the
  trade-off the ablation bench sweeps;
* capacity is per stage: a stage holds its layer share of weights and
  of every resident request's KV cache.

The cross-check the tests enforce: a one-stage "pipeline" must agree
exactly with :func:`repro.hardware.perf.generation_iteration`, and the
balanced two-stage pipeline's max batch must match the monolithic
double-capacity approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.hardware.overheads import ServingSystem
from repro.hardware.perf import kv_bytes_per_token, weight_bytes
from repro.models.config import ArchShape


def partition_layers(n_layers: int, num_stages: int) -> Tuple[int, ...]:
    """Balanced contiguous layer split (front stages take remainders).

    Args:
        n_layers: decoder layer count.
        num_stages: pipeline depth.

    Returns:
        Per-stage layer counts summing to ``n_layers``.
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if n_layers < num_stages:
        raise ValueError(
            f"cannot split {n_layers} layers over {num_stages} stages"
        )
    base = n_layers // num_stages
    remainder = n_layers % num_stages
    return tuple(
        base + (1 if stage < remainder else 0)
        for stage in range(num_stages)
    )


@dataclass(frozen=True)
class PipelinePlan:
    """One pipeline configuration.

    Attributes:
        layer_split: per-stage layer counts.
        microbatches: microbatches per iteration (GPipe M).
    """

    layer_split: Tuple[int, ...]
    microbatches: int = 1

    def __post_init__(self) -> None:
        if self.microbatches < 1:
            raise ValueError("microbatches must be >= 1")
        if not self.layer_split or any(k < 1 for k in self.layer_split):
            raise ValueError("every stage needs at least one layer")

    @property
    def num_stages(self) -> int:
        return len(self.layer_split)

    @property
    def total_layers(self) -> int:
        return sum(self.layer_split)

    @classmethod
    def balanced(
        cls, arch: ArchShape, num_stages: int, microbatches: int = 1
    ) -> "PipelinePlan":
        """Balanced split of a model's decoder stack."""
        return cls(
            layer_split=partition_layers(arch.n_layers, num_stages),
            microbatches=microbatches,
        )


@dataclass
class StageTiming:
    """Per-microbatch timing of one pipeline stage.

    Attributes:
        stage: stage index.
        layers: decoder layers resident on this stage.
        nonattn_s: weight-stream/compute roofline time.
        attn_s: KV read/compute roofline time.
        exposed_overhead_s: (de)quantization time on the critical path.
    """

    stage: int
    layers: int
    nonattn_s: float
    attn_s: float
    exposed_overhead_s: float

    @property
    def total_s(self) -> float:
        return self.nonattn_s + self.attn_s + self.exposed_overhead_s


@dataclass
class PipelineBreakdown:
    """One generation iteration through the pipeline.

    Attributes:
        plan: the pipeline configuration.
        batch: total resident requests.
        stage_times: per-microbatch stage timings.
        iteration_s: end-to-end iteration latency.
        bottleneck_stage: index of the slowest stage.
        bubble_fraction: idle fraction of the bottleneck device
            (``(S-1)/(S+M-1)`` for balanced stages).
    """

    plan: PipelinePlan
    batch: int
    stage_times: List[StageTiming]
    iteration_s: float
    bottleneck_stage: int
    bubble_fraction: float

    @property
    def throughput_tokens_per_s(self) -> float:
        """Generated tokens per second at this iteration latency."""
        if self.iteration_s <= 0:
            return 0.0
        return self.batch / self.iteration_s


def _stage_time(
    system: ServingSystem,
    arch: ArchShape,
    microbatch: int,
    context: int,
    layer_share: float,
) -> Tuple[float, float, float]:
    """(nonattn, attn, exposed) for one stage and one microbatch.

    The same roofline as :func:`repro.hardware.perf.generation_iteration`
    with every layer-proportional quantity scaled by ``layer_share``
    (embeddings are amortized proportionally — a deliberate
    approximation the module docstring calls out).
    """
    device = system.device_for(arch)
    profile = system.profile
    kv_bits = system.kv_bits(arch)

    w_bytes = weight_bytes(arch, system.weight_bits) * layer_share
    t_weight = device.weight_stream_time_s(w_bytes)
    flops_nonattn = (
        arch.flops_per_token_nonattn() * microbatch * layer_share
    )
    t_compute = flops_nonattn / device.effective_flops
    nonattn = max(t_weight, t_compute)

    attended = arch.attended_length(context)
    kv_read = (
        microbatch * attended * kv_bytes_per_token(arch, kv_bits)
        * layer_share
    )
    t_attn_read = device.attention_read_time_s(kv_read)
    flops_attn = (
        arch.flops_per_token_attn(context) * microbatch * layer_share
    )
    t_attn_compute = flops_attn / device.effective_flops
    attn = max(t_attn_read, t_attn_compute)

    new_kv_bytes = (
        microbatch * kv_bytes_per_token(arch, 16.0) * layer_share
    )
    if profile.overlapped:
        quant_s = (
            new_kv_bytes / (profile.engine_quant_gbps * 1e9)
            if profile.engine_quant_gbps
            else 0.0
        )
        dequant_s = (
            kv_read / (profile.engine_dequant_gbps * 1e9)
            if profile.engine_dequant_gbps
            else 0.0
        )
        exposed = max(0.0, quant_s + dequant_s - 0.9 * attn)
    else:
        dequant_s = (profile.dequant_slowdown - 1.0) * t_attn_read
        quant_values = (
            microbatch * arch.kv_elements_per_token() * layer_share
        )
        quant_s = (
            quant_values * profile.quant_flops_per_value
            / device.effective_flops
        )
        exposed = quant_s + dequant_s
    return nonattn, attn, exposed


def pipeline_generation_iteration(
    system: ServingSystem,
    arch: ArchShape,
    batch: int,
    context: int,
    plan: PipelinePlan,
) -> PipelineBreakdown:
    """One generation iteration through an explicit pipeline.

    Args:
        system: serving system (its ``device_for`` result is used as
            the per-stage device — the paper keeps per-stage bandwidth
            and compute identical to one device).
        arch: model architecture.
        batch: resident requests this iteration.
        context: per-request context length.
        plan: stage split and microbatch count.

    Returns:
        A :class:`PipelineBreakdown`.
    """
    if plan.total_layers != arch.n_layers:
        raise ValueError(
            f"plan covers {plan.total_layers} layers, model has "
            f"{arch.n_layers}"
        )
    if batch < 1:
        raise ValueError("batch must be >= 1")
    microbatch = max(1, math.ceil(batch / plan.microbatches))
    stage_times = []
    for stage, layers in enumerate(plan.layer_split):
        share = layers / arch.n_layers
        nonattn, attn, exposed = _stage_time(
            system, arch, microbatch, context, share
        )
        stage_times.append(
            StageTiming(
                stage=stage, layers=layers, nonattn_s=nonattn,
                attn_s=attn, exposed_overhead_s=exposed,
            )
        )
    per_stage = [s.total_s for s in stage_times]
    slowest = max(per_stage)
    iteration = sum(per_stage) + (plan.microbatches - 1) * slowest
    bottleneck = per_stage.index(slowest)
    busy = plan.microbatches * slowest
    bubble = (
        max(0.0, 1.0 - busy / iteration) if iteration > 0 else 0.0
    )
    return PipelineBreakdown(
        plan=plan,
        batch=batch,
        stage_times=stage_times,
        iteration_s=iteration,
        bottleneck_stage=bottleneck,
        bubble_fraction=bubble,
    )


def pipeline_max_batch(
    system: ServingSystem,
    arch: ArchShape,
    total_context: int,
    plan: PipelinePlan,
) -> int:
    """Largest batch whose per-stage KV share fits on every stage.

    Each stage holds its layer share of the weights and of every
    request's KV cache; the pipeline's capacity is the minimum across
    stages (balanced splits make this ~the monolithic double-capacity
    approximation).
    """
    if plan.total_layers != arch.n_layers:
        raise ValueError(
            f"plan covers {plan.total_layers} layers, model has "
            f"{arch.n_layers}"
        )
    device = system.device_for(arch)
    # Per-stage budget uses the *single* device's memory: the plan
    # replaces the monolithic approximation, not the device.
    single = device.memory.capacity_bytes / (
        2.0 if device.name.endswith("x2") else 1.0
    )
    kv_bits = system.kv_bits(arch)
    attended = arch.attended_length(total_context)
    fits = []
    for layers in plan.layer_split:
        share = layers / arch.n_layers
        budget = single * (1.0 - device.reserved_fraction)
        budget -= weight_bytes(arch, system.weight_bits) * share
        if budget <= 0:
            return 0
        per_request = (
            kv_bytes_per_token(arch, kv_bits) * attended * share
        )
        fits.append(int(budget // per_request))
    return min(fits)
