"""Interconnect and memory-controller arbitration (Section 5.1).

The paper's accelerator connects compute cores to memory controllers
through an interconnect "optimized to maximize bandwidth utilization
during memory read", with two very different traffic classes:

* **weight reads** are striped across *all* controllers and broadcast
  to every core — the batchable operations' saving grace: the byte is
  read once no matter how many cores consume it;
* **KV reads** are *private*: each core serves a different request, so
  its KV pages must stream to that core alone, and cores contend for
  whatever controllers own their pages;
* **KV writes** are small (one token's KV per iteration) and ride a
  simplified low-priority path.

This module simulates that fabric at transaction granularity: each
controller serves its queue one burst at a time, round-robin across
cores, paying the memory model's per-transaction overhead.  It
quantifies the two claims the architecture rests on:

1. page-striped KV placement (what the MMU's sequential page layout
   yields) approaches aggregate bandwidth, while skewed placement
   collapses to a single controller's share, and
2. burst-sized transfers amortize transaction overhead, while
   scattered small reads (the un-paged strawman) do not.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Optional, Sequence

from repro.hardware.memory import MemorySpec


class TrafficClass(Enum):
    """The three kinds of traffic Section 5.1 distinguishes."""

    WEIGHT_BROADCAST = "weight_broadcast"
    KV_READ = "kv_read"
    KV_WRITE = "kv_write"


@dataclass(frozen=True)
class Transaction:
    """One arbitration grant as the controller sees it.

    A grant covers up to ``bursts`` consecutive physical bursts from
    the same stream — the controller pays the per-transaction overhead
    once per burst, but arbitration switches streams only between
    grants (keeping the simulation cheap without changing the
    bandwidth math).

    Attributes:
        core: issuing compute core (-1 for broadcast weight reads,
            which are not owned by any single core).
        kind: traffic class.
        nbytes: total payload bytes of the grant.
        bursts: physical bursts aggregated in this grant.
    """

    core: int
    kind: TrafficClass
    nbytes: float
    bursts: int = 1

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError("transaction must move a positive byte count")
        if self.bursts < 1:
            raise ValueError("a transaction covers at least one burst")


@dataclass
class ControllerState:
    """Queues and clock of one memory controller."""

    index: int
    bandwidth_bytes_per_s: float
    overhead_bytes: float
    queues: Dict[int, Deque[Transaction]] = field(default_factory=dict)
    clock_s: float = 0.0
    busy_bytes: float = 0.0
    transactions: int = 0

    def enqueue(self, transaction: Transaction) -> None:
        self.queues.setdefault(transaction.core, deque()).append(
            transaction
        )

    def service_time_s(self, transaction: Transaction) -> float:
        """Grant time: payload plus per-burst transaction overhead."""
        effective = transaction.nbytes + (
            transaction.bursts * self.overhead_bytes
        )
        return effective / self.bandwidth_bytes_per_s

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self.queues.values())


@dataclass
class FabricReport:
    """Outcome of draining the fabric.

    Attributes:
        makespan_s: time until the last controller goes idle.
        payload_bytes: useful bytes moved (excluding overhead).
        effective_bandwidth_gbps: payload over makespan.
        peak_bandwidth_gbps: aggregate controller peak.
        controller_busy_s: per-controller busy time.
        core_finish_s: per-core completion time of its last private
            transaction (broadcast traffic excluded).
        per_class_bytes: payload bytes by traffic class.
    """

    makespan_s: float
    payload_bytes: float
    effective_bandwidth_gbps: float
    peak_bandwidth_gbps: float
    controller_busy_s: List[float]
    core_finish_s: Dict[int, float]
    per_class_bytes: Dict[TrafficClass, float]

    @property
    def bandwidth_utilization(self) -> float:
        """Achieved fraction of aggregate peak bandwidth."""
        if self.peak_bandwidth_gbps <= 0:
            return 0.0
        return self.effective_bandwidth_gbps / self.peak_bandwidth_gbps

    def fairness_spread(self) -> float:
        """Max/min per-core completion ratio (1.0 = perfectly fair)."""
        finishes = [t for t in self.core_finish_s.values() if t > 0]
        if len(finishes) < 2:
            return 1.0
        return max(finishes) / min(finishes)


class MemoryFabric:
    """Round-robin arbitrated controllers behind a broadcast fabric.

    Args:
        spec: the device memory (its bandwidth splits evenly across
            controllers; its transaction overhead prices each burst).
        num_controllers: memory channels (the paper's MC blocks).
        burst_bytes: default burst size for sliced transfers.
    """

    def __init__(
        self,
        spec: MemorySpec,
        num_controllers: int = 8,
        burst_bytes: Optional[int] = None,
        grant_bursts: int = 64,
    ):
        if num_controllers < 1:
            raise ValueError("need at least one memory controller")
        if grant_bursts < 1:
            raise ValueError("grant_bursts must be >= 1")
        self.spec = spec
        self.num_controllers = num_controllers
        self.grant_bursts = grant_bursts
        self.burst_bytes = (
            burst_bytes if burst_bytes is not None else spec.burst_bytes
        )
        share = spec.bandwidth_bytes_per_s / num_controllers
        self._controllers = [
            ControllerState(
                index=i,
                bandwidth_bytes_per_s=share,
                overhead_bytes=float(spec.transaction_overhead_bytes),
            )
            for i in range(num_controllers)
        ]
        self._next_stripe = 0

    # ------------------------------------------------------------------
    # traffic injection
    # ------------------------------------------------------------------

    def add_weight_read(self, nbytes: float) -> None:
        """Stripe one weight tensor read across all controllers.

        The read is a broadcast: it costs each controller its slice
        once, independent of how many cores consume the stream.
        """
        if nbytes <= 0:
            return
        slice_bytes = nbytes / self.num_controllers
        for controller in self._controllers:
            self._enqueue_sliced(
                controller, -1, TrafficClass.WEIGHT_BROADCAST, slice_bytes
            )

    def add_kv_read(
        self,
        core: int,
        nbytes: float,
        striped: bool = True,
        burst_bytes: Optional[float] = None,
    ) -> None:
        """Inject one core's private KV-history read.

        Args:
            core: the consuming compute core.
            nbytes: total KV bytes this core must stream.
            striped: True places pages round-robin across controllers
                (the MMU's layout); False parks the whole stream on one
                controller (the skewed-placement strawman).
            burst_bytes: transfer granularity; small values model
                scattered un-paged reads.
        """
        if nbytes <= 0:
            return
        if striped:
            slice_bytes = nbytes / self.num_controllers
            for controller in self._controllers:
                self._enqueue_sliced(
                    controller, core, TrafficClass.KV_READ, slice_bytes,
                    burst_bytes=burst_bytes,
                )
        else:
            controller = self._controllers[core % self.num_controllers]
            self._enqueue_sliced(
                controller, core, TrafficClass.KV_READ, nbytes,
                burst_bytes=burst_bytes,
            )

    def add_kv_write(self, core: int, nbytes: float) -> None:
        """Inject one core's (small) KV write-back for the new token."""
        if nbytes <= 0:
            return
        controller = self._controllers[self._next_stripe]
        self._next_stripe = (self._next_stripe + 1) % self.num_controllers
        self._enqueue_sliced(
            controller, core, TrafficClass.KV_WRITE, nbytes
        )

    def _enqueue_sliced(
        self,
        controller: ControllerState,
        core: int,
        kind: TrafficClass,
        nbytes: float,
        burst_bytes: Optional[float] = None,
    ) -> None:
        """Chop a stream into grant-sized transactions on one queue."""
        burst = burst_bytes if burst_bytes is not None else self.burst_bytes
        grant = burst * self.grant_bursts
        remaining = nbytes
        while remaining > 1e-9:
            chunk = min(grant, remaining)
            bursts = max(1, math.ceil(chunk / burst))
            controller.enqueue(Transaction(core, kind, chunk, bursts))
            remaining -= chunk

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def drain(self) -> FabricReport:
        """Serve every queued transaction; return the fabric report.

        Each controller round-robins across the cores with pending
        transactions, one burst per grant — the arbitration that keeps
        private KV streams from starving each other.
        """
        payload = 0.0
        per_class: Dict[TrafficClass, float] = {
            kind: 0.0 for kind in TrafficClass
        }
        core_finish: Dict[int, float] = {}
        for controller in self._controllers:
            order = sorted(controller.queues)
            while controller.pending:
                for core in order:
                    queue = controller.queues.get(core)
                    if not queue:
                        continue
                    transaction = queue.popleft()
                    controller.clock_s += controller.service_time_s(
                        transaction
                    )
                    controller.busy_bytes += transaction.nbytes
                    controller.transactions += transaction.bursts
                    payload += transaction.nbytes
                    per_class[transaction.kind] += transaction.nbytes
                    if transaction.core >= 0:
                        finish = controller.clock_s
                        if finish > core_finish.get(transaction.core, 0.0):
                            core_finish[transaction.core] = finish

        makespan = max(c.clock_s for c in self._controllers)
        effective = payload / makespan / 1e9 if makespan > 0 else 0.0
        return FabricReport(
            makespan_s=makespan,
            payload_bytes=payload,
            effective_bandwidth_gbps=effective,
            peak_bandwidth_gbps=self.spec.bandwidth_gbps,
            controller_busy_s=[c.clock_s for c in self._controllers],
            core_finish_s=core_finish,
            per_class_bytes=per_class,
        )


def generation_fabric_report(
    spec: MemorySpec,
    batch: int,
    kv_bytes_per_request: float,
    weight_bytes: float,
    num_controllers: int = 8,
    striped: bool = True,
    burst_bytes: Optional[float] = None,
) -> FabricReport:
    """One generation iteration's memory traffic through the fabric.

    Convenience wrapper used by the bench: ``batch`` cores each stream
    their private KV history while the shared weights broadcast once.

    Args:
        spec: device memory.
        batch: concurrent requests (one core each).
        kv_bytes_per_request: quantized KV history bytes per request.
        weight_bytes: model weights streamed once per iteration.
        num_controllers: memory channels.
        striped: MMU page striping on/off.
        burst_bytes: KV read granularity (None = full bursts).

    Returns:
        The drained :class:`FabricReport`.
    """
    fabric = MemoryFabric(spec, num_controllers=num_controllers)
    fabric.add_weight_read(weight_bytes)
    for core in range(batch):
        fabric.add_kv_read(
            core, kv_bytes_per_request, striped=striped,
            burst_bytes=burst_bytes,
        )
    return fabric.drain()
