"""Timing models of the quantization/dequantization engines (Section 5.2).

The engines live in the DMA unit of each compute core:

* the **quantization engine** (Figure 9a) decomposes each newly
  generated KV vector into groups, applies the group shift, finds
  per-group min/max, quantizes, and emits the fused dense + sparse
  stream.  It only ever touches the *current* token's KV, so its work
  per iteration is tiny (batch x kv_dim elements).
* the **dequantization engine** (Figure 9b) restores the streamed KV
  history — zero-insert for sparse records, per-group scale multiply —
  and therefore processes the same byte volume attention reads.

Both are modelled as streaming pipelines: ``lanes`` elements per cycle
per core at the core clock, with a fixed pipeline fill latency.  The
paper's scheduling overlaps both with DMA and attention of other
requests (Section 5.3); exposure logic lives in
:mod:`repro.hardware.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantEngine:
    """Streaming quantization engine model.

    Attributes:
        lanes: elements accepted per cycle per core.
        freq_ghz: engine clock.
        num_cores: cores (each with its own DMA engine).
        pipeline_cycles: fill latency of the decompose/shift/minmax/
            quantize pipeline.
    """

    lanes: int = 32
    freq_ghz: float = 1.0
    num_cores: int = 256
    pipeline_cycles: int = 24

    @property
    def elements_per_second(self) -> float:
        return self.lanes * self.freq_ghz * 1e9 * self.num_cores

    def time_s(self, elements: int) -> float:
        """Seconds to quantize ``elements`` KV scalars (all cores)."""
        if elements <= 0:
            return 0.0
        fill = self.pipeline_cycles / (self.freq_ghz * 1e9)
        return fill + elements / self.elements_per_second

    def time_s_batch(self, elements: np.ndarray) -> np.ndarray:
        """Batched twin of :meth:`time_s`: one entry per element count.

        Element-identical to calling :meth:`time_s` per entry (same
        fill + stream expression; non-positive counts are zero).
        """
        elements = np.asarray(elements)
        fill = self.pipeline_cycles / (self.freq_ghz * 1e9)
        return np.where(
            elements <= 0, 0.0, fill + elements / self.elements_per_second
        )

    def throughput_gbps(self, input_bits: float = 16.0) -> float:
        """Input-side stream rate in GB/s."""
        return self.elements_per_second * input_bits / 8.0 / 1e9


@dataclass(frozen=True)
class DequantEngine:
    """Streaming dequantization engine model.

    Wider than the quantization engine because it must keep up with
    the full KV read bandwidth of attention (it sits between memory
    and the matrix unit and must not become the bottleneck).
    """

    lanes: int = 128
    freq_ghz: float = 1.0
    num_cores: int = 256
    pipeline_cycles: int = 16

    @property
    def elements_per_second(self) -> float:
        return self.lanes * self.freq_ghz * 1e9 * self.num_cores

    def time_s(self, elements: int) -> float:
        """Seconds to dequantize ``elements`` KV scalars (all cores)."""
        if elements <= 0:
            return 0.0
        fill = self.pipeline_cycles / (self.freq_ghz * 1e9)
        return fill + elements / self.elements_per_second

    def time_s_batch(self, elements: np.ndarray) -> np.ndarray:
        """Batched twin of :meth:`time_s`: one entry per element count.

        Element-identical to calling :meth:`time_s` per entry (same
        fill + stream expression; non-positive counts are zero).
        """
        elements = np.asarray(elements)
        fill = self.pipeline_cycles / (self.freq_ghz * 1e9)
        return np.where(
            elements <= 0, 0.0, fill + elements / self.elements_per_second
        )

    def throughput_gbps(self, stored_bits: float = 4.82) -> float:
        """Compressed-side stream rate in GB/s."""
        return self.elements_per_second * stored_bits / 8.0 / 1e9
