"""Area and power accounting (Table 4, TSMC 28nm).

The paper synthesizes the accelerator at 1 GHz in TSMC 28nm and reports
per-module areas; this model reproduces that accounting and lets the
ablations perturb it: engine area scales with the number of
quantization groups (more decomposer comparators, more min/max trees)
and with code bitwidth.

Calibration constants come straight from Table 4:

======================  =========  ==========
Module                  Area (mm2)  Share (%)
======================  =========  ==========
Matrix processing unit     0.908       22.86
Vector processing unit     0.239        6.03
Quantization engine        0.074        1.86
Dequantization engine      0.252        6.35
Compute core (total)       3.971      100.00
======================  =========  ==========

Power is modelled with a single effective power density calibrated so
the full 256-core accelerator lands on the paper's 222.7 W.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.core.config import OakenConfig

#: Table 4 module areas in mm^2 (28nm, 1 GHz).
MPU_AREA_MM2 = 0.908
VPU_AREA_MM2 = 0.239
QUANT_ENGINE_AREA_MM2 = 0.074
DEQUANT_ENGINE_AREA_MM2 = 0.252
CORE_AREA_MM2 = 3.971

#: Everything in a core that is neither MPU/VPU nor an Oaken engine
#: (control, register file, DMA, buffers).
OTHER_AREA_MM2 = CORE_AREA_MM2 - (
    MPU_AREA_MM2 + VPU_AREA_MM2 + QUANT_ENGINE_AREA_MM2
    + DEQUANT_ENGINE_AREA_MM2
)

#: Accelerator-level calibration (Section 6.2: 222.7 W total).
NUM_CORES = 256
TOTAL_POWER_W = 222.7

#: Reference group count the Table 4 engines were sized for.
_REFERENCE_SPARSE_BANDS = 2

#: Area growth per extra sparse band (comparators + min/max + scale
#: datapath replicate per band).
_BAND_AREA_FACTOR = 0.18


@dataclass
class AreaReport:
    """Per-module area breakdown of one compute core.

    Attributes:
        areas_mm2: module name -> area.
    """

    areas_mm2: Dict[str, float] = field(default_factory=dict)

    @property
    def core_area_mm2(self) -> float:
        return sum(self.areas_mm2.values())

    def share(self, module: str) -> float:
        """Module share of core area in percent."""
        return 100.0 * self.areas_mm2[module] / self.core_area_mm2

    @property
    def oaken_overhead_percent(self) -> float:
        """Share of core area added by Oaken's engines (paper: 8.21%)."""
        engines = (
            self.areas_mm2.get("quant_engine", 0.0)
            + self.areas_mm2.get("dequant_engine", 0.0)
        )
        return 100.0 * engines / self.core_area_mm2


class AreaModel:
    """Area/power model parameterized by the Oaken configuration.

    Args:
        config: the quantizer configuration; group count and bitwidths
            scale the engine areas.
    """

    def __init__(self, config: OakenConfig = OakenConfig()):
        self.config = config

    def _engine_scale(self) -> float:
        extra_bands = self.config.num_sparse_bands - _REFERENCE_SPARSE_BANDS
        scale = 1.0 + _BAND_AREA_FACTOR * extra_bands
        # Wider codes widen the datapath slightly.
        scale *= self.config.outlier_bits / 5.0 * 0.25 + 0.75
        return max(scale, 0.5)

    def core_report(self) -> AreaReport:
        """Area breakdown of one compute core (Table 4 rows)."""
        scale = self._engine_scale()
        return AreaReport(
            areas_mm2={
                "matrix_processing_unit": MPU_AREA_MM2,
                "vector_processing_unit": VPU_AREA_MM2,
                "quant_engine": QUANT_ENGINE_AREA_MM2 * scale,
                "dequant_engine": DEQUANT_ENGINE_AREA_MM2 * scale,
                "other": OTHER_AREA_MM2,
            }
        )

    def accelerator_area_mm2(self) -> float:
        """Total compute-core area of the full accelerator."""
        return self.core_report().core_area_mm2 * NUM_CORES

    def accelerator_power_w(self) -> float:
        """Estimated total power, scaled from the calibrated design."""
        baseline_area = CORE_AREA_MM2 * NUM_CORES
        density = TOTAL_POWER_W / baseline_area
        return self.accelerator_area_mm2() * density

    def power_saving_vs_gpu(self, gpu_tdp_w: float = 400.0) -> float:
        """Power reduction vs a GPU TDP in percent (paper: 44.3%)."""
        return 100.0 * (1.0 - self.accelerator_power_w() / gpu_tdp_w)


def area_grid(
    configs: Sequence[OakenConfig], gpu_tdp_w: float = 400.0
) -> Dict[str, np.ndarray]:
    """Vectorized :class:`AreaModel` accounting over many configs.

    Evaluates the Table 4 sweep as array operations over the config
    axis, element-identical to instantiating :class:`AreaModel` per
    config (same expression order throughout).  Keys:

    ``quant_engine_mm2`` / ``dequant_engine_mm2``
        scaled engine areas per config.
    ``core_area_mm2``
        total per-core area (Table 4 bottom row).
    ``oaken_overhead_percent``
        engines' share of core area (paper: 8.21%).
    ``accelerator_power_w`` / ``power_saving_vs_gpu_percent``
        the headline power ratios.
    """
    bands = np.array(
        [c.num_sparse_bands for c in configs], dtype=np.int64
    )
    outlier_bits = np.array(
        [c.outlier_bits for c in configs], dtype=np.int64
    )
    extra_bands = bands - _REFERENCE_SPARSE_BANDS
    scale = 1.0 + _BAND_AREA_FACTOR * extra_bands
    scale = scale * (outlier_bits / 5.0 * 0.25 + 0.75)
    scale = np.maximum(scale, 0.5)
    quant = QUANT_ENGINE_AREA_MM2 * scale
    dequant = DEQUANT_ENGINE_AREA_MM2 * scale
    # Same summation order as sum(AreaReport.areas_mm2.values()).
    core = MPU_AREA_MM2 + VPU_AREA_MM2 + quant + dequant + OTHER_AREA_MM2
    engines = quant + dequant
    overhead = 100.0 * engines / core
    baseline_area = CORE_AREA_MM2 * NUM_CORES
    density = TOTAL_POWER_W / baseline_area
    power = core * NUM_CORES * density
    saving = 100.0 * (1.0 - power / gpu_tdp_w)
    return {
        "quant_engine_mm2": quant,
        "dequant_engine_mm2": dequant,
        "core_area_mm2": core,
        "oaken_overhead_percent": overhead,
        "accelerator_power_w": power,
        "power_saving_vs_gpu_percent": saving,
    }
