"""Per-method overhead profiles and the serving-system catalog.

A *serving system* is a (device, quantization method) pairing as it
appears in the paper's figures: ``GPU (vLLM)``, ``GPU (KVQuant)``,
``GPU (KIVI)``, ``GPU (QServe)``, ``Tender``, ``LPU``, ``Oaken-LPDDR``,
``Oaken-HBM``, plus ``Oaken-GPU`` (the paper's Figure 12b software
port).

The :class:`MethodProfile` captures what each method costs at runtime:

* ``kv_bits`` — analytic effective KV bitwidth (drives bytes moved and
  capacity),
* ``dequant_slowdown`` — multiplicative penalty on KV-cache reads from
  mixed-precision gathers / grouped layouts / reorder indirection,
* ``quant_flops_per_value`` — online quantization work per *generated*
  KV element (sorting for KVQuant, divergent grouping for Oaken-GPU),
* ``overlapped`` — whether the platform hides (de)quantization behind
  DMA/attention (Oaken's hardware engines do; GPU software does not),
* ``engine_*_gbps`` — hardware engine stream rates (Oaken NPUs), used
  for the Figure 12(b) latency breakdown,
* ``ragged_batch_efficiency`` — compute efficiency under mixed prompt
  lengths (Tender's systolic padding penalty, Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.config import OakenConfig
from repro.core.quantizer import expected_effective_bitwidth
from repro.hardware.accelerator import DeviceSpec, get_device
from repro.models.config import ArchShape

#: FP16 weight bytes above which a model needs two pipeline-parallel
#: devices (Section 6.1 splits OPT-30B/Mixtral/Llama2-70B over 2 GPUs).
_DUAL_DEVICE_WEIGHT_GB = 40.0


@dataclass(frozen=True)
class MethodProfile:
    """Runtime cost profile of one KV quantization method."""

    name: str
    kv_bits: Callable[[int], float]
    dequant_slowdown: float = 1.0
    quant_flops_per_value: float = 0.0
    overlapped: bool = False
    engine_quant_gbps: float = 0.0
    engine_dequant_gbps: float = 0.0
    ragged_batch_efficiency: float = 1.0


def _fp16_bits(kv_dim: int) -> float:
    return 16.0


def _kvquant_bits(kv_dim: int) -> float:
    # 4-bit dense + 1% exact outliers at 23 bits + per-token value
    # scales amortized over the KV width.
    return 4.0 + 0.01 * 23.0 + 16.0 / kv_dim


def _kivi_bits(kv_dim: int) -> float:
    # 4-bit codes + one FP16 (scale, zero) pair per 32-element group.
    return 4.0 + 2.0 * 16.0 / 32.0


def _qserve_bits(kv_dim: int) -> float:
    # 4-bit codes + one FP16 (scale, zero) pair per 128-channel group.
    return 4.0 + 2.0 * 16.0 / 128.0


def _tender_bits(kv_dim: int) -> float:
    # 4-bit codes + static per-group tables only.
    return 4.0 + 24.0 / kv_dim


def _oaken_bits(kv_dim: int) -> float:
    return expected_effective_bitwidth(OakenConfig(), kv_dim)


#: Method profiles.  GPU software numbers follow the paper's
#: characterization: KVQuant/KIVI pay heavy online sorting and
#: mixed-precision costs that "largely offset" their gains; QServe is
#: engineered for speed; Oaken's engines stream at DMA rate and overlap.
PROFILES: Dict[str, MethodProfile] = {
    "fp16": MethodProfile(name="fp16", kv_bits=_fp16_bits),
    "kvquant-gpu": MethodProfile(
        name="kvquant-gpu",
        kv_bits=_kvquant_bits,
        dequant_slowdown=2.60,
        quant_flops_per_value=96.0,  # online topK, divergent
    ),
    "kivi-gpu": MethodProfile(
        name="kivi-gpu",
        kv_bits=_kivi_bits,
        dequant_slowdown=2.30,
        quant_flops_per_value=24.0,
    ),
    "qserve-gpu": MethodProfile(
        name="qserve-gpu",
        kv_bits=_qserve_bits,
        dequant_slowdown=1.90,
        quant_flops_per_value=8.0,
    ),
    "oaken-gpu": MethodProfile(
        name="oaken-gpu",
        kv_bits=_oaken_bits,
        dequant_slowdown=2.00,
        quant_flops_per_value=64.0,  # warp-divergent 3-way grouping
    ),
    "tender-asic": MethodProfile(
        name="tender-asic",
        kv_bits=_tender_bits,
        dequant_slowdown=1.15,
        quant_flops_per_value=2.0,
        ragged_batch_efficiency=0.55,
    ),
    "oaken-engine": MethodProfile(
        name="oaken-engine",
        kv_bits=_oaken_bits,
        overlapped=True,
        engine_quant_gbps=180.0,
        engine_dequant_gbps=12000.0,
    ),
}


@dataclass(frozen=True)
class ServingSystem:
    """A (device, method) pairing from the paper's figures.

    Attributes:
        name: figure-legend name.
        device_small: device for single-device models.
        device_large: device for models needing two devices.
        profile: the method's runtime profile.
        weight_bits: stored weight precision (16 everywhere except the
            Figure 5 weight-quantization study).
    """

    name: str
    device_small: str
    device_large: str
    profile: MethodProfile
    weight_bits: float = 16.0

    def device_for(self, arch: ArchShape) -> DeviceSpec:
        """Pick 1- or 2-device configuration for a model size."""
        weight_gb = arch.weight_bytes(16.0) / 1024.0**3
        if weight_gb > _DUAL_DEVICE_WEIGHT_GB:
            return get_device(self.device_large)
        return get_device(self.device_small)

    def kv_bits(self, arch: ArchShape) -> float:
        """Effective KV bitwidth on this model."""
        return self.profile.kv_bits(arch.kv_dim)


#: The systems appearing across Figures 11-14.
SERVING_SYSTEMS: Dict[str, ServingSystem] = {
    "vllm": ServingSystem(
        name="vllm", device_small="a100", device_large="a100x2",
        profile=PROFILES["fp16"],
    ),
    "kvquant-gpu": ServingSystem(
        name="kvquant-gpu", device_small="a100", device_large="a100x2",
        profile=PROFILES["kvquant-gpu"],
    ),
    "kivi-gpu": ServingSystem(
        name="kivi-gpu", device_small="a100", device_large="a100x2",
        profile=PROFILES["kivi-gpu"],
    ),
    "qserve-gpu": ServingSystem(
        name="qserve-gpu", device_small="a100", device_large="a100x2",
        profile=PROFILES["qserve-gpu"],
    ),
    "oaken-gpu": ServingSystem(
        name="oaken-gpu", device_small="a100", device_large="a100x2",
        profile=PROFILES["oaken-gpu"],
    ),
    "tender": ServingSystem(
        name="tender", device_small="tender", device_large="tender-x2",
        profile=PROFILES["tender-asic"],
    ),
    "lpu": ServingSystem(
        name="lpu", device_small="lpu-lpddr", device_large="lpu-lpddr",
        profile=PROFILES["fp16"],
    ),
    "lpu-hbm": ServingSystem(
        name="lpu-hbm", device_small="lpu-hbm", device_large="lpu-hbm",
        profile=PROFILES["fp16"],
    ),
    "oaken-lpddr": ServingSystem(
        name="oaken-lpddr", device_small="oaken-lpddr",
        device_large="oaken-lpddr", profile=PROFILES["oaken-engine"],
    ),
    "oaken-hbm": ServingSystem(
        name="oaken-hbm", device_small="oaken-hbm",
        device_large="oaken-hbm", profile=PROFILES["oaken-engine"],
    ),
}


def get_system(name: str) -> ServingSystem:
    """Look up a serving system by figure-legend name."""
    try:
        return SERVING_SYSTEMS[name]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; available: {list(SERVING_SYSTEMS)}"
        ) from None
