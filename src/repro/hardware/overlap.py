"""Discrete-event model of Section 5.3's overlap scheduling.

The paper claims Oaken "hides latency by overlapping KV quantization
and dequantization with DMA reads and attention computations from
other requests".  The iteration-level perf model encodes that claim as
a heuristic (engine time beyond ~the attention window is exposed);
this module *derives* it by actually scheduling one generation
iteration:

* device memory serves every core's private KV read concurrently at a
  fair round-robin share (the arbitration of
  :mod:`repro.hardware.interconnect`), so all histories land together
  at ``batch * kv_bytes / bandwidth``;
* each core's **dequantization engine** streams alongside its DMA
  share — it finishes at the later of "last byte arrived" and "engine
  rate over the stream" (the streaming design of Figure 9b).  At any
  realistic batch the per-core DMA share is far below the engine's
  lane rate, which is exactly how the engine time disappears under the
  DMA reads of the *other* requests;
* **attention** on the core starts when its dequantized stream is
  complete;
* **quantization** of the newly generated token's KV and its (small)
  write-back follow attention on the same core, exposed only through
  the iteration's tail.

The report separates the iteration makespan from an idealized run with
free engines, so the *exposed* engine time — the quantity the paper's
Figure 12(b) shows to be a single-digit percentage — is measured, not
assumed.  The one regime where exposure is real is tiny batches, where
a single core's DMA share exceeds its engine rate; that is also the
regime the paper's batching argument says not to serve in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class OverlapConfig:
    """Rates of the resources the iteration schedule shares.

    Attributes:
        memory_bandwidth_gbps: aggregate DMA read bandwidth.
        dequant_gbps: per-core dequantization engine stream rate on the
            compressed side (128 lanes x 1 GHz at ~4.82 stored
            bits/element ~= 77 GB/s).
        quant_gbps: per-core quantization engine stream rate on the
            FP16 side (32 lanes x 1 GHz x 2 B = 64 GB/s).
        write_bandwidth_gbps: write-back path rate (shared, but writes
            are tiny and modelled per core).
    """

    memory_bandwidth_gbps: float = 990.0  # LPDDR at 90% efficiency
    dequant_gbps: float = 77.0
    quant_gbps: float = 64.0
    write_bandwidth_gbps: float = 50.0

    def __post_init__(self) -> None:
        for name in (
            "memory_bandwidth_gbps", "dequant_gbps", "quant_gbps",
            "write_bandwidth_gbps",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled operation on one core's timeline."""

    core: int
    op: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class OverlapReport:
    """Scheduled iteration vs the free-engine ideal.

    Attributes:
        makespan_s: iteration end with real engine rates.
        ideal_makespan_s: iteration end with zero-cost engines.
        exposed_s: engine time on the critical path
            (``makespan - ideal``).
        engine_busy_s: summed engine activity across cores (the work
            that had to be hidden).
        hidden_fraction: share of the critical-path core's engine work
            absorbed by overlap (per-core engines run concurrently, so
            one core's engine time is what could have stalled the
            iteration).
        timeline: per-core events for inspection/plotting.
    """

    makespan_s: float
    ideal_makespan_s: float
    exposed_s: float
    engine_busy_s: float
    hidden_fraction: float
    timeline: List[TimelineEvent] = field(default_factory=list)

    def events_of(self, op: str) -> List[TimelineEvent]:
        """All events of one operation kind."""
        return [e for e in self.timeline if e.op == op]


def _schedule(
    batch: int,
    kv_read_bytes: float,
    new_kv_bytes: float,
    attention_s: float,
    config: OverlapConfig,
    free_engines: bool,
) -> Tuple[float, List[TimelineEvent]]:
    """List-schedule one iteration; returns (makespan, timeline).

    DMA reads proceed concurrently at a fair share of the aggregate
    bandwidth (round-robin arbitration); everything downstream is
    per-core.
    """
    bw = config.memory_bandwidth_gbps * 1e9
    dequant_rate = config.dequant_gbps * 1e9
    quant_rate = config.quant_gbps * 1e9
    write_rate = config.write_bandwidth_gbps * 1e9

    timeline: List[TimelineEvent] = []
    makespan = 0.0
    dma_end_shared = batch * kv_read_bytes / bw
    for core in range(batch):
        dma_start = 0.0
        dma_end = dma_end_shared
        timeline.append(
            TimelineEvent(core, "dma_read", dma_start, dma_end)
        )

        if free_engines:
            dequant_end = dma_end
        else:
            # Streaming: the engine consumes the stream as it arrives
            # and cannot finish before either the last byte or its own
            # rate over the full stream.
            dequant_end = max(
                dma_end, dma_start + kv_read_bytes / dequant_rate
            )
            timeline.append(
                TimelineEvent(core, "dequant", dma_start, dequant_end)
            )

        attn_end = dequant_end + attention_s
        timeline.append(
            TimelineEvent(core, "attention", dequant_end, attn_end)
        )

        if free_engines:
            quant_end = attn_end
        else:
            quant_end = attn_end + new_kv_bytes / quant_rate
            timeline.append(
                TimelineEvent(core, "quant", attn_end, quant_end)
            )

        write_end = quant_end + new_kv_bytes / write_rate
        timeline.append(
            TimelineEvent(core, "dma_write", quant_end, write_end)
        )
        makespan = max(makespan, write_end)
    return makespan, timeline


def simulate_overlap(
    batch: int,
    kv_read_bytes: float,
    new_kv_bytes: float,
    attention_s: float,
    config: Optional[OverlapConfig] = None,
) -> OverlapReport:
    """Schedule one generation iteration and measure engine exposure.

    Args:
        batch: concurrent requests (one core each).
        kv_read_bytes: quantized KV history bytes per request.
        new_kv_bytes: FP16 bytes of the newly generated token's KV per
            request (the quantization engine's input).
        attention_s: per-request attention compute time on its core.
        config: resource rates (Oaken LPDDR defaults).

    Returns:
        An :class:`OverlapReport`.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if kv_read_bytes < 0 or new_kv_bytes < 0 or attention_s < 0:
        raise ValueError("workload quantities must be non-negative")
    cfg = config if config is not None else OverlapConfig()

    makespan, timeline = _schedule(
        batch, kv_read_bytes, new_kv_bytes, attention_s, cfg,
        free_engines=False,
    )
    ideal, _ = _schedule(
        batch, kv_read_bytes, new_kv_bytes, attention_s, cfg,
        free_engines=True,
    )
    # Pure engine work at engine rates; the dequant timeline events
    # span their DMA window because the engine streams alongside it,
    # so busy time is computed analytically instead.  The hidden
    # fraction is judged against ONE core's engine work — with
    # per-core engines running concurrently, that is the amount that
    # could have landed on the critical path.
    per_core = (
        kv_read_bytes / (cfg.dequant_gbps * 1e9)
        + new_kv_bytes / (cfg.quant_gbps * 1e9)
    )
    busy = batch * per_core
    exposed = max(0.0, makespan - ideal)
    hidden = (
        1.0
        if per_core <= 0
        else max(0.0, min(1.0, 1.0 - exposed / per_core))
    )
    return OverlapReport(
        makespan_s=makespan,
        ideal_makespan_s=ideal,
        exposed_s=exposed,
        engine_busy_s=busy,
        hidden_fraction=hidden,
        timeline=timeline,
    )
