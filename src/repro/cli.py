"""Command-line interface: ``python -m repro <command>``.

Commands:

``list-models``
    The model zoo with both architecture and simulation shapes.
``list-systems``
    The serving systems and their devices / effective KV bitwidths.
``quantize``
    Demo of any registry quantization method (``--method``) on
    synthetic KV data, reporting the footprint and reconstruction
    quality; the paper method additionally accepts any group
    configuration.  All methods build through the unified
    ``repro.engine`` factory.
``throughput``
    One simulated generation run (model x system x batch).
``capacity``
    Capacity planner: max batch per serving system at a context length.
``datapath``
    Stream synthetic KV through the Figure 9 engine datapaths, verify
    bit-exactness against the golden model, report cycles/occupancy.
``fabric``
    Memory-fabric contention report (Section 5.1) for a batch and
    placement policy.
``overlap``
    Section 5.3 overlap schedule: measured engine exposure at a batch.
``replay``
    Token-level serving replay of a synthetic trace through the real
    quantized caches; ``--device-budget-mb`` enables the tiered paged
    KV hierarchy (device pages + host spill, ``--eviction`` picks the
    policy) so contexts larger than the device budget complete by
    spilling instead of queueing.
``experiment``
    Regenerate a paper table/figure by id (fig01..fig14, table2..4,
    energy, profiling).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

import numpy as np


def _cmd_list_models(args: argparse.Namespace) -> int:
    from repro.experiments.common import TextTable
    from repro.models.config import MODEL_ZOO

    table = TextTable(
        [
            "name", "family", "layers", "d_model", "kv_heads",
            "params_B", "kv_KB/token", "sim_layers", "sim_d",
        ]
    )
    for spec in MODEL_ZOO.values():
        arch = spec.arch
        table.add_row(
            [
                spec.name,
                spec.family,
                arch.n_layers,
                arch.d_model,
                arch.n_kv_heads,
                arch.params / 1e9,
                arch.kv_bytes_per_token() / 1024.0,
                spec.sim.n_layers,
                spec.sim.d_model,
            ]
        )
    print(table.render())
    return 0


def _cmd_list_systems(args: argparse.Namespace) -> int:
    from repro.experiments.common import TextTable
    from repro.hardware.overheads import SERVING_SYSTEMS
    from repro.models.config import get_model

    arch = get_model(args.model).arch
    table = TextTable(
        ["system", "device", "memory", "GB", "GB/s", "kv_bits"]
    )
    for system in SERVING_SYSTEMS.values():
        device = system.device_for(arch)
        table.add_row(
            [
                system.name,
                device.name,
                device.memory.name,
                device.memory.capacity_gb,
                device.memory.bandwidth_gbps,
                system.kv_bits(arch),
            ]
        )
    print(f"(devices resolved for {args.model})")
    print(table.render())
    return 0


def _cmd_quantize(args: argparse.Namespace) -> int:
    from repro.core.config import OakenConfig
    from repro.core.serialization import serialize
    from repro.engine import create_quantizer
    from repro.quant.metrics import signal_to_quantization_noise

    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal((args.tokens, args.dim))
    outlier_channels = rng.choice(
        args.dim, size=max(1, args.dim // 20), replace=False
    )
    x[:, outlier_channels] *= 10.0

    # Every registry method builds through the one engine factory; the
    # group-ratio knobs only parameterize the paper method.
    config = None
    if args.method == "oaken":
        config = OakenConfig.from_ratio_string(
            args.ratios, outlier_bits=args.outlier_bits
        )
    quantizer = create_quantizer(args.method, "key", config=config)
    quantizer.fit([x])
    print(f"method: {args.method}")
    if config is not None:
        print(f"groups: {args.ratios} @ {args.outlier_bits}-bit outliers")
    print(f"tokens x dim: {args.tokens} x {args.dim}")
    if args.method == "oaken":
        # Encode once; the report lines all derive from this layout.
        encoded = quantizer.quantizer.quantize(x)
        restored = quantizer.quantizer.dequantize(encoded)
        footprint = encoded.footprint()
        print(f"outliers: {encoded.num_outliers / x.size:.2%}")
    else:
        restored = quantizer.roundtrip(x)
        footprint = quantizer.footprint(x)
    print(f"effective bits/element: {footprint.effective_bitwidth:.3f}")
    print(f"compression vs FP16: {footprint.compression_ratio():.2f}x")
    print(
        "SQNR: "
        f"{signal_to_quantization_noise(x, restored):.1f} dB"
    )
    if args.method == "oaken":
        blob = serialize(encoded)
        print(f"serialized stream: {len(blob):,} bytes")
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from repro.hardware.overheads import get_system
    from repro.hardware.perf import simulate_generation_run
    from repro.models.config import get_model

    arch = get_model(args.model).arch
    run = simulate_generation_run(
        get_system(args.system), arch, args.batch,
        input_tokens=args.input_tokens,
        output_tokens=args.output_tokens,
    )
    if run.oom:
        print(f"{args.system} / {args.model} @ batch {args.batch}: OOM")
        return 1
    print(
        f"{args.system} / {args.model} @ batch {args.batch} "
        f"({args.input_tokens}:{args.output_tokens}):"
    )
    print(f"  throughput:      {run.tokens_per_s:,.0f} tokens/s")
    print(f"  effective batch: {run.effective_batch}")
    print(f"  prefill:         {run.prefill_s:.3f} s")
    print(f"  generation:      {run.generation_s:.3f} s")
    if run.breakdown is not None:
        b = run.breakdown
        print(
            f"  mid-run iter:    nonattn {b.nonattn_s * 1e3:.2f} ms, "
            f"attn {b.attn_s * 1e3:.2f} ms, exposed overhead "
            f"{b.exposed_overhead_s * 1e3:.2f} ms"
        )
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.experiments.common import TextTable
    from repro.hardware.overheads import SERVING_SYSTEMS
    from repro.hardware.perf import max_supported_batch
    from repro.models.config import get_model

    arch = get_model(args.model).arch
    table = TextTable(
        ["system", "device", "kv_bits", f"max_batch@{args.context}"]
    )
    for system in SERVING_SYSTEMS.values():
        table.add_row(
            [
                system.name,
                system.device_for(arch).name,
                f"{system.kv_bits(arch):.2f}",
                max_supported_batch(system, arch, args.context),
            ]
        )
    print(f"capacity plan for {args.model} at {args.context} tokens")
    print(table.render())
    return 0


def _cmd_datapath(args: argparse.Namespace) -> int:
    from repro.core.config import OakenConfig
    from repro.core.quantizer import OakenQuantizer
    from repro.core.thresholds import profile_thresholds
    from repro.hardware.datapath import (
        StreamingDequantEngine,
        StreamingQuantEngine,
    )

    config = OakenConfig.from_ratio_string(args.ratios)
    rng = np.random.default_rng(args.seed)
    samples = [
        rng.standard_normal((64, args.dim)) * 3.0 for _ in range(8)
    ]
    thresholds = profile_thresholds(samples, config)
    slab = rng.standard_normal((args.tokens, args.dim)) * 3.0

    quant = StreamingQuantEngine(config, thresholds)
    dequant = StreamingDequantEngine(config, thresholds)
    golden = OakenQuantizer(config, thresholds)
    encoded, quant_cycles = quant.quantize_matrix(slab)
    restored, dequant_cycles = dequant.dequantize_matrix(encoded)
    reference = golden.quantize(slab)
    bits_match = bool(
        np.array_equal(encoded.dense_codes, reference.dense_codes)
        and np.array_equal(restored, golden.dequantize(reference))
    )
    print(f"{args.tokens} tokens x {args.dim} dim, groups {args.ratios}")
    print(f"bit-exact vs golden model: {bits_match}")
    for name, report in (
        ("quant ", quant_cycles), ("dequant", dequant_cycles),
    ):
        print(
            f"{name} engine: {report.total_cycles} cycles "
            f"({report.time_s(1.0) * 1e6:.2f} us @ 1 GHz)"
        )
        for stage, fraction in sorted(report.occupancy().items()):
            print(f"    {stage:22s} {fraction:6.2%}")
    return 0 if bits_match else 1


def _cmd_fabric(args: argparse.Namespace) -> int:
    from repro.hardware.interconnect import generation_fabric_report
    from repro.hardware.memory import HBM_80GB, LPDDR_256GB

    spec = LPDDR_256GB if args.memory == "lpddr" else HBM_80GB
    report = generation_fabric_report(
        spec,
        batch=args.batch,
        kv_bytes_per_request=args.kv_mb * 1024 * 1024,
        weight_bytes=args.weights_mb * 1024 * 1024,
        striped=not args.skewed,
        burst_bytes=args.burst_bytes,
    )
    placement = "skewed" if args.skewed else "striped/paged"
    print(
        f"{spec.name}, batch {args.batch}, {placement} placement"
    )
    print(f"  makespan:        {report.makespan_s * 1e3:.3f} ms")
    print(
        f"  effective BW:    {report.effective_bandwidth_gbps:.0f} GB/s "
        f"({report.bandwidth_utilization:.1%} of peak)"
    )
    print(f"  fairness spread: {report.fairness_spread():.2f}")
    return 0


def _cmd_overlap(args: argparse.Namespace) -> int:
    from repro.hardware.overlap import simulate_overlap

    report = simulate_overlap(
        batch=args.batch,
        kv_read_bytes=args.kv_mb * 1024 * 1024,
        new_kv_bytes=args.new_kv_kb * 1024,
        attention_s=args.attn_us * 1e-6,
    )
    print(f"overlap schedule at batch {args.batch}:")
    print(f"  makespan:        {report.makespan_s * 1e3:.3f} ms")
    print(f"  ideal (free engines): {report.ideal_makespan_s * 1e3:.3f} ms")
    print(
        f"  exposed engine time:  {report.exposed_s * 1e6:.1f} us "
        f"({100 * report.exposed_s / report.makespan_s:.2f}% of "
        "iteration)"
    )
    print(f"  hidden fraction: {report.hidden_fraction:.3f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    runners: Dict[str, Callable[[], str]] = {
        "fig01": lambda: _fig01(),
        "fig03": lambda: _fig03(),
        "fig04": lambda: _fig04(),
        "fig05": lambda: _fig05(),
        "fig06": lambda: _fig06(),
        "fig11": lambda: _fig11(),
        "fig12": lambda: _fig12(),
        "fig13": lambda: _fig13(),
        "fig14": lambda: _fig14(),
        "table2": lambda: _table2(),
        "table3": lambda: _table3(),
        "table4": lambda: _table4(),
        "energy": lambda: _energy(),
        "profiling": lambda: _profiling(),
    }
    if args.id not in runners:
        print(
            f"unknown experiment {args.id!r}; available: "
            f"{', '.join(sorted(runners))}",
            file=sys.stderr,
        )
        return 2
    print(runners[args.id]())
    return 0


def _fig01() -> str:
    from repro.experiments.fig01 import format_fig01, run_fig01
    return format_fig01(run_fig01())


def _fig03() -> str:
    from repro.experiments.fig03 import format_fig03, run_fig03
    return format_fig03(run_fig03())


def _fig04() -> str:
    from repro.experiments.fig04 import format_fig04, run_fig04
    return format_fig04(run_fig04())


def _fig05() -> str:
    from repro.experiments.fig05 import (
        format_fig05, run_fig05_memory, run_fig05_quant,
    )
    return format_fig05(run_fig05_memory(), run_fig05_quant())


def _fig06() -> str:
    from repro.experiments.fig06 import format_fig06, run_fig06
    return format_fig06(run_fig06(batch=4, length=96))


def _fig11() -> str:
    from repro.experiments.fig11 import format_fig11, run_fig11
    return format_fig11(run_fig11())


def _fig12() -> str:
    from repro.experiments.fig12 import (
        format_fig12, run_fig12a, run_fig12b,
    )
    return format_fig12(run_fig12a(eval_batch=4), run_fig12b())


def _fig13() -> str:
    from repro.experiments.fig13 import format_fig13, run_fig13
    return format_fig13(run_fig13())


def _fig14() -> str:
    from repro.experiments.fig14 import format_fig14, run_fig14
    return format_fig14(run_fig14(num_requests=128))


def _table2() -> str:
    from repro.experiments.table2 import format_table2, run_table2
    return format_table2(
        run_table2(models=("llama2-7b", "opt-6.7b"), eval_batch=5,
                   qa_items=32)
    )


def _table3() -> str:
    from repro.experiments.table3 import format_table3, run_table3
    return format_table3(run_table3(eval_batch=4))


def _table4() -> str:
    from repro.experiments.table4 import format_table4, run_table4
    return format_table4(run_table4())


def _energy() -> str:
    from repro.experiments.energy import format_energy, run_energy
    return format_energy(run_energy())


def _profiling() -> str:
    from repro.experiments.ablation_profiling import (
        format_profiling_ablation,
        run_profiling_ablation,
    )
    return format_profiling_ablation(run_profiling_ablation())


def _build_trace(args: argparse.Namespace):
    """Shared trace construction for the replay/cluster subcommands."""
    from repro.data.traces import (
        generate_burst_trace,
        generate_longcontext_trace,
        generate_multiturn_trace,
        generate_rag_trace,
        generate_trace,
    )

    if args.workload == "multiturn":
        return generate_multiturn_trace(
            args.trace, num_sessions=max(1, args.requests // 3),
            seed=args.seed,
        )
    if args.workload == "burst":
        return generate_burst_trace(
            args.trace, num_bursts=max(1, args.requests // 16),
            burst_size=16, seed=args.seed,
        )
    if args.workload == "rag":
        return generate_rag_trace(
            args.trace, num_bursts=max(1, args.requests // 8),
            burst_size=8, seed=args.seed,
        )
    if args.workload == "longcontext":
        return generate_longcontext_trace(
            args.trace, num_requests=args.requests, seed=args.seed,
        )
    return generate_trace(args.trace, args.requests, seed=args.seed)


def _replay_config(args: argparse.Namespace):
    """CacheReplayConfig from the tiering CLI flags, or None."""
    from repro.serving.simulator import CacheReplayConfig

    arena = getattr(args, "arena", False)
    if args.device_budget_mb is None:
        if getattr(args, "cache_replay", False) or arena:
            # Pool-backed replay without a device budget: measured
            # admission plus prefix sharing (forks), untiered.
            return CacheReplayConfig(method=args.method, arena=arena)
        return None
    return CacheReplayConfig(
        method=args.method,
        device_budget_mb=args.device_budget_mb,
        eviction=args.eviction,
        arena=arena,
    )


def _run_profiled(args: argparse.Namespace, fn):
    """Run ``fn`` under cProfile when profiling flags are set.

    ``--profile`` prints the top ``--profile-top`` cumulative-time rows
    to **stderr** (stdout stays clean for ``--json`` pipelines);
    ``--profile-out FILE`` dumps the raw pstats data for ``snakeviz``
    or ``pstats.Stats(FILE)`` sessions.  Without either flag this is a
    plain call.
    """
    profile_out = getattr(args, "profile_out", None)
    if not getattr(args, "profile", False) and not profile_out:
        return fn()
    import cProfile
    import pstats
    import sys

    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats("cumulative")
    if getattr(args, "profile", False):
        stats.print_stats(getattr(args, "profile_top", 20))
    if profile_out:
        stats.dump_stats(profile_out)
    return result


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.hardware.overheads import get_system
    from repro.models.config import get_model
    from repro.serving.simulator import CacheReplayConfig, simulate_trace

    arch = get_model(args.model).arch
    system = get_system(args.system)
    trace = _build_trace(args)
    replay = _replay_config(args)
    if replay is None:
        # Token-level replay is this subcommand's whole point: even
        # without a device budget it runs the measured-footprint pool
        # (untiered) rather than the analytic capacity model.
        replay = CacheReplayConfig(method=args.method, arena=args.arena)
    report = _run_profiled(
        args,
        lambda: simulate_trace(
            system, arch, trace, args.batch, replay=replay,
        ),
    )
    if args.json:
        out = dict(report.__dict__)
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0 if not report.oom else 1
    if report.oom:
        print(f"{args.system} / {args.model}: OOM")
        return 1
    print(
        f"{args.system} / {args.model} @ batch {args.batch}, "
        f"{len(trace)} requests ({args.workload}/{args.trace}, "
        f"method {args.method})"
    )
    print(
        f"  generated {report.generated_tokens} tokens, "
        f"{report.generation_throughput:,.1f} tokens/s, "
        f"makespan {report.total_time_s:.2f} s"
    )
    print(
        f"  latency mean {report.mean_latency_s:.3f} s  "
        f"p95 {report.p95_latency_s:.3f} s  "
        f"ttft p95 {report.p95_ttft_s:.3f} s"
    )
    detail = report.replay or {}
    print(
        f"  pool peak {detail.get('peak_pool_bytes', 0.0):,.0f} B  "
        f"gate refusals {detail.get('gate_refusals', 0.0):.0f}"
    )
    if args.device_budget_mb is not None:
        print(
            f"  tiering ({detail.get('eviction', args.eviction)}, "
            f"{args.device_budget_mb} MiB device): "
            f"hits {detail.get('tier_hits', 0.0):.0f}  "
            f"misses {detail.get('tier_misses', 0.0):.0f}  "
            f"evictions {detail.get('tier_evictions', 0.0):.0f}"
        )
        print(
            f"    spilled {detail.get('tier_spilled_bytes', 0.0):,.0f} B  "
            f"transfer {detail.get('tier_transfer_cycles', 0.0):,.0f} "
            "cycles "
            f"({detail.get('tier_transfer_cycles_per_token', 0.0):,.1f}"
            "/token)"
        )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from repro.hardware.overheads import get_system
    from repro.models.config import get_model
    from repro.serving.cluster import ClusterConfig, simulate_cluster
    from repro.serving.faults import FaultPlan, generate_fault_plan

    arch = get_model(args.model).arch
    system = get_system(args.system)
    trace = _build_trace(args)
    config = ClusterConfig(
        replicas=args.replicas,
        max_batch=args.batch,
        policy=args.policy,
        replay=_replay_config(args),
    )
    faults = None
    if args.faults:
        # Scale the fault horizon to the fault-free makespan so the
        # plan actually lands inside the replay.
        clean = simulate_cluster(system, arch, trace, config)
        faults = generate_fault_plan(
            args.replicas, max(1.0, clean.total_time_s),
            seed=args.fault_seed,
        )
    report = _run_profiled(
        args,
        lambda: simulate_cluster(system, arch, trace, config, faults),
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0
    if report.oom:
        print(f"{args.system} / {args.model}: OOM")
        return 1
    print(
        f"{args.system} / {args.model}: {report.replicas} replicas "
        f"({report.policy}), {len(trace)} requests"
    )
    print(
        f"  completed {report.completed}  failed {report.failed}  "
        f"lost {report.lost}"
    )
    print(
        f"  tokens/s {report.tokens_per_s:,.1f}  "
        f"makespan {report.total_time_s:.2f} s  "
        f"p99 queue delay {report.p99_queue_delay_s:.3f} s"
    )
    print(
        f"  failovers {report.failovers}  requeues {report.requeues}  "
        f"retries {report.retries}  "
        f"capacity rejections {report.capacity_rejections}"
    )
    print(
        f"  detected failures {report.detected_failures}  "
        f"downtime {report.downtime_s:.2f} s"
    )
    if args.device_budget_mb is not None:
        print(
            f"  tiering ({args.eviction}, {args.device_budget_mb} MiB "
            f"device): hits {report.tier_hits}  "
            f"misses {report.tier_misses}  "
            f"evictions {report.tier_evictions}  "
            f"spilled {report.tier_spilled_bytes:,.0f} B  "
            f"transfer {report.tier_transfer_cycles:,.0f} cycles"
        )
    for row in report.per_replica:
        print(
            f"    replica {row['replica']:.0f}: "
            f"{row['generated_tokens']:.0f} tokens, "
            f"busy {row['busy_s']:.2f} s, "
            f"crashes {row['crashes']:.0f}, "
            f"downtime {row['downtime_s']:.2f} s"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Oaken (ISCA 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list-models", help="show the model zoo"
    ).set_defaults(func=_cmd_list_models)

    systems = sub.add_parser(
        "list-systems", help="show serving systems and devices"
    )
    systems.add_argument("--model", default="llama2-7b")
    systems.set_defaults(func=_cmd_list_systems)

    quantize = sub.add_parser(
        "quantize", help="quantizer demo on synthetic KV data"
    )
    from repro.baselines.registry import BASELINE_NAMES

    quantize.add_argument(
        "--method", default="oaken", choices=BASELINE_NAMES,
        help="any registry method, built via repro.engine",
    )
    quantize.add_argument("--ratios", default="4/90/6")
    quantize.add_argument("--outlier-bits", type=int, default=5)
    quantize.add_argument("--tokens", type=int, default=256)
    quantize.add_argument("--dim", type=int, default=128)
    quantize.add_argument("--seed", type=int, default=0)
    quantize.set_defaults(func=_cmd_quantize)

    throughput = sub.add_parser(
        "throughput", help="simulate one generation run"
    )
    throughput.add_argument("--model", default="llama2-7b")
    throughput.add_argument("--system", default="oaken-lpddr")
    throughput.add_argument("--batch", type=int, default=64)
    throughput.add_argument("--input-tokens", type=int, default=1024)
    throughput.add_argument("--output-tokens", type=int, default=1024)
    throughput.set_defaults(func=_cmd_throughput)

    capacity = sub.add_parser(
        "capacity", help="max batch per serving system at a context"
    )
    capacity.add_argument("--model", default="llama2-13b")
    capacity.add_argument("--context", type=int, default=2048)
    capacity.set_defaults(func=_cmd_capacity)

    datapath = sub.add_parser(
        "datapath", help="stream KV through the Figure 9 datapaths"
    )
    datapath.add_argument("--ratios", default="4/90/6")
    datapath.add_argument("--tokens", type=int, default=32)
    datapath.add_argument("--dim", type=int, default=128)
    datapath.add_argument("--seed", type=int, default=0)
    datapath.set_defaults(func=_cmd_datapath)

    fabric = sub.add_parser(
        "fabric", help="memory-fabric contention report (Section 5.1)"
    )
    fabric.add_argument("--memory", choices=("lpddr", "hbm"),
                        default="lpddr")
    fabric.add_argument("--batch", type=int, default=16)
    fabric.add_argument("--kv-mb", type=float, default=25.0)
    fabric.add_argument("--weights-mb", type=float, default=400.0)
    fabric.add_argument("--skewed", action="store_true")
    fabric.add_argument("--burst-bytes", type=float, default=None)
    fabric.set_defaults(func=_cmd_fabric)

    overlap = sub.add_parser(
        "overlap", help="Section 5.3 overlap schedule report"
    )
    overlap.add_argument("--batch", type=int, default=64)
    overlap.add_argument("--kv-mb", type=float, default=158.0)
    overlap.add_argument("--new-kv-kb", type=float, default=512.0)
    overlap.add_argument("--attn-us", type=float, default=30.0)
    overlap.set_defaults(func=_cmd_overlap)

    def _add_tiering_flags(p: argparse.ArgumentParser) -> None:
        from repro.engine.tiering import EVICTION_POLICIES

        p.add_argument(
            "--device-budget-mb", type=float, default=None,
            help="enable the tiered paged KV hierarchy with this "
                 "device-tier budget (MiB); cold pages spill to the "
                 "host tier instead of refusing admission",
        )
        p.add_argument(
            "--eviction", default="lru", choices=EVICTION_POLICIES,
            help="device-tier eviction policy (with --device-budget-mb)",
        )

    def _add_profile_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile", action="store_true",
            help="wrap the run in cProfile and print the top "
                 "cumulative-time hot spots to stderr",
        )
        p.add_argument(
            "--profile-top", type=int, default=20, metavar="N",
            help="rows printed by --profile (default 20)",
        )
        p.add_argument(
            "--profile-out", default=None, metavar="FILE",
            help="dump raw pstats data to FILE (works without "
                 "--profile; load with pstats.Stats(FILE))",
        )

    replay = sub.add_parser(
        "replay",
        help="token-level single-replica replay (tiered KV optional)",
    )
    replay.add_argument("--model", default="llama2-13b")
    replay.add_argument("--system", default="oaken-hbm")
    replay.add_argument("--batch", type=int, default=8)
    replay.add_argument(
        "--method", default="oaken", choices=BASELINE_NAMES,
        help="registry method backing the miniature replay caches",
    )
    replay.add_argument(
        "--trace", default="conversation",
        choices=("conversation", "burstgpt"),
    )
    replay.add_argument(
        "--workload", default="trace",
        choices=("trace", "multiturn", "burst", "rag", "longcontext"),
        help="arrival structure; multiturn/rag carry shared prefixes "
             "the pool forks, longcontext stretches outputs far past "
             "the device budget to exercise spill",
    )
    replay.add_argument("--requests", type=int, default=16)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--arena", action="store_true",
        help="back the replay pool with the structure-of-arrays KV "
             "arena (bit-identical reads, arena_* occupancy counters "
             "in the report; fused methods only)",
    )
    _add_tiering_flags(replay)
    _add_profile_flags(replay)
    replay.add_argument(
        "--json", action="store_true",
        help="emit the full ServingReport as JSON",
    )
    replay.set_defaults(func=_cmd_replay)

    cluster = sub.add_parser(
        "cluster",
        help="fault-tolerant multi-replica serving replay",
    )
    from repro.serving.cluster import ROUTER_POLICIES

    cluster.add_argument("--model", default="llama2-13b")
    cluster.add_argument("--system", default="oaken-hbm")
    cluster.add_argument("--replicas", type=int, default=2)
    cluster.add_argument("--batch", type=int, default=8)
    cluster.add_argument(
        "--method", default="oaken", choices=BASELINE_NAMES,
        help="registry method for the replay caches "
             "(with --device-budget-mb)",
    )
    cluster.add_argument(
        "--policy", default="least_loaded", choices=ROUTER_POLICIES
    )
    cluster.add_argument(
        "--trace", default="conversation",
        choices=("conversation", "burstgpt"),
    )
    cluster.add_argument(
        "--workload", default="trace",
        choices=("trace", "multiturn", "burst", "rag", "longcontext"),
        help="arrival structure: plain trace, multi-turn sessions "
             "(shared prefixes), wave bursts, shared-system-prompt "
             "RAG bursts, or long-context spill",
    )
    cluster.add_argument("--requests", type=int, default=48)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--cache-replay", action="store_true",
        help="drive a real KVCachePool per replica even without "
             "--device-budget-mb, so shared-prefix workloads fork "
             "instead of re-prefilling (forks / shared_bytes_saved "
             "in the report)",
    )
    cluster.add_argument(
        "--faults", action="store_true",
        help="inject a seeded random fault plan (crashes, brownouts, "
             "admission blackouts) scaled to the replay length",
    )
    cluster.add_argument("--fault-seed", type=int, default=0)
    cluster.add_argument(
        "--arena", action="store_true",
        help="back each replica's replay pool with the "
             "structure-of-arrays KV arena (implies --cache-replay)",
    )
    _add_tiering_flags(cluster)
    _add_profile_flags(cluster)
    cluster.add_argument(
        "--json", action="store_true",
        help="emit the full ClusterReport as JSON",
    )
    cluster.set_defaults(func=_cmd_cluster)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "id",
        help="fig01|fig03|fig04|fig05|fig06|fig11|fig12|fig13|fig14|"
             "table2|table3|table4|energy|profiling",
    )
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
