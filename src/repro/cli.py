"""Back-compat shim for the old monolithic CLI module.

The implementation moved to the :mod:`repro.commands` package (one
module per subcommand).  This module keeps the historical import
surface alive: ``from repro.cli import build_parser, main`` and the
private helpers a few tests reach for.
"""

from __future__ import annotations

from repro.commands import build_parser, main
from repro.commands.common import (
    build_trace as _build_trace,
    replay_config as _replay_config,
    run_profiled as _run_profiled,
)

__all__ = ["build_parser", "main"]
