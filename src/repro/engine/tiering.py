"""Tiered paged KV memory hierarchy: device-HBM pages, host-DDR spill.

The serving story of the paper is ultimately a memory story: quantized
KV exists to fit more context per byte of device memory.  Up to now the
pool's admission gate was a reject/queue binary — a sequence either fit
the flat budget or never ran.  This module turns the budget into a
**memory hierarchy**: a bounded "device HBM" tier of fixed-size pages
holding the hot encoded KV, and an unbounded "host DDR" spill tier
behind a PCIe-class link.  When the device tier fills, a pluggable
eviction policy (LRU, or the tree-PLRU of classic cache controllers)
demotes cold pages to host; reads of spilled pages promote them back,
optionally prefetching the sequential pages that follow, and every move
is priced through :meth:`repro.hardware.memory.MemorySpec.read_time_s`
into modeled transfer cycles.

Like :mod:`repro.hardware.mmu`, the store is a *functional placement
model*: it tracks real page allocation, tier residence, eviction order
and transfer accounting, while the encoded payloads themselves stay in
the :class:`~repro.engine.backend.CacheBackend` caches the pool owns.
That split is what makes the correctness contract structural — a read
decodes the same bytes whichever tier its pages reside in — and the
pinned cross-tier tests in ``tests/test_engine_tiering.py`` assert it
end-to-end for every registry method under forced eviction.

Accounting model (all deterministic, simulation-time):

* Encoded bytes bump-allocate into per-``(seq_id, layer)`` page
  streams; the page table is keyed ``(seq_id, layer, page_index)``.
* ``record_append`` grows the stream on device, then evicts cold pages
  to host while device residency exceeds the budget (each demotion is
  one modeled transfer).
* ``record_read`` touches a stream's pages in order: device-resident
  pages are **hits**, host-resident pages are **misses** that promote
  back; runs of consecutive spilled pages coalesce into one merged
  transfer (up to ``1 + prefetch_pages`` pages), which is both fewer
  transactions and better burst efficiency on the host link.
* A transfer of ``n`` bytes at granularity ``g`` costs
  ``max(device.read_time_s(n, g), host.read_time_s(n, g))`` seconds —
  DMA overlaps both ends, the slower side (the host link) dominates —
  converted to cycles at ``clock_hz``.

The hardware imports are deliberately lazy (inside
:func:`default_transfer_model`) so ``repro.engine`` and
``repro.hardware`` keep their zero module-level import coupling in both
directions (``hardware.mmu`` imports ``engine.errors``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = [
    "EVICTION_POLICIES",
    "EvictionPolicy",
    "LRUPolicy",
    "PLRUPolicy",
    "PageKey",
    "TieredKVStore",
    "TransferModel",
    "create_eviction_policy",
    "default_transfer_model",
]

#: Names accepted by :func:`create_eviction_policy` and the CLI flags.
EVICTION_POLICIES = ("lru", "plru")

#: Paper-style 4 KiB pages, matching ``hardware/mmu.py``.
DEFAULT_PAGE_BYTES = 4096

#: Device clock used to express transfer seconds as cycles (1 GHz, the
#: same clock the analytic engine models assume).
DEFAULT_CLOCK_HZ = 1.0e9


@dataclass(frozen=True)
class PageKey:
    """Identifies one page: ``(seq_id, layer, page_index)``.

    ``page_index`` is the position within the sequence+layer stream, so
    consecutive indices are logically sequential history — the unit the
    sequential prefetcher reasons about.
    """

    seq_id: Hashable
    layer: int
    page_index: int


# ----------------------------------------------------------------------
# eviction policies
# ----------------------------------------------------------------------


class EvictionPolicy:
    """Replacement order over the device-resident page set.

    The store drives the policy with three events: ``insert`` when a
    page becomes device-resident (allocation or promotion), ``touch``
    when a resident page is accessed, ``remove`` when it leaves the
    device tier (eviction or release).  ``victim()`` names the page the
    policy would evict next; the store then calls ``remove`` on it.
    All implementations are deterministic: identical event sequences
    yield identical victim sequences.
    """

    def insert(self, key: PageKey) -> None:
        raise NotImplementedError

    def touch(self, key: PageKey) -> None:
        raise NotImplementedError

    def remove(self, key: PageKey) -> None:
        raise NotImplementedError

    def victim(self) -> PageKey:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Exact least-recently-used order (an :class:`OrderedDict` queue)."""

    name = "lru"

    def __init__(self, capacity_pages: int):
        self._order: "OrderedDict[PageKey, None]" = OrderedDict()

    def insert(self, key: PageKey) -> None:
        if key in self._order:
            raise KeyError(f"page {key} already resident")
        self._order[key] = None

    def touch(self, key: PageKey) -> None:
        self._order.move_to_end(key)

    def remove(self, key: PageKey) -> None:
        del self._order[key]

    def victim(self) -> PageKey:
        if not self._order:
            raise LookupError("no device-resident pages to evict")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class PLRUPolicy(EvictionPolicy):
    """Tree-based pseudo-LRU over a fixed number of ways.

    The classic cache-controller structure (Simu3's ``mem_sim.py`` uses
    the same scheme per set): ways are the leaves of a complete binary
    tree whose internal nodes each hold one direction bit.  Touching a
    way flips every bit on its root path to point *away* from it;
    choosing a victim walks the bits from the root.  One bit per
    internal node instead of a full recency order — the hardware-cheap
    approximation of LRU.

    The device tier is fully associative, so the tree spans
    ``capacity_pages`` rounded up to a power of two.  Slots beyond the
    real capacity (padding leaves) and not-yet-filled slots can be
    reached by a victim walk; the walk then touches the empty leaf
    (steering the bits away from it) and retries, with a deterministic
    first-occupied-slot fallback bounding the loop.
    """

    name = "plru"

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        ways = 1
        while ways < capacity_pages:
            ways *= 2
        self._ways = ways
        self._bits = [0] * max(1, ways - 1)
        self._key_at: List[Optional[PageKey]] = [None] * ways
        self._slot_of: Dict[PageKey, int] = {}
        # Pop order gives ascending slot numbers: deterministic fills.
        self._free: List[int] = list(range(capacity_pages - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._slot_of)

    def insert(self, key: PageKey) -> None:
        if key in self._slot_of:
            raise KeyError(f"page {key} already resident")
        if not self._free:
            raise LookupError("PLRU tree full; evict a victim first")
        slot = self._free.pop()
        self._key_at[slot] = key
        self._slot_of[key] = slot
        self._touch_slot(slot)

    def touch(self, key: PageKey) -> None:
        self._touch_slot(self._slot_of[key])

    def remove(self, key: PageKey) -> None:
        slot = self._slot_of.pop(key)
        self._key_at[slot] = None
        self._free.append(slot)

    def victim(self) -> PageKey:
        if not self._slot_of:
            raise LookupError("no device-resident pages to evict")
        if self._ways == 1:
            return self._key_at[0]  # type: ignore[return-value]
        for _ in range(self._ways):
            slot = self._walk()
            key = self._key_at[slot]
            if key is not None:
                return key
            # Landed on a padding/empty leaf: steer the path bits away
            # from it and walk again.
            self._touch_slot(slot)
        # Deterministic fallback (cannot normally be reached: each
        # empty-leaf touch redirects the walk, and at least one leaf is
        # occupied): first occupied slot.
        for key in self._key_at:
            if key is not None:
                return key
        raise LookupError("no device-resident pages to evict")

    # -- tree mechanics -------------------------------------------------

    def _leaf_node(self, slot: int) -> int:
        return (self._ways - 1) + slot

    def _touch_slot(self, slot: int) -> None:
        if self._ways == 1:
            return
        node = self._leaf_node(slot)
        while node > 0:
            parent = (node - 1) // 2
            # Bit points away from the child we arrived from: 1 means
            # "go right", so coming from the left child sets 1.
            self._bits[parent] = 1 if node == 2 * parent + 1 else 0
            node = parent

    def _walk(self) -> int:
        node = 0
        while node < self._ways - 1:
            node = 2 * node + 1 if self._bits[node] == 0 else 2 * node + 2
        return node - (self._ways - 1)


def create_eviction_policy(name: str, capacity_pages: int) -> EvictionPolicy:
    """Instantiate a policy by CLI/config name (``lru`` or ``plru``)."""
    if name == "lru":
        return LRUPolicy(capacity_pages)
    if name == "plru":
        return PLRUPolicy(capacity_pages)
    raise ValueError(
        f"unknown eviction policy {name!r}; choose from {EVICTION_POLICIES}"
    )


# ----------------------------------------------------------------------
# transfer pricing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TransferModel:
    """Prices page movement between the two tiers.

    Attributes:
        device: the bounded hot tier's memory spec (HBM-class).
        host: the spill tier behind its link (DDR-over-PCIe-class).
        clock_hz: clock converting transfer seconds to cycles.
    """

    device: "object"
    host: "object"
    clock_hz: float = DEFAULT_CLOCK_HZ

    def transfer_cycles(self, nbytes: float, transfer_bytes: float) -> float:
        """Cycles to move ``nbytes`` at granularity ``transfer_bytes``.

        Both ends of the DMA run concurrently; the slower side (in
        practice the host link) sets the pace.
        """
        if nbytes <= 0:
            return 0.0
        seconds = max(
            self.device.read_time_s(nbytes, transfer_bytes),
            self.host.read_time_s(nbytes, transfer_bytes),
        )
        return seconds * self.clock_hz


def default_transfer_model(clock_hz: float = DEFAULT_CLOCK_HZ) -> TransferModel:
    """HBM device tier spilling to :data:`repro.hardware.memory.HOST_DDR`.

    Imported lazily so :mod:`repro.engine` keeps zero module-level
    imports of :mod:`repro.hardware` (whose ``mmu`` module imports
    ``engine.errors`` — eager imports here would cycle).
    """
    from repro.hardware.memory import HBM_80GB, HOST_DDR

    return TransferModel(device=HBM_80GB, host=HOST_DDR, clock_hz=clock_hz)


# ----------------------------------------------------------------------
# the tiered store
# ----------------------------------------------------------------------

_DEVICE = 0
_HOST = 1


@dataclass
class _Page:
    """One page table row: placement plus fill level."""

    key: PageKey
    used: int = 0
    tier: int = _DEVICE


class TieredKVStore:
    """Two-tier paged placement model for encoded KV bytes.

    Args:
        device_budget_bytes: capacity of the bounded device tier; the
            store always keeps at least one page of room, so budgets
            smaller than one page degrade to a single-page device tier.
        page_bytes: fixed page size (4 KiB default, as in the MMU).
        policy: ``"lru"`` or ``"plru"``.
        prefetch_pages: how many sequential spilled pages to promote
            alongside a missed page (0 disables prefetch).
        transfer: optional :class:`TransferModel`; defaults to
            HBM-device / HOST_DDR-spill at 1 GHz.

    The store never holds payloads — it is notified of appends and
    reads by :class:`~repro.engine.pool.KVCachePool` and maintains
    placement, eviction order and transfer accounting.  All state and
    counters are deterministic functions of the notification sequence.
    """

    def __init__(
        self,
        device_budget_bytes: float,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        policy: str = "lru",
        prefetch_pages: int = 1,
        transfer: Optional[TransferModel] = None,
    ):
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        if prefetch_pages < 0:
            raise ValueError("prefetch_pages must be >= 0")
        self.page_bytes = int(page_bytes)
        self.capacity_pages = max(1, int(device_budget_bytes // page_bytes))
        self.device_budget_bytes = float(device_budget_bytes)
        self.policy_name = str(policy)
        self.prefetch_pages = int(prefetch_pages)
        self.transfer = transfer if transfer is not None else default_transfer_model()
        self._policy = create_eviction_policy(policy, self.capacity_pages)
        # Streams of pages per (seq_id, layer); page_index == position.
        self._streams: Dict[Tuple[Hashable, int], List[_Page]] = {}
        self._device_pages = 0
        self._host_pages = 0
        # counters
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.promotions = 0
        self.prefetched_pages = 0
        self.spilled_bytes = 0.0
        self.promoted_bytes = 0.0
        self.transfer_cycles = 0.0
        self.pages_allocated = 0
        self.peak_device_bytes = 0.0

    # -- residency totals ----------------------------------------------

    @property
    def device_bytes(self) -> int:
        return self._device_pages * self.page_bytes

    @property
    def host_bytes(self) -> int:
        return self._host_pages * self.page_bytes

    @property
    def device_capacity_bytes(self) -> int:
        return self.capacity_pages * self.page_bytes

    def total_pages(self) -> int:
        return self._device_pages + self._host_pages

    # -- notifications from the pool -----------------------------------

    def record_append(
        self, seq_id: Hashable, layer: int, nbytes: float
    ) -> float:
        """Account ``nbytes`` of new encoded history for a stream.

        Bytes bump-allocate into the stream's open device page, opening
        new device pages as needed; the device tier is then re-bounded
        by demoting cold pages.  Returns the transfer cycles charged by
        any demotions (also accumulated on the store).
        """
        remaining = int(nbytes)
        if remaining <= 0:
            return 0.0
        stream = self._streams.setdefault((seq_id, layer), [])
        before = self.transfer_cycles
        while remaining > 0:
            page = stream[-1] if stream else None
            if page is None or page.used >= self.page_bytes:
                self._make_room()
                page = _Page(
                    key=PageKey(seq_id, layer, len(stream)), used=0
                )
                stream.append(page)
                self.pages_allocated += 1
                self._device_pages += 1
                self._policy.insert(page.key)
            elif page.tier == _HOST:
                # The open (partially filled) page was demoted between
                # appends: writing more of the stream promotes it back.
                self._promote_run(stream, page.key.page_index, limit=1)
            take = min(remaining, self.page_bytes - page.used)
            page.used += take
            remaining -= take
            if page.tier == _DEVICE:
                self._policy.touch(page.key)
        self.peak_device_bytes = max(self.peak_device_bytes, self.device_bytes)
        return self.transfer_cycles - before

    def record_read(self, seq_id: Hashable, layer: int) -> float:
        """Account a full-history read of one stream.

        Device-resident pages count as hits; host-resident pages are
        misses promoted back to device, coalescing runs of consecutive
        spilled pages (up to ``1 + prefetch_pages``) into single merged
        transfers.  Returns the transfer cycles charged.
        """
        stream = self._streams.get((seq_id, layer))
        if not stream:
            return 0.0
        before = self.transfer_cycles
        index = 0
        while index < len(stream):
            page = stream[index]
            if page.tier == _DEVICE:
                self.hits += 1
                self._policy.touch(page.key)
                index += 1
                continue
            self.misses += 1
            promoted = self._promote_run(
                stream, index, limit=1 + self.prefetch_pages
            )
            self.prefetched_pages += promoted - 1
            index += promoted
        return self.transfer_cycles - before

    def release(self, seq_id: Hashable) -> int:
        """Drop every page of a retired sequence (all layers).

        Returns the number of pages freed.  Frees are bookkeeping, not
        transfers: retiring a sequence discards its history rather than
        moving it.
        """
        freed = 0
        for key in [k for k in self._streams if k[0] == seq_id]:
            for page in self._streams.pop(key):
                if page.tier == _DEVICE:
                    self._policy.remove(page.key)
                    self._device_pages -= 1
                else:
                    self._host_pages -= 1
                freed += 1
        return freed

    # -- internals ------------------------------------------------------

    def _make_room(self) -> None:
        """Demote cold pages until one more device page fits.

        Runs *before* a page enters the device tier, so the eviction
        policy never holds more than ``capacity_pages`` entries and the
        incoming page itself can never be chosen as its own victim.
        """
        while self._device_pages >= self.capacity_pages and len(self._policy):
            victim_key = self._policy.victim()
            victim = self._streams[(victim_key.seq_id, victim_key.layer)][
                victim_key.page_index
            ]
            self._policy.remove(victim_key)
            victim.tier = _HOST
            self._device_pages -= 1
            self._host_pages += 1
            self.evictions += 1
            self.spilled_bytes += victim.used
            self.transfer_cycles += self.transfer.transfer_cycles(
                victim.used, self.page_bytes
            )

    def _promote_run(
        self, stream: List[_Page], start: int, limit: int
    ) -> int:
        """Promote up to ``limit`` consecutive host pages starting at
        ``start`` as one merged transfer.  Returns pages promoted."""
        run: List[_Page] = []
        index = start
        while (
            index < len(stream)
            and len(run) < limit
            and stream[index].tier == _HOST
        ):
            run.append(stream[index])
            index += 1
        if not run:
            return 0
        moved = sum(page.used for page in run)
        # One merged transfer: granularity is the whole run, so longer
        # runs ride the host link's burst efficiency curve.
        self.transfer_cycles += self.transfer.transfer_cycles(
            moved, len(run) * self.page_bytes
        )
        self.promoted_bytes += moved
        for page in run:
            self._make_room()
            page.tier = _DEVICE
            self._host_pages -= 1
            self._device_pages += 1
            self.promotions += 1
            self._policy.insert(page.key)
        self.peak_device_bytes = max(self.peak_device_bytes, self.device_bytes)
        return len(run)

    # -- reporting ------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Flat numeric counters for replay/cluster telemetry."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "promotions": float(self.promotions),
            "prefetched_pages": float(self.prefetched_pages),
            "spilled_bytes": float(self.spilled_bytes),
            "promoted_bytes": float(self.promoted_bytes),
            "transfer_cycles": float(self.transfer_cycles),
            "pages_allocated": float(self.pages_allocated),
            "device_pages": float(self._device_pages),
            "host_pages": float(self._host_pages),
            "device_bytes": float(self.device_bytes),
            "host_bytes": float(self.host_bytes),
            "device_capacity_bytes": float(self.device_capacity_bytes),
            "peak_device_bytes": float(self.peak_device_bytes),
        }
