"""Unified cache-engine API.

One protocol (:class:`CacheBackend`), one factory
(:func:`create_backend`), one multi-sequence arena
(:class:`KVCachePool`).  Every quantized-KV consumer in the repo — the
autoregressive generation loop, the serving simulator's cache-replay
mode, the evaluation harness and the CLI — constructs caches through
this package, for the paper method and every Table 2 baseline alike.
Both hot directions batch across the pool's resident set: one fused
encode per iteration (:meth:`KVCachePool.append_batch`) and one fused
decode (:meth:`KVCachePool.read_batch`), each bit-identical to
per-sequence loops.

Quickstart (full walkthrough in ``docs/engine_api.md``)::

    from repro.engine import create_backend, shared_backend_factory
    from repro.engine import KVCachePool

    backend = create_backend("kivi", num_layers=2)   # any method
    backend.append(0, keys, values)                  # stream KV rows
    k, v = backend.read(0)                           # lossy history

    pool = KVCachePool(
        shared_backend_factory("oaken", calibration=calibration)
    )
    pool.allocate("req-0"); pool.allocate("req-1")
    ...
    pool.append_batch(0, {"req-0": (k0, v0), "req-1": (k1, v1)})
    pool.read_batch(layer=0, seq_ids=["req-0", "req-1"])
"""

from repro.engine.arena import ArenaCacheBackend, KVArena
from repro.engine.errors import CacheCapacityError, MemoryCapacityError
from repro.engine.backend import (
    BACKEND_KINDS,
    BASELINE_NAMES,
    BaselineCacheBackend,
    CacheBackend,
    FusedCacheBackend,
    available_methods,
    backend_for_model,
    create_backend,
    create_quantizer,
    shared_backend_factory,
)
from repro.engine.pool import KVCachePool
from repro.engine.sharing import SharedChunkRegistry
from repro.engine.synthetic import SyntheticKVStream
from repro.engine.tiering import (
    EVICTION_POLICIES,
    EvictionPolicy,
    LRUPolicy,
    PLRUPolicy,
    PageKey,
    TieredKVStore,
    TransferModel,
    create_eviction_policy,
    default_transfer_model,
)

__all__ = [
    "ArenaCacheBackend",
    "BACKEND_KINDS",
    "BASELINE_NAMES",
    "BaselineCacheBackend",
    "KVArena",
    "CacheBackend",
    "CacheCapacityError",
    "EVICTION_POLICIES",
    "EvictionPolicy",
    "FusedCacheBackend",
    "KVCachePool",
    "LRUPolicy",
    "MemoryCapacityError",
    "PLRUPolicy",
    "PageKey",
    "SharedChunkRegistry",
    "SyntheticKVStream",
    "TieredKVStore",
    "TransferModel",
    "available_methods",
    "backend_for_model",
    "create_backend",
    "create_eviction_policy",
    "create_quantizer",
    "default_transfer_model",
    "shared_backend_factory",
]
