"""Typed failure modes of the cache engine.

The serving layers distinguish *retryable* conditions (a pool refusing
work for capacity — requeue the request somewhere else, or later) from
programming errors (unknown sequence ids, shape mismatches — bugs that
must surface).  Capacity refusals therefore carry a dedicated type
with enough context to route the retry: which sequence was refused and
the measured footprint the refusal was based on.
"""

from __future__ import annotations

from typing import Hashable, Optional


class CacheCapacityError(RuntimeError):
    """A pool append/admission was refused for capacity.

    Raised by :class:`~repro.engine.pool.KVCachePool` when an append
    would push the measured encoded footprint past ``capacity_bytes``,
    and by admission paths projecting against a byte budget.  This is
    the **retryable** rejection class: the request is well-formed, the
    pool is full — callers (the cluster's requeue layer, a serving
    router) may retry on another pool or after retirement.  Any other
    exception escaping the append path is a bug, not backpressure.

    Attributes:
        seq_id: the refused sequence (request) id, when known.
        requested_bytes: projected bytes the refused work would add.
        measured_bytes: pool footprint measured at refusal time.
        capacity_bytes: the budget the projection exceeded.
    """

    def __init__(
        self,
        seq_id: Optional[Hashable],
        requested_bytes: float,
        measured_bytes: float,
        capacity_bytes: float,
    ):
        self.seq_id = seq_id
        self.requested_bytes = float(requested_bytes)
        self.measured_bytes = float(measured_bytes)
        self.capacity_bytes = float(capacity_bytes)
        super().__init__(
            f"sequence {seq_id!r}: appending ~{requested_bytes:.0f} "
            f"encoded bytes would exceed the pool budget "
            f"({measured_bytes:.0f} of {capacity_bytes:.0f} bytes in "
            "use); retryable rejection, not a bug"
        )
