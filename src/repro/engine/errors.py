"""Typed failure modes of the cache engine.

The serving layers distinguish *retryable* conditions (a pool refusing
work for capacity — requeue the request somewhere else, or later) from
programming errors (unknown sequence ids, shape mismatches — bugs that
must surface).  Capacity refusals therefore carry a dedicated family
rooted at :class:`MemoryCapacityError` with enough context to route the
retry: which sequence was refused, how many bytes it wanted, and the
budget the refusal was based on.  Every memory-exhaustion path in the
repo — the pool's measured-footprint admission
(:class:`CacheCapacityError`) and the hardware MMU's physical page
allocator (:class:`repro.hardware.mmu.OutOfPagesError`) — raises a
member of this family, so callers can catch one type and inspect one
attribute set regardless of which layer ran out.
"""

from __future__ import annotations

from typing import Hashable, Optional


class MemoryCapacityError(RuntimeError):
    """Base of the inspectable memory-exhaustion family.

    Carries the context every capacity refusal shares, whichever layer
    raised it:

    Attributes:
        seq_id: the refused sequence (request) id, when known.
        requested_bytes: bytes the refused work would have added.
        measured_bytes: bytes in use at refusal time.
        capacity_bytes: the budget the request exceeded.
    """

    def __init__(
        self,
        seq_id: Optional[Hashable],
        requested_bytes: float,
        measured_bytes: float,
        capacity_bytes: float,
        message: str,
    ):
        self.seq_id = seq_id
        self.requested_bytes = float(requested_bytes)
        self.measured_bytes = float(measured_bytes)
        self.capacity_bytes = float(capacity_bytes)
        super().__init__(message)


class CacheCapacityError(MemoryCapacityError):
    """A pool append/admission was refused for capacity.

    Raised by :class:`~repro.engine.pool.KVCachePool` when an append
    would push the measured encoded footprint past ``capacity_bytes``,
    and by admission paths projecting against a byte budget.  This is
    the **retryable** rejection class: the request is well-formed, the
    pool is full — callers (the cluster's requeue layer, a serving
    router) may retry on another pool or after retirement.  Any other
    exception escaping the append path is a bug, not backpressure.

    Pools constructed with a :class:`~repro.engine.tiering.TieredKVStore`
    do not raise this for device-tier pressure — cold pages spill to
    host instead (the evict-and-spill admission option) — only when an
    explicit total ``capacity_bytes`` bound is also set and exceeded.
    """

    def __init__(
        self,
        seq_id: Optional[Hashable],
        requested_bytes: float,
        measured_bytes: float,
        capacity_bytes: float,
    ):
        super().__init__(
            seq_id,
            requested_bytes,
            measured_bytes,
            capacity_bytes,
            f"sequence {seq_id!r}: appending ~{requested_bytes:.0f} "
            f"encoded bytes would exceed the pool budget "
            f"({measured_bytes:.0f} of {capacity_bytes:.0f} bytes in "
            "use); retryable rejection, not a bug",
        )
