"""Multi-sequence cache arena with batched reads, batched appends and
footprint reporting.

A :class:`KVCachePool` owns one
:class:`~repro.engine.backend.CacheBackend` per live request id,
allocated from a factory (usually
:func:`~repro.engine.backend.shared_backend_factory`, so all sequences
share the offline-fitted per-layer quantizers, as a real serving
system would).  Both hot directions of the serving loop are batched
across the resident set:

``read_batch`` extends PR 1's incremental memoized reads *across*
sequences: at every generation iteration each resident sequence has a
handful of newly appended, not-yet-decoded chunks; instead of decoding
them with one kernel call per sequence per tensor, the pool
concatenates the pending chunks of all requested sequences into one
merged :class:`~repro.core.encoding.EncodedKV` and decodes the whole
batch in a single fused pass (decode is row-local, so this is
bit-identical to the per-sequence loop — the conformance tests assert
it).  At single-token decode granularity this turns ``2 * B`` tiny
[1, D] kernel launches per layer into two [B, D] launches.

``append_batch`` is the write-side mirror: the freshly generated rows
of all updated sequences are gathered into one [sum t_i, D] matrix per
tensor, encoded with a single fused quantize pass, and the resulting
chunks are scattered back to each sequence's cache with
:func:`~repro.core.encoding.split_encoded`.  The encode is row-local
(per-token scales, token-ordered COO records), so the scattered chunks
are bit-for-bit what a per-sequence ``append`` loop would have stored.
Adapter pools holding row-local registry methods batch their writes
too: the new rows are quantized eagerly through one merged
``roundtrip_batch`` per tensor across the resident set (the
``batched_append_roundtrips`` counter), leaving every sequence's
decode memo current — the state a per-sequence append + read loop
reaches, at one transform's worth of per-call overhead.

Pool-wide footprint (current and peak encoded bytes, measured
effective bitwidth) feeds the serving simulator's admission control in
cache-replay mode, replacing the analytic capacity estimate.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.core.encoding import concat_encoded, split_encoded
from repro.core.kvcache import LayerKVCache, QuantizedKVCache
from repro.core.quantizer import QuantizeScratch
from repro.engine.arena import ArenaCacheBackend, KVArena
from repro.engine.backend import (
    BaselineCacheBackend,
    CacheBackend,
    _BaselineStream,
)
from repro.engine.errors import CacheCapacityError
from repro.engine.sharing import SharedChunkRegistry
from repro.engine.tiering import TieredKVStore

#: One sequence's new rows for :meth:`KVCachePool.append_batch`:
#: either a mapping ``{seq_id: (keys, values)}`` or an iterable of
#: ``(seq_id, keys, values)`` triples.
BatchUpdates = Union[
    Mapping[Hashable, Tuple[np.ndarray, np.ndarray]],
    Iterable[Tuple[Hashable, np.ndarray, np.ndarray]],
]


class KVCachePool:
    """Per-request cache arena with batched multi-sequence reads and
    appends.

    Args:
        backend_factory: zero-argument callable producing a fresh
            :class:`CacheBackend` per allocated sequence.
        capacity_bytes: optional encoded-byte budget used by
            :meth:`would_fit` for admission control; ``None`` means
            unbounded.  With ``tiering`` set it bounds the *total*
            (device + host) footprint; the device tier's own budget
            lives on the store.
        tiering: optional :class:`~repro.engine.tiering.TieredKVStore`
            modeling where each sequence's encoded pages reside.  The
            pool notifies it of every append (byte growth), read
            (recency touches, spilled-page promotion) and free; cold
            pages spill to host instead of the append being refused —
            the evict-and-spill alternative to the
            :class:`~repro.engine.errors.CacheCapacityError` reject
            path.  Placement never changes decoded values: reads are
            bit-identical with or without a store attached.
        arena: opt into the structure-of-arrays resident set
            (:class:`~repro.engine.arena.KVArena`).  Applies only to
            fused pools (the factory yields
            :class:`~repro.core.kvcache.QuantizedKVCache` backends):
            one template backend is built to harvest the shared
            per-layer quantizers, and every sequence then lives as a
            row-slice in flat per-layer buffers — no per-chunk objects
            on the hot path, reads bit-identical to the chunked pool.
            Arena forks copy prefix rows (the adapter-fork contract:
            bit-exact reads, no byte sharing), so the COW registry is
            bypassed.  For adapter (registry-baseline) pools the flag
            is a structural no-op: their flat ``_BaselineStream``
            buffers already are an arena.
    """

    def __init__(
        self,
        backend_factory: Callable[[], CacheBackend],
        capacity_bytes: Optional[float] = None,
        tiering: Optional[TieredKVStore] = None,
        arena: bool = False,
    ):
        self._factory = backend_factory
        self._caches: Dict[Hashable, CacheBackend] = {}
        self._arena: Optional[KVArena] = None
        if arena:
            template = backend_factory()
            if isinstance(template, QuantizedKVCache):
                self._arena = KVArena(
                    [lc.key_quantizer for lc in template.layers],
                    [lc.value_quantizer for lc in template.layers],
                )
        self.capacity_bytes = capacity_bytes
        self.tiering = tiering
        self._tier_seen: Dict[Hashable, float] = {}
        self._sharing = SharedChunkRegistry()
        self.forks = 0
        self._peak_bytes = 0.0
        self.batched_decodes = 0
        self.batched_encodes = 0
        self.batched_roundtrips = 0
        self.batched_append_roundtrips = 0
        # Reusable fused-encode work buffers (keys, values).  Batch
        # encodes run sequentially on the pool, so one scratch pair
        # serves every layer; buffers grow to the largest batch seen.
        self._append_scratch = (QuantizeScratch(), QuantizeScratch())

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    @property
    def arena_enabled(self) -> bool:
        """Whether the structure-of-arrays resident set is active."""
        return self._arena is not None

    def allocate(self, seq_id: Hashable) -> CacheBackend:
        """Create a fresh cache for ``seq_id``."""
        if seq_id in self._caches:
            raise ValueError(f"sequence {seq_id!r} already allocated")
        if self._arena is not None:
            backend: CacheBackend = self._arena.allocate(seq_id)
        else:
            backend = self._factory()
        self._caches[seq_id] = backend
        return backend

    def fork(
        self,
        parent_seq_id: Hashable,
        new_seq_id: Hashable,
        prefix_len: int,
    ) -> CacheBackend:
        """Fork ``new_seq_id`` from a committed prefix of the parent.

        The child shares the parent's first ``prefix_len`` rows by
        **aliasing the encoded chunk objects** covering them (splitting
        the boundary chunk in place first, a bit-exact rewrite) — no
        bytes are copied and, because the pool's accounting charges
        every shared chunk once, no new footprint is added.  Chunks are
        immutable and appends only extend the lists, so parent and
        child diverge copy-on-write at their first post-fork appends;
        shared chunks are freed only when the last holder is freed.

        Contract: the child's :meth:`read` is bit-identical to an
        unshared sequence that appended the same rows — for every
        registry method, with and without tiering, under looped and
        batched paths (``tests/test_engine_sharing.py`` replays
        randomized op sequences against a mirrored no-sharing pool to
        pin this).

        Chunk aliasing requires a fused (:class:`QuantizedKVCache`)
        pool sharing fitted quantizers — a
        :func:`~repro.engine.backend.shared_backend_factory` pool.
        Adapter pools (registry baselines) fork by copying the exact
        prefix rows instead: reads are identically bit-exact, but no
        bytes are saved (their storage model has no shareable unit).

        Args:
            parent_seq_id: live sequence to fork from.
            new_seq_id: id for the child (must not be allocated).
            prefix_len: rows of committed history to share; must not
                exceed the parent's cached length.

        Returns:
            The child's backend.
        """
        if parent_seq_id not in self._caches:
            raise KeyError(
                f"unknown sequence {parent_seq_id!r}; cannot fork "
                "from a sequence that is not allocated"
            )
        if new_seq_id in self._caches:
            raise ValueError(
                f"sequence {new_seq_id!r} already allocated"
            )
        parent = self._caches[parent_seq_id]
        prefix_len = int(prefix_len)
        if prefix_len < 0 or prefix_len > parent.length:
            raise ValueError(
                f"prefix_len {prefix_len} outside parent "
                f"{parent_seq_id!r}'s cached length {parent.length}"
            )
        if self._arena is not None:
            # Arena forks copy the prefix rows (bit-exact reads, no
            # byte aliasing — the adapter contract class), so the COW
            # registry stays out of the loop entirely.
            arena_child = self._arena.fork(
                parent_seq_id, new_seq_id, prefix_len
            )
            self._caches[new_seq_id] = arena_child
            self.forks += 1
            if self.tiering is not None:
                self._tier_seen[new_seq_id] = float(
                    arena_child.nbytes()
                )
            return arena_child
        child = self._factory()
        if isinstance(parent, QuantizedKVCache) and isinstance(
            child, QuantizedKVCache
        ):
            self._fork_fused(
                parent_seq_id, parent, new_seq_id, child, prefix_len
            )
        elif isinstance(parent, BaselineCacheBackend) and isinstance(
            child, BaselineCacheBackend
        ):
            self._fork_adapter(parent, child, prefix_len)
        else:
            raise TypeError(
                "fork supports fused (QuantizedKVCache) and adapter "
                f"(BaselineCacheBackend) pools, got {type(parent).__name__}"
            )
        self._caches[new_seq_id] = child
        self.forks += 1
        if self.tiering is not None:
            # The shared prefix already resides in the owner's pages;
            # seed the child's watermark so only divergent growth is
            # charged, and touch the owner's pages so a fresh fork
            # finds its prefix hot.
            self._tier_seen[new_seq_id] = float(child.nbytes())
            for layer in range(parent.num_layers):
                if self._sharing.shared_owners(new_seq_id, layer):
                    self.tiering.record_read(parent_seq_id, layer)
        return child

    def _fork_fused(
        self,
        parent_seq_id: Hashable,
        parent: QuantizedKVCache,
        new_seq_id: Hashable,
        child: QuantizedKVCache,
        prefix_len: int,
    ) -> None:
        """Alias the committed prefix chunks into the child's layers."""
        for layer_index, (parent_layer, child_layer) in enumerate(
            zip(parent.layers, child.layers)
        ):
            if (
                child_layer.key_quantizer
                is not parent_layer.key_quantizer
                or child_layer.value_quantizer
                is not parent_layer.value_quantizer
            ):
                raise ValueError(
                    "fork requires sequences sharing fitted "
                    "quantizers; build the pool with "
                    "shared_backend_factory"
                )
            count, replaced = parent_layer.split_chunk_boundary(
                prefix_len
            )
            for old_key, old_value in replaced:
                for old in (old_key, old_value):
                    for transfer in self._sharing.on_replace(
                        parent_seq_id, old
                    ):
                        self._tier_transfer(transfer)
            child_layer.adopt_prefix(
                parent_layer._key_chunks[:count],
                parent_layer._value_chunks[:count],
                prefix_len,
            )
            for key_chunk, value_chunk in zip(
                child_layer._key_chunks, child_layer._value_chunks
            ):
                self._sharing.share(
                    key_chunk, layer_index, parent_seq_id, new_seq_id
                )
                self._sharing.share(
                    value_chunk, layer_index, parent_seq_id, new_seq_id
                )

    @staticmethod
    def _fork_adapter(
        parent: BaselineCacheBackend,
        child: BaselineCacheBackend,
        prefix_len: int,
    ) -> None:
        """Copy the exact prefix rows into the child's streams.

        Adapter storage is the exact accumulated history (quantization
        happens at read time), so copying the first ``prefix_len``
        rows reproduces an unshared twin bit-for-bit — including
        history-global methods, whose reads depend only on the exact
        rows.
        """
        if prefix_len == 0:
            return
        for layer in range(parent.num_layers):
            parent_keys, parent_values = parent.layer_streams(layer)
            child_keys, child_values = child.layer_streams(layer)
            child_keys.append(parent_keys.matrix()[:prefix_len])
            child_values.append(parent_values.matrix()[:prefix_len])

    def _tier_transfer(self, transfer) -> None:
        """Re-home transferred shared bytes in the tiered store."""
        if self.tiering is None:
            return
        new_owner, layer, nbytes = transfer
        self.tiering.record_append(new_owner, layer, nbytes)

    def free(self, seq_id: Hashable) -> bool:
        """Retire ``seq_id`` and release its cache (and its pages).

        Shared chunks the sequence holds are dereferenced, not
        destroyed: their storage survives until the last holder is
        freed (and, under tiering, their pages are re-homed to a
        surviving holder when the freed sequence owned them).

        Returns:
            ``True`` when any storage bytes were actually released;
            ``False`` when everything the sequence held survives
            through forked holders (or the cache was empty).

        Raises:
            KeyError: ``seq_id`` is not allocated — including the
                double-free case, where it was already freed.
        """
        if seq_id not in self._caches:
            raise KeyError(
                f"cannot free sequence {seq_id!r}: not allocated "
                "(double free, or never allocated)"
            )
        cache = self._caches.pop(seq_id)
        if self._arena is not None:
            # Measure before the rows are marked dead; freeing may
            # trigger deterministic compaction of the arena.
            released = float(cache.nbytes())
            self._arena.free(seq_id)
            if self.tiering is not None:
                self.tiering.release(seq_id)
                self._tier_seen.pop(seq_id, None)
            return released > 0.0
        retained, transfers = self._sharing.release_seq(seq_id)
        if self.tiering is not None:
            # Drop the freed sequence's pages first, then re-home the
            # surviving shared bytes, so the migration never doubles
            # transient device pressure.
            self.tiering.release(seq_id)
            self._tier_seen.pop(seq_id, None)
        for transfer in transfers:
            self._tier_transfer(transfer)
        return cache.nbytes() - retained > 0.0

    def get(self, seq_id: Hashable) -> CacheBackend:
        """The backend owning ``seq_id``'s cache."""
        return self._caches[seq_id]

    def __contains__(self, seq_id: Hashable) -> bool:
        return seq_id in self._caches

    def __len__(self) -> int:
        return len(self._caches)

    @property
    def seq_ids(self) -> List[Hashable]:
        """Live sequence ids, in allocation order."""
        return list(self._caches)

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------

    def _check_capacity(
        self, seq_id: Optional[Hashable], new_tokens: int
    ) -> None:
        """Refuse an append that would blow the byte budget.

        Projects ``new_tokens`` more cached rows at the pool's measured
        bytes-per-token and raises the **typed, retryable**
        :class:`~repro.engine.errors.CacheCapacityError` when the
        projection exceeds ``capacity_bytes`` — carrying the sequence
        id and the measured footprint, so a retry layer can distinguish
        backpressure from bugs.  Unbounded pools (``capacity_bytes``
        None) and unmeasured pools (nothing cached yet) never refuse,
        matching :meth:`would_fit`.
        """
        if self.capacity_bytes is None or new_tokens <= 0:
            return
        used, _ = self.measure()
        tokens = self.total_tokens()
        if tokens == 0 or used == 0.0:
            return
        requested = new_tokens * (used / tokens)
        if used + requested > self.capacity_bytes:
            raise CacheCapacityError(
                seq_id, requested, used, self.capacity_bytes
            )

    def _tier_record_append(self, seq_id: Hashable, layer: int) -> None:
        """Push a sequence's encoded-byte growth into the tiered store.

        The store models placement, not payloads, so growth is observed
        as the delta of the cache's measured footprint (chunk
        footprints are memoized, making this a cheap sum).  Charged to
        the layer that grew; eviction pressure is pool-global either
        way.
        """
        if self.tiering is None:
            return
        nbytes = float(self._caches[seq_id].nbytes())
        delta = nbytes - self._tier_seen.get(seq_id, 0.0)
        if delta > 0:
            self.tiering.record_append(seq_id, layer, delta)
        self._tier_seen[seq_id] = nbytes

    def append(
        self,
        seq_id: Hashable,
        layer: int,
        keys: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Append new KV rows to one sequence's layer cache.

        Raises:
            CacheCapacityError: the pool has a ``capacity_bytes``
                budget and the projected footprint of the new rows
                would exceed it (nothing is appended).
        """
        self._check_capacity(seq_id, int(np.atleast_2d(keys).shape[0]))
        self._caches[seq_id].append(layer, keys, values)
        self._tier_record_append(seq_id, layer)

    def _tier_record_read(self, seq_id: Hashable, layer: int) -> None:
        """Touch a read's pages — including shared-prefix pages.

        A forked sequence's prefix bytes live in the *owner's* pages,
        so reading through any holder must also touch the owner's
        stream: shared pages stay as hot as their hottest holder and
        are never evicted out from under a fork (and spilled shared
        pages promote back on any holder's read).
        """
        if self.tiering is None:
            return
        self.tiering.record_read(seq_id, layer)
        for owner in self._sharing.shared_owners(seq_id, layer):
            if owner in self._caches:
                self.tiering.record_read(owner, layer)

    def read(
        self, seq_id: Hashable, layer: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One sequence's dequantized (keys, values) history."""
        self._tier_record_read(seq_id, layer)
        return self._caches[seq_id].read(layer)

    def append_batch(self, layer: int, updates: BatchUpdates) -> None:
        """Append new KV rows to many sequences, one fused encode.

        The write-side counterpart of :meth:`read_batch`: all updated
        sequences' new [t, D] rows are gathered into one matrix per
        tensor, quantized in a single fused pass, and the encoded
        chunks are scattered back to each sequence's layer cache —
        bit-for-bit identical to calling :meth:`append` once per
        sequence, in ``updates`` order.  At single-token decode
        granularity this turns ``2 * B`` tiny [1, D] encodes per layer
        into two [B, D] encodes.

        Fusion requires caches sharing this layer's fitted quantizers
        (a :func:`~repro.engine.backend.shared_backend_factory` pool)
        and at least two sequences with new rows; otherwise this falls
        back to the per-sequence loop.  Sequences updating with zero
        rows are skipped entirely (no empty chunk is stored).

        Adapter caches batch too, when the method permits: for
        row-local registry methods (fp16/oaken/qserve/atom/tender) the
        new rows are appended per sequence and every stale decode
        suffix is then quantized through **one** merged
        :meth:`~repro.baselines.base.KVCacheQuantizer.roundtrip_batch`
        call per tensor across the resident set, leaving each
        sequence's decode memo current — the same end state a
        per-sequence ``append`` + ``read`` loop reaches, bit-for-bit,
        tracked by :attr:`batched_append_roundtrips`.  History-global
        methods (kivi, kvquant) and mixed pools fall back to the plain
        per-sequence append loop.

        Args:
            layer: decoder layer index.
            updates: ``{seq_id: (keys, values)}`` mapping or iterable
                of ``(seq_id, keys, values)`` triples; ``keys`` and
                ``values`` are same-shape [t, D] row blocks.

        Raises:
            CacheCapacityError: the pool has a ``capacity_bytes``
                budget and the batch's projected footprint would
                exceed it (no sequence is mutated).
        """
        if isinstance(updates, Mapping):
            items = [(s, k, v) for s, (k, v) in updates.items()]
        else:
            items = [(s, k, v) for s, k, v in updates]
        entries: List[
            Tuple[Hashable, CacheBackend, np.ndarray, np.ndarray]
        ] = []
        first_seq: Optional[Hashable] = None
        total_rows = 0
        for seq_id, keys, values in items:
            cache = self._caches[seq_id]
            keys = np.atleast_2d(keys)
            values = np.atleast_2d(values)
            if keys.shape != values.shape:
                raise ValueError(
                    f"key/value shape mismatch for sequence "
                    f"{seq_id!r}: {keys.shape} vs {values.shape}"
                )
            if keys.shape[0] == 0:
                continue
            if first_seq is None:
                first_seq = seq_id
            total_rows += keys.shape[0]
            entries.append((seq_id, cache, keys, values))
        # One capacity projection for the whole batch, before anything
        # mutates: a refused batch leaves every sequence untouched.
        self._check_capacity(first_seq, total_rows)
        if self._arena is not None:
            if entries:
                self._arena.append_batch(
                    layer,
                    [
                        (seq_id, keys, values)
                        for seq_id, _, keys, values in entries
                    ],
                )
                if len(entries) >= 2:
                    self.batched_encodes += 2
            self._tier_record_batch(entries, layer)
            return
        if len(entries) < 2:
            for seq_id, cache, keys, values in entries:
                cache.append(layer, keys, values)
            self._tier_record_batch(entries, layer)
            return
        layers = self._fusible_layers(
            [cache for _, cache, _, _ in entries],
            layer,
            require_incremental=False,
        )
        if layers is not None:
            self._encode_scatter_batch(
                layers,
                [keys for _, _, keys, _ in entries],
                [values for _, _, _, values in entries],
            )
            self._tier_record_batch(entries, layer)
            return
        unique = list(
            dict.fromkeys(cache for _, cache, _, _ in entries)
        )
        adapter = self._batchable_adapter_streams(unique, layer)
        for seq_id, cache, keys, values in entries:
            cache.append(layer, keys, values)
        if adapter is not None:
            # Quantize the freshly appended rows eagerly: one merged
            # row-local roundtrip per tensor across the resident set,
            # so the work the next read would do per sequence is done
            # here at batch granularity instead.
            for streams in adapter:
                self._roundtrip_pending_batch(streams, write_side=True)
        self._tier_record_batch(entries, layer)

    def _tier_record_batch(
        self,
        entries: List[Tuple[Hashable, CacheBackend, np.ndarray, np.ndarray]],
        layer: int,
    ) -> None:
        if self.tiering is None:
            return
        for seq_id in dict.fromkeys(seq_id for seq_id, _, _, _ in entries):
            self._tier_record_append(seq_id, layer)

    def _encode_scatter_batch(
        self,
        layers: List[LayerKVCache],
        key_blocks: List[np.ndarray],
        value_blocks: List[np.ndarray],
    ) -> None:
        """Encode every sequence's new rows in one fused pass each for
        keys and values, then scatter the chunks back."""
        rows = [block.shape[0] for block in key_blocks]
        key_scratch, value_scratch = self._append_scratch
        key_encoded = layers[0].key_quantizer.quantize_into(
            np.concatenate(key_blocks), key_scratch
        )
        value_encoded = layers[0].value_quantizer.quantize_into(
            np.concatenate(value_blocks), value_scratch
        )
        self.batched_encodes += 2
        key_chunks = split_encoded(key_encoded, rows)
        value_chunks = split_encoded(value_encoded, rows)
        for layer_cache, key_chunk, value_chunk in zip(
            layers, key_chunks, value_chunks
        ):
            layer_cache.append_encoded(key_chunk, value_chunk)

    def read_batch(
        self, layer: int, seq_ids: List[Hashable]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Dequantized histories of many sequences, one fused decode.

        Returns ``[(keys, values), ...]`` in ``seq_ids`` order,
        bit-identical to calling :meth:`read` per sequence.  When the
        sequences are fused-kernel caches sharing per-layer quantizers
        (a :func:`~repro.engine.backend.shared_backend_factory` pool),
        all pending chunks decode in one merged kernel call per
        tensor.  Adapter caches batch too, when the method permits:
        row-local registry methods (fp16/oaken/qserve/atom/tender)
        sharing fitted quantizers roundtrip every sequence's pending
        suffix in one merged [sum t_i, D] transform per tensor.
        History-global methods (kivi, kvquant) and mixed pools fall
        back to the per-sequence loop.
        """
        caches = [self._caches[s] for s in seq_ids]
        if self.tiering is not None:
            for seq_id in dict.fromkeys(seq_ids):
                self._tier_record_read(seq_id, layer)
        # Duplicate ids map to the same cache; decode each cache's
        # pending chunks exactly once (committing twice would corrupt
        # the memoized prefix), then serve reads in request order.
        unique = list(dict.fromkeys(caches))
        if self._arena is not None:
            ran = self._arena.decode_pending(
                layer, [cache.seq_id for cache in unique]
            )
            if ran and len(unique) >= 2:
                self.batched_decodes += 2
            return [cache.read(layer) for cache in caches]
        fusible = self._fusible_layers(unique, layer)
        if fusible is not None:
            self._decode_pending_batch(fusible)
        else:
            adapter = self._batchable_adapter_streams(unique, layer)
            if adapter is not None:
                for streams in adapter:
                    self._roundtrip_pending_batch(streams)
        return [cache.read(layer) for cache in caches]

    def _batchable_adapter_streams(
        self, caches: List[CacheBackend], layer: int
    ) -> Optional[Tuple[List[_BaselineStream], List[_BaselineStream]]]:
        """Adapter streams eligible for one merged roundtrip per tensor.

        Mirrors :meth:`_fusible_layers` for
        :class:`~repro.engine.backend.BaselineCacheBackend` caches:
        batching is sound only for *row-local* methods (a row's
        roundtrip depends on that row alone, so concatenating many
        sequences' pending rows into one [sum t_i, D] transform is
        bit-identical to per-sequence calls) sharing one fitted
        quantizer per tensor (a shared-factory pool) with amortized
        reads enabled.  KIVI's sliding window and KVQuant's online
        topK are history-global and fall back to the per-sequence
        loop.
        """
        if len(caches) < 2:
            return None
        key_streams: List[_BaselineStream] = []
        value_streams: List[_BaselineStream] = []
        for cache in caches:
            if not isinstance(cache, BaselineCacheBackend):
                return None
            keys, values = cache.layer_streams(layer)
            key_streams.append(keys)
            value_streams.append(values)
        for streams in (key_streams, value_streams):
            first = streams[0].quantizer
            if not first.row_local:
                return None
            for stream in streams:
                if stream.quantizer is not first or not stream.amortize:
                    return None
        return key_streams, value_streams

    def _roundtrip_pending_batch(
        self,
        streams: List[_BaselineStream],
        write_side: bool = False,
    ) -> None:
        """One tensor's pending suffixes through a single roundtrip.

        Shared by the read side (:meth:`read_batch`, counted in
        :attr:`batched_roundtrips`) and the write side
        (:meth:`append_batch`'s eager adapter quantize, counted in
        :attr:`batched_append_roundtrips`).
        """
        work = []
        for stream in streams:
            if not stream.needs_decode:
                continue
            stable, suffix = stream.pending()
            work.append((stream, stable, suffix))
        if len(work) < 2:
            return  # nothing to merge; lazy per-sequence reads suffice
        quantizer = work[0][0].quantizer
        chunks = quantizer.roundtrip_batch(
            [suffix for _, _, suffix in work]
        )
        if write_side:
            self.batched_append_roundtrips += 1
        else:
            self.batched_roundtrips += 1
        for (stream, stable, _), chunk in zip(work, chunks):
            chunk = np.asarray(chunk, dtype=np.float32)
            if stable == 0 and chunk.base is not None:
                # A bare slice would become the stream's decode memo as
                # a view, pinning the whole merged tensor per stream;
                # the stable > 0 path copies inside commit_decoded's
                # concatenate already.
                chunk = chunk.copy()
            stream.commit_decoded(chunk, stable)

    def _fusible_layers(
        self,
        caches: List[CacheBackend],
        layer: int,
        require_incremental: bool = True,
    ) -> Optional[List[LayerKVCache]]:
        """Per-sequence layer caches eligible for one merged kernel pass.

        Batched decodes additionally require incremental caches (the
        merged results land in the decode memos); batched encodes work
        in either mode, so they pass ``require_incremental=False``.
        """
        if len(caches) < 2:
            return None
        layers: List[LayerKVCache] = []
        for cache in caches:
            if not isinstance(cache, QuantizedKVCache):
                return None
            layer_cache = cache.layers[layer]
            if require_incremental and not layer_cache.incremental:
                return None
            layers.append(layer_cache)
        first = layers[0]
        for other in layers[1:]:
            if (
                other.key_quantizer is not first.key_quantizer
                or other.value_quantizer is not first.value_quantizer
            ):
                return None
        return layers

    def _decode_pending_batch(
        self, layers: List[LayerKVCache]
    ) -> None:
        """Decode every sequence's pending chunks in one fused pass."""
        pending = [lc.pending_chunks() for lc in layers]
        key_chunks = [c for key_part, _ in pending for c in key_part]
        if not key_chunks:
            return
        value_chunks = [c for _, val_part in pending for c in val_part]
        key_quantizer = layers[0].key_quantizer
        value_quantizer = layers[0].value_quantizer
        decoded_keys = key_quantizer.dequantize(
            concat_encoded(key_chunks)
        )
        decoded_values = value_quantizer.dequantize(
            concat_encoded(value_chunks)
        )
        self.batched_decodes += 2
        offset = 0
        for layer_cache, (key_part, val_part) in zip(layers, pending):
            rows = sum(chunk.num_tokens for chunk in key_part)
            if not rows:
                continue
            layer_cache.commit_decoded(
                decoded_keys[offset : offset + rows],
                decoded_values[offset : offset + rows],
                len(key_part),
            )
            offset += rows

    # ------------------------------------------------------------------
    # footprint / admission control
    # ------------------------------------------------------------------

    def measure(self) -> Tuple[float, float]:
        """One-pass ``(bytes, effective_bitwidth)`` over live sequences.

        The effective bitwidth is the *measured* counterpart of the
        serving simulator's analytic ``system.kv_bits`` estimate: it
        reflects the actual outlier rates of the data streaming
        through the caches (storage-weighted across sequences; 0.0
        while the pool is empty).  Also refreshes the peak-bytes
        high-water mark, so callers polling every iteration pay a
        single footprint scan.
        """
        total = 0.0
        bits = 0.0
        elements = 0.0
        for cache in self._caches.values():
            nbytes = cache.nbytes()
            total += nbytes
            ebw = cache.effective_bitwidth()
            if ebw > 0.0:
                bits += nbytes * 8.0
                elements += nbytes * 8.0 / ebw
        # Chunks aliased across forked sequences were summed once per
        # holder above; subtract the overcount so shared bytes are
        # charged exactly once pool-wide (the admission-control number).
        total -= self._sharing.extra_bytes()
        if total > self._peak_bytes:
            self._peak_bytes = total
        return total, (bits / elements if elements else 0.0)

    def nbytes(self) -> float:
        """Current encoded bytes across all live sequences."""
        return self.measure()[0]

    @property
    def peak_bytes(self) -> float:
        """High-water encoded footprint observed by :meth:`measure`."""
        self.measure()
        return self._peak_bytes

    def total_tokens(self) -> int:
        """Cached token positions summed over live sequences."""
        return sum(c.length for c in self._caches.values())

    def effective_bitwidth(self) -> float:
        """Measured storage-weighted bits/element (see :meth:`measure`)."""
        return self.measure()[1]

    def bytes_per_token(self) -> float:
        """Measured encoded bytes per cached token (0 while empty)."""
        tokens = self.total_tokens()
        if tokens == 0:
            return 0.0
        return self.nbytes() / tokens

    def would_fit(self, tokens: int) -> bool:
        """Whether ``tokens`` more cached positions fit the budget.

        Uses the measured bytes-per-token of the live pool; with no
        measurement yet (empty pool) or no budget, admission is
        granted.
        """
        if self.capacity_bytes is None:
            return True
        per_token = self.bytes_per_token()
        if per_token == 0.0:
            return True
        return self.nbytes() + tokens * per_token <= self.capacity_bytes

    def summary(self) -> Dict[str, float]:
        """Pool-wide reporting dict.

        With a tiered store attached, its counters join the dict under
        a ``tier_`` prefix (``tier_hits``, ``tier_evictions``,
        ``tier_transfer_cycles``, ...).

        With the arena active, occupancy counters join too:
        ``arena_rows_live`` / ``arena_rows_dead`` (summed over layers),
        ``arena_compactions``, and ``arena_capacity_bytes`` — the
        preallocated buffer bytes including slack.  ``bytes`` and
        ``peak_bytes`` stay *live-content* footprints (bit-identical
        to the chunked pool's accounting), which is what the
        measured-footprint admission gate budgets against; the slack
        the doubling policy holds beyond that is exactly
        ``arena_capacity_bytes`` minus the encoded share of ``bytes``.
        """
        total, ebw = self.measure()
        out = {
            "sequences": float(len(self._caches)),
            "tokens": float(self.total_tokens()),
            "bytes": total,
            "peak_bytes": self._peak_bytes,
            "effective_bitwidth": ebw,
            "batched_decodes": float(self.batched_decodes),
            "batched_encodes": float(self.batched_encodes),
            "batched_roundtrips": float(self.batched_roundtrips),
            "batched_append_roundtrips": float(
                self.batched_append_roundtrips
            ),
            "forks": float(self.forks),
        }
        out.update(self._sharing.summary())
        if self._arena is not None:
            out.update(self._arena.summary())
        if self.tiering is not None:
            for key, value in self.tiering.summary().items():
                out[f"tier_{key}"] = value
        return out
