"""Synthetic KV streams with the paper's outlier structure.

Observation 3: KV activations concentrate outliers in a few heavy
channels, plus a sprinkle of isolated spikes.  The serving replay mode
and the pool read/append and baseline-read benchmarks all stream
synthetic KV through real quantization kernels; sharing the generator
keeps their measured bitwidths describing the same distribution.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class SyntheticKVStream:
    """Draws [n, dim] KV-like rows with channel-concentrated outliers.

    Args:
        dim: KV width.
        seed: stream seed.
        heavy_fraction: fraction of channels carrying large magnitudes.
        gain: magnitude multiplier for heavy channels and spikes.
        spike_prob: per-element probability of an isolated spike.
    """

    def __init__(
        self,
        dim: int,
        seed: int = 0,
        heavy_fraction: float = 1.0 / 16.0,
        gain: float = 8.0,
        spike_prob: float = 0.002,
    ):
        self.dim = dim
        self.gain = gain
        self.spike_prob = spike_prob
        self._rng = np.random.default_rng(seed)
        heavy = max(1, int(dim * heavy_fraction))
        self.gains = np.ones(dim)
        self.gains[
            self._rng.choice(dim, size=heavy, replace=False)
        ] = gain

    def draw(self, n: int) -> np.ndarray:
        """The next ``n`` rows of the stream."""
        x = self._rng.standard_normal((n, self.dim))
        x *= self.gains[None, :]
        if self.spike_prob > 0.0:
            spikes = self._rng.random(x.shape) < self.spike_prob
            x = np.where(spikes, x * self.gain, x)
        return x

    def calibration(
        self, num_layers: int, tokens: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-layer (keys, values) calibration samples."""
        return [
            (self.draw(tokens), self.draw(tokens))
            for _ in range(num_layers)
        ]
